//! # dpe — Distance-Preserving Encryption for SQL query logs
//!
//! Facade crate re-exporting the whole workspace: a faithful reproduction of
//! *"Distance-Based Data Mining over Encrypted Data"* (Tex, Schäler, Böhm —
//! ICDE 2018). See the individual crates for the subsystems:
//!
//! * [`core`] — the paper's contribution: DPE, c-equivalence, the KIT-DPE
//!   procedure, the PPE taxonomy (Fig. 1) and Table I derivation.
//! * [`sql`], [`minidb`], [`cryptdb`] — SQL substrate: parser, in-memory
//!   relational engine, CryptDB-style onion encryption.
//! * [`crypto`], [`ope`], [`paillier`], [`bignum`] — property-preserving
//!   encryption classes (PROB/DET/JOIN/OPE/HOM) built from scratch,
//!   including format-preserving encryption (FPE) and mutable
//!   order-preserving encoding (mOPE) as alternative class instances.
//! * [`distance`] — the four query-distance measures of Table I.
//! * [`mining`] — distance-based mining algorithms (clustering, outliers,
//!   LOF, association rules).
//! * [`server`] — the sharded batch-serving engine answering concurrent
//!   kNN/LOF/range requests over the encrypted store (work-stealing batch
//!   scheduler + epoch-keyed LRU response cache).
//! * [`durability`] — per-shard write-ahead log + epoch-consistent
//!   snapshots behind the server: crash recovery replays to bit-identical
//!   responses.
//! * [`workload`] — synthetic SkyServer-like query-log generator.
//! * [`attacks`] — the passive attacks of the threat model, used to validate
//!   Fig. 1 empirically.
//! * [`graphdpe`] — KIT-DPE instantiated a second time, for labelled
//!   graphs: the paper's "arbitrary data" claim exercised end-to-end.

#![forbid(unsafe_code)]

pub use dpe_attacks as attacks;
pub use dpe_bignum as bignum;
pub use dpe_core as core;
pub use dpe_cryptdb as cryptdb;
pub use dpe_crypto as crypto;
pub use dpe_distance as distance;
pub use dpe_durability as durability;
pub use dpe_graphdpe as graphdpe;
pub use dpe_minidb as minidb;
pub use dpe_mining as mining;
pub use dpe_ope as ope;
pub use dpe_paillier as paillier;
pub use dpe_server as server;
pub use dpe_sql as sql;
pub use dpe_workload as workload;
