#![allow(clippy::needless_range_loop)] // indexed loops mirror the matrix math

//! Metric-property round-trips for the four Table I distance measures,
//! driven by generated query logs: identity `d(x, x) = 0`, symmetry,
//! range `[0, 1]`, and triangle-inequality spot checks.
//!
//! The three Jaccard-based measures (token, structure, result) are genuine
//! metrics, so the triangle inequality must hold on every sampled triple.
//! Access-area distance averages per-attribute scores over the union of the
//! pair's accessed attributes — its per-attribute δ is a metric, and with
//! the paper's default `x = 0.5` the spot checks below hold on the
//! SkyServer-style logs the paper targets.

use dpe_distance::{
    AccessAreaDistance, QueryDistance, ResultDistance, StructureDistance, TokenDistance,
};
use dpe_sql::Query;
use dpe_workload::{generate_database, sky_domains, LogConfig, LogGenerator};

fn log(seed: u64, n: usize) -> Vec<Query> {
    LogGenerator::generate(&LogConfig {
        queries: n,
        seed,
        ..Default::default()
    })
}

/// Checks identity, symmetry and range on every pair, and the triangle
/// inequality on every triple (with an f64 summation slack).
fn check_metric_properties(measure: &dyn QueryDistance, queries: &[Query], triangle: bool) {
    let n = queries.len();
    let mut d = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in 0..n {
            d[i][j] = measure.distance(&queries[i], &queries[j]).unwrap();
        }
    }

    for (i, q) in queries.iter().enumerate() {
        assert_eq!(d[i][i], 0.0, "{}: d(x, x) != 0 for {q}", measure.name());
    }
    for i in 0..n {
        for j in 0..n {
            assert!(
                (0.0..=1.0).contains(&d[i][j]),
                "{}: d out of range: {}",
                measure.name(),
                d[i][j]
            );
            assert_eq!(
                d[i][j].to_bits(),
                d[j][i].to_bits(),
                "{}: asymmetric at ({i}, {j})",
                measure.name()
            );
        }
    }
    if triangle {
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    assert!(
                        d[i][k] <= d[i][j] + d[j][k] + 1e-12,
                        "{}: triangle violated: d({i},{k})={} > d({i},{j})={} + d({j},{k})={}",
                        measure.name(),
                        d[i][k],
                        d[i][j],
                        d[j][k]
                    );
                }
            }
        }
    }
}

#[test]
fn token_distance_is_a_metric_on_generated_logs() {
    for seed in [1, 17, 4242] {
        check_metric_properties(&TokenDistance, &log(seed, 14), true);
    }
}

#[test]
fn structure_distance_is_a_metric_on_generated_logs() {
    for seed in [2, 23, 9001] {
        check_metric_properties(&StructureDistance, &log(seed, 14), true);
    }
}

#[test]
fn result_distance_is_a_metric_on_generated_logs() {
    let db = generate_database(60, 11);
    for seed in [3, 31] {
        let measure = ResultDistance::new(&db);
        check_metric_properties(&measure, &log(seed, 10), true);
    }
}

#[test]
fn access_area_distance_metric_properties_on_generated_logs() {
    for seed in [5, 47, 1234] {
        let measure = AccessAreaDistance::new(sky_domains());
        check_metric_properties(&measure, &log(seed, 14), true);
    }
}

#[test]
fn distinct_queries_get_positive_distance() {
    // Not required by Definition 1, but the generated log should not be
    // degenerate: at least one pair per measure must be strictly apart,
    // otherwise the metric checks above would be vacuous.
    let queries = log(99, 14);
    for measure in [&TokenDistance as &dyn QueryDistance, &StructureDistance] {
        let mut positive = 0usize;
        for i in 0..queries.len() {
            for j in i + 1..queries.len() {
                if measure.distance(&queries[i], &queries[j]).unwrap() > 0.0 {
                    positive += 1;
                }
            }
        }
        assert!(positive > 0, "{}: all pairs at distance 0", measure.name());
    }
}
