//! Property tests for the packed incremental matrix engine: for random
//! query sets, every construction path — sequential [`DistanceMatrix::compute`],
//! [`DistanceMatrix::compute_parallel`] at 1, 2 and 7 threads, a matrix
//! grown by [`DistanceMatrix::extend`] from a random split, and a
//! [`MatrixBuilder`] fed one query at a time — must produce **bit-identical**
//! matrices, all packed to exactly `n(n−1)/2` cells.

use dpe_distance::{DistanceMatrix, MatrixBuilder, StructureDistance, TokenDistance};
use dpe_workload::{LogConfig, LogGenerator};
use proptest::prelude::*;

fn log(seed: u64, n: usize) -> Vec<dpe_sql::Query> {
    LogGenerator::generate(&LogConfig {
        queries: n,
        seed,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_construction_paths_are_bit_identical(
        seed in 0u64..10_000,
        n in 2usize..20,
        split_num in 0usize..100,
    ) {
        let queries = log(seed, n);
        let split = split_num * queries.len() / 100;

        let seq = DistanceMatrix::compute(&queries, &TokenDistance).unwrap();
        prop_assert_eq!(seq.packed_len(), queries.len() * (queries.len() - 1) / 2);

        for threads in [1usize, 2, 7] {
            let par =
                DistanceMatrix::compute_parallel(&queries, &TokenDistance, threads).unwrap();
            prop_assert!(seq.identical(&par), "parallel({}) diverged", threads);
        }

        let (head, tail) = queries.split_at(split);
        let mut extended = DistanceMatrix::compute(head, &TokenDistance).unwrap();
        extended.extend(head, tail, &TokenDistance).unwrap();
        prop_assert!(seq.identical(&extended), "extend at split {} diverged", split);

        let mut builder = MatrixBuilder::new();
        for q in &queries {
            builder.push(q.clone(), &TokenDistance).unwrap();
        }
        prop_assert!(seq.identical(builder.matrix()), "builder diverged");
    }

    #[test]
    fn structure_measure_paths_agree_too(seed in 0u64..10_000, n in 2usize..14) {
        let queries = log(seed, n);
        let seq = DistanceMatrix::compute(&queries, &StructureDistance).unwrap();
        let par = DistanceMatrix::compute_parallel(&queries, &StructureDistance, 7).unwrap();
        prop_assert!(seq.identical(&par));

        let (head, tail) = queries.split_at(queries.len() / 2);
        let mut extended = DistanceMatrix::compute(head, &StructureDistance).unwrap();
        extended.extend(head, tail, &StructureDistance).unwrap();
        prop_assert!(seq.identical(&extended));
    }
}
