//! Property tests for the metric indexes: for random generated query
//! logs, VP-tree kNN and range answers over both a [`MatrixSource`] and an
//! on-demand [`MeasureSource`] must be **bit-identical** to the brute-force
//! matrix-path answers (same NaN-last, index-tie-break order), an index
//! grown incrementally via [`VpTree::absorb`] must agree with one built
//! fresh, and the LSH recheck paths must be exhaustive-exact or verified
//! subsets with no false positives.

use dpe_distance::{
    hash_feature, DistanceMatrix, LshConfig, LshIndex, MatrixSource, MeasureSource, TokenDistance,
    VpTree,
};
use dpe_sql::{token_set, Query};
use dpe_workload::{LogConfig, LogGenerator};
use proptest::prelude::*;

fn log(seed: u64, n: usize) -> Vec<Query> {
    LogGenerator::generate(&LogConfig {
        queries: n,
        seed,
        ..Default::default()
    })
}

/// The matrix paths' comparator: NaN last (either sign), then by index.
fn brute_knn(matrix: &DistanceMatrix, i: usize, k: usize) -> Vec<usize> {
    let mut others: Vec<usize> = (0..matrix.len()).filter(|&j| j != i).collect();
    others.sort_by(|&a, &b| {
        let (da, db) = (matrix.get(i, a), matrix.get(i, b));
        da.is_nan()
            .cmp(&db.is_nan())
            .then_with(|| da.total_cmp(&db))
            .then(a.cmp(&b))
    });
    others.truncate(k);
    others
}

fn brute_range(matrix: &DistanceMatrix, i: usize, radius: f64) -> Vec<usize> {
    (0..matrix.len())
        .filter(|&j| j != i && matrix.get(i, j) <= radius)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn vptree_answers_match_matrix_paths_bitwise(
        seed in 0u64..10_000,
        n in 2usize..24,
        k in 0usize..8,
        radius_pct in 0usize..100,
    ) {
        let radius = radius_pct as f64 / 100.0;
        let queries = log(seed, n);
        let matrix = DistanceMatrix::compute(&queries, &TokenDistance).unwrap();
        let by_matrix = MatrixSource(&matrix);
        let by_measure = MeasureSource::new(&queries, &TokenDistance);
        let tree = VpTree::build(&by_matrix).unwrap();

        for item in 0..n {
            let want = brute_knn(&matrix, item, k);
            let (got, counters) = tree.knn(&by_matrix, item, k).unwrap();
            prop_assert_eq!(&got, &want, "matrix-source knn, anchor {}", item);
            prop_assert_eq!(counters.computed + counters.pruned, n as u64);
            let (got, _) = tree.knn(&by_measure, item, k).unwrap();
            prop_assert_eq!(&got, &want, "measure-source knn, anchor {}", item);

            let want = brute_range(&matrix, item, radius);
            let (got, counters) = tree.range(&by_matrix, item, radius).unwrap();
            prop_assert_eq!(&got, &want, "matrix-source range, anchor {}", item);
            prop_assert_eq!(counters.computed + counters.pruned, n as u64);
            let (got, _) = tree.range(&by_measure, item, radius).unwrap();
            prop_assert_eq!(&got, &want, "measure-source range, anchor {}", item);
        }
    }

    #[test]
    fn incrementally_grown_tree_matches_fresh_build(
        seed in 0u64..10_000,
        n in 2usize..24,
        split_num in 0usize..100,
        k in 1usize..6,
    ) {
        let queries = log(seed, n);
        let split = 1 + split_num * (n - 1) / 100;
        let matrix = DistanceMatrix::compute(&queries, &TokenDistance).unwrap();
        let head = DistanceMatrix::compute(&queries[..split], &TokenDistance).unwrap();

        // Grow: build over the head, then absorb the full matrix the way
        // a streaming ingest does. Whether or not absorb rebuilt, answers
        // must equal a from-scratch tree's (both equal brute force).
        let mut grown = VpTree::build(&MatrixSource(&head)).unwrap();
        grown.absorb(&MatrixSource(&matrix)).unwrap();
        prop_assert_eq!(grown.len(), n);

        for item in 0..n {
            let want = brute_knn(&matrix, item, k);
            let (got, _) = grown.knn(&MatrixSource(&matrix), item, k).unwrap();
            prop_assert_eq!(&got, &want, "grown knn, anchor {}, split {}", item, split);
            let want = brute_range(&matrix, item, 0.5);
            let (got, _) = grown.range(&MatrixSource(&matrix), item, 0.5).unwrap();
            prop_assert_eq!(&got, &want, "grown range, anchor {}, split {}", item, split);
        }
    }

    #[test]
    fn lsh_exhaustive_is_exact_and_banded_is_a_verified_subset(
        seed in 0u64..10_000,
        n in 2usize..20,
        k in 0usize..6,
        radius_pct in 0usize..100,
        bands in 1usize..4,
        rows in 1usize..4,
    ) {
        let radius = radius_pct as f64 / 100.0;
        let queries = log(seed, n);
        let matrix = DistanceMatrix::compute(&queries, &TokenDistance).unwrap();
        let source = MatrixSource(&matrix);

        let mut exhaustive = LshIndex::new(LshConfig::exhaustive());
        let mut banded = LshIndex::new(LshConfig::new(bands, rows, seed));
        for q in &queries {
            let features: Vec<u64> = token_set(q).iter().map(|t| hash_feature(t)).collect();
            exhaustive.insert(features.clone());
            banded.insert(features);
        }

        for item in 0..n {
            // rows == 0 makes every item a candidate, so the recheck sees
            // exactly the brute-force field: answers are bit-identical.
            let (got, _) = exhaustive.knn(&source, item, k).unwrap();
            prop_assert_eq!(&got, &brute_knn(&matrix, item, k), "exhaustive knn {}", item);
            let (got, _) = exhaustive.range(&source, item, radius).unwrap();
            prop_assert_eq!(&got, &brute_range(&matrix, item, radius), "exhaustive range {}", item);

            // Banded mode may miss neighbours (that is the approximation)
            // but the exact recheck means it can never invent one: every
            // hit is a true hit, in the exact paths' order.
            let (hits, _) = banded.range(&source, item, radius).unwrap();
            let truth = brute_range(&matrix, item, radius);
            prop_assert!(
                hits.iter().all(|h| truth.contains(h)),
                "banded range false positive at anchor {}", item
            );
            prop_assert!(hits.windows(2).all(|w| w[0] < w[1]));
            let (near, _) = banded.knn(&source, item, k).unwrap();
            for h in &near {
                prop_assert!(
                    !matrix.get(item, *h).is_nan() && *h != item,
                    "banded knn invalid neighbour at anchor {}", item
                );
            }
        }
    }
}
