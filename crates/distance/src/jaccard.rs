//! The Jaccard set distance `1 − |A ∩ B| / |A ∪ B|`.

use std::collections::BTreeSet;

/// Jaccard distance between two sets.
///
/// Both-empty is defined as distance `0` (identical queries should be at
/// distance zero even when their characteristic sets are empty).
///
/// The result is the exact rational `1 − i/u` evaluated in `f64`; since `i`
/// and `u` are small integers, equal inputs produce bit-equal outputs — the
/// property the DPE verifier depends on.
pub fn jaccard_distance<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let intersection = a.intersection(b).count();
    let union = a.len() + b.len() - intersection;
    1.0 - intersection as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_sets_distance_zero() {
        let a = set(&["x", "y"]);
        assert_eq!(jaccard_distance(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_sets_distance_one() {
        assert_eq!(jaccard_distance(&set(&["a"]), &set(&["b"])), 1.0);
    }

    #[test]
    fn half_overlap() {
        // |∩| = 1, |∪| = 3 → 1 − 1/3 = 2/3.
        let d = jaccard_distance(&set(&["a", "b"]), &set(&["b", "c"]));
        assert_eq!(d, 1.0 - 1.0 / 3.0);
    }

    #[test]
    fn both_empty_is_zero() {
        let e: BTreeSet<String> = BTreeSet::new();
        assert_eq!(jaccard_distance(&e, &e), 0.0);
    }

    #[test]
    fn empty_vs_nonempty_is_one() {
        let e: BTreeSet<String> = BTreeSet::new();
        assert_eq!(jaccard_distance(&e, &set(&["a"])), 1.0);
    }

    #[test]
    fn symmetry_and_bounds() {
        let a = set(&["1", "2", "3"]);
        let b = set(&["3", "4"]);
        assert_eq!(jaccard_distance(&a, &b), jaccard_distance(&b, &a));
        let d = jaccard_distance(&a, &b);
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn subset_distance() {
        // |∩| = 2, |∪| = 3 → 1/3.
        let d = jaccard_distance(&set(&["a", "b"]), &set(&["a", "b", "c"]));
        assert_eq!(d, 1.0 - 2.0 / 3.0);
    }
}
