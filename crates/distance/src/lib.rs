//! # dpe-distance — the four SQL query-distance measures of Table I
//!
//! | Measure | Characteristic `c` | Module |
//! |---|---|---|
//! | Token-based query-string distance (Def. 3) | `tokens(Q)` | [`token_distance`] |
//! | Query-structure distance (SnipSuggest features) | `features(Q)` | [`structure_distance`] |
//! | Query-result distance | `result_tuples(Q)` | [`result_distance`] |
//! | Query-access-area distance (Def. 5) | `access_A(Q)` per attribute | [`access_area`] |
//!
//! The first three are Jaccard distances over their characteristic sets
//! ([`jaccard`]); access-area distance averages a three-valued per-attribute
//! overlap score δ ∈ {0, x, 1}.
//!
//! [`measure::QueryDistance`] is the common trait; [`matrix::DistanceMatrix`]
//! materializes pairwise distances for the mining algorithms. The matrix
//! engine stores only the strict upper triangle (`n(n−1)/2` packed cells —
//! half the memory of a full n×n grid), grows **incrementally**
//! ([`matrix::DistanceMatrix::extend`] / [`matrix::MatrixBuilder`] compute
//! only the new pairs when queries are appended), and parallelizes over
//! contiguous row ranges written in place, with
//! [`matrix::QueryDistanceFactory`] handing each worker its own measure —
//! so even the engine-backed result-distance measure runs on the parallel
//! path via [`result_distance::ResultDistanceFactory`].
//!
//! [`index`] escapes the matrix's O(n²) wall for the per-anchor queries:
//! a vantage-point tree ([`index::VpTree`]) answers kNN and range queries
//! **bit-identically** to the matrix paths while triangle-inequality
//! pruning skips most distance evaluations, and a MinHash LSH recheck
//! index ([`index::LshIndex`]) trades recall for even fewer evaluations.
//! Both read distances through [`index::DistanceSource`] — a packed matrix
//! or on-demand measure calls — so they serve stores the matrix could
//! never materialize.
//!
//! All distances are **exact** rational computations rendered into `f64`
//! as a final step: numerator and denominator are set cardinalities, so
//! checking the DPE property `d(Enc(x), Enc(y)) = d(x, y)` with `==` is
//! sound — both sides round the same rational the same way.

#![forbid(unsafe_code)]

pub mod access_area;
pub mod index;
pub mod jaccard;
pub mod matrix;
pub mod measure;
pub mod result_distance;
pub mod structure_distance;
pub mod token_distance;

pub use access_area::{AccessAreaDistance, AttributeDomain, DomainCatalog, IntervalSet};
pub use index::{
    hash_feature, DistanceSource, LshConfig, LshIndex, MatrixSource, MeasureSource, QueryCounters,
    VpTree,
};
pub use jaccard::jaccard_distance;
pub use matrix::{DistanceMatrix, MatrixBuilder, QueryDistanceFactory};
pub use measure::{DistanceError, QueryDistance};
pub use result_distance::{ResultConnection, ResultDistance, ResultDistanceFactory};
pub use structure_distance::StructureDistance;
pub use token_distance::TokenDistance;
