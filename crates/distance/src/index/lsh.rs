//! MinHash LSH candidate generation with exact recheck — approximate mode.
//!
//! The Jaccard-based measures (token, structure, result — Table I's first
//! three) compare characteristic *sets*, which is exactly the similarity
//! MinHash sketches: `P[min-hash collision] = Jaccard similarity`. The
//! index banding scheme ([`LshConfig`]: `bands` tables of `rows` MinHash
//! rows each) buckets items whose band signatures collide; a query
//! gathers the anchor's bucket mates as candidates and **exactly
//! rechecks** every one through a [`DistanceSource`], so reported
//! neighbours are never wrong — approximate mode can only *miss* a
//! neighbour whose every band disagrees with the anchor's.
//!
//! The degenerate configuration [`LshConfig::exhaustive`] (`rows = 0`)
//! collapses every band key to a constant, making every item a candidate:
//! recall 1, zero hashing discrimination — and therefore **bit-identical**
//! to the matrix paths, which is how the differential suites pin the
//! recheck machinery itself (selection, comparator, tie-breaks) while
//! general configurations are pinned for subset/no-false-positive
//! properties.

use super::{nan_last_cmp, splitmix64, DistanceSource, QueryCounters};
use crate::measure::DistanceError;
use std::collections::HashMap;

/// Hashes a string feature (e.g. one of `dpe_sql::token_set`) into the
/// `u64` feature space [`LshIndex::insert`] ingests (FNV-1a 64).
pub fn hash_feature(feature: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in feature.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Banding parameters for a [`LshIndex`]: `bands` hash tables, each keyed
/// by `rows` MinHash rows. More rows per band sharpens the similarity
/// threshold (fewer candidates); more bands raises recall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshConfig {
    /// Number of bands (hash tables). Must be ≥ 1.
    pub bands: usize,
    /// MinHash rows per band; 0 makes every band key constant (see
    /// [`LshConfig::exhaustive`]).
    pub rows: usize,
    /// Seed of the deterministic hash family.
    pub seed: u64,
}

impl LshConfig {
    /// A banding configuration.
    pub fn new(bands: usize, rows: usize, seed: u64) -> LshConfig {
        assert!(bands >= 1, "an LSH index needs at least one band");
        LshConfig { bands, rows, seed }
    }

    /// The recall-1 degenerate configuration: every item is a candidate
    /// for every query, so answers are bit-identical to the matrix paths
    /// (at brute-force cost — useful for pinning and as a safe default).
    pub fn exhaustive() -> LshConfig {
        LshConfig {
            bands: 1,
            rows: 0,
            seed: 0,
        }
    }

    /// `true` when every item collides with every other (`rows == 0`).
    pub fn is_exhaustive(&self) -> bool {
        self.rows == 0
    }
}

/// The MinHash LSH index. Items are inserted as iterators of hashed
/// features (in insertion order, item ids `0, 1, 2, …` — aligned with the
/// [`DistanceSource`] handed to the query methods).
#[derive(Debug, Clone)]
pub struct LshIndex {
    config: LshConfig,
    /// band → (band key → items in that bucket, insertion order).
    tables: Vec<HashMap<u64, Vec<u32>>>,
    /// Per-item band keys, `bands` per item, flattened.
    keys: Vec<u64>,
    items: usize,
}

impl LshIndex {
    /// An empty index with the given banding configuration.
    pub fn new(config: LshConfig) -> LshIndex {
        LshIndex {
            tables: (0..config.bands).map(|_| HashMap::new()).collect(),
            keys: Vec::new(),
            items: 0,
            config,
        }
    }

    /// The banding configuration.
    pub fn config(&self) -> LshConfig {
        self.config
    }

    /// Items inserted.
    pub fn len(&self) -> usize {
        self.items
    }

    /// `true` before the first insert.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Inserts the next item (id = current [`LshIndex::len`]) from its
    /// hashed feature set, returning the assigned id. An empty feature
    /// set gets the sentinel signature, so empty items bucket together.
    pub fn insert<I: IntoIterator<Item = u64>>(&mut self, features: I) -> usize {
        let features: Vec<u64> = features.into_iter().collect();
        let id = self.items as u32;
        for band in 0..self.config.bands {
            // Fold the band's MinHash rows into one bucket key. With
            // rows == 0 the fold never runs and the key is a constant.
            let mut key = splitmix64(self.config.seed ^ (band as u64));
            for row in 0..self.config.rows {
                let row_seed = splitmix64(
                    self.config
                        .seed
                        .wrapping_add(((band * self.config.rows + row) as u64) << 1 | 1),
                );
                let sig = features
                    .iter()
                    .map(|&f| splitmix64(f ^ row_seed))
                    .min()
                    .unwrap_or(u64::MAX);
                key = splitmix64(key ^ sig);
            }
            self.tables[band].entry(key).or_default().push(id);
            self.keys.push(key);
        }
        self.items += 1;
        self.items - 1
    }

    /// The anchor's bucket mates across all bands, ascending and deduped,
    /// excluding the anchor itself.
    pub fn candidates(&self, item: usize) -> Vec<usize> {
        assert!(
            item < self.items,
            "query item {item} out of bounds (len={})",
            self.items
        );
        let mut out: Vec<usize> = Vec::new();
        for band in 0..self.config.bands {
            let key = self.keys[item * self.config.bands + band];
            if let Some(bucket) = self.tables[band].get(&key) {
                out.extend(
                    bucket
                        .iter()
                        .filter(|&&j| j as usize != item)
                        .map(|&j| j as usize),
                );
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The `k` nearest *candidates* of `item`, exactly rechecked and
    /// ordered by the matrix-path comparator (NaN-last distance, then
    /// index). With [`LshConfig::exhaustive`] this is bit-identical to
    /// the matrix kNN; otherwise it is a subset of it (misses are
    /// possible, wrong answers are not).
    pub fn knn<S: DistanceSource + ?Sized>(
        &self,
        source: &S,
        item: usize,
        k: usize,
    ) -> Result<(Vec<usize>, QueryCounters), DistanceError> {
        let candidates = self.candidates(item);
        let counters = QueryCounters {
            computed: candidates.len() as u64,
            pruned: (self.items - 1 - candidates.len()) as u64,
        };
        let mut scored: Vec<(f64, usize)> = Vec::with_capacity(candidates.len());
        for j in candidates {
            scored.push((source.distance(item, j)?, j));
        }
        let cmp = |a: &(f64, usize), b: &(f64, usize)| nan_last_cmp(a.0, b.0).then(a.1.cmp(&b.1));
        if k < scored.len() {
            if k == 0 {
                scored.clear();
            } else {
                scored.select_nth_unstable_by(k - 1, cmp);
                scored.truncate(k);
            }
        }
        scored.sort_by(cmp);
        Ok((scored.into_iter().map(|(_, j)| j).collect(), counters))
    }

    /// Every *candidate* within `radius` of `item`, exactly rechecked,
    /// ascending index. With [`LshConfig::exhaustive`] this is
    /// bit-identical to the matrix range query; otherwise a subset of it.
    pub fn range<S: DistanceSource + ?Sized>(
        &self,
        source: &S,
        item: usize,
        radius: f64,
    ) -> Result<(Vec<usize>, QueryCounters), DistanceError> {
        let candidates = self.candidates(item);
        let counters = QueryCounters {
            computed: candidates.len() as u64,
            pruned: (self.items - 1 - candidates.len()) as u64,
        };
        let mut hits = Vec::new();
        for j in candidates {
            if source.distance(item, j)? <= radius {
                hits.push(j);
            }
        }
        Ok((hits, counters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{MatrixSource, MeasureSource};
    use crate::matrix::DistanceMatrix;
    use crate::token_distance::TokenDistance;
    use dpe_sql::{parse_query, token_set, Query};

    fn log(n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| {
                parse_query(&format!(
                    "SELECT a{}, b{} FROM t{} WHERE x = {}",
                    i % 4,
                    i % 7,
                    i % 3,
                    i % 5
                ))
                .unwrap()
            })
            .collect()
    }

    fn index_of(queries: &[Query], config: LshConfig) -> LshIndex {
        let mut index = LshIndex::new(config);
        for q in queries {
            index.insert(token_set(q).iter().map(|t| hash_feature(t)));
        }
        index
    }

    fn brute_knn(m: &DistanceMatrix, i: usize, k: usize) -> Vec<usize> {
        let mut others: Vec<usize> = (0..m.len()).filter(|&j| j != i).collect();
        others.sort_by(|&a, &b| nan_last_cmp(m.get(i, a), m.get(i, b)).then(a.cmp(&b)));
        others.truncate(k);
        others
    }

    #[test]
    fn exhaustive_config_is_bit_identical_to_matrix_paths() {
        let queries = log(26);
        let matrix = DistanceMatrix::compute(&queries, &TokenDistance).unwrap();
        let index = index_of(&queries, LshConfig::exhaustive());
        assert!(index.config().is_exhaustive());
        for i in 0..queries.len() {
            for k in [1, 4, 30] {
                let (got, c) = index.knn(&MatrixSource(&matrix), i, k).unwrap();
                assert_eq!(got, brute_knn(&matrix, i, k), "i={i} k={k}");
                assert_eq!(c.pruned, 0, "exhaustive mode prunes nothing");
            }
            let (got, _) = index.range(&MatrixSource(&matrix), i, 0.5).unwrap();
            let expect: Vec<usize> = (0..queries.len())
                .filter(|&j| j != i && matrix.get(i, j) <= 0.5)
                .collect();
            assert_eq!(got, expect, "i={i}");
        }
    }

    #[test]
    fn banded_config_returns_verified_subsets() {
        let queries = log(40);
        let matrix = DistanceMatrix::compute(&queries, &TokenDistance).unwrap();
        let index = index_of(&queries, LshConfig::new(8, 2, 42));
        for i in 0..queries.len() {
            // Range: every reported hit truly qualifies (no false
            // positives), and the hit set is a subset of the exact one.
            let (got, _) = index.range(&MatrixSource(&matrix), i, 0.4).unwrap();
            for &j in &got {
                assert!(matrix.get(i, j) <= 0.4, "false positive {i}->{j}");
            }
            // kNN: every reported neighbour is a real item drawn from the
            // exact candidate ordering.
            let (got, _) = index.knn(&MatrixSource(&matrix), i, 5).unwrap();
            let exact = brute_knn(&matrix, i, queries.len());
            for j in &got {
                assert!(exact.contains(j));
            }
            // And self-similar items collide: identical queries share all
            // bands, so an item's duplicates are always candidates.
        }
    }

    #[test]
    fn identical_items_always_collide() {
        let queries = log(12);
        let mut doubled = queries.clone();
        doubled.extend(queries.iter().cloned());
        let index = index_of(&doubled, LshConfig::new(4, 3, 7));
        for i in 0..queries.len() {
            let twin = i + queries.len();
            assert!(
                index.candidates(i).contains(&twin),
                "identical feature sets must share every band: {i} vs {twin}"
            );
        }
    }

    #[test]
    fn measure_source_recheck_matches_matrix_recheck() {
        let queries = log(18);
        let matrix = DistanceMatrix::compute(&queries, &TokenDistance).unwrap();
        let index = index_of(&queries, LshConfig::exhaustive());
        let by_measure = MeasureSource::new(&queries, &TokenDistance);
        for i in 0..queries.len() {
            let (a, _) = index.knn(&MatrixSource(&matrix), i, 6).unwrap();
            let (b, _) = index.knn(&by_measure, i, 6).unwrap();
            assert_eq!(a, b, "i={i}");
        }
    }

    #[test]
    fn empty_feature_sets_bucket_together() {
        let mut index = LshIndex::new(LshConfig::new(2, 2, 9));
        let a = index.insert(std::iter::empty());
        let b = index.insert(std::iter::empty());
        assert_eq!(index.candidates(a), vec![b]);
    }
}
