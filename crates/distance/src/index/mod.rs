//! # Sub-quadratic metric indexes over the distance engines
//!
//! Every mining path so far bottoms out in the packed
//! [`DistanceMatrix`], whose `n(n−1)/2` cells cap a
//! store at thousands of records. This module escapes that wall for the
//! per-anchor queries (kNN, range): a pivot-based vantage-point tree
//! ([`VpTree`]) answers them **exactly** — bit-identical to the matrix
//! paths — while triangle-inequality pruning skips most distance
//! evaluations, and a MinHash LSH candidate generator ([`LshIndex`]) trades
//! a recall guarantee for even fewer evaluations in approximate mode (every
//! surviving candidate is *exactly rechecked*, so false positives are
//! impossible; only misses are).
//!
//! Both indexes read distances through [`DistanceSource`], which has two
//! interchangeable backends:
//!
//! * [`MatrixSource`] — O(1) lookups into an already-materialized packed
//!   matrix (what the server's shards use: the matrix is still the ground
//!   truth, the tree just prunes which cells a query reads);
//! * [`MeasureSource`] — on-demand [`QueryDistance`] evaluation over a
//!   query log, for stores too large to materialize `n(n−1)/2` cells at
//!   all. Pairs are evaluated lower-index-first, exactly the order the
//!   matrix engine fills cells in, so the two backends are bit-identical.
//!
//! Triangle-inequality pruning is only sound for true metrics, which is
//! why [`QueryDistance::is_metric`] exists: the Jaccard-based measures
//! (token, structure, result) declare it; access-area distance — whose
//! per-pair attribute-union normalization breaks the triangle inequality —
//! does not, and the server refuses to index such a measure.
//!
//! Every query also reports [`QueryCounters`]: how many distance cells it
//! actually computed versus how many the index proved irrelevant. For a
//! [`VpTree`] query over `n` items, `computed + pruned == n` always holds.

mod lsh;
mod vptree;

pub use lsh::{hash_feature, LshConfig, LshIndex};
pub use vptree::VpTree;

use crate::matrix::DistanceMatrix;
use crate::measure::{DistanceError, QueryDistance};
use dpe_sql::Query;
use std::cmp::Ordering;

/// Where an index reads pairwise distances from. `distance(i, j)` must be
/// symmetric with `distance(i, i) == 0`; implementations over fallible
/// measures surface the measure's error.
pub trait DistanceSource {
    /// Number of items.
    fn len(&self) -> usize;

    /// `true` when the source holds no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The distance between items `i` and `j`.
    fn distance(&self, i: usize, j: usize) -> Result<f64, DistanceError>;
}

/// O(1) lookups into a materialized packed matrix — the backend the
/// server's shards index through (the matrix stays the ground truth; the
/// index only prunes which cells a query reads). Never fails.
#[derive(Debug, Clone, Copy)]
pub struct MatrixSource<'a>(pub &'a DistanceMatrix);

impl DistanceSource for MatrixSource<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn distance(&self, i: usize, j: usize) -> Result<f64, DistanceError> {
        Ok(self.0.get(i, j))
    }
}

/// On-demand measure evaluation over a query log — the backend for stores
/// too large to materialize the packed triangle. Pairs are evaluated
/// lower-index-first, the same argument order
/// [`DistanceMatrix::compute`](crate::DistanceMatrix::compute) uses to fill
/// cells, so answers are bit-identical to a matrix-backed index.
#[derive(Debug, Clone, Copy)]
pub struct MeasureSource<'a, M> {
    queries: &'a [Query],
    measure: &'a M,
}

impl<'a, M: QueryDistance> MeasureSource<'a, M> {
    /// A source computing `measure` over `queries` on demand.
    pub fn new(queries: &'a [Query], measure: &'a M) -> Self {
        MeasureSource { queries, measure }
    }
}

impl<M: QueryDistance> DistanceSource for MeasureSource<'_, M> {
    fn len(&self) -> usize {
        self.queries.len()
    }

    fn distance(&self, i: usize, j: usize) -> Result<f64, DistanceError> {
        if i == j {
            return Ok(0.0);
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        self.measure.distance(&self.queries[lo], &self.queries[hi])
    }
}

/// Per-query work accounting: of the `n` candidate items, how many had
/// their distance to the anchor actually computed (or read from the
/// matrix), and how many the index proved irrelevant without touching
/// their cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCounters {
    /// Distance cells evaluated (including the anchor's own zero cell when
    /// its tree node is visited).
    pub computed: u64,
    /// Items skipped by pruning — their distance cell was never touched.
    pub pruned: u64,
}

/// Total ascending order with every NaN after every number — the ordering
/// the matrix-path kNN sorts by, reproduced here so index answers are
/// bit-identical.
#[inline]
pub(crate) fn nan_last_cmp(a: f64, b: f64) -> Ordering {
    a.is_nan().cmp(&b.is_nan()).then_with(|| a.total_cmp(&b))
}

/// SplitMix64 — the deterministic bit mixer behind pivot choice and the
/// MinHash family (no RNG state to seed, no `rand` dependency).
#[inline]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token_distance::TokenDistance;
    use dpe_sql::parse_query;

    #[test]
    fn measure_source_matches_matrix_cells_bitwise() {
        let queries: Vec<Query> = (0..9)
            .map(|i| {
                parse_query(&format!(
                    "SELECT a{}, b FROM t{} WHERE x = {i}",
                    i % 3,
                    i % 2
                ))
                .unwrap()
            })
            .collect();
        let matrix = DistanceMatrix::compute(&queries, &TokenDistance).unwrap();
        let source = MeasureSource::new(&queries, &TokenDistance);
        assert_eq!(source.len(), matrix.len());
        for i in 0..queries.len() {
            for j in 0..queries.len() {
                let d = source.distance(i, j).unwrap();
                assert_eq!(d.to_bits(), matrix.get(i, j).to_bits(), "({i}, {j})");
            }
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        let outs: std::collections::BTreeSet<u64> = (0..64).map(splitmix64).collect();
        assert_eq!(outs.len(), 64, "no collisions over small consecutive seeds");
    }
}
