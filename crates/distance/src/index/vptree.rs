//! The vantage-point tree: exact kNN and range queries with
//! triangle-inequality pruning.
//!
//! Construction picks a deterministic pivot per node, computes the pivot's
//! distance to every item in its range, and splits at the median distance
//! `mu`: items with `d ≤ mu` form the inner child, the rest the outer
//! child. A query to anchor `q` descending through pivot `p` with
//! `d = d(q, p)` can then skip
//!
//! * the **inner** child when `d − mu > tau` (every inner item is within
//!   `mu` of `p`, so by the triangle inequality at distance `≥ d − mu`
//!   from `q`), and
//! * the **outer** child when `mu − d > tau` (every outer item is farther
//!   than `mu` from `p`, so at distance `> mu − d` from `q`),
//!
//! where `tau` is the current pruning radius (the query radius, or the
//! k-th best distance so far). Both comparisons are **strict**, so items
//! exactly on the boundary are always visited — that, plus breaking
//! distance ties on the lower index, is what keeps answers bit-identical
//! to the matrix paths.
//!
//! **NaN safety.** Prune conditions are written as positive comparisons
//! that are `false` on NaN, so a NaN anchor–pivot distance visits both
//! children, and a node whose build-time partition saw any NaN pivot
//! distance stores `mu = NaN`, making it permanently unprunable. An item
//! whose distance to the anchor is NaN sorts after every number (matching
//! [`dpe_mining`-style NaN-last ordering]) and never qualifies for a range,
//! so pruning it early is always consistent with the matrix answer.
//!
//! **Streaming inserts** append to an overflow list scanned linearly by
//! every query (zero distance calls at insert time); once the overflow
//! outgrows half the built tree the index rebuilds, which keeps the
//! amortized maintenance cost at O(log n) distance calls per inserted item.
//!
//! [`dpe_mining`-style NaN-last ordering]: super::nan_last_cmp

use super::{nan_last_cmp, splitmix64, DistanceSource, QueryCounters};
use crate::measure::DistanceError;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Sentinel child id for "no child".
const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    /// The pivot item.
    item: u32,
    /// Median pivot distance splitting inner from outer; NaN marks the
    /// node unprunable (its partition saw a NaN pivot distance).
    mu: f64,
    /// Items in this subtree (pivot included) — the pruning ledger.
    size: u32,
    inner: u32,
    outer: u32,
}

/// A vantage-point tree over a [`DistanceSource`]. Queries are **exact**:
/// bit-identical to sorting the full matrix row, for any source whose
/// finite distances satisfy the triangle inequality
/// ([`crate::QueryDistance::is_metric`]).
#[derive(Debug, Clone)]
pub struct VpTree {
    nodes: Vec<Node>,
    root: u32,
    /// Items covered by the tree structure; `built..len` is the overflow.
    built: usize,
    len: usize,
    rebuilds: u64,
}

/// A pending tree range during iterative construction: build
/// `items[lo..hi]` and patch the resulting node id into `parent`.
struct BuildJob {
    lo: usize,
    hi: usize,
    parent: u32,
    inner_child: bool,
}

/// Max-heap entry for the kNN frontier, ordered worst-first by
/// (NaN-last distance, index) — the exact matrix-path comparator.
#[derive(Debug, PartialEq)]
struct Cand {
    d: f64,
    item: u32,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Cand) -> Ordering {
        nan_last_cmp(self.d, other.d).then(self.item.cmp(&other.item))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Cand) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl VpTree {
    /// Builds the tree over every item of `source` with O(n log n)
    /// expected distance evaluations.
    pub fn build<S: DistanceSource + ?Sized>(source: &S) -> Result<VpTree, DistanceError> {
        let n = source.len();
        let mut tree = VpTree {
            nodes: Vec::with_capacity(n),
            root: NONE,
            built: n,
            len: n,
            rebuilds: 0,
        };
        let mut items: Vec<u32> = (0..n as u32).collect();
        tree.root = tree.build_ranges(source, &mut items)?;
        Ok(tree)
    }

    /// Iterative construction over an explicit job stack — degenerate
    /// splits (e.g. all items equidistant from every pivot, common for
    /// Jaccard distance saturating at 1.0) must not overflow the call
    /// stack.
    fn build_ranges<S: DistanceSource + ?Sized>(
        &mut self,
        source: &S,
        items: &mut [u32],
    ) -> Result<u32, DistanceError> {
        let mut root = NONE;
        let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut jobs = vec![BuildJob {
            lo: 0,
            hi: items.len(),
            parent: NONE,
            inner_child: false,
        }];
        let mut rest: Vec<(u32, f64)> = Vec::new();
        while let Some(job) = jobs.pop() {
            if job.lo >= job.hi {
                continue;
            }
            let len = job.hi - job.lo;
            rng = splitmix64(rng);
            items.swap(job.lo, job.lo + (rng as usize) % len);
            let pivot = items[job.lo];

            rest.clear();
            for &it in &items[job.lo + 1..job.hi] {
                rest.push((it, source.distance(pivot as usize, it as usize)?));
            }
            let mut mu = f64::NAN;
            let mut inner_len = 0;
            if !rest.is_empty() {
                let mid = (rest.len() - 1) / 2;
                rest.select_nth_unstable_by(mid, |a, b| a.1.total_cmp(&b.1));
                mu = rest[mid].1;
                // Partition (total_cmp, so NaN distances land outer and
                // the node is marked unprunable): inner = d ≤ mu.
                let mut write = job.lo + 1;
                for &(it, d) in &rest {
                    if d.total_cmp(&mu) != Ordering::Greater {
                        items[write] = it;
                        write += 1;
                    }
                }
                inner_len = write - (job.lo + 1);
                for &(it, d) in &rest {
                    if d.total_cmp(&mu) == Ordering::Greater {
                        items[write] = it;
                        write += 1;
                    }
                }
                debug_assert_eq!(write, job.hi);
                if rest.iter().any(|&(_, d)| d.is_nan()) {
                    mu = f64::NAN;
                }
            }

            let id = self.nodes.len() as u32;
            self.nodes.push(Node {
                item: pivot,
                mu,
                size: len as u32,
                inner: NONE,
                outer: NONE,
            });
            if job.parent == NONE {
                root = id;
            } else {
                let parent = &mut self.nodes[job.parent as usize];
                if job.inner_child {
                    parent.inner = id;
                } else {
                    parent.outer = id;
                }
            }
            let inner_hi = job.lo + 1 + inner_len;
            jobs.push(BuildJob {
                lo: job.lo + 1,
                hi: inner_hi,
                parent: id,
                inner_child: true,
            });
            jobs.push(BuildJob {
                lo: inner_hi,
                hi: job.hi,
                parent: id,
                inner_child: false,
            });
        }
        Ok(root)
    }

    /// Items covered (tree plus overflow).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the index covers no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Items inside the tree structure proper.
    pub fn built_len(&self) -> usize {
        self.built
    }

    /// Appended items pending the next rebuild, scanned linearly per query.
    pub fn overflow_len(&self) -> usize {
        self.len - self.built
    }

    /// Full rebuilds performed by [`VpTree::absorb`] so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Extends coverage to `new_len` items with **zero** distance calls:
    /// items `len..new_len` join the overflow list. Use [`VpTree::absorb`]
    /// to also rebuild once the overflow justifies it.
    pub fn extend_to(&mut self, new_len: usize) {
        assert!(
            new_len >= self.len,
            "index covers {} items, cannot shrink to {new_len}",
            self.len
        );
        self.len = new_len;
    }

    /// `true` once the overflow outgrows half the built tree — the point
    /// where rebuilding keeps amortized maintenance at O(log n) distance
    /// calls per inserted item.
    pub fn needs_rebuild(&self) -> bool {
        self.overflow_len() > 8 + self.built / 2
    }

    /// Rebuilds the tree over all of `source`, folding the overflow in.
    pub fn rebuild<S: DistanceSource + ?Sized>(&mut self, source: &S) -> Result<(), DistanceError> {
        let mut fresh = VpTree::build(source)?;
        fresh.rebuilds = self.rebuilds + 1;
        *self = fresh;
        Ok(())
    }

    /// Streaming-insert maintenance: extends coverage to `source.len()`
    /// (the new items join the overflow) and rebuilds when
    /// [`VpTree::needs_rebuild`] says the overflow has outgrown the tree.
    pub fn absorb<S: DistanceSource + ?Sized>(&mut self, source: &S) -> Result<(), DistanceError> {
        self.extend_to(source.len());
        if self.needs_rebuild() {
            self.rebuild(source)?;
        }
        Ok(())
    }

    /// The `k` nearest neighbours of `item` (excluding `item`), closest
    /// first, distance ties broken on the lower index — bit-identical to
    /// sorting the full matrix row. Also returns the computed/pruned cell
    /// counters (`computed + pruned == len`).
    pub fn knn<S: DistanceSource + ?Sized>(
        &self,
        source: &S,
        item: usize,
        k: usize,
    ) -> Result<(Vec<usize>, QueryCounters), DistanceError> {
        assert!(
            item < self.len,
            "query item {item} out of bounds (len={})",
            self.len
        );
        let mut counters = QueryCounters::default();
        if k == 0 {
            counters.pruned = self.len as u64;
            return Ok((Vec::new(), counters));
        }
        // Worst-first heap of the best k so far; tau is its worst distance
        // once full (∞ while filling, or while the worst is NaN).
        let mut heap: BinaryHeap<Cand> = BinaryHeap::with_capacity(k.min(self.len) + 1);
        let tau = |heap: &BinaryHeap<Cand>| -> f64 {
            match heap.peek() {
                Some(worst) if heap.len() >= k && !worst.d.is_nan() => worst.d,
                _ => f64::INFINITY,
            }
        };
        let offer = |heap: &mut BinaryHeap<Cand>, d: f64, it: u32| {
            let cand = Cand { d, item: it };
            if heap.len() < k {
                heap.push(cand);
            } else if let Some(worst) = heap.peek() {
                if cand.cmp(worst) == Ordering::Less {
                    heap.pop();
                    heap.push(cand);
                }
            }
        };

        // (node, lower bound on any distance inside it); a bound is only
        // trusted to prune when strictly greater than tau — NaN bounds
        // fail that comparison and get visited.
        let mut stack: Vec<(u32, f64)> = Vec::new();
        if self.root != NONE {
            stack.push((self.root, f64::NEG_INFINITY));
        }
        while let Some((id, bound)) = stack.pop() {
            let node = &self.nodes[id as usize];
            if bound > tau(&heap) {
                counters.pruned += node.size as u64;
                continue;
            }
            let d = source.distance(item, node.item as usize)?;
            counters.computed += 1;
            if node.item as usize != item {
                offer(&mut heap, d, node.item);
            }
            // LIFO stack: push the far child first so the near child is
            // explored first and tightens tau before the far bound is
            // re-checked at pop time.
            let inner_bound = d - node.mu;
            let outer_bound = node.mu - d;
            let (far, far_bound, near, near_bound) = if d > node.mu {
                (node.inner, inner_bound, node.outer, outer_bound)
            } else {
                (node.outer, outer_bound, node.inner, inner_bound)
            };
            if far != NONE {
                stack.push((far, far_bound));
            }
            if near != NONE {
                stack.push((near, near_bound));
            }
        }
        for j in self.built..self.len {
            let d = source.distance(item, j)?;
            counters.computed += 1;
            if j != item {
                offer(&mut heap, d, j as u32);
            }
        }

        let mut winners: Vec<Cand> = heap.into_vec();
        winners.sort();
        Ok((
            winners.into_iter().map(|c| c.item as usize).collect(),
            counters,
        ))
    }

    /// Every item within `radius` of `item` (excluding `item`), ascending
    /// index — bit-identical to filtering the full matrix row. A NaN
    /// radius matches nothing, exactly like the matrix path.
    pub fn range<S: DistanceSource + ?Sized>(
        &self,
        source: &S,
        item: usize,
        radius: f64,
    ) -> Result<(Vec<usize>, QueryCounters), DistanceError> {
        assert!(
            item < self.len,
            "query item {item} out of bounds (len={})",
            self.len
        );
        let mut counters = QueryCounters::default();
        let mut hits: Vec<usize> = Vec::new();
        let mut stack: Vec<(u32, f64)> = Vec::new();
        if self.root != NONE {
            stack.push((self.root, f64::NEG_INFINITY));
        }
        while let Some((id, bound)) = stack.pop() {
            let node = &self.nodes[id as usize];
            if bound > radius {
                counters.pruned += node.size as u64;
                continue;
            }
            let d = source.distance(item, node.item as usize)?;
            counters.computed += 1;
            if node.item as usize != item && d <= radius {
                hits.push(node.item as usize);
            }
            if node.inner != NONE {
                stack.push((node.inner, d - node.mu));
            }
            if node.outer != NONE {
                stack.push((node.outer, node.mu - d));
            }
        }
        for j in self.built..self.len {
            let d = source.distance(item, j)?;
            counters.computed += 1;
            if j != item && d <= radius {
                hits.push(j);
            }
        }
        hits.sort_unstable();
        Ok((hits, counters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::MatrixSource;
    use crate::matrix::DistanceMatrix;

    /// Points on a line: |pos[i] − pos[j]| is a metric with plenty of
    /// pruning structure.
    fn line_matrix(pos: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs())
    }

    /// Brute-force kNN with the matrix-path comparator.
    fn brute_knn(m: &DistanceMatrix, i: usize, k: usize) -> Vec<usize> {
        let mut others: Vec<usize> = (0..m.len()).filter(|&j| j != i).collect();
        others.sort_by(|&a, &b| nan_last_cmp(m.get(i, a), m.get(i, b)).then(a.cmp(&b)));
        others.truncate(k);
        others
    }

    fn brute_range(m: &DistanceMatrix, i: usize, radius: f64) -> Vec<usize> {
        (0..m.len())
            .filter(|&j| j != i && m.get(i, j) <= radius)
            .collect()
    }

    fn positions(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (splitmix64(i as u64) % 10_000) as f64 / 100.0)
            .collect()
    }

    #[test]
    fn knn_matches_brute_force_for_every_anchor_and_k() {
        let m = line_matrix(&positions(37));
        let tree = VpTree::build(&MatrixSource(&m)).unwrap();
        for i in 0..m.len() {
            for k in [0, 1, 3, 10, 36, 100] {
                let (got, c) = tree.knn(&MatrixSource(&m), i, k).unwrap();
                assert_eq!(got, brute_knn(&m, i, k), "i={i} k={k}");
                assert_eq!(c.computed + c.pruned, m.len() as u64, "i={i} k={k}");
            }
        }
    }

    #[test]
    fn range_matches_brute_force_for_every_anchor() {
        let m = line_matrix(&positions(37));
        let tree = VpTree::build(&MatrixSource(&m)).unwrap();
        for i in 0..m.len() {
            for radius in [0.0, 5.0, 30.0, f64::INFINITY, f64::NAN] {
                let (got, c) = tree.range(&MatrixSource(&m), i, radius).unwrap();
                assert_eq!(got, brute_range(&m, i, radius), "i={i} r={radius}");
                assert_eq!(c.computed + c.pruned, m.len() as u64);
            }
        }
    }

    #[test]
    fn pruning_actually_happens_on_clustered_data() {
        // Two far-apart clusters: a small-radius query in one cluster must
        // never touch most of the other.
        let pos: Vec<f64> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    i as f64
                } else {
                    10_000.0 + i as f64
                }
            })
            .collect();
        let m = line_matrix(&pos);
        let tree = VpTree::build(&MatrixSource(&m)).unwrap();
        let (_, c) = tree.range(&MatrixSource(&m), 0, 70.0).unwrap();
        assert!(c.pruned > 0, "clustered data must prune: {c:?}");
        let (_, c) = tree.knn(&MatrixSource(&m), 0, 3).unwrap();
        assert!(c.pruned > 0, "kNN on clustered data must prune: {c:?}");
    }

    #[test]
    fn equidistant_data_builds_without_stack_overflow() {
        // Jaccard-like saturation: every pair at distance 1.0 produces the
        // most degenerate splits possible (inner swallows everything).
        let m = DistanceMatrix::from_fn(3_000, |_, _| 1.0);
        let tree = VpTree::build(&MatrixSource(&m)).unwrap();
        let (got, _) = tree.knn(&MatrixSource(&m), 7, 5).unwrap();
        assert_eq!(got, brute_knn(&m, 7, 5), "ties break on index");
    }

    #[test]
    fn nan_poisoned_distances_stay_bit_identical() {
        // A metric except for a few NaN-poisoned symmetric pairs: NaN
        // anchors sort last / never qualify on both paths.
        let pos = positions(25);
        let m = DistanceMatrix::from_fn(25, |i, j| {
            if splitmix64((i.min(j) * 100 + i.max(j)) as u64).is_multiple_of(5) {
                f64::NAN
            } else {
                (pos[i] - pos[j]).abs()
            }
        });
        let tree = VpTree::build(&MatrixSource(&m)).unwrap();
        for i in 0..25 {
            for k in [2, 8, 24] {
                let (got, _) = tree.knn(&MatrixSource(&m), i, k).unwrap();
                assert_eq!(got, brute_knn(&m, i, k), "i={i} k={k}");
            }
            let (got, _) = tree.range(&MatrixSource(&m), i, 20.0).unwrap();
            assert_eq!(got, brute_range(&m, i, 20.0), "i={i}");
        }
    }

    #[test]
    fn absorb_covers_appends_and_rebuilds_when_overflow_outgrows_tree() {
        let pos = positions(60);
        let m_small = line_matrix(&pos[..20]);
        let mut tree = VpTree::build(&MatrixSource(&m_small)).unwrap();
        assert_eq!((tree.built_len(), tree.overflow_len()), (20, 0));

        // A small append stays in overflow (zero distance calls)...
        let m_mid = line_matrix(&pos[..24]);
        tree.absorb(&MatrixSource(&m_mid)).unwrap();
        assert_eq!((tree.built_len(), tree.overflow_len()), (20, 4));
        assert_eq!(tree.rebuilds(), 0);
        for i in 0..24 {
            let (got, _) = tree.knn(&MatrixSource(&m_mid), i, 6).unwrap();
            assert_eq!(got, brute_knn(&m_mid, i, 6), "overflow i={i}");
        }

        // ...while a large one triggers the rebuild.
        let m_big = line_matrix(&pos);
        tree.absorb(&MatrixSource(&m_big)).unwrap();
        assert_eq!((tree.built_len(), tree.overflow_len()), (60, 0));
        assert_eq!(tree.rebuilds(), 1);
        for i in 0..60 {
            let (got, _) = tree.knn(&MatrixSource(&m_big), i, 6).unwrap();
            assert_eq!(got, brute_knn(&m_big, i, 6), "rebuilt i={i}");
        }
    }

    #[test]
    fn empty_and_singleton_sources() {
        let empty = DistanceMatrix::default();
        let tree = VpTree::build(&MatrixSource(&empty)).unwrap();
        assert!(tree.is_empty());

        let one = line_matrix(&[3.0]);
        let tree = VpTree::build(&MatrixSource(&one)).unwrap();
        let (got, c) = tree.knn(&MatrixSource(&one), 0, 5).unwrap();
        assert!(got.is_empty());
        assert_eq!(c.computed, 1, "the anchor's own node is still visited");
        let (got, _) = tree.range(&MatrixSource(&one), 0, 1.0).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_anchor_panics() {
        let m = line_matrix(&positions(5));
        let tree = VpTree::build(&MatrixSource(&m)).unwrap();
        let _ = tree.knn(&MatrixSource(&m), 9, 1);
    }
}
