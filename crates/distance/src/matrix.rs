//! Pairwise distance matrices for the mining algorithms.
//!
//! Computing the matrix is the O(n²) heart of the outsourced-mining
//! pipeline; [`DistanceMatrix::compute_parallel`] spreads the rows over
//! std scoped threads for the measures that are pure functions
//! (token, structure, access-area — result distance executes queries
//! against the engine and is driven through the sequential path). Both
//! paths produce bit-identical matrices; the `matrix_parallel` bench
//! quantifies the speed-up.

use crate::measure::{DistanceError, QueryDistance};
use dpe_sql::Query;

/// A symmetric n×n distance matrix with zero diagonal.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major full storage; symmetric by construction.
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all pairwise distances of `queries` under `measure`.
    pub fn compute<M: QueryDistance>(
        queries: &[Query],
        measure: &M,
    ) -> Result<DistanceMatrix, DistanceError> {
        let n = queries.len();
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let d = measure.distance(&queries[i], &queries[j])?;
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        Ok(DistanceMatrix { n, data })
    }

    /// Computes all pairwise distances in parallel over `threads` workers.
    ///
    /// Rows are dealt out round-robin (row `i` costs `n − i` distance
    /// calls, so striding balances the triangle). The result is
    /// bit-identical to [`DistanceMatrix::compute`]: every cell is produced
    /// by the same single `measure.distance` call, just on a different
    /// thread. Requires a `Sync` measure — the three log-only measures are;
    /// the result measure (which mutates an engine connection) is not, and
    /// keeps using the sequential path.
    pub fn compute_parallel<M: QueryDistance + Sync>(
        queries: &[Query],
        measure: &M,
        threads: usize,
    ) -> Result<DistanceMatrix, DistanceError> {
        let n = queries.len();
        let threads = threads.max(1).min(n.max(1));
        // Each worker fills disjoint rows of its own result buffer slice;
        // errors are collected per worker and the first one is reported.
        let mut rows: Vec<Vec<f64>> = vec![Vec::new(); n];
        let row_refs: Vec<(usize, &mut Vec<f64>)> = rows.iter_mut().enumerate().collect();
        let mut failure: Vec<Option<DistanceError>> = vec![None; threads];

        std::thread::scope(|scope| {
            let mut work: Vec<Vec<(usize, &mut Vec<f64>)>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (idx, item) in row_refs.into_iter().enumerate() {
                work[idx % threads].push(item);
            }
            for (chunk, fail_slot) in work.into_iter().zip(failure.iter_mut()) {
                scope.spawn(move || {
                    for (i, row) in chunk {
                        let mut filled = vec![0.0f64; n];
                        for (j, cell) in filled.iter_mut().enumerate().skip(i + 1) {
                            match measure.distance(&queries[i], &queries[j]) {
                                Ok(d) => *cell = d,
                                Err(e) => {
                                    *fail_slot = Some(e);
                                    return;
                                }
                            }
                        }
                        *row = filled;
                    }
                });
            }
        });

        if let Some(e) = failure.into_iter().flatten().next() {
            return Err(e);
        }

        // Assemble: copy each upper-triangle row and mirror it.
        let mut data = vec![0.0f64; n * n];
        for (i, row) in rows.iter().enumerate() {
            for j in i + 1..n {
                let d = row[j];
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        Ok(DistanceMatrix { n, data })
    }

    /// Builds a matrix from a symmetric closure over indices (for tests and
    /// synthetic mining inputs).
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> DistanceMatrix {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let d = f(i, j);
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        DistanceMatrix { n, data }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the empty matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between items `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// `true` iff the two matrices are bit-identical — the strongest form of
    /// the DPE check.
    pub fn identical(&self, other: &DistanceMatrix) -> bool {
        self.n == other.n
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Largest absolute difference to another matrix (diagnostics for the
    /// negative controls).
    pub fn max_abs_diff(&self, other: &DistanceMatrix) -> f64 {
        assert_eq!(self.n, other.n, "matrices must have equal size");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token_distance::TokenDistance;
    use dpe_sql::parse_query;

    #[test]
    fn symmetric_zero_diagonal() {
        let queries: Vec<_> = [
            "SELECT ra FROM t",
            "SELECT dec FROM t",
            "SELECT ra FROM u WHERE ra > 5",
        ]
        .iter()
        .map(|s| parse_query(s).unwrap())
        .collect();
        let m = DistanceMatrix::compute(&queries, &TokenDistance).unwrap();
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn identical_and_diff() {
        let a = DistanceMatrix::from_fn(3, |i, j| (i + j) as f64 / 10.0);
        let b = a.clone();
        assert!(a.identical(&b));
        let c = DistanceMatrix::from_fn(3, |i, j| (i + j) as f64 / 10.0 + 0.001);
        assert!(!a.identical(&c));
        assert!((a.max_abs_diff(&c) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix() {
        let m = DistanceMatrix::from_fn(0, |_, _| 0.0);
        assert!(m.is_empty());
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let queries: Vec<_> = (0..25)
            .map(|i| {
                parse_query(&format!(
                    "SELECT ra, a{} FROM t{} WHERE objid = {}",
                    i % 4,
                    i % 3,
                    i * 7
                ))
                .unwrap()
            })
            .collect();
        let seq = DistanceMatrix::compute(&queries, &TokenDistance).unwrap();
        for threads in [1, 2, 4, 7, 64] {
            let par = DistanceMatrix::compute_parallel(&queries, &TokenDistance, threads).unwrap();
            assert!(seq.identical(&par), "threads = {threads}");
        }
    }

    #[test]
    fn parallel_propagates_errors() {
        struct Failing;
        impl QueryDistance for Failing {
            fn distance(&self, _: &Query, _: &Query) -> Result<f64, DistanceError> {
                Err(DistanceError::MissingDomain("boom".into()))
            }
            fn name(&self) -> &'static str {
                "failing"
            }
        }
        let queries: Vec<_> = (0..6)
            .map(|i| parse_query(&format!("SELECT a FROM t WHERE b = {i}")).unwrap())
            .collect();
        let err = DistanceMatrix::compute_parallel(&queries, &Failing, 3).unwrap_err();
        assert!(matches!(err, DistanceError::MissingDomain(_)));
    }

    #[test]
    fn parallel_handles_degenerate_sizes() {
        let one = vec![parse_query("SELECT ra FROM t").unwrap()];
        let m = DistanceMatrix::compute_parallel(&one, &TokenDistance, 8).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(0, 0), 0.0);
        let none: Vec<dpe_sql::Query> = Vec::new();
        assert!(DistanceMatrix::compute_parallel(&none, &TokenDistance, 8)
            .unwrap()
            .is_empty());
    }
}
