//! Pairwise distance matrices for the mining algorithms.
//!
//! Computing the matrix is the O(n²) heart of the outsourced-mining
//! pipeline, so the engine here is built for scale:
//!
//! * **Packed storage.** A [`DistanceMatrix`] is symmetric with a zero
//!   diagonal, so only the strict upper triangle is materialized —
//!   `n(n−1)/2` cells instead of `n²`, halving memory. Cell `(i, j)` with
//!   `i < j` lives at `j(j−1)/2 + i`: all distances from item `j` to the
//!   items before it form one contiguous *row slice*, which is what makes
//!   both incremental growth and range-parallelism cheap.
//! * **Incremental growth.** Appending item `n` appends exactly `n` cells
//!   at the end of the packed buffer — no re-indexing of existing cells.
//!   [`DistanceMatrix::extend`] grows a matrix by `m` queries with exactly
//!   `m·n + m(m−1)/2` distance calls, and [`MatrixBuilder`] owns the query
//!   list so streaming workloads never recompute old pairs.
//! * **Range parallelism.** [`DistanceMatrix::compute_parallel`] deals
//!   contiguous row ranges (balanced by cell count, since row `j` costs `j`
//!   calls) to std scoped threads; each worker writes directly into its
//!   disjoint slice of the packed buffer — no per-row scratch allocations —
//!   and a shared [`AtomicBool`] stops all workers as soon as one records
//!   an error. Workers obtain their measure through a
//!   [`QueryDistanceFactory`], so even the result-distance measure (which
//!   executes queries against an engine) parallelizes: each worker gets its
//!   own connection via [`crate::result_distance::ResultDistanceFactory`].
//!
//! Both paths produce bit-identical matrices — every cell is the value of
//! the same single `measure.distance(&queries[i], &queries[j])` call with
//! `i < j`, just made on a different thread — and the `matrix_packed` /
//! `matrix_parallel` benches quantify the memory and wall-clock wins.

use crate::measure::{DistanceError, QueryDistance};
use dpe_sql::Query;
use std::cmp::Ordering;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};

/// Hands each parallel worker its own distance-measure instance.
///
/// Pure measures (token, structure, access-area) are `Sync` and shared by
/// reference — the blanket impl below makes any `QueryDistance + Sync`
/// value its own factory, so `compute_parallel(&log, &TokenDistance, 4)`
/// keeps working verbatim. Connection-oriented measures implement the
/// trait explicitly and open one connection per worker in
/// [`QueryDistanceFactory::connect`] — worker-private state like the
/// result measure's per-connection query cache is exactly what the factory
/// exists for, since such connections are `!Sync` by design (see
/// [`crate::result_distance::ResultDistanceFactory`]).
pub trait QueryDistanceFactory: Sync {
    /// The per-worker measure handed out by [`QueryDistanceFactory::connect`].
    type Connection<'a>: QueryDistance
    where
        Self: 'a;

    /// Opens a measure instance for one worker thread.
    fn connect(&self) -> Self::Connection<'_>;
}

impl<M: QueryDistance + Sync> QueryDistanceFactory for M {
    type Connection<'a>
        = &'a M
    where
        Self: 'a;

    fn connect(&self) -> &M {
        self
    }
}

/// A symmetric n×n distance matrix with zero diagonal, stored as the
/// strict upper triangle packed into `n(n−1)/2` cells.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// Packed triangle: cell `(i, j)` with `i < j` at `j(j−1)/2 + i`.
    data: Vec<f64>,
}

/// Number of packed cells for `n` items.
#[inline]
fn packed_cells(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

impl DistanceMatrix {
    /// The empty matrix (grow it with [`DistanceMatrix::extend`]).
    pub fn new() -> DistanceMatrix {
        DistanceMatrix {
            n: 0,
            data: Vec::new(),
        }
    }

    /// Computes all pairwise distances of `queries` under `measure`.
    pub fn compute<M: QueryDistance>(
        queries: &[Query],
        measure: &M,
    ) -> Result<DistanceMatrix, DistanceError> {
        let mut m = DistanceMatrix::new();
        m.extend(&[], queries, measure)?;
        Ok(m)
    }

    /// Appends `new` queries to a matrix currently covering `existing`,
    /// computing **only the new pairs**: exactly `m·n + m(m−1)/2` distance
    /// calls for `m` new queries on top of `n` existing ones. Existing
    /// cells are untouched (appending item `t` appends `t` cells at the end
    /// of the packed buffer), so the result is bit-identical to a full
    /// recompute over the concatenated list.
    ///
    /// On error the matrix is left exactly as it was. Panics when
    /// `existing.len()` differs from the matrix size.
    pub fn extend<M: QueryDistance>(
        &mut self,
        existing: &[Query],
        new: &[Query],
        measure: &M,
    ) -> Result<(), DistanceError> {
        assert_eq!(
            existing.len(),
            self.n,
            "extend: matrix covers {} queries but {} were passed as existing",
            self.n,
            existing.len()
        );
        let old_cells = self.data.len();
        self.data
            .reserve_exact(packed_cells(self.n + new.len()) - old_cells);
        for (a, q) in new.iter().enumerate() {
            for i in 0..self.n + a {
                let other = if i < self.n {
                    &existing[i]
                } else {
                    &new[i - self.n]
                };
                match measure.distance(other, q) {
                    Ok(d) => self.data.push(d),
                    Err(e) => {
                        self.data.truncate(old_cells);
                        return Err(e);
                    }
                }
            }
        }
        self.n += new.len();
        Ok(())
    }

    /// Computes all pairwise distances in parallel over `threads` workers.
    ///
    /// The packed rows `1..n` (row `j` = the `j` cells `(0..j, j)`, one
    /// contiguous slice) are dealt out as contiguous ranges balanced by
    /// cell count; each worker writes straight into its disjoint slice of
    /// the packed buffer, so the parallel path allocates **no** scratch
    /// beyond the result itself. A shared flag makes every worker stop at
    /// the next cell once any worker has recorded an error, and the first
    /// (lowest-range) error is reported.
    ///
    /// The result is bit-identical to [`DistanceMatrix::compute`]: every
    /// cell is produced by the same single `distance` call, just on a
    /// different thread. Workers draw their measure from the
    /// [`QueryDistanceFactory`] — pass a pure `Sync` measure directly, or a
    /// factory such as [`crate::result_distance::ResultDistanceFactory`]
    /// to give each worker its own engine connection.
    pub fn compute_parallel<F: QueryDistanceFactory>(
        queries: &[Query],
        factory: &F,
        threads: usize,
    ) -> Result<DistanceMatrix, DistanceError> {
        let n = queries.len();
        let cells = packed_cells(n);
        if cells == 0 {
            return Ok(DistanceMatrix {
                n,
                data: Vec::new(),
            });
        }
        let threads = threads.clamp(1, n - 1);
        let mut data = vec![0.0f64; cells];
        let stop = AtomicBool::new(false);
        let mut failures: Vec<Option<DistanceError>> = (0..threads).map(|_| None).collect();

        std::thread::scope(|scope| {
            let stop = &stop;
            let mut rest: &mut [f64] = &mut data;
            let mut row = 1usize;
            let mut offset = 0usize;
            for (w, fail_slot) in failures.iter_mut().enumerate() {
                // Grow the range row by row until it covers this worker's
                // share of the cells (row j costs j calls, so equal cell
                // counts balance the triangle).
                let target = (w + 1) * cells / threads;
                let (mut end_row, mut end_offset) = (row, offset);
                while end_row < n && end_offset < target {
                    end_offset += end_row;
                    end_row += 1;
                }
                if w == threads - 1 {
                    (end_row, end_offset) = (n, cells);
                }
                let (chunk, tail) = rest.split_at_mut(end_offset - offset);
                rest = tail;
                let rows = row..end_row;
                (row, offset) = (end_row, end_offset);
                scope.spawn(move || {
                    let measure = factory.connect();
                    let mut cell = chunk.iter_mut();
                    for j in rows {
                        for i in 0..j {
                            if stop.load(AtomicOrdering::Relaxed) {
                                return;
                            }
                            match measure.distance(&queries[i], &queries[j]) {
                                Ok(d) => *cell.next().expect("chunk sized to its rows") = d,
                                Err(e) => {
                                    *fail_slot = Some(e);
                                    stop.store(true, AtomicOrdering::Relaxed);
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });

        if let Some(e) = failures.into_iter().flatten().next() {
            return Err(e);
        }
        Ok(DistanceMatrix { n, data })
    }

    /// Builds a matrix from a symmetric closure over indices (for tests and
    /// synthetic mining inputs). `f` is called once per pair with `i < j`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> DistanceMatrix {
        let mut m = DistanceMatrix::new();
        m.extend_with(n, &mut f);
        m
    }

    /// Appends `m` items whose distances come from a closure over global
    /// indices (`f(i, t)` with `i < t`, `t` being the new item's index) —
    /// the infallible, measure-free analogue of [`DistanceMatrix::extend`]
    /// for streaming non-SQL workloads (e.g. graph corpora).
    pub fn extend_with(&mut self, m: usize, mut f: impl FnMut(usize, usize) -> f64) {
        let total = self.n + m;
        self.data
            .reserve_exact(packed_cells(total) - self.data.len());
        for t in self.n..total {
            for i in 0..t {
                self.data.push(f(i, t));
            }
        }
        self.n = total;
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the empty matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of stored cells — always exactly `n(n−1)/2`.
    pub fn packed_len(&self) -> usize {
        self.data.len()
    }

    /// Distance between items `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(
            i < self.n && j < self.n,
            "({i}, {j}) out of bounds (n={})",
            self.n
        );
        match i.cmp(&j) {
            Ordering::Equal => 0.0,
            Ordering::Less => self.data[j * (j - 1) / 2 + i],
            Ordering::Greater => self.data[i * (i - 1) / 2 + j],
        }
    }

    /// The packed strict-upper-triangle cells in storage order — cell
    /// `(i, j)` with `i < j` at `j(j−1)/2 + i`. This is the exact byte
    /// content a snapshot must carry for a restored matrix to stay
    /// bit-identical; round-trip with [`DistanceMatrix::from_packed`].
    pub fn as_packed(&self) -> &[f64] {
        &self.data
    }

    /// Rebuilds a matrix from `n` and its packed cells (the inverse of
    /// [`DistanceMatrix::as_packed`]). Returns `None` when `cells.len()`
    /// is not exactly `n(n−1)/2`, so a truncated snapshot can never
    /// produce a structurally inconsistent matrix.
    pub fn from_packed(n: usize, cells: Vec<f64>) -> Option<DistanceMatrix> {
        (cells.len() == packed_cells(n)).then_some(DistanceMatrix { n, data: cells })
    }

    /// `true` iff the two matrices are bit-identical — the strongest form of
    /// the DPE check.
    pub fn identical(&self, other: &DistanceMatrix) -> bool {
        self.n == other.n
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Largest absolute difference to another matrix (diagnostics for the
    /// negative controls).
    pub fn max_abs_diff(&self, other: &DistanceMatrix) -> f64 {
        assert_eq!(self.n, other.n, "matrices must have equal size");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Default for DistanceMatrix {
    fn default() -> Self {
        DistanceMatrix::new()
    }
}

/// Owns a query list together with its distance matrix and grows both
/// incrementally — the streaming front-end over
/// [`DistanceMatrix::extend`]. Pushing query number `n` costs exactly `n`
/// distance calls; nothing already computed is ever recomputed, so a
/// workload that trickles in pays the same total cost as one batch
/// computation.
#[derive(Debug, Clone, Default)]
pub struct MatrixBuilder {
    queries: Vec<Query>,
    matrix: DistanceMatrix,
}

impl MatrixBuilder {
    /// An empty builder.
    pub fn new() -> MatrixBuilder {
        MatrixBuilder::default()
    }

    /// Appends one query, computing its distances to every query already
    /// held. Returns the new query's index. On error the builder is
    /// unchanged.
    pub fn push<M: QueryDistance>(
        &mut self,
        query: Query,
        measure: &M,
    ) -> Result<usize, DistanceError> {
        self.matrix
            .extend(&self.queries, std::slice::from_ref(&query), measure)?;
        self.queries.push(query);
        Ok(self.queries.len() - 1)
    }

    /// Appends a batch of queries (only the new pairs are computed). On
    /// error the builder is unchanged and the caller keeps the batch, so a
    /// failed batch can be fixed up and retried.
    pub fn extend<M: QueryDistance>(
        &mut self,
        new: &[Query],
        measure: &M,
    ) -> Result<(), DistanceError> {
        self.matrix.extend(&self.queries, new, measure)?;
        self.queries.extend_from_slice(new);
        Ok(())
    }

    /// Queries held so far, in insertion order (matrix indices match).
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The matrix over all queries pushed so far.
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.matrix
    }

    /// Number of queries held.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` before the first push.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Consumes the builder, returning the query list and the matrix.
    pub fn into_parts(self) -> (Vec<Query>, DistanceMatrix) {
        (self.queries, self.matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token_distance::TokenDistance;
    use dpe_sql::parse_query;
    use std::cell::Cell;
    use std::sync::atomic::AtomicUsize;

    fn queries(n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| {
                parse_query(&format!(
                    "SELECT ra, a{} FROM t{} WHERE objid = {}",
                    i % 4,
                    i % 3,
                    i * 7
                ))
                .unwrap()
            })
            .collect()
    }

    /// Counts `distance` calls; single-threaded use only.
    struct Counting(Cell<usize>);
    impl QueryDistance for Counting {
        fn distance(&self, a: &Query, b: &Query) -> Result<f64, DistanceError> {
            self.0.set(self.0.get() + 1);
            TokenDistance.distance(a, b)
        }
        fn name(&self) -> &'static str {
            "counting"
        }
    }

    #[test]
    fn symmetric_zero_diagonal() {
        let queries: Vec<_> = [
            "SELECT ra FROM t",
            "SELECT dec FROM t",
            "SELECT ra FROM u WHERE ra > 5",
        ]
        .iter()
        .map(|s| parse_query(s).unwrap())
        .collect();
        let m = DistanceMatrix::compute(&queries, &TokenDistance).unwrap();
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn storage_is_packed_to_the_triangle() {
        for n in [0usize, 1, 2, 5, 33] {
            let m = DistanceMatrix::from_fn(n, |i, j| (i + j) as f64);
            assert_eq!(m.packed_len(), n * n.saturating_sub(1) / 2, "n = {n}");
        }
        let m = DistanceMatrix::compute(&queries(20), &TokenDistance).unwrap();
        assert_eq!(m.packed_len(), 20 * 19 / 2);
    }

    #[test]
    fn identical_and_diff() {
        let a = DistanceMatrix::from_fn(3, |i, j| (i + j) as f64 / 10.0);
        let b = a.clone();
        assert!(a.identical(&b));
        let c = DistanceMatrix::from_fn(3, |i, j| (i + j) as f64 / 10.0 + 0.001);
        assert!(!a.identical(&c));
        assert!((a.max_abs_diff(&c) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix() {
        let m = DistanceMatrix::from_fn(0, |_, _| 0.0);
        assert!(m.is_empty());
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let queries = queries(25);
        let seq = DistanceMatrix::compute(&queries, &TokenDistance).unwrap();
        for threads in [1, 2, 4, 7, 64] {
            let par = DistanceMatrix::compute_parallel(&queries, &TokenDistance, threads).unwrap();
            assert!(seq.identical(&par), "threads = {threads}");
        }
    }

    #[test]
    fn parallel_propagates_errors() {
        struct Failing;
        impl QueryDistance for Failing {
            fn distance(&self, _: &Query, _: &Query) -> Result<f64, DistanceError> {
                Err(DistanceError::MissingDomain("boom".into()))
            }
            fn name(&self) -> &'static str {
                "failing"
            }
        }
        let queries = queries(6);
        let err = DistanceMatrix::compute_parallel(&queries, &Failing, 3).unwrap_err();
        assert!(matches!(err, DistanceError::MissingDomain(_)));
    }

    #[test]
    fn parallel_stops_early_after_first_error() {
        /// Fails on the very first pair (0, 1); every other call sleeps a
        /// little so the stop flag always wins the race by a wide margin.
        struct FailFirst {
            first: String,
            second: String,
            calls: AtomicUsize,
        }
        impl QueryDistance for FailFirst {
            fn distance(&self, a: &Query, b: &Query) -> Result<f64, DistanceError> {
                self.calls.fetch_add(1, AtomicOrdering::Relaxed);
                if a.to_string() == self.first && b.to_string() == self.second {
                    return Err(DistanceError::MissingDomain("first pair".into()));
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
                Ok(0.5)
            }
            fn name(&self) -> &'static str {
                "fail-first"
            }
        }

        let queries = queries(40);
        let total_pairs = 40 * 39 / 2;
        let measure = FailFirst {
            first: queries[0].to_string(),
            second: queries[1].to_string(),
            calls: AtomicUsize::new(0),
        };
        let err = DistanceMatrix::compute_parallel(&queries, &measure, 4).unwrap_err();
        assert!(matches!(err, DistanceError::MissingDomain(_)));
        let calls = measure.calls.load(AtomicOrdering::Relaxed);
        // Pair (0, 1) is the first cell of the first worker's range, so the
        // flag is raised almost immediately; the other workers abandon
        // their ranges at the next cell instead of finishing all 780 pairs.
        assert!(
            calls < 100,
            "expected an early exit, measured {calls}/{total_pairs} calls"
        );
    }

    #[test]
    fn parallel_handles_degenerate_sizes() {
        let one = vec![parse_query("SELECT ra FROM t").unwrap()];
        let m = DistanceMatrix::compute_parallel(&one, &TokenDistance, 8).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(0, 0), 0.0);
        let none: Vec<dpe_sql::Query> = Vec::new();
        assert!(DistanceMatrix::compute_parallel(&none, &TokenDistance, 8)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn extend_matches_batch_compute_bitwise() {
        let all = queries(17);
        let full = DistanceMatrix::compute(&all, &TokenDistance).unwrap();
        for split in [0usize, 1, 8, 16, 17] {
            let (head, tail) = all.split_at(split);
            let mut m = DistanceMatrix::compute(head, &TokenDistance).unwrap();
            m.extend(head, tail, &TokenDistance).unwrap();
            assert!(full.identical(&m), "split = {split}");
        }
    }

    #[test]
    fn extend_computes_exactly_the_new_pairs() {
        let all = queries(12);
        let (head, tail) = all.split_at(8); // n = 8, m = 4
        let mut m = DistanceMatrix::compute(head, &TokenDistance).unwrap();
        let counting = Counting(Cell::new(0));
        m.extend(head, tail, &counting).unwrap();
        assert_eq!(counting.0.get(), 4 * 8 + 4 * 3 / 2, "m·n + m(m−1)/2");
        assert_eq!(m.len(), 12);
    }

    #[test]
    fn extend_rolls_back_on_error() {
        struct FailOn(String);
        impl QueryDistance for FailOn {
            fn distance(&self, a: &Query, b: &Query) -> Result<f64, DistanceError> {
                if a.to_string() == self.0 || b.to_string() == self.0 {
                    return Err(DistanceError::MissingDomain("poison".into()));
                }
                TokenDistance.distance(a, b)
            }
            fn name(&self) -> &'static str {
                "fail-on"
            }
        }
        let all = queries(10);
        let (head, tail) = all.split_at(7);
        let mut m = DistanceMatrix::compute(head, &TokenDistance).unwrap();
        let before = m.clone();
        // Poison the *last* appended query so earlier rows already pushed
        // must be rolled back too.
        let err = m
            .extend(head, tail, &FailOn(tail[2].to_string()))
            .unwrap_err();
        assert!(matches!(err, DistanceError::MissingDomain(_)));
        assert!(
            m.identical(&before),
            "failed extend must leave the matrix untouched"
        );
        assert_eq!(m.packed_len(), before.packed_len());
    }

    #[test]
    #[should_panic(expected = "extend: matrix covers")]
    fn extend_rejects_mismatched_existing() {
        let all = queries(5);
        let mut m = DistanceMatrix::compute(&all[..3], &TokenDistance).unwrap();
        m.extend(&all[..2], &all[3..], &TokenDistance).unwrap();
    }

    #[test]
    fn extend_with_matches_from_fn() {
        let f = |i: usize, j: usize| ((i * 31 + j * 7) % 13) as f64 / 13.0;
        let full = DistanceMatrix::from_fn(14, f);
        let mut m = DistanceMatrix::from_fn(9, f);
        m.extend_with(5, f);
        assert!(full.identical(&m));
    }

    #[test]
    fn packed_round_trip_is_bit_identical() {
        let m = DistanceMatrix::compute(&queries(11), &TokenDistance).unwrap();
        let cells = m.as_packed().to_vec();
        let back = DistanceMatrix::from_packed(11, cells).unwrap();
        assert!(m.identical(&back));
        // Wrong cell count for the claimed n is rejected, not misindexed.
        assert!(DistanceMatrix::from_packed(11, m.as_packed()[1..].to_vec()).is_none());
        assert!(DistanceMatrix::from_packed(0, Vec::new()).is_some());
    }

    #[test]
    fn builder_grows_incrementally_and_matches_batch() {
        let all = queries(13);
        let full = DistanceMatrix::compute(&all, &TokenDistance).unwrap();

        let mut b = MatrixBuilder::new();
        assert!(b.is_empty());
        for q in &all[..5] {
            b.push(q.clone(), &TokenDistance).unwrap();
        }
        b.extend(&all[5..], &TokenDistance).unwrap();
        assert_eq!(b.len(), 13);
        assert_eq!(b.queries(), &all[..]);
        assert!(b.matrix().identical(&full));

        let (qs, m) = b.into_parts();
        assert_eq!(qs.len(), 13);
        assert!(m.identical(&full));
    }

    #[test]
    fn builder_push_costs_n_calls() {
        let all = queries(7);
        let mut b = MatrixBuilder::new();
        let counting = Counting(Cell::new(0));
        for (i, q) in all.iter().enumerate() {
            let before = counting.0.get();
            let idx = b.push(q.clone(), &counting).unwrap();
            assert_eq!(idx, i);
            assert_eq!(
                counting.0.get() - before,
                i,
                "push #{i} must cost {i} calls"
            );
        }
    }
}
