//! Query-access-area distance (the paper's Definition 5, after Nguyen et
//! al. \[16\]).
//!
//! The access area of query `Q` regarding attribute `A` is the part of `A`'s
//! domain accessed by `Q`; the per-attribute score is
//!
//! ```text
//! δ_A(Q1, Q2) = 0  if access_A(Q1) = access_A(Q2)
//!             = x  if the areas overlap           (default x = 0.5)
//!             = 1  otherwise (disjoint)
//! ```
//!
//! and `d_AE` averages δ over all attributes accessed by either query.
//!
//! ## Why intervals carry open/closed flags
//!
//! δ only asks *equal / overlapping / disjoint* — predicates that must
//! survive encryption of the constants with an OPE scheme, i.e. a strictly
//! monotone endpoint map. Integer reasoning like "`A > 5` equals `A ≥ 6`"
//! or "`[1,2] ∪ [3,5]` merges to `[1,5]`" is **not** preserved by monotone
//! maps (the encryption of 6 is not "one past" the encryption of 5). So the
//! interval algebra here works over a continuous ordered domain: `A > 5`
//! stays the half-open `(5, hi]`, and adjacent integer intervals never
//! merge. Every union / intersection / complement / comparison below
//! depends only on endpoint *order* and openness — both invariant under
//! OPE — which is exactly what makes access-area equivalence achievable
//! with the classes in Table I row 4.

use crate::measure::{DistanceError, QueryDistance};
use dpe_sql::{analysis, ColumnRef, CompareOp, Expr, Literal, Query};
use std::collections::{BTreeMap, BTreeSet};

/// One endpoint of an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// Coordinate.
    pub value: i64,
    /// `true` when the endpoint itself is excluded.
    pub open: bool,
}

/// A non-empty interval over an ordered domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    lo: Endpoint,
    hi: Endpoint,
}

impl Interval {
    /// Closed interval `[lo, hi]`; `None` when empty (`lo > hi`).
    pub fn closed(lo: i64, hi: i64) -> Option<Interval> {
        Interval::new(
            Endpoint {
                value: lo,
                open: false,
            },
            Endpoint {
                value: hi,
                open: false,
            },
        )
    }

    /// General constructor; `None` when the interval is empty.
    pub fn new(lo: Endpoint, hi: Endpoint) -> Option<Interval> {
        let empty = lo.value > hi.value || (lo.value == hi.value && (lo.open || hi.open));
        if empty {
            None
        } else {
            Some(Interval { lo, hi })
        }
    }

    fn overlaps(&self, other: &Interval) -> bool {
        // a.lo ≤ b.hi and b.lo ≤ a.hi, with openness breaking ties.
        let below = |a: &Endpoint, b: &Endpoint| {
            a.value < b.value || (a.value == b.value && !a.open && !b.open)
        };
        below(&self.lo, &other.hi) && below(&other.lo, &self.hi)
    }

    /// `true` when `self ∪ other` is one contiguous interval (overlap or
    /// touching with at least one closed side).
    fn touches(&self, other: &Interval) -> bool {
        if self.overlaps(other) {
            return true;
        }
        let touch = |a: &Endpoint, b: &Endpoint| a.value == b.value && !(a.open && b.open);
        touch(&self.hi, &other.lo) || touch(&other.hi, &self.lo)
    }
}

/// A normalized finite union of disjoint, non-touching intervals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntervalSet {
    intervals: Vec<Interval>, // sorted by lo.value, pairwise non-touching
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> Self {
        IntervalSet::default()
    }

    /// A single interval (or empty).
    pub fn from_interval(i: Option<Interval>) -> Self {
        IntervalSet {
            intervals: i.into_iter().collect(),
        }
    }

    /// `true` iff no points.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The member intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    fn normalize(mut raw: Vec<Interval>) -> IntervalSet {
        raw.sort_by(|a, b| {
            a.lo.value
                .cmp(&b.lo.value)
                .then_with(|| a.lo.open.cmp(&b.lo.open)) // closed before open
        });
        let mut out: Vec<Interval> = Vec::with_capacity(raw.len());
        for next in raw {
            match out.last_mut() {
                Some(last) if last.touches(&next) => {
                    // Merge: keep the smaller lo (last's, by sort), extend hi.
                    let hi = max_endpoint_hi(last.hi, next.hi);
                    last.hi = hi;
                }
                _ => out.push(next),
            }
        }
        IntervalSet { intervals: out }
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut raw = self.intervals.clone();
        raw.extend(other.intervals.iter().copied());
        IntervalSet::normalize(raw)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut raw = Vec::new();
        for a in &self.intervals {
            for b in &other.intervals {
                if !a.overlaps(b) {
                    continue;
                }
                let lo = max_endpoint_lo(a.lo, b.lo);
                let hi = min_endpoint_hi(a.hi, b.hi);
                if let Some(i) = Interval::new(lo, hi) {
                    raw.push(i);
                }
            }
        }
        IntervalSet::normalize(raw)
    }

    /// Complement within the closed domain `[lo, hi]`.
    pub fn complement(&self, domain_lo: i64, domain_hi: i64) -> IntervalSet {
        let mut raw = Vec::new();
        let mut cursor = Endpoint {
            value: domain_lo,
            open: false,
        };
        for iv in &self.intervals {
            // Gap before iv: [cursor, flip(iv.lo)).
            let gap_hi = Endpoint {
                value: iv.lo.value,
                open: !iv.lo.open,
            };
            if let Some(g) = Interval::new(cursor, gap_hi) {
                raw.push(g);
            }
            cursor = Endpoint {
                value: iv.hi.value,
                open: !iv.hi.open,
            };
        }
        let end = Endpoint {
            value: domain_hi,
            open: false,
        };
        if let Some(g) = Interval::new(cursor, end) {
            raw.push(g);
        }
        IntervalSet::normalize(raw)
    }

    /// `true` when the sets share at least one point.
    pub fn overlaps(&self, other: &IntervalSet) -> bool {
        self.intervals
            .iter()
            .any(|a| other.intervals.iter().any(|b| a.overlaps(b)))
    }
}

fn max_endpoint_lo(a: Endpoint, b: Endpoint) -> Endpoint {
    // For lower bounds: larger value wins; same value → open (stricter) wins.
    match a.value.cmp(&b.value) {
        std::cmp::Ordering::Greater => a,
        std::cmp::Ordering::Less => b,
        std::cmp::Ordering::Equal => {
            if a.open {
                a
            } else {
                b
            }
        }
    }
}

fn min_endpoint_hi(a: Endpoint, b: Endpoint) -> Endpoint {
    match a.value.cmp(&b.value) {
        std::cmp::Ordering::Less => a,
        std::cmp::Ordering::Greater => b,
        std::cmp::Ordering::Equal => {
            if a.open {
                a
            } else {
                b
            }
        }
    }
}

fn max_endpoint_hi(a: Endpoint, b: Endpoint) -> Endpoint {
    match a.value.cmp(&b.value) {
        std::cmp::Ordering::Greater => a,
        std::cmp::Ordering::Less => b,
        std::cmp::Ordering::Equal => {
            if a.open {
                b
            } else {
                a
            }
        }
    }
}

/// The domain of one attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttributeDomain {
    /// Ordered integer domain `[lo, hi]` (fixed-point reals included).
    Int {
        /// Minimum.
        lo: i64,
        /// Maximum.
        hi: i64,
    },
    /// Categorical domain (string values compared by equality only).
    Categorical(BTreeSet<String>),
}

/// The *Domains* shared information of Table I: attribute name → domain.
///
/// Keys are unqualified attribute names; the synthetic workload keeps column
/// names globally unique (as SkyServer's schema effectively does), which the
/// KIT-DPE layer checks when building encrypted catalogs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DomainCatalog {
    entries: BTreeMap<String, AttributeDomain>,
}

impl DomainCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        DomainCatalog::default()
    }

    /// Registers an attribute domain.
    pub fn insert(&mut self, attribute: impl Into<String>, domain: AttributeDomain) {
        self.entries.insert(attribute.into(), domain);
    }

    /// Looks up an attribute.
    pub fn get(&self, attribute: &str) -> Option<&AttributeDomain> {
        self.entries.get(attribute)
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &AttributeDomain)> {
        self.entries.iter()
    }
}

/// The access area of a query regarding one attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessArea {
    /// Region of an ordered domain.
    Intervals(IntervalSet),
    /// Subset of a categorical domain.
    Categories(BTreeSet<String>),
}

impl AccessArea {
    fn is_empty(&self) -> bool {
        match self {
            AccessArea::Intervals(s) => s.is_empty(),
            AccessArea::Categories(c) => c.is_empty(),
        }
    }

    fn overlaps(&self, other: &AccessArea) -> bool {
        match (self, other) {
            (AccessArea::Intervals(a), AccessArea::Intervals(b)) => a.overlaps(b),
            (AccessArea::Categories(a), AccessArea::Categories(b)) => {
                a.intersection(b).next().is_some()
            }
            // Mixed kinds never arise for a well-typed attribute.
            _ => false,
        }
    }
}

/// Per-attribute predicate region during WHERE analysis: either the
/// predicate does not mention the attribute (`Unconstrained`) or it
/// restricts it to a region.
enum Region {
    Unconstrained,
    Area(AccessArea),
}

/// Computes `access_A(Q)`: `None` when `Q` does not access `A` at all.
pub fn access_area(
    query: &Query,
    attribute: &str,
    catalog: &DomainCatalog,
) -> Result<Option<AccessArea>, DistanceError> {
    if !analysis::attributes(query).contains(attribute) {
        return Ok(None);
    }
    let domain = catalog
        .get(attribute)
        .ok_or_else(|| DistanceError::MissingDomain(attribute.to_string()))?;

    let full = full_area(domain);
    let area = match &query.where_clause {
        None => full,
        Some(expr) => match eval_region(expr, attribute, domain)? {
            Region::Unconstrained => full,
            Region::Area(a) => a,
        },
    };
    Ok(Some(area))
}

fn full_area(domain: &AttributeDomain) -> AccessArea {
    match domain {
        AttributeDomain::Int { lo, hi } => {
            AccessArea::Intervals(IntervalSet::from_interval(Interval::closed(*lo, *hi)))
        }
        AttributeDomain::Categorical(cats) => AccessArea::Categories(cats.clone()),
    }
}

fn empty_area(domain: &AttributeDomain) -> AccessArea {
    match domain {
        AttributeDomain::Int { .. } => AccessArea::Intervals(IntervalSet::empty()),
        AttributeDomain::Categorical(_) => AccessArea::Categories(BTreeSet::new()),
    }
}

fn refers_to(col: &ColumnRef, attribute: &str) -> bool {
    col.column == attribute
}

fn eval_region(
    expr: &Expr,
    attribute: &str,
    domain: &AttributeDomain,
) -> Result<Region, DistanceError> {
    Ok(match expr {
        Expr::Comparison { col, op, value } if refers_to(col, attribute) => {
            Region::Area(comparison_area(*op, value, domain))
        }
        Expr::Between { col, low, high } if refers_to(col, attribute) => {
            match (domain, low, high) {
                (AttributeDomain::Int { lo, hi }, Literal::Int(a), Literal::Int(b)) => {
                    let clamp = IntervalSet::from_interval(Interval::closed(*lo, *hi));
                    let set = IntervalSet::from_interval(Interval::closed(*a, *b));
                    Region::Area(AccessArea::Intervals(set.intersect(&clamp)))
                }
                _ => Region::Area(empty_area(domain)),
            }
        }
        Expr::InList { col, list } if refers_to(col, attribute) => {
            let mut acc = empty_area(domain);
            for lit in list {
                let one = comparison_area(CompareOp::Eq, lit, domain);
                acc = union_area(&acc, &one);
            }
            Region::Area(acc)
        }
        // IS NULL selects no point of the value domain; IS NOT NULL all.
        Expr::IsNull { col, negated } if refers_to(col, attribute) => Region::Area(if *negated {
            full_area(domain)
        } else {
            empty_area(domain)
        }),
        Expr::And(a, b) => {
            match (
                eval_region(a, attribute, domain)?,
                eval_region(b, attribute, domain)?,
            ) {
                (Region::Unconstrained, r) | (r, Region::Unconstrained) => r,
                (Region::Area(x), Region::Area(y)) => Region::Area(intersect_area(&x, &y)),
            }
        }
        Expr::Or(a, b) => {
            match (
                eval_region(a, attribute, domain)?,
                eval_region(b, attribute, domain)?,
            ) {
                // `pred(A) OR pred(B)` does not bound A.
                (Region::Unconstrained, _) | (_, Region::Unconstrained) => Region::Unconstrained,
                (Region::Area(x), Region::Area(y)) => Region::Area(union_area(&x, &y)),
            }
        }
        Expr::Not(inner) => match eval_region(inner, attribute, domain)? {
            Region::Unconstrained => Region::Unconstrained,
            Region::Area(a) => Region::Area(complement_area(&a, domain)),
        },
        // Predicates on other attributes (incl. ColumnEq) impose no bound.
        _ => Region::Unconstrained,
    })
}

fn comparison_area(op: CompareOp, value: &Literal, domain: &AttributeDomain) -> AccessArea {
    match (domain, value) {
        (AttributeDomain::Int { lo, hi }, Literal::Int(c)) => {
            let c = *c;
            let (lo, hi) = (*lo, *hi);
            let clamp = IntervalSet::from_interval(Interval::closed(lo, hi));
            let set = match op {
                CompareOp::Eq => IntervalSet::from_interval(Interval::closed(c, c)),
                CompareOp::Ne => {
                    IntervalSet::from_interval(Interval::closed(c, c)).complement(lo, hi)
                }
                CompareOp::Lt => IntervalSet::from_interval(Interval::new(
                    Endpoint {
                        value: lo,
                        open: false,
                    },
                    Endpoint {
                        value: c,
                        open: true,
                    },
                )),
                CompareOp::Le => IntervalSet::from_interval(Interval::closed(lo, c)),
                CompareOp::Gt => IntervalSet::from_interval(Interval::new(
                    Endpoint {
                        value: c,
                        open: true,
                    },
                    Endpoint {
                        value: hi,
                        open: false,
                    },
                )),
                CompareOp::Ge => IntervalSet::from_interval(Interval::closed(c, hi)),
            };
            AccessArea::Intervals(set.intersect(&clamp))
        }
        (AttributeDomain::Categorical(cats), Literal::Str(s)) => {
            let mut selected = BTreeSet::new();
            match op {
                CompareOp::Eq if cats.contains(s) => {
                    selected.insert(s.clone());
                }
                CompareOp::Ne => {
                    selected = cats.iter().filter(|c| *c != s).cloned().collect();
                }
                // Ordered comparisons on categorical attributes: not part of
                // the workload; conservatively select nothing.
                _ => {}
            }
            AccessArea::Categories(selected)
        }
        // NULL comparisons and type mismatches select nothing.
        _ => empty_area(domain),
    }
}

fn union_area(a: &AccessArea, b: &AccessArea) -> AccessArea {
    match (a, b) {
        (AccessArea::Intervals(x), AccessArea::Intervals(y)) => AccessArea::Intervals(x.union(y)),
        (AccessArea::Categories(x), AccessArea::Categories(y)) => {
            AccessArea::Categories(x.union(y).cloned().collect())
        }
        (x, y) => {
            if x.is_empty() {
                y.clone()
            } else {
                x.clone()
            }
        }
    }
}

fn intersect_area(a: &AccessArea, b: &AccessArea) -> AccessArea {
    match (a, b) {
        (AccessArea::Intervals(x), AccessArea::Intervals(y)) => {
            AccessArea::Intervals(x.intersect(y))
        }
        (AccessArea::Categories(x), AccessArea::Categories(y)) => {
            AccessArea::Categories(x.intersection(y).cloned().collect())
        }
        (AccessArea::Intervals(_), _) => AccessArea::Intervals(IntervalSet::empty()),
        (AccessArea::Categories(_), _) => AccessArea::Categories(BTreeSet::new()),
    }
}

fn complement_area(a: &AccessArea, domain: &AttributeDomain) -> AccessArea {
    match (a, domain) {
        (AccessArea::Intervals(s), AttributeDomain::Int { lo, hi }) => {
            AccessArea::Intervals(s.complement(*lo, *hi))
        }
        (AccessArea::Categories(sel), AttributeDomain::Categorical(cats)) => {
            AccessArea::Categories(cats.difference(sel).cloned().collect())
        }
        _ => empty_area(domain),
    }
}

/// The access-area distance measure (Definition 5).
pub struct AccessAreaDistance {
    catalog: DomainCatalog,
    /// The overlap score `x ∈ (0, 1)`, default 0.5.
    x: f64,
}

impl AccessAreaDistance {
    /// Builds the measure with the paper's default `x = 0.5`.
    pub fn new(catalog: DomainCatalog) -> Self {
        AccessAreaDistance { catalog, x: 0.5 }
    }

    /// Overrides the overlap score. Panics unless `0 < x < 1`.
    pub fn with_x(catalog: DomainCatalog, x: f64) -> Self {
        assert!(x > 0.0 && x < 1.0, "x must lie in (0, 1)");
        AccessAreaDistance { catalog, x }
    }

    /// δ_A for a pair of queries.
    fn delta(&self, q1: &Query, q2: &Query, attribute: &str) -> Result<f64, DistanceError> {
        let a1 = access_area(q1, attribute, &self.catalog)?;
        let a2 = access_area(q2, attribute, &self.catalog)?;
        // "Not accessed" compares as the empty area.
        let e1;
        let e2;
        let (r1, r2) = match (&a1, &a2) {
            (Some(x), Some(y)) => (x, y),
            (Some(x), None) => {
                e2 = empty_like(x);
                (x, &e2)
            }
            (None, Some(y)) => {
                e1 = empty_like(y);
                (&e1, y)
            }
            (None, None) => return Ok(0.0),
        };
        Ok(if r1 == r2 {
            0.0
        } else if r1.overlaps(r2) {
            self.x
        } else {
            1.0
        })
    }
}

fn empty_like(a: &AccessArea) -> AccessArea {
    match a {
        AccessArea::Intervals(_) => AccessArea::Intervals(IntervalSet::empty()),
        AccessArea::Categories(_) => AccessArea::Categories(BTreeSet::new()),
    }
}

impl QueryDistance for AccessAreaDistance {
    fn distance(&self, a: &Query, b: &Query) -> Result<f64, DistanceError> {
        let mut attrs = analysis::attributes(a);
        attrs.extend(analysis::attributes(b));
        if attrs.is_empty() {
            return Ok(0.0);
        }
        let mut sum = 0.0;
        for attr in &attrs {
            sum += self.delta(a, b, attr)?;
        }
        Ok(sum / attrs.len() as f64)
    }

    fn name(&self) -> &'static str {
        "access-area"
    }

    /// Explicitly **not** a metric: each pair averages δ over the *union
    /// of that pair's* accessed attributes, so the normalizing denominator
    /// changes from pair to pair and the triangle inequality does not
    /// hold in general. Index pruning over this measure would be unsound,
    /// which is exactly what this `false` prevents.
    fn is_metric(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_sql::parse_query;

    fn catalog() -> DomainCatalog {
        let mut c = DomainCatalog::new();
        c.insert("ra", AttributeDomain::Int { lo: 0, hi: 360 });
        c.insert("dec", AttributeDomain::Int { lo: -90, hi: 90 });
        c.insert(
            "class",
            AttributeDomain::Categorical(
                ["STAR", "GALAXY", "QSO"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            ),
        );
        c
    }

    fn area(sql: &str, attr: &str) -> Option<AccessArea> {
        access_area(&parse_query(sql).unwrap(), attr, &catalog()).unwrap()
    }

    fn d(a: &str, b: &str) -> f64 {
        AccessAreaDistance::new(catalog())
            .distance(&parse_query(a).unwrap(), &parse_query(b).unwrap())
            .unwrap()
    }

    // ---- interval algebra ----

    #[test]
    fn interval_empty_detection() {
        assert!(Interval::closed(5, 4).is_none());
        assert!(Interval::closed(5, 5).is_some());
        assert!(Interval::new(
            Endpoint {
                value: 5,
                open: true
            },
            Endpoint {
                value: 5,
                open: false
            }
        )
        .is_none());
    }

    #[test]
    fn open_adjacent_intervals_do_not_merge() {
        // (1,2) ∪ (2,3): the point 2 is missing → two components.
        let a = IntervalSet::from_interval(Interval::new(
            Endpoint {
                value: 1,
                open: true,
            },
            Endpoint {
                value: 2,
                open: true,
            },
        ));
        let b = IntervalSet::from_interval(Interval::new(
            Endpoint {
                value: 2,
                open: true,
            },
            Endpoint {
                value: 3,
                open: true,
            },
        ));
        assert_eq!(a.union(&b).intervals().len(), 2);
    }

    #[test]
    fn closed_touching_intervals_merge() {
        // [1,2] ∪ (2,3] = [1,3].
        let a = IntervalSet::from_interval(Interval::closed(1, 2));
        let b = IntervalSet::from_interval(Interval::new(
            Endpoint {
                value: 2,
                open: true,
            },
            Endpoint {
                value: 3,
                open: false,
            },
        ));
        let u = a.union(&b);
        assert_eq!(u.intervals().len(), 1);
        assert_eq!(u, IntervalSet::from_interval(Interval::closed(1, 3)));
    }

    #[test]
    fn integer_adjacency_does_not_merge() {
        // [1,2] ∪ [3,5] stays two components over a continuous domain —
        // deliberately, for OPE invariance.
        let a = IntervalSet::from_interval(Interval::closed(1, 2));
        let b = IntervalSet::from_interval(Interval::closed(3, 5));
        assert_eq!(a.union(&b).intervals().len(), 2);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn complement_roundtrip() {
        let s = IntervalSet::from_interval(Interval::closed(10, 20));
        let c = s.complement(0, 100);
        assert_eq!(c.intervals().len(), 2);
        assert!(!s.overlaps(&c));
        assert_eq!(c.complement(0, 100), s);
    }

    #[test]
    fn intersect_open_closed_boundary() {
        // (5, 10] ∩ [5, 5] = ∅ — the open bound excludes 5.
        let gt5 = IntervalSet::from_interval(Interval::new(
            Endpoint {
                value: 5,
                open: true,
            },
            Endpoint {
                value: 10,
                open: false,
            },
        ));
        let eq5 = IntervalSet::from_interval(Interval::closed(5, 5));
        assert!(gt5.intersect(&eq5).is_empty());
        assert!(!gt5.overlaps(&eq5));
    }

    // ---- access-area extraction ----

    #[test]
    fn unaccessed_attribute_is_none() {
        assert_eq!(area("SELECT ra FROM photoobj", "dec"), None);
    }

    #[test]
    fn selected_without_predicate_is_full_domain() {
        let a = area("SELECT ra FROM photoobj", "ra").unwrap();
        assert_eq!(
            a,
            AccessArea::Intervals(IntervalSet::from_interval(Interval::closed(0, 360)))
        );
    }

    #[test]
    fn range_predicate_extracts_half_open() {
        let a = area("SELECT ra FROM photoobj WHERE ra > 100", "ra").unwrap();
        let expect = AccessArea::Intervals(IntervalSet::from_interval(Interval::new(
            Endpoint {
                value: 100,
                open: true,
            },
            Endpoint {
                value: 360,
                open: false,
            },
        )));
        assert_eq!(a, expect);
    }

    #[test]
    fn and_intersects_or_unions() {
        let a = area("SELECT ra FROM t WHERE ra > 100 AND ra <= 200", "ra").unwrap();
        let expect = AccessArea::Intervals(IntervalSet::from_interval(Interval::new(
            Endpoint {
                value: 100,
                open: true,
            },
            Endpoint {
                value: 200,
                open: false,
            },
        )));
        assert_eq!(a, expect);

        let a = area("SELECT ra FROM t WHERE ra < 10 OR ra > 350", "ra").unwrap();
        if let AccessArea::Intervals(s) = &a {
            assert_eq!(s.intervals().len(), 2);
        } else {
            panic!("expected intervals");
        }
    }

    #[test]
    fn or_with_other_attribute_unconstrains() {
        // `ra > 100 OR dec > 0` puts no bound on ra.
        let a = area("SELECT ra FROM t WHERE ra > 100 OR dec > 0", "ra").unwrap();
        assert_eq!(
            a,
            AccessArea::Intervals(IntervalSet::from_interval(Interval::closed(0, 360)))
        );
    }

    #[test]
    fn not_complements() {
        let a = area("SELECT ra FROM t WHERE NOT ra = 100", "ra").unwrap();
        if let AccessArea::Intervals(s) = &a {
            assert_eq!(s.intervals().len(), 2); // [0,100) ∪ (100,360]
        } else {
            panic!();
        }
    }

    #[test]
    fn categorical_areas() {
        let a = area("SELECT ra FROM t WHERE class = 'STAR'", "class").unwrap();
        assert_eq!(
            a,
            AccessArea::Categories(["STAR".to_string()].into_iter().collect())
        );
        let a = area("SELECT ra FROM t WHERE class IN ('STAR', 'QSO')", "class").unwrap();
        assert_eq!(
            a,
            AccessArea::Categories(
                ["STAR".to_string(), "QSO".to_string()]
                    .into_iter()
                    .collect()
            )
        );
        let a = area("SELECT ra FROM t WHERE class != 'STAR'", "class").unwrap();
        assert_eq!(
            a,
            AccessArea::Categories(
                ["GALAXY".to_string(), "QSO".to_string()]
                    .into_iter()
                    .collect()
            )
        );
    }

    #[test]
    fn missing_domain_is_an_error() {
        let q = parse_query("SELECT unknown_attr FROM t WHERE unknown_attr > 1").unwrap();
        assert!(matches!(
            access_area(&q, "unknown_attr", &catalog()),
            Err(DistanceError::MissingDomain(_))
        ));
    }

    // ---- the distance itself ----

    #[test]
    fn identical_queries_zero() {
        assert_eq!(
            d(
                "SELECT ra FROM t WHERE ra > 10",
                "SELECT ra FROM t WHERE ra > 10"
            ),
            0.0
        );
    }

    #[test]
    fn equal_areas_different_text_zero() {
        // `ra > 10` and `NOT ra <= 10` describe the same region.
        assert_eq!(
            d(
                "SELECT ra FROM t WHERE ra > 10",
                "SELECT ra FROM t WHERE NOT ra <= 10"
            ),
            0.0
        );
    }

    #[test]
    fn overlap_scores_x() {
        assert_eq!(
            d(
                "SELECT ra FROM t WHERE ra BETWEEN 0 AND 100",
                "SELECT ra FROM t WHERE ra BETWEEN 50 AND 150"
            ),
            0.5
        );
    }

    #[test]
    fn disjoint_scores_one() {
        assert_eq!(
            d(
                "SELECT ra FROM t WHERE ra < 50",
                "SELECT ra FROM t WHERE ra > 100"
            ),
            1.0
        );
    }

    #[test]
    fn averaging_over_attributes() {
        // ra areas equal (δ=0), dec areas disjoint (δ=1) → d = 1/2.
        assert_eq!(
            d(
                "SELECT ra FROM t WHERE ra > 10 AND dec < 0",
                "SELECT ra FROM t WHERE ra > 10 AND dec > 10"
            ),
            0.5
        );
    }

    #[test]
    fn attribute_accessed_by_only_one_query() {
        // dec accessed only by Q1 (nonempty) vs not accessed by Q2 → δ_dec = 1;
        // ra equal → δ_ra = 0 → d = 0.5.
        assert_eq!(d("SELECT ra FROM t WHERE dec > 0", "SELECT ra FROM t"), 0.5);
    }

    #[test]
    fn custom_x() {
        let m = AccessAreaDistance::with_x(catalog(), 0.25);
        let q1 = parse_query("SELECT ra FROM t WHERE ra BETWEEN 0 AND 100").unwrap();
        let q2 = parse_query("SELECT ra FROM t WHERE ra BETWEEN 50 AND 150").unwrap();
        assert_eq!(m.distance(&q1, &q2).unwrap(), 0.25);
    }

    #[test]
    #[should_panic(expected = "x must lie in (0, 1)")]
    fn x_bounds_enforced() {
        AccessAreaDistance::with_x(catalog(), 1.0);
    }

    #[test]
    fn select_star_queries_with_no_attributes() {
        assert_eq!(d("SELECT * FROM t", "SELECT * FROM u"), 0.0);
    }
}
