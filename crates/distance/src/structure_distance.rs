//! Query-structure distance: Jaccard over SnipSuggest feature sets.

use crate::jaccard::jaccard_distance;
use crate::measure::{DistanceError, QueryDistance};
use dpe_sql::{feature_set, Query};

/// `d_Struct(Q1, Q2) = JaccardDistance(features(Q1), features(Q2))`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StructureDistance;

impl QueryDistance for StructureDistance {
    fn distance(&self, a: &Query, b: &Query) -> Result<f64, DistanceError> {
        Ok(jaccard_distance(&feature_set(a), &feature_set(b)))
    }

    fn name(&self) -> &'static str {
        "structure"
    }

    /// Jaccard distance is a true metric, so triangle-inequality index
    /// pruning is sound.
    fn is_metric(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_sql::parse_query;

    fn d(a: &str, b: &str) -> f64 {
        StructureDistance
            .distance(&parse_query(a).unwrap(), &parse_query(b).unwrap())
            .unwrap()
    }

    #[test]
    fn constants_are_invisible() {
        // The defining property vs token distance: constants don't matter.
        assert_eq!(
            d(
                "SELECT ra FROM t WHERE dec > 5",
                "SELECT ra FROM t WHERE dec > 99999"
            ),
            0.0
        );
    }

    #[test]
    fn operator_changes_matter() {
        assert!(
            d(
                "SELECT ra FROM t WHERE dec > 5",
                "SELECT ra FROM t WHERE dec < 5"
            ) > 0.0
        );
    }

    #[test]
    fn exact_value_on_paper_shaped_queries() {
        // Q1: {(SELECT, a1), (FROM, r), (WHERE, a2 >)}
        // Q2: {(SELECT, a1), (FROM, r), (WHERE, a3 >)}
        // |∩| = 2, |∪| = 4 → d = 1/2.
        assert_eq!(
            d(
                "SELECT a1 FROM r WHERE a2 > 5",
                "SELECT a1 FROM r WHERE a3 > 7"
            ),
            0.5
        );
    }

    #[test]
    fn structural_elements_accumulate() {
        let base = "SELECT ra FROM t";
        assert!(d(base, "SELECT ra FROM t GROUP BY ra") > 0.0);
        assert!(d(base, "SELECT ra FROM t ORDER BY ra") > 0.0);
    }

    #[test]
    fn symmetric_and_self_zero() {
        let a = "SELECT COUNT(*) FROM t GROUP BY c";
        let b = "SELECT ra FROM u WHERE x BETWEEN 1 AND 2";
        assert_eq!(d(a, b), d(b, a));
        assert_eq!(d(a, a), 0.0);
    }
}
