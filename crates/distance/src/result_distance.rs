//! Query-result distance: Jaccard over result tuple sets.
//!
//! "Query-result distance is the Jaccard distance of the tuples in the
//! results of the queries. Note that the result of a query depends on the
//! state of the database" — so this measure carries a reference to the
//! database (the *shared information* column of Table I: Log + DB-Content).
//!
//! ## Tuple identity across heterogeneous queries
//!
//! Tuples are compared **with their provenance** (the query's output
//! schema): `(objid = 3)` and `(COUNT(*) = 3)` are *different* result
//! tuples even though their raw value vectors coincide. The paper leaves
//! this implicit (its definition compares "the tuples in the results"),
//! but on mixed logs the raw-value reading makes Definition 1
//! unsatisfiable: an accidental numeric collision between a plaintext
//! aggregate output and a data value exists on the plaintext side, while
//! on the ciphertext side the data value is encrypted and the count is
//! not, so no encryption can reproduce the collision. Schema-tagged
//! comparison is the reading under which result equivalence (Definition 4)
//! composes with the high-level scheme — a reproduction finding recorded
//! in DESIGN.md §4b.

use crate::jaccard::jaccard_distance;
use crate::matrix::QueryDistanceFactory;
use crate::measure::{DistanceError, QueryDistance};
use dpe_minidb::{tagged_result_tuples, Database, Row};
use dpe_sql::Query;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::rc::Rc;

/// Result distance against a fixed database state.
pub struct ResultDistance<'db> {
    db: &'db Database,
}

impl<'db> ResultDistance<'db> {
    /// Binds the measure to a database.
    pub fn new(db: &'db Database) -> Self {
        ResultDistance { db }
    }
}

impl QueryDistance for ResultDistance<'_> {
    fn distance(&self, a: &Query, b: &Query) -> Result<f64, DistanceError> {
        let ta = tagged_result_tuples(self.db, a)?;
        let tb = tagged_result_tuples(self.db, b)?;
        Ok(jaccard_distance(&ta, &tb))
    }

    fn name(&self) -> &'static str {
        "result"
    }

    /// Jaccard over result-tuple sets: a true metric (for a fixed
    /// database state), so triangle-inequality index pruning is sound.
    fn is_metric(&self) -> bool {
        true
    }
}

/// One worker's engine connection: executes queries against the database
/// and **memoizes each query's tagged result-tuple set**, so a query that
/// appears in many pairs of the worker's matrix range executes once, not
/// once per pair. The cache makes the connection deliberately `!Sync`
/// (`RefCell` + `Rc`) — connections are private per-worker state, handed
/// out by [`ResultDistanceFactory`]; share the cacheless [`ResultDistance`]
/// instead if you want one `Sync` measure across threads.
pub struct ResultConnection<'db> {
    db: &'db Database,
    cache: RefCell<HashMap<String, TaggedTuples>>,
}

/// One query's schema-tagged result-tuple set, shared across cache hits.
type TaggedTuples = Rc<BTreeSet<(Vec<String>, Row)>>;

impl<'db> ResultConnection<'db> {
    /// Opens a connection with an empty result cache.
    pub fn new(db: &'db Database) -> Self {
        ResultConnection {
            db,
            cache: RefCell::new(HashMap::new()),
        }
    }

    fn tuples(&self, q: &Query) -> Result<TaggedTuples, DistanceError> {
        let key = q.to_string();
        if let Some(hit) = self.cache.borrow().get(&key) {
            return Ok(Rc::clone(hit));
        }
        let tuples = Rc::new(tagged_result_tuples(self.db, q)?);
        self.cache.borrow_mut().insert(key, Rc::clone(&tuples));
        Ok(tuples)
    }

    /// Number of distinct queries executed (and memoized) so far.
    pub fn cached_queries(&self) -> usize {
        self.cache.borrow().len()
    }
}

impl QueryDistance for ResultConnection<'_> {
    fn distance(&self, a: &Query, b: &Query) -> Result<f64, DistanceError> {
        let ta = self.tuples(a)?;
        let tb = self.tuples(b)?;
        Ok(jaccard_distance(&ta, &tb))
    }

    fn name(&self) -> &'static str {
        "result"
    }

    /// Same Jaccard metric as [`ResultDistance`]; memoization does not
    /// change the values.
    fn is_metric(&self) -> bool {
        true
    }
}

/// Opens one caching [`ResultConnection`] per parallel worker, so the
/// expensive query-executing measure runs on the parallel matrix path
/// (`DistanceMatrix::compute_parallel`) instead of being locked to the
/// sequential one. Each worker owns its cache: a query is executed at most
/// once per worker instead of once per pair.
pub struct ResultDistanceFactory<'db> {
    db: &'db Database,
}

impl<'db> ResultDistanceFactory<'db> {
    /// Binds the factory to a database; each [`connect`] call opens a fresh
    /// connection with its own cache over it.
    ///
    /// [`connect`]: QueryDistanceFactory::connect
    pub fn new(db: &'db Database) -> Self {
        ResultDistanceFactory { db }
    }
}

impl QueryDistanceFactory for ResultDistanceFactory<'_> {
    type Connection<'a>
        = ResultConnection<'a>
    where
        Self: 'a;

    fn connect(&self) -> ResultConnection<'_> {
        ResultConnection::new(self.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_minidb::{ColumnType, TableSchema, Value};
    use dpe_sql::parse_query;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "photoobj",
            vec![
                ("objid", ColumnType::Int),
                ("ra", ColumnType::Int),
                ("class", ColumnType::Str),
            ],
        ))
        .unwrap();
        for (id, ra, class) in [
            (1, 100, "STAR"),
            (2, 150, "GALAXY"),
            (3, 200, "STAR"),
            (4, 250, "QSO"),
        ] {
            db.insert(
                "photoobj",
                vec![Value::Int(id), Value::Int(ra), Value::Str(class.into())],
            )
            .unwrap();
        }
        db
    }

    fn d(db: &Database, a: &str, b: &str) -> f64 {
        ResultDistance::new(db)
            .distance(&parse_query(a).unwrap(), &parse_query(b).unwrap())
            .unwrap()
    }

    #[test]
    fn same_results_zero_even_for_different_text() {
        let db = db();
        // Different predicates selecting the same rows.
        assert_eq!(
            d(
                &db,
                "SELECT objid FROM photoobj WHERE ra < 160",
                "SELECT objid FROM photoobj WHERE objid IN (1, 2)"
            ),
            0.0
        );
    }

    #[test]
    fn disjoint_results_distance_one() {
        let db = db();
        assert_eq!(
            d(
                &db,
                "SELECT objid FROM photoobj WHERE ra < 120",
                "SELECT objid FROM photoobj WHERE ra > 220"
            ),
            1.0
        );
    }

    #[test]
    fn partial_overlap_exact_value() {
        let db = db();
        // {1,2,3} vs {2,3,4}: |∩| = 2, |∪| = 4 → 1/2.
        assert_eq!(
            d(
                &db,
                "SELECT objid FROM photoobj WHERE ra <= 200",
                "SELECT objid FROM photoobj WHERE ra >= 150"
            ),
            0.5
        );
    }

    #[test]
    fn depends_on_database_state() {
        let db1 = db();
        let mut db2 = db();
        db2.insert(
            "photoobj",
            vec![Value::Int(5), Value::Int(110), Value::Str("STAR".into())],
        )
        .unwrap();
        let a = "SELECT objid FROM photoobj WHERE ra < 120";
        let b = "SELECT objid FROM photoobj WHERE ra < 160";
        assert_ne!(d(&db1, a, b), d(&db2, a, b));
    }

    #[test]
    fn aggregate_output_never_collides_with_data_values() {
        // COUNT(*) over STARs is 2; objid 2 exists. Raw-value comparison
        // would see overlap {(2)} — provenance tagging must not.
        let db = db();
        assert_eq!(
            d(
                &db,
                "SELECT COUNT(*) FROM photoobj WHERE class = 'STAR'",
                "SELECT objid FROM photoobj"
            ),
            1.0
        );
    }

    #[test]
    fn same_schema_aggregates_do_compare() {
        let db = db();
        // Both count 2 rows → identical tagged tuple {(COUNT(*), 2)}.
        assert_eq!(
            d(
                &db,
                "SELECT COUNT(*) FROM photoobj WHERE class = 'STAR'",
                "SELECT COUNT(*) FROM photoobj WHERE ra < 160"
            ),
            0.0
        );
    }

    #[test]
    fn different_columns_are_disjoint_even_with_equal_values() {
        let db = db();
        // objid 1..4 vs ra 100.. — no value collision here anyway, but
        // pin the schema-tag semantics: SELECT objid vs SELECT ra over the
        // same rows is distance 1.
        assert_eq!(
            d(&db, "SELECT objid FROM photoobj", "SELECT ra FROM photoobj"),
            1.0
        );
    }

    #[test]
    fn parallel_factory_matches_sequential_bitwise() {
        let db = db();
        let queries: Vec<_> = (0..12)
            .map(|i| {
                parse_query(&format!(
                    "SELECT objid FROM photoobj WHERE ra < {}",
                    90 + i * 15
                ))
                .unwrap()
            })
            .collect();
        let seq = crate::DistanceMatrix::compute(&queries, &ResultDistance::new(&db)).unwrap();
        for threads in [1, 3, 8] {
            let par = crate::DistanceMatrix::compute_parallel(
                &queries,
                &ResultDistanceFactory::new(&db),
                threads,
            )
            .unwrap();
            assert!(seq.identical(&par), "threads = {threads}");
        }
    }

    #[test]
    fn connection_caches_each_query_once_and_stays_exact() {
        let db = db();
        let queries: Vec<_> = (0..9)
            .map(|i| {
                parse_query(&format!(
                    "SELECT objid FROM photoobj WHERE ra < {}",
                    90 + i * 20
                ))
                .unwrap()
            })
            .collect();
        let conn = ResultConnection::new(&db);
        let cached = crate::DistanceMatrix::compute(&queries, &conn).unwrap();
        // 9 distinct queries over 36 pairs: each executed exactly once.
        assert_eq!(conn.cached_queries(), 9);
        let uncached = crate::DistanceMatrix::compute(&queries, &ResultDistance::new(&db)).unwrap();
        assert!(
            cached.identical(&uncached),
            "memoization must not change a single bit"
        );
    }

    #[test]
    fn connection_propagates_execution_errors() {
        let db = db();
        let conn = ResultConnection::new(&db);
        let err = conn
            .distance(
                &parse_query("SELECT nope FROM photoobj").unwrap(),
                &parse_query("SELECT objid FROM photoobj").unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, DistanceError::Execution(_)));
    }

    #[test]
    fn execution_errors_propagate() {
        let db = db();
        let err = ResultDistance::new(&db)
            .distance(
                &parse_query("SELECT nope FROM photoobj").unwrap(),
                &parse_query("SELECT objid FROM photoobj").unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, DistanceError::Execution(_)));
    }
}
