//! Query-result distance: Jaccard over result tuple sets.
//!
//! "Query-result distance is the Jaccard distance of the tuples in the
//! results of the queries. Note that the result of a query depends on the
//! state of the database" — so this measure carries a reference to the
//! database (the *shared information* column of Table I: Log + DB-Content).
//!
//! ## Tuple identity across heterogeneous queries
//!
//! Tuples are compared **with their provenance** (the query's output
//! schema): `(objid = 3)` and `(COUNT(*) = 3)` are *different* result
//! tuples even though their raw value vectors coincide. The paper leaves
//! this implicit (its definition compares "the tuples in the results"),
//! but on mixed logs the raw-value reading makes Definition 1
//! unsatisfiable: an accidental numeric collision between a plaintext
//! aggregate output and a data value exists on the plaintext side, while
//! on the ciphertext side the data value is encrypted and the count is
//! not, so no encryption can reproduce the collision. Schema-tagged
//! comparison is the reading under which result equivalence (Definition 4)
//! composes with the high-level scheme — a reproduction finding recorded
//! in DESIGN.md §4b.

use crate::jaccard::jaccard_distance;
use crate::measure::{DistanceError, QueryDistance};
use dpe_minidb::{tagged_result_tuples, Database};
use dpe_sql::Query;

/// Result distance against a fixed database state.
pub struct ResultDistance<'db> {
    db: &'db Database,
}

impl<'db> ResultDistance<'db> {
    /// Binds the measure to a database.
    pub fn new(db: &'db Database) -> Self {
        ResultDistance { db }
    }
}

impl QueryDistance for ResultDistance<'_> {
    fn distance(&self, a: &Query, b: &Query) -> Result<f64, DistanceError> {
        let ta = tagged_result_tuples(self.db, a)?;
        let tb = tagged_result_tuples(self.db, b)?;
        Ok(jaccard_distance(&ta, &tb))
    }

    fn name(&self) -> &'static str {
        "result"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_minidb::{ColumnType, TableSchema, Value};
    use dpe_sql::parse_query;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "photoobj",
            vec![("objid", ColumnType::Int), ("ra", ColumnType::Int), ("class", ColumnType::Str)],
        ))
        .unwrap();
        for (id, ra, class) in [
            (1, 100, "STAR"),
            (2, 150, "GALAXY"),
            (3, 200, "STAR"),
            (4, 250, "QSO"),
        ] {
            db.insert("photoobj", vec![Value::Int(id), Value::Int(ra), Value::Str(class.into())])
                .unwrap();
        }
        db
    }

    fn d(db: &Database, a: &str, b: &str) -> f64 {
        ResultDistance::new(db)
            .distance(&parse_query(a).unwrap(), &parse_query(b).unwrap())
            .unwrap()
    }

    #[test]
    fn same_results_zero_even_for_different_text() {
        let db = db();
        // Different predicates selecting the same rows.
        assert_eq!(
            d(&db, "SELECT objid FROM photoobj WHERE ra < 160", "SELECT objid FROM photoobj WHERE objid IN (1, 2)"),
            0.0
        );
    }

    #[test]
    fn disjoint_results_distance_one() {
        let db = db();
        assert_eq!(
            d(&db, "SELECT objid FROM photoobj WHERE ra < 120", "SELECT objid FROM photoobj WHERE ra > 220"),
            1.0
        );
    }

    #[test]
    fn partial_overlap_exact_value() {
        let db = db();
        // {1,2,3} vs {2,3,4}: |∩| = 2, |∪| = 4 → 1/2.
        assert_eq!(
            d(&db, "SELECT objid FROM photoobj WHERE ra <= 200", "SELECT objid FROM photoobj WHERE ra >= 150"),
            0.5
        );
    }

    #[test]
    fn depends_on_database_state() {
        let db1 = db();
        let mut db2 = db();
        db2.insert("photoobj", vec![Value::Int(5), Value::Int(110), Value::Str("STAR".into())])
            .unwrap();
        let a = "SELECT objid FROM photoobj WHERE ra < 120";
        let b = "SELECT objid FROM photoobj WHERE ra < 160";
        assert_ne!(d(&db1, a, b), d(&db2, a, b));
    }

    #[test]
    fn aggregate_output_never_collides_with_data_values() {
        // COUNT(*) over STARs is 2; objid 2 exists. Raw-value comparison
        // would see overlap {(2)} — provenance tagging must not.
        let db = db();
        assert_eq!(
            d(&db, "SELECT COUNT(*) FROM photoobj WHERE class = 'STAR'", "SELECT objid FROM photoobj"),
            1.0
        );
    }

    #[test]
    fn same_schema_aggregates_do_compare() {
        let db = db();
        // Both count 2 rows → identical tagged tuple {(COUNT(*), 2)}.
        assert_eq!(
            d(
                &db,
                "SELECT COUNT(*) FROM photoobj WHERE class = 'STAR'",
                "SELECT COUNT(*) FROM photoobj WHERE ra < 160"
            ),
            0.0
        );
    }

    #[test]
    fn different_columns_are_disjoint_even_with_equal_values() {
        let db = db();
        // objid 1..4 vs ra 100.. — no value collision here anyway, but
        // pin the schema-tag semantics: SELECT objid vs SELECT ra over the
        // same rows is distance 1.
        assert_eq!(
            d(&db, "SELECT objid FROM photoobj", "SELECT ra FROM photoobj"),
            1.0
        );
    }

    #[test]
    fn execution_errors_propagate() {
        let db = db();
        let err = ResultDistance::new(&db)
            .distance(
                &parse_query("SELECT nope FROM photoobj").unwrap(),
                &parse_query("SELECT objid FROM photoobj").unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, DistanceError::Execution(_)));
    }
}
