//! The common distance-measure interface.

use dpe_minidb::DbError;
use dpe_sql::Query;
use std::fmt;

/// Errors surfaced while computing a distance (only the result measure can
/// fail — it executes queries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistanceError {
    /// Query execution failed (result distance).
    Execution(DbError),
    /// An attribute lacks a domain entry (access-area distance).
    MissingDomain(String),
}

impl fmt::Display for DistanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistanceError::Execution(e) => write!(f, "query execution failed: {e}"),
            DistanceError::MissingDomain(a) => {
                write!(f, "attribute {a} has no domain in the catalog")
            }
        }
    }
}

impl std::error::Error for DistanceError {}

impl From<DbError> for DistanceError {
    fn from(e: DbError) -> Self {
        DistanceError::Execution(e)
    }
}

/// A distance measure `d : Q × Q → [0, 1]` over SQL queries.
///
/// Implementations must be symmetric with `d(q, q) = 0`; the property tests
/// in each module enforce this.
pub trait QueryDistance {
    /// Computes `d(a, b)`.
    fn distance(&self, a: &Query, b: &Query) -> Result<f64, DistanceError>;

    /// Short measure name as used in Table I.
    fn name(&self) -> &'static str;

    /// `true` when the measure is a true metric — symmetry, identity of
    /// indiscernibles, and crucially the **triangle inequality** — which
    /// makes triangle-inequality index pruning ([`crate::index::VpTree`])
    /// sound. Defaults to `false`: a measure must opt in explicitly
    /// (the Jaccard-based measures do; access-area distance, whose
    /// per-pair attribute-union normalization breaks the triangle
    /// inequality, must not).
    fn is_metric(&self) -> bool {
        false
    }
}

/// Shared references measure through the referent, so `Sync` measures can
/// be handed to parallel workers by reference (see
/// [`crate::matrix::QueryDistanceFactory`]).
impl<M: QueryDistance + ?Sized> QueryDistance for &M {
    fn distance(&self, a: &Query, b: &Query) -> Result<f64, DistanceError> {
        (**self).distance(a, b)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn is_metric(&self) -> bool {
        (**self).is_metric()
    }
}
