//! Token-based query-string distance (the paper's Definition 3).

use crate::jaccard::jaccard_distance;
use crate::measure::{DistanceError, QueryDistance};
use dpe_sql::{token_set, Query};

/// `d_Token(Q1, Q2) = 1 − |tokens(Q1) ∩ tokens(Q2)| / |tokens(Q1) ∪ tokens(Q2)|`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenDistance;

impl QueryDistance for TokenDistance {
    fn distance(&self, a: &Query, b: &Query) -> Result<f64, DistanceError> {
        Ok(jaccard_distance(&token_set(a), &token_set(b)))
    }

    fn name(&self) -> &'static str {
        "token"
    }

    /// Jaccard distance is a true metric (Steinhaus transform of the
    /// symmetric-difference metric), so triangle-inequality index pruning
    /// is sound.
    fn is_metric(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_sql::parse_query;

    fn d(a: &str, b: &str) -> f64 {
        TokenDistance
            .distance(&parse_query(a).unwrap(), &parse_query(b).unwrap())
            .unwrap()
    }

    #[test]
    fn identical_queries_zero() {
        assert_eq!(d("SELECT ra FROM t", "SELECT ra FROM t"), 0.0);
    }

    #[test]
    fn formatting_irrelevant() {
        assert_eq!(d("select   ra from T", "SELECT ra FROM t"), 0.0);
    }

    #[test]
    fn constant_change_moves_distance_slightly() {
        let near = d(
            "SELECT ra FROM t WHERE dec > 5",
            "SELECT ra FROM t WHERE dec > 6",
        );
        // Token sets differ in exactly one element out of eight.
        assert!(near > 0.0 && near < 0.3, "{near}");
    }

    #[test]
    fn different_tables_far_apart() {
        let far = d("SELECT ra FROM photoobj", "SELECT z FROM specobj");
        let near = d("SELECT ra FROM photoobj", "SELECT dec FROM photoobj");
        assert!(far > near);
    }

    #[test]
    fn symmetric() {
        let a = "SELECT ra FROM t WHERE dec > 5";
        let b = "SELECT z FROM u WHERE q = 1";
        assert_eq!(d(a, b), d(b, a));
    }

    #[test]
    fn exact_value_on_known_pair() {
        // tokens(Q1) = {SELECT, ra, FROM, t}; tokens(Q2) = {SELECT, dec, FROM, t}
        // |∩| = 3, |∪| = 5 → d = 2/5.
        assert_eq!(d("SELECT ra FROM t", "SELECT dec FROM t"), 1.0 - 3.0 / 5.0);
    }
}
