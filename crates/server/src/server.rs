//! The multi-tenant batch-serving engine.
//!
//! A [`Server`] owns the sharded store (one [`Shard`] per tenant, each a
//! packed incremental distance matrix), the per-shard injector queues of
//! the work-stealing scheduler, and per-shard LRU response-cache
//! partitions keyed on *(shard, shard-epoch, request fingerprint)* —
//! workers on different shards never contend on a cache lock. Three
//! serving paths:
//!
//! * [`Server::submit`] / [`Server::drain`] — the asynchronous surface:
//!   any number of client threads enqueue requests concurrently; a drain
//!   coalesces everything pending per shard into single-lock batches and
//!   answers them on `threads` work-stealing workers.
//! * [`Server::serve_batch`] — the synchronous fast path: answer a slice of
//!   requests (grouped by shard, stealing enabled) and return results in
//!   input order.
//! * [`Server::serve_one_uncached`] — the per-query dispatch baseline the
//!   `server_throughput` bench compares against: one lock acquisition per
//!   request, no cache.
//!
//! Epoch-versioned cache keys make streaming inserts safe: every successful
//! [`Server::ingest`] bumps the shard's epoch, so entries computed against
//! the old store can never be returned afterwards — they simply stop being
//! addressable and age out of the LRU.

use crate::cache::{CacheStats, LruCache};
use crate::exec::{self, ExecutionMetrics, IndexSource, PhysicalPlan, PlanSource};
use crate::plan::{PlanCache, PlanStats};
use crate::request::{Request, RequestKey, Response, ServerError, Ticket};
use crate::scheduler::{group_stable_by, SchedulerStats, ShardQueues};
use crate::shard::{Shard, ShardIndex};
use crate::sql::SqlTable;
use dpe_distance::QueryDistance;
use dpe_durability::{Durability, DurabilityStats, ShardStateRef};
use dpe_mining::{Dendrogram, Linkage};
use dpe_sql::Query;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Cache key: a response is valid for exactly one (shard, epoch, request)
/// triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    shard: usize,
    epoch: u64,
    request: RequestKey,
}

/// One unified server snapshot: every counter the engine keeps, in one
/// coherent read. Replaces the former `cache_stats()` /
/// `scheduler_stats()` / `plan_stats()` triple — callers no longer stitch
/// three partially-ordered snapshots together.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerStats {
    /// Response-cache counters, aggregated over the per-shard partitions.
    pub cache: CacheStats,
    /// Scheduler counters (served / batches / steals).
    pub scheduler: SchedulerStats,
    /// Clustering-plan counters, aggregated over the per-shard caches.
    pub plans: PlanStats,
    /// Queries answered through the plan executor or the response cache.
    pub queries: u64,
    /// [`ExecutionMetrics`] summed over every answered query.
    pub exec: ExecutionMetrics,
    /// Durability counters (WAL appends, bytes, checkpoints) — `None`
    /// unless the server was built with [`ServerBuilder::durability`].
    pub durability: Option<DurabilityStats>,
}

/// Executor counters aggregated across queries, behind one mutex.
#[derive(Debug, Default)]
struct ExecTotals {
    queries: u64,
    metrics: ExecutionMetrics,
}

/// Resolves dendrograms through a shard's plan cache: built at most once
/// per `(epoch, linkage)`, shared across requests, batches and clients.
/// Holding the mutex across a build is deliberate — a second worker
/// wanting the same plan blocks and then hits, instead of burning another
/// O(n³) build.
struct CachedPlans<'a> {
    shard: &'a Shard,
    epoch: u64,
    cache: &'a Mutex<PlanCache>,
}

impl IndexSource for CachedPlans<'_> {
    fn index(&self) -> Option<&ShardIndex> {
        self.shard.index()
    }
}

impl PlanSource for CachedPlans<'_> {
    fn resolve(&mut self, linkage: Linkage, metrics: &mut ExecutionMetrics) -> Arc<Dendrogram> {
        let mut built = false;
        let plan = self.cache.lock().expect("plan lock poisoned").get_or_build(
            self.epoch,
            linkage,
            || {
                built = true;
                self.shard.build_plan(linkage)
            },
        );
        if built {
            metrics.plan_builds += 1;
            metrics.distance_cells += self.shard.matrix().packed_len() as u64;
        } else {
            metrics.plan_hits += 1;
        }
        plan
    }
}

/// The batch-serving engine. Generic over the distance measure used for
/// ingest — the mining itself reads only the per-shard packed matrices, so
/// plaintext and DPE-encrypted stores serve bit-identical answers.
#[derive(Debug)]
pub struct Server<M> {
    measure: M,
    shards: Vec<RwLock<Shard>>,
    queues: ShardQueues<(Ticket, Request)>,
    /// One cache partition per shard — workers serving different shards
    /// never contend on a cache lock (a global mutex here would serialize
    /// the warm path the scheduler exists to parallelize).
    caches: Vec<Mutex<LruCache<CacheKey, Response>>>,
    /// One clustering-plan cache per shard: a dendrogram built once per
    /// (epoch, linkage) serves every `Hierarchical` cut against that store
    /// version. Holding the mutex across a build is deliberate — a second
    /// worker wanting the same plan blocks and then hits, instead of
    /// burning another O(n³) build.
    plans: Vec<Mutex<PlanCache>>,
    next_ticket: AtomicU64,
    /// Executor counters summed across every answered query.
    exec_totals: Mutex<ExecTotals>,
    /// SQL front-door bindings: virtual pairs-table name → shard/column
    /// binding (see [`crate::sql`]).
    pub(crate) sql_tables: Mutex<BTreeMap<String, SqlTable>>,
    /// The WAL + snapshot engine, when durability is configured. Appends
    /// happen inside the owning shard's write-lock hold (shard lock →
    /// WAL mutex, never the reverse), so the log order always equals the
    /// epoch order readers observe.
    durability: Option<Arc<Durability>>,
}

/// Staged configuration for a [`Server`] — the one way to construct one.
///
/// ```
/// use dpe_server::Server;
/// use dpe_distance::TokenDistance;
/// let server = Server::builder(TokenDistance)
///     .shards(4)
///     .cache_capacity(1024)
///     .build();
/// assert_eq!(server.shard_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ServerBuilder<M> {
    measure: M,
    /// `None` until [`ServerBuilder::shards`] is called — recovery needs
    /// to distinguish "defaulted to 1" (adopt the manifest's count) from
    /// "explicitly configured" (must match the manifest).
    shards: Option<usize>,
    cache_capacity: usize,
    metric_index: bool,
    durability: Option<PathBuf>,
    durability_engine: Option<Arc<Durability>>,
}

impl<M: QueryDistance + Sync> ServerBuilder<M> {
    /// Number of tenant shards (default 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Total response-cache capacity in entries, partitioned evenly across
    /// the shards (default 0 — caching disabled).
    pub fn cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Build and maintain a per-shard metric index (a VP-tree over the
    /// packed matrix — see [`crate::ShardIndex`]), letting `Knn` and
    /// `Range` plans skip most distance cells via triangle-inequality
    /// pruning while staying bit-identical to the matrix paths. Requires
    /// the measure to declare [`QueryDistance::is_metric`]; default off.
    pub fn metric_index(mut self, metric_index: bool) -> Self {
        self.metric_index = metric_index;
        self
    }

    /// Makes every ingest durable: a fresh WAL + snapshot directory is
    /// created at `path` (refused with a typed error if it already holds
    /// durable state — recover from it with [`ServerBuilder::recover`]
    /// instead). Each ingest appends its batch to the owning shard's WAL
    /// inside the same write-lock hold as the matrix extend and epoch
    /// bump; [`Server::checkpoint`] folds the logs into an
    /// epoch-consistent snapshot.
    pub fn durability(mut self, path: impl Into<PathBuf>) -> Self {
        self.durability = Some(path.into());
        self
    }

    /// Supplies a pre-opened [`Durability`] engine instead of a path —
    /// the seam the crash-recovery sweep uses to inject
    /// [`dpe_durability::testkit::FailpointFs`] fault sinks under an
    /// otherwise production server. Takes precedence over
    /// [`ServerBuilder::durability`].
    pub fn durability_engine(mut self, engine: Arc<Durability>) -> Self {
        self.durability_engine = Some(engine);
        self
    }

    /// Builds the server, panicking on any configuration or durability
    /// error — the ergonomic path when the configuration is static. Use
    /// [`ServerBuilder::try_build`] to handle durability setup failures
    /// (e.g. pointing at a directory that already holds state) as typed
    /// errors.
    ///
    /// # Panics
    ///
    /// Panics when configured with 0 shards, with
    /// [`ServerBuilder::metric_index`] over a measure that does not
    /// declare itself a metric (triangle-inequality pruning over such a
    /// measure would silently drop answers), or when durability setup
    /// fails.
    pub fn build(self) -> Server<M> {
        match self.try_build() {
            Ok(server) => server,
            Err(e) => panic!("ServerBuilder::build failed: {e}"),
        }
    }

    /// Builds the server, surfacing durability setup failures as typed
    /// errors. Configuration bugs (0 shards, non-metric index) still
    /// panic — they are programmer errors, not runtime conditions.
    pub fn try_build(self) -> Result<Server<M>, ServerError> {
        let ServerBuilder {
            measure,
            shards,
            cache_capacity,
            metric_index,
            durability,
            durability_engine,
        } = self;
        if let Some(n) = shards {
            assert!(n > 0, "a server needs at least one shard");
        }
        let engine = match (durability_engine, durability) {
            (Some(engine), _) => Some(engine),
            (None, Some(path)) => Some(Arc::new(Durability::create(path, shards.unwrap_or(1))?)),
            (None, None) => None,
        };
        // A pre-opened engine knows its shard count; an explicit builder
        // count must agree with it.
        let shards = match (&engine, shards) {
            (Some(e), Some(n)) if e.shards() != n => {
                return Err(ServerError::Durability(
                    dpe_durability::DurabilityError::Manifest(format!(
                        "builder configured {n} shards but the durability engine is laid \
                         out for {}",
                        e.shards()
                    )),
                ))
            }
            (Some(e), _) => e.shards(),
            (None, n) => n.unwrap_or(1),
        };
        assert!(shards > 0, "a server needs at least one shard");
        assert!(
            !metric_index || measure.is_metric(),
            "metric_index requires a metric measure, and {} does not declare \
             the triangle inequality (QueryDistance::is_metric)",
            measure.name()
        );
        Ok(Server::assemble(
            measure,
            (0..shards)
                .map(|_| {
                    let mut shard = Shard::new();
                    if metric_index {
                        shard.enable_index();
                    }
                    shard
                })
                .collect(),
            cache_capacity,
            engine,
        ))
    }

    /// Rebuilds a whole multi-tenant server from a durable directory: the
    /// newest valid snapshot is loaded (its matrices bit-identical to the
    /// snapshotted ones), WAL records past each shard's snapshot epoch
    /// are re-applied through the normal ingest path (deterministic
    /// distance recomputation — bit-identical again), and the engine
    /// stays attached so post-recovery ingests keep logging. Plan and
    /// response caches start empty (they rebuild lazily); metric indexes
    /// are rebuilt eagerly when [`ServerBuilder::metric_index`] is set.
    ///
    /// The shard count is adopted from the directory's manifest; calling
    /// [`ServerBuilder::shards`] with a different count is a typed error.
    /// Damaged state — torn snapshot, corrupt WAL frame, epoch gap —
    /// surfaces as [`ServerError::Durability`], never as a garbage shard.
    pub fn recover(self) -> Result<Server<M>, ServerError> {
        let ServerBuilder {
            measure,
            shards,
            cache_capacity,
            metric_index,
            durability,
            durability_engine,
        } = self;
        let engine = match (durability_engine, durability) {
            (Some(engine), _) => engine,
            (None, Some(path)) => Arc::new(Durability::open(path)?),
            (None, None) => {
                return Err(ServerError::BadRequest(
                    "recover() needs ServerBuilder::durability(path) (or a pre-opened \
                     engine) to know where the durable state lives"
                        .into(),
                ))
            }
        };
        if let Some(n) = shards {
            if n != engine.shards() {
                return Err(ServerError::Durability(
                    dpe_durability::DurabilityError::Manifest(format!(
                        "builder configured {n} shards but the durable directory is laid \
                         out for {}",
                        engine.shards()
                    )),
                ));
            }
        }
        assert!(
            !metric_index || measure.is_metric(),
            "metric_index requires a metric measure, and {} does not declare \
             the triangle inequality (QueryDistance::is_metric)",
            measure.name()
        );
        let mut restored = Vec::with_capacity(engine.shards());
        for recovery in engine.recover()? {
            let mut shard = Shard::restore(
                recovery.base.queries,
                recovery.base.matrix,
                recovery.base.epoch,
            );
            // Replay the WAL tail through the normal ingest path — the
            // same deterministic distance calls the live server made, so
            // the rebuilt cells are bit-identical. Note: *not* re-logged;
            // these records are already in the WAL.
            for record in &recovery.tail {
                shard.ingest(&record.queries, &measure)?;
                debug_assert_eq!(shard.epoch(), record.epoch, "replay must track the log");
            }
            if metric_index {
                shard.enable_index();
            }
            restored.push(shard);
        }
        Ok(Server::assemble(
            measure,
            restored,
            cache_capacity,
            Some(engine),
        ))
    }
}

impl<M: QueryDistance + Sync> Server<M> {
    /// Starts configuring a server over `measure`; finish with
    /// [`ServerBuilder::build`].
    pub fn builder(measure: M) -> ServerBuilder<M> {
        ServerBuilder {
            measure,
            shards: None,
            cache_capacity: 0,
            metric_index: false,
            durability: None,
            durability_engine: None,
        }
    }

    /// The one constructor behind [`ServerBuilder::try_build`] and
    /// [`ServerBuilder::recover`]: wraps the (fresh or restored) shards in
    /// their locks and initializes every per-shard partition.
    fn assemble(
        measure: M,
        shards: Vec<Shard>,
        cache_capacity: usize,
        durability: Option<Arc<Durability>>,
    ) -> Server<M> {
        let n = shards.len();
        let per_shard_capacity = cache_capacity.div_ceil(n);
        Server {
            measure,
            shards: shards.into_iter().map(RwLock::new).collect(),
            queues: ShardQueues::new(n),
            caches: (0..n)
                .map(|_| Mutex::new(LruCache::new(per_shard_capacity)))
                .collect(),
            plans: (0..n).map(|_| Mutex::new(PlanCache::new())).collect(),
            next_ticket: AtomicU64::new(0),
            exec_totals: Mutex::new(ExecTotals::default()),
            sql_tables: Mutex::new(BTreeMap::new()),
            durability,
        }
    }

    /// Number of tenant shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Items stored in `shard`.
    pub fn shard_len(&self, shard: usize) -> Result<usize, ServerError> {
        Ok(self.read_shard(shard)?.len())
    }

    /// Current epoch of `shard` (bumped by every successful ingest).
    pub fn shard_epoch(&self, shard: usize) -> Result<u64, ServerError> {
        Ok(self.read_shard(shard)?.epoch())
    }

    /// Builds (or rebuilds) `shard`'s metric index over its current store;
    /// every subsequent ingest maintains it incrementally. Refused with a
    /// typed error for measures that do not declare
    /// [`QueryDistance::is_metric`] — triangle-inequality pruning over a
    /// non-metric measure (e.g. access-area distance) would silently drop
    /// answers.
    pub fn build_index(&self, shard: usize) -> Result<(), ServerError> {
        if !self.measure.is_metric() {
            return Err(ServerError::BadRequest(format!(
                "measure {} is not a metric: a triangle-inequality index would prune \
                 valid answers",
                self.measure.name()
            )));
        }
        let slot = self.shards.get(shard).ok_or(ServerError::UnknownShard {
            shard,
            shards: self.shards.len(),
        })?;
        slot.write().expect("shard lock poisoned").enable_index();
        Ok(())
    }

    /// Drops `shard`'s metric index; its queries fall back to the matrix
    /// paths.
    pub fn drop_index(&self, shard: usize) -> Result<(), ServerError> {
        let slot = self.shards.get(shard).ok_or(ServerError::UnknownShard {
            shard,
            shards: self.shards.len(),
        })?;
        slot.write().expect("shard lock poisoned").disable_index();
        Ok(())
    }

    /// `true` when `shard` currently has a metric index.
    pub fn has_index(&self, shard: usize) -> Result<bool, ServerError> {
        Ok(self.read_shard(shard)?.index().is_some())
    }

    // dpe-analyze: allow(guard-escapes-function, reason = "deliberate crate-private helper: fusing the bounds check with acquisition keeps every read path on one code shape; all callers drop the guard within one expression")
    pub(crate) fn read_shard(
        &self,
        shard: usize,
    ) -> Result<std::sync::RwLockReadGuard<'_, Shard>, ServerError> {
        self.shards
            .get(shard)
            .ok_or(ServerError::UnknownShard {
                shard,
                shards: self.shards.len(),
            })
            .map(|s| s.read().expect("shard lock poisoned"))
    }

    /// Streaming insert into one tenant shard, reusing the incremental
    /// matrix path (`m·n + m(m−1)/2` distance calls for `m` new items).
    /// Takes the shard's write lock; concurrent readers of *other* shards
    /// are unaffected. On success the shard epoch bumps, invalidating every
    /// cached response for that shard.
    ///
    /// With [`ServerBuilder::durability`] configured, the batch is also
    /// appended to the shard's WAL *inside the same write-lock hold* as
    /// the matrix extend and epoch bump, so the log order is exactly the
    /// epoch order readers observe. A WAL append failure surfaces as
    /// [`ServerError::Durability`]; the in-memory apply stands (readers
    /// may already depend on the epoch) and the next successful
    /// [`Server::checkpoint`] re-anchors the log to the live state.
    pub fn ingest(&self, shard: usize, new: &[Query]) -> Result<(), ServerError> {
        let slot = self.shards.get(shard).ok_or(ServerError::UnknownShard {
            shard,
            shards: self.shards.len(),
        })?;
        let mut guard = slot.write().expect("shard lock poisoned");
        guard.ingest(new, &self.measure)?;
        if let Some(d) = &self.durability {
            d.log_ingest(shard, guard.epoch(), new)?;
        }
        Ok(())
    }

    /// Pipelined streaming insert: pulls chunks from `chunks` on a
    /// dedicated producer thread and extends the shard's packed matrix
    /// chunk by chunk on the calling thread, so the producer's work —
    /// typically the data owner's encryption, e.g.
    /// `dpe_paillier::batch::BatchEncryptor::encrypt_stream` feeding query
    /// assembly — overlaps with the server-side distance computation.
    ///
    /// Each non-empty chunk is one epoch-bumping [`Server::ingest`] under
    /// its own write-lock acquisition, so readers of this shard interleave
    /// between chunks and other shards are never blocked. A bounded
    /// channel (capacity 2) applies backpressure to a producer that
    /// outruns ingestion. Returns the total item count applied; on error
    /// the already-applied chunks remain (their epochs already bumped) and
    /// the producer is cut off.
    pub fn ingest_stream<I>(&self, shard: usize, chunks: I) -> Result<usize, ServerError>
    where
        I: IntoIterator<Item = Vec<Query>>,
        I::IntoIter: Send,
    {
        let slot = self.shards.get(shard).ok_or(ServerError::UnknownShard {
            shard,
            shards: self.shards.len(),
        })?;
        let iter = chunks.into_iter();
        let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<Query>>(2);
        let mut total = 0usize;
        let mut result = Ok(());
        std::thread::scope(|scope| {
            let producer = scope.spawn(move || {
                for chunk in iter {
                    // A closed receiver means ingestion failed: stop
                    // producing instead of blocking forever.
                    if tx.send(chunk).is_err() {
                        return;
                    }
                }
            });
            while let Ok(chunk) = rx.recv() {
                // Empty chunks are skipped without an epoch bump — the
                // same semantics as `Shard::ingest_stream`, which this
                // loop unrolls so each applied chunk can be WAL-logged
                // inside its own write-lock hold.
                if chunk.is_empty() {
                    continue;
                }
                let applied = {
                    let mut guard = slot.write().expect("shard lock poisoned");
                    // dpe-analyze: allow(lock-reentrant, reason = "bare-name collision in the analyzer's call graph: this is Shard::ingest on the already-held guard (lock-free), conflated with Server::ingest")
                    guard.ingest(&chunk, &self.measure).and_then(|()| {
                        if let Some(d) = &self.durability {
                            d.log_ingest(shard, guard.epoch(), &chunk)?;
                        }
                        Ok(())
                    })
                };
                match applied {
                    Ok(()) => total += chunk.len(),
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            drop(rx);
            // The producer runs caller-supplied iterator code: a panic
            // there is the caller's bug, surfaced as a typed error rather
            // than a panic propagated out of the server. Chunks applied
            // before the panic remain ingested (each chunk commits its
            // own epoch), which the error's Display spells out.
            if producer.join().is_err() && result.is_ok() {
                result = Err(ServerError::ProducerPanicked);
            }
        });
        result.map(|()| total)
    }

    /// Enqueues a request, returning its ticket. Safe to call from any
    /// number of threads; the request is answered by the next
    /// [`Server::drain`].
    pub fn submit(&self, request: Request) -> Result<Ticket, ServerError> {
        let shard = request.shard();
        if shard >= self.shards.len() {
            return Err(ServerError::UnknownShard {
                shard,
                shards: self.shards.len(),
            });
        }
        let ticket = Ticket(self.next_ticket.fetch_add(1, Ordering::Relaxed));
        self.queues.push(shard, (ticket, request));
        Ok(ticket)
    }

    /// Requests currently enqueued and not yet drained.
    pub fn queued(&self) -> usize {
        self.queues.pending()
    }

    /// Answers everything enqueued, on `threads` work-stealing workers,
    /// returning `(ticket, result)` pairs sorted by ticket (= submission
    /// order). Each shard's pending requests are coalesced into one batch
    /// answered under a single read-lock acquisition.
    pub fn drain(&self, threads: usize) -> Vec<(Ticket, Result<Response, ServerError>)> {
        let mut results = self
            .queues
            .drain(threads, |shard, jobs| self.answer_shard_batch(shard, jobs));
        results.sort_by_key(|&(t, _)| t);
        results
    }

    /// Synchronous fast path: answers `requests` (grouped by shard, same
    /// work-stealing workers and cache as [`Server::drain`]) and returns
    /// the results in input order.
    pub fn serve_batch(
        &self,
        requests: &[Request],
        threads: usize,
    ) -> Vec<Result<Response, ServerError>> {
        let queues: ShardQueues<(usize, &Request)> = ShardQueues::new(self.shards.len());
        let mut out: Vec<Option<Result<Response, ServerError>>> = vec![None; requests.len()];
        let mut misrouted: Vec<(usize, ServerError)> = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            let shard = req.shard();
            if shard >= self.shards.len() {
                misrouted.push((
                    i,
                    ServerError::UnknownShard {
                        shard,
                        shards: self.shards.len(),
                    },
                ));
            } else {
                queues.push(shard, (i, req));
            }
        }
        let answered = queues.drain(threads, |shard, jobs| {
            let jobs: VecDeque<(Ticket, Request)> = jobs
                .into_iter()
                .map(|(i, r)| (Ticket(i as u64), r.clone()))
                .collect();
            self.answer_shard_batch(shard, jobs)
        });
        self.queues.absorb(queues.stats());
        for (Ticket(i), result) in answered {
            out[i as usize] = Some(result);
        }
        for (i, err) in misrouted {
            out[i] = Some(Err(err));
        }
        out.into_iter()
            .map(|r| r.expect("every request answered exactly once"))
            .collect()
    }

    /// Per-query dispatch baseline: answers one request with one lock
    /// acquisition and **no** cache involvement (response cache *and* plan
    /// cache are both bypassed). This is what serving looks like without
    /// the batching layer — the `server_throughput` bench measures the gap.
    pub fn serve_one_uncached(&self, request: &Request) -> Result<Response, ServerError> {
        let (response, metrics) = self
            .read_shard(request.shard())?
            .answer_with_metrics(request)?;
        self.record_exec(&metrics);
        Ok(response)
    }

    /// Answers one request through the plan executor *with* the plan cache
    /// but **skipping the response cache**, returning the response together
    /// with the query's own [`ExecutionMetrics`] — the per-query
    /// observability hook (`EXPLAIN ANALYZE` for the encrypted store).
    pub fn explain(&self, request: &Request) -> Result<(Response, ExecutionMetrics), ServerError> {
        let shard = request.shard();
        let guard = self.read_shard(shard)?;
        let plan = PhysicalPlan::compile(request);
        let mut metrics = ExecutionMetrics::default();
        let mut plans = CachedPlans {
            shard: &guard,
            epoch: guard.epoch(),
            cache: &self.plans[shard],
        };
        let response = exec::execute(&guard, shard, &plan, &mut plans, &mut metrics)?;
        drop(guard);
        self.record_exec(&metrics);
        Ok((response, metrics))
    }

    /// Answers one coalesced shard batch under a single read-lock
    /// acquisition, consulting the shard's cache partition per request,
    /// then compiling the request into a [`PhysicalPlan`] and running the
    /// plan executor. Same-plan requests are grouped adjacently first, and
    /// dendrograms resolve through the shard's plan cache (built at most
    /// once per `(epoch, linkage)` — the epoch was read under this read
    /// lock, so a cached plan provably describes the store answering the
    /// batch), so one build amortizes across every `Hierarchical` cut in
    /// the batch.
    fn answer_shard_batch(
        &self,
        shard: usize,
        jobs: VecDeque<(Ticket, Request)>,
    ) -> Vec<(Ticket, Result<Response, ServerError>)> {
        let guard = self.shards[shard].read().expect("shard lock poisoned");
        let epoch = guard.epoch();
        let cache = &self.caches[shard];
        group_stable_by(jobs, |(_, r)| r.plan())
            .into_iter()
            .map(|(ticket, request)| {
                let key = CacheKey {
                    shard,
                    epoch,
                    request: request.fingerprint(),
                };
                if let Some(hit) = cache.lock().expect("cache lock poisoned").get(&key) {
                    self.record_exec(&ExecutionMetrics {
                        cache_hits: 1,
                        ..ExecutionMetrics::default()
                    });
                    return (ticket, Ok(hit));
                }
                let plan = PhysicalPlan::compile(&request);
                let mut metrics = ExecutionMetrics::default();
                let mut plans = CachedPlans {
                    shard: &guard,
                    epoch,
                    cache: &self.plans[shard],
                };
                let result = exec::execute(&guard, shard, &plan, &mut plans, &mut metrics);
                self.record_exec(&metrics);
                if let Ok(response) = &result {
                    cache
                        .lock()
                        .expect("cache lock poisoned")
                        .put(key, response.clone());
                }
                (ticket, result)
            })
            .collect()
    }

    /// Writes an epoch-consistent snapshot of every shard (ciphertext
    /// store + packed matrix) and resets the WALs behind it, returning
    /// the snapshot sequence number. Requires
    /// [`ServerBuilder::durability`]; refused with a typed error
    /// otherwise.
    ///
    /// Epoch consistency comes from lock order: all shard read locks are
    /// acquired (in index order) before any byte is written, so no ingest
    /// can slide between "shard 0 snapshotted" and "shard 1 snapshotted".
    /// Queries keep being served throughout — only writers wait.
    pub fn checkpoint(&self) -> Result<u64, ServerError> {
        let Some(d) = &self.durability else {
            return Err(ServerError::BadRequest(
                "checkpoint() requires a durable server — configure \
                 ServerBuilder::durability(path) first"
                    .into(),
            ));
        };
        // Hold every read lock for the duration: the snapshot is a
        // single cross-shard cut of the epoch frontier.
        let guards: Vec<_> = (0..self.shards.len())
            .map(|s| self.shards[s].read().expect("shard lock poisoned"))
            .collect();
        let states: Vec<ShardStateRef<'_>> = guards
            .iter()
            .map(|g| ShardStateRef {
                epoch: g.epoch(),
                queries: g.queries(),
                matrix: g.matrix(),
            })
            .collect();
        Ok(d.checkpoint(&states)?)
    }

    /// Folds one query's metrics into the server-wide totals.
    fn record_exec(&self, metrics: &ExecutionMetrics) {
        let mut totals = self.exec_totals.lock().expect("exec totals lock poisoned");
        totals.queries += 1;
        totals.metrics.merge(metrics);
    }

    /// One coherent snapshot of every counter the engine keeps: response
    /// cache, scheduler, clustering-plan cache, and the aggregated
    /// [`ExecutionMetrics`] over all answered queries. The plan-cache
    /// amortization claim is checkable here: serving `cut(k)` for many `k`
    /// against an unchanged store must grow `plans.hits` while
    /// `plans.builds` stays put.
    pub fn stats(&self) -> ServerStats {
        let cache = self.caches.iter().fold(CacheStats::default(), |acc, c| {
            let s = c.lock().expect("cache lock poisoned").stats();
            CacheStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
                evictions: acc.evictions + s.evictions,
                len: acc.len + s.len,
            }
        });
        let plans = self.plans.iter().fold(PlanStats::default(), |acc, p| {
            let s = p.lock().expect("plan lock poisoned").stats();
            PlanStats {
                builds: acc.builds + s.builds,
                hits: acc.hits + s.hits,
                invalidations: acc.invalidations + s.invalidations,
                live: acc.live + s.live,
            }
        });
        let (queries, exec) = {
            let totals = self.exec_totals.lock().expect("exec totals lock poisoned");
            (totals.queries, totals.metrics.clone())
        };
        ServerStats {
            cache,
            scheduler: self.queues.stats(),
            plans,
            queries,
            exec,
            durability: self.durability.as_ref().map(|d| d.stats()),
        }
    }

    /// Empties every cache partition (counters keep accumulating) — used
    /// by the cold-cache bench configurations.
    pub fn clear_cache(&self) {
        for cache in &self.caches {
            cache.lock().expect("cache lock poisoned").clear();
        }
    }

    /// Drops every cached clustering plan (counters keep accumulating) —
    /// used by the cold-plan bench configurations. Never needed for
    /// correctness: epoch keying already makes stale plans unreachable.
    pub fn clear_plans(&self) {
        for plans in &self.plans {
            plans.lock().expect("plan lock poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_distance::TokenDistance;
    use dpe_sql::parse_query;

    fn queries(n: usize, salt: usize) -> Vec<Query> {
        (0..n)
            .map(|i| {
                parse_query(&format!(
                    "SELECT ra, a{} FROM t{} WHERE objid = {}",
                    (i + salt) % 5,
                    (i + salt) % 3,
                    i * 13 + salt
                ))
                .unwrap()
            })
            .collect()
    }

    fn server() -> Server<TokenDistance> {
        let s = Server::builder(TokenDistance)
            .shards(3)
            .cache_capacity(64)
            .build();
        for shard in 0..3 {
            s.ingest(shard, &queries(8 + shard, shard * 100)).unwrap();
        }
        s
    }

    #[test]
    fn ingest_stream_matches_one_shot_ingest() {
        let all = queries(14, 0);
        let oracle = Server::builder(TokenDistance).build();
        oracle.ingest(0, &all).unwrap();

        let s = Server::builder(TokenDistance).build();
        // Chunks are produced lazily on the stream's producer thread —
        // the shape of an owner encrypting while the server ingests.
        let chunks = (0..4).map(|i| all[i * 4..(i * 4 + 4).min(14)].to_vec());
        let total = s.ingest_stream(0, chunks).unwrap();
        assert_eq!(total, 14);
        assert_eq!(s.shard_len(0).unwrap(), 14);
        assert_eq!(s.shard_epoch(0).unwrap(), 4, "one epoch bump per chunk");
        let req = Request::Knn {
            shard: 0,
            item: 3,
            k: 6,
        };
        assert!(s
            .serve_one_uncached(&req)
            .unwrap()
            .bits_eq(&oracle.serve_one_uncached(&req).unwrap()));
    }

    #[test]
    fn ingest_stream_rejects_unknown_shard_without_consuming() {
        let s = server();
        let err = s
            .ingest_stream(9, std::iter::once(queries(2, 0)))
            .unwrap_err();
        assert!(matches!(err, ServerError::UnknownShard { shard: 9, .. }));
    }

    #[test]
    fn ingest_stream_surfaces_producer_panic_as_typed_error() {
        let s = Server::builder(TokenDistance).build();
        let chunks = (0..3).map(|i| {
            if i == 1 {
                panic!("caller iterator bug");
            }
            queries(2, 0)
        });
        let err = s.ingest_stream(0, chunks).unwrap_err();
        assert!(matches!(err, ServerError::ProducerPanicked));
        // The chunk applied before the panic stays ingested.
        assert_eq!(s.shard_len(0).unwrap(), 2);
    }

    #[test]
    fn submit_drain_answers_in_ticket_order() {
        let s = server();
        let reqs = [
            Request::Knn {
                shard: 0,
                item: 2,
                k: 3,
            },
            Request::Range {
                shard: 1,
                item: 0,
                radius: 0.6,
            },
            Request::Lof {
                shard: 2,
                min_pts: 2,
            },
            Request::Knn {
                shard: 1,
                item: 4,
                k: 2,
            },
        ];
        let tickets: Vec<Ticket> = reqs.iter().map(|r| s.submit(r.clone()).unwrap()).collect();
        assert_eq!(s.queued(), 4);
        let results = s.drain(2);
        assert_eq!(s.queued(), 0);
        assert_eq!(results.len(), 4);
        for ((ticket, result), (expected, req)) in results.iter().zip(tickets.iter().zip(&reqs)) {
            assert_eq!(ticket, expected);
            let oracle = s.serve_one_uncached(req).unwrap();
            assert!(result.as_ref().unwrap().bits_eq(&oracle), "{req:?}");
        }
    }

    #[test]
    fn serve_batch_preserves_input_order_with_errors_inline() {
        let s = server();
        let reqs = vec![
            Request::Knn {
                shard: 2,
                item: 1,
                k: 4,
            },
            Request::Knn {
                shard: 9,
                item: 0,
                k: 1,
            }, // unknown shard
            Request::Lof {
                shard: 0,
                min_pts: 99,
            }, // bad min_pts
            Request::Range {
                shard: 0,
                item: 3,
                radius: 0.4,
            },
        ];
        let results = s.serve_batch(&reqs, 3);
        assert_eq!(results.len(), 4);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(ServerError::UnknownShard { .. })));
        assert!(matches!(results[2], Err(ServerError::BadRequest(_))));
        let oracle = s.serve_one_uncached(&reqs[3]).unwrap();
        assert!(results[3].as_ref().unwrap().bits_eq(&oracle));
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let s = server();
        let req = Request::Lof {
            shard: 1,
            min_pts: 3,
        };
        let first = s.serve_batch(std::slice::from_ref(&req), 1);
        let before = s.stats();
        let second = s.serve_batch(std::slice::from_ref(&req), 1);
        let after = s.stats();
        assert!(first[0]
            .as_ref()
            .unwrap()
            .bits_eq(second[0].as_ref().unwrap()));
        assert_eq!(
            after.cache.hits,
            before.cache.hits + 1,
            "second serve must be a hit"
        );
        assert_eq!(
            after.exec.cache_hits,
            before.exec.cache_hits + 1,
            "the hit must surface in the aggregated executor metrics too"
        );
        assert_eq!(after.queries, before.queries + 1);
    }

    #[test]
    fn ingest_invalidates_cached_responses_via_epoch() {
        let s = server();
        let req = Request::Knn {
            shard: 0,
            item: 0,
            k: 20,
        };
        let before = &s.serve_batch(std::slice::from_ref(&req), 1)[0];
        let n_before = match before.as_ref().unwrap() {
            Response::Indices(v) => v.len(),
            _ => unreachable!(),
        };
        // Insert two more items: k = 20 now returns two more neighbours,
        // so a stale cache hit would be observable immediately.
        s.ingest(0, &queries(2, 777)).unwrap();
        let after = &s.serve_batch(std::slice::from_ref(&req), 1)[0];
        let n_after = match after.as_ref().unwrap() {
            Response::Indices(v) => v.len(),
            _ => unreachable!(),
        };
        assert_eq!(
            n_after,
            n_before + 2,
            "stale cached kNN served after ingest"
        );
        let oracle = s.serve_one_uncached(&req).unwrap();
        assert!(after.as_ref().unwrap().bits_eq(&oracle));
    }

    #[test]
    fn errors_are_not_cached() {
        let s = server();
        let bad = Request::Knn {
            shard: 0,
            item: 500,
            k: 1,
        };
        let r1 = &s.serve_batch(std::slice::from_ref(&bad), 1)[0];
        assert!(matches!(r1, Err(ServerError::ItemOutOfBounds { .. })));
        // Grow the shard past the index; the request must now succeed —
        // an (incorrectly) cached error would resurface here even though
        // the epoch changed... which it can't, because epochs key the
        // cache. Grow enough to cover item 500? No: just assert the error
        // repeats identically while the store is unchanged.
        let r2 = &s.serve_batch(std::slice::from_ref(&bad), 1)[0];
        assert_eq!(r1, r2);
        assert_eq!(s.stats().cache.len, 0, "errors must not occupy cache slots");
    }

    #[test]
    fn submit_rejects_unknown_shard_eagerly() {
        let s = server();
        let err = s
            .submit(Request::Knn {
                shard: 3,
                item: 0,
                k: 1,
            })
            .unwrap_err();
        assert_eq!(
            err,
            ServerError::UnknownShard {
                shard: 3,
                shards: 3
            }
        );
        assert_eq!(s.queued(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        Server::builder(TokenDistance).shards(0).build();
    }

    fn durable_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dpe-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_server_recovers_bit_identical_responses() {
        let dir = durable_dir("round-trip");
        let s = Server::builder(TokenDistance)
            .shards(2)
            .durability(&dir)
            .build();
        s.ingest(0, &queries(6, 0)).unwrap();
        s.ingest(1, &queries(5, 50)).unwrap();
        // Snapshot mid-history, then keep writing: recovery must combine
        // the snapshot base with the WAL tail past its epoch.
        let seq = s.checkpoint().unwrap();
        assert_eq!(seq, 1);
        s.ingest(0, &queries(3, 100)).unwrap();
        let stats = s.stats().durability.expect("durable server has stats");
        assert_eq!(stats.checkpoints, 1);
        assert!(stats.wal_records >= 1, "post-checkpoint ingest re-logged");
        let reqs = [
            Request::Knn {
                shard: 0,
                item: 2,
                k: 4,
            },
            Request::Range {
                shard: 1,
                item: 1,
                radius: 0.7,
            },
            Request::Lof {
                shard: 0,
                min_pts: 2,
            },
        ];
        let oracle: Vec<Response> = reqs
            .iter()
            .map(|r| s.serve_one_uncached(r).unwrap())
            .collect();
        let epochs = [s.shard_epoch(0).unwrap(), s.shard_epoch(1).unwrap()];
        drop(s);

        let r = Server::builder(TokenDistance)
            .durability(&dir)
            .recover()
            .unwrap();
        assert_eq!(r.shard_count(), 2, "shard count adopted from manifest");
        assert_eq!(
            [r.shard_epoch(0).unwrap(), r.shard_epoch(1).unwrap()],
            epochs,
            "recovery replays to the exact epoch frontier"
        );
        for (req, expected) in reqs.iter().zip(&oracle) {
            assert!(
                r.serve_one_uncached(req).unwrap().bits_eq(expected),
                "{req:?}"
            );
        }
        // Post-recovery ingests keep logging through the same engine.
        r.ingest(1, &queries(2, 300)).unwrap();
        assert_eq!(r.shard_epoch(1).unwrap(), epochs[1] + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_requires_durability() {
        let s = server();
        assert!(matches!(s.checkpoint(), Err(ServerError::BadRequest(_))));
        assert_eq!(s.stats().durability, None);
    }

    #[test]
    fn durable_build_refuses_existing_state_as_typed_error() {
        let dir = durable_dir("refuse-existing");
        let s = Server::builder(TokenDistance)
            .durability(&dir)
            .try_build()
            .unwrap();
        drop(s);
        let err = Server::builder(TokenDistance)
            .durability(&dir)
            .try_build()
            .unwrap_err();
        assert!(
            matches!(
                &err,
                ServerError::Durability(dpe_durability::DurabilityError::ExistingState { .. })
            ),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_rejects_mismatched_shard_count() {
        let dir = durable_dir("shard-mismatch");
        drop(
            Server::builder(TokenDistance)
                .shards(3)
                .durability(&dir)
                .build(),
        );
        let err = Server::builder(TokenDistance)
            .shards(2)
            .durability(&dir)
            .recover()
            .unwrap_err();
        assert!(
            matches!(
                &err,
                ServerError::Durability(dpe_durability::DurabilityError::Manifest(_))
            ),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_ingest_stream_logs_every_applied_chunk() {
        let dir = durable_dir("stream");
        let s = Server::builder(TokenDistance).durability(&dir).build();
        let all = queries(9, 0);
        let chunks = vec![
            all[0..4].to_vec(),
            Vec::new(), // skipped: no epoch bump, no WAL record
            all[4..9].to_vec(),
        ];
        assert_eq!(s.ingest_stream(0, chunks).unwrap(), 9);
        assert_eq!(s.shard_epoch(0).unwrap(), 2);
        assert_eq!(s.stats().durability.unwrap().wal_records, 2);
        let oracle = s
            .serve_one_uncached(&Request::Knn {
                shard: 0,
                item: 3,
                k: 5,
            })
            .unwrap();
        drop(s);
        let r = Server::builder(TokenDistance)
            .durability(&dir)
            .recover()
            .unwrap();
        assert_eq!(r.shard_epoch(0).unwrap(), 2);
        assert!(r
            .serve_one_uncached(&Request::Knn {
                shard: 0,
                item: 3,
                k: 5,
            })
            .unwrap()
            .bits_eq(&oracle));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_metric_index_stays_bit_identical() {
        let dir = durable_dir("recovered-index");
        let s = Server::builder(TokenDistance)
            .metric_index(true)
            .durability(&dir)
            .build();
        s.ingest(0, &queries(16, 7)).unwrap();
        let req = Request::Knn {
            shard: 0,
            item: 5,
            k: 6,
        };
        let oracle = s.serve_one_uncached(&req).unwrap();
        drop(s);
        let r = Server::builder(TokenDistance)
            .metric_index(true)
            .durability(&dir)
            .recover()
            .unwrap();
        assert!(r.has_index(0).unwrap(), "index rebuilt eagerly on recover");
        assert!(r.serve_one_uncached(&req).unwrap().bits_eq(&oracle));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn indexed_server_matches_plain_server_bitwise() {
        let indexed = Server::builder(TokenDistance)
            .shards(2)
            .metric_index(true)
            .build();
        let plain = Server::builder(TokenDistance).shards(2).build();
        for shard in 0..2 {
            assert!(indexed.has_index(shard).unwrap());
            assert!(!plain.has_index(shard).unwrap());
            let log = queries(14 + shard, shard * 31);
            indexed.ingest(shard, &log).unwrap();
            plain.ingest(shard, &log).unwrap();
        }
        for shard in 0..2 {
            for item in 0..14 {
                for req in [
                    Request::Knn { shard, item, k: 5 },
                    Request::Range {
                        shard,
                        item,
                        radius: 0.45,
                    },
                ] {
                    let a = indexed.serve_one_uncached(&req).unwrap();
                    let b = plain.serve_one_uncached(&req).unwrap();
                    assert!(a.bits_eq(&b), "{req:?}");
                }
            }
        }
    }

    #[test]
    fn explain_surfaces_pruned_cells_on_indexed_shards() {
        let s = Server::builder(TokenDistance).metric_index(true).build();
        s.ingest(0, &queries(20, 0)).unwrap();
        let (_, m) = s
            .explain(&Request::Knn {
                shard: 0,
                item: 3,
                k: 2,
            })
            .unwrap();
        // Every item is either computed or pruned — the indexed Knn op
        // touches exactly n cells' worth of accounting, never more.
        assert_eq!(m.distance_cells + m.pruned_cells, 20);
        let (_, m) = s
            .explain(&Request::Range {
                shard: 0,
                item: 3,
                radius: 0.2,
            })
            .unwrap();
        assert_eq!(m.distance_cells + m.pruned_cells, 20);
    }

    #[test]
    fn build_index_refuses_non_metric_measures() {
        /// A measure that never declares the triangle inequality
        /// (`is_metric` defaults to false).
        #[derive(Debug)]
        struct NotAMetric;
        impl QueryDistance for NotAMetric {
            fn distance(
                &self,
                _: &dpe_sql::Query,
                _: &dpe_sql::Query,
            ) -> Result<f64, dpe_distance::DistanceError> {
                Ok(0.5)
            }
            fn name(&self) -> &'static str {
                "not-a-metric"
            }
        }
        let s = Server::builder(NotAMetric).build();
        assert!(matches!(s.build_index(0), Err(ServerError::BadRequest(_))));
        assert!(!s.has_index(0).unwrap());
    }

    #[test]
    #[should_panic(expected = "metric_index requires a metric measure")]
    fn builder_metric_index_panics_for_non_metric_measures() {
        #[derive(Debug)]
        struct NotAMetric;
        impl QueryDistance for NotAMetric {
            fn distance(
                &self,
                _: &dpe_sql::Query,
                _: &dpe_sql::Query,
            ) -> Result<f64, dpe_distance::DistanceError> {
                Ok(0.5)
            }
            fn name(&self) -> &'static str {
                "not-a-metric"
            }
        }
        Server::builder(NotAMetric).metric_index(true).build();
    }

    #[test]
    fn retrofitted_and_dropped_indexes_round_trip() {
        let s = server();
        assert!(!s.has_index(0).unwrap());
        s.build_index(0).unwrap();
        assert!(s.has_index(0).unwrap());
        let req = Request::Knn {
            shard: 0,
            item: 2,
            k: 4,
        };
        let indexed = s.serve_one_uncached(&req).unwrap();
        s.drop_index(0).unwrap();
        assert!(!s.has_index(0).unwrap());
        let plain = s.serve_one_uncached(&req).unwrap();
        assert!(indexed.bits_eq(&plain));
        assert!(matches!(
            s.build_index(9),
            Err(ServerError::UnknownShard { shard: 9, .. })
        ));
    }

    #[test]
    fn one_plan_build_serves_every_cut_in_a_batch() {
        use dpe_mining::Linkage;
        let s = server();
        // A k-sweep over one shard and linkage, interleaved with non-plan
        // traffic: the whole batch must cost exactly one dendrogram build.
        let mut reqs: Vec<Request> = (1..=8)
            .map(|k| Request::Hierarchical {
                shard: 0,
                linkage: Linkage::Complete,
                k,
            })
            .collect();
        reqs.insert(
            3,
            Request::Knn {
                shard: 0,
                item: 1,
                k: 2,
            },
        );
        let results = s.serve_batch(&reqs, 2);
        for (req, result) in reqs.iter().zip(&results) {
            let oracle = s.serve_one_uncached(req).unwrap();
            assert!(result.as_ref().unwrap().bits_eq(&oracle), "{req:?}");
        }
        let stats = s.stats().plans;
        assert_eq!(stats.builds, 1, "one dendrogram for the whole sweep");
        assert_eq!(stats.hits, 7);

        // New k values against the unchanged store: zero further builds.
        let more: Vec<Request> = [2usize, 5, 7]
            .iter()
            .map(|&k| Request::Hierarchical {
                shard: 0,
                linkage: Linkage::Complete,
                k,
            })
            .collect();
        s.clear_cache(); // force plan reuse, not response-cache hits
        let _ = s.serve_batch(&more, 1);
        let stats = s.stats().plans;
        assert_eq!(stats.builds, 1, "warm plan must serve varying k");
        assert_eq!(stats.hits, 10);
    }

    #[test]
    fn distinct_linkages_and_shards_build_distinct_plans() {
        use dpe_mining::Linkage;
        let s = server();
        let reqs = vec![
            Request::Hierarchical {
                shard: 0,
                linkage: Linkage::Complete,
                k: 2,
            },
            Request::Hierarchical {
                shard: 0,
                linkage: Linkage::Single,
                k: 2,
            },
            Request::Hierarchical {
                shard: 1,
                linkage: Linkage::Complete,
                k: 2,
            },
        ];
        let results = s.serve_batch(&reqs, 3);
        assert!(results.iter().all(|r| r.is_ok()));
        let stats = s.stats().plans;
        assert_eq!((stats.builds, stats.live), (3, 3));
    }

    #[test]
    fn clustering_responses_cache_like_any_other() {
        let s = server();
        let req = Request::KMedoids { shard: 2, k: 3 };
        let first = s.serve_batch(std::slice::from_ref(&req), 1);
        let before = s.stats();
        let second = s.serve_batch(std::slice::from_ref(&req), 1);
        let after = s.stats();
        assert!(first[0]
            .as_ref()
            .unwrap()
            .bits_eq(second[0].as_ref().unwrap()));
        assert_eq!(after.cache.hits, before.cache.hits + 1);
    }

    #[test]
    fn explain_returns_per_query_metrics() {
        let s = server();
        let (response, metrics) = s
            .explain(&Request::Knn {
                shard: 0,
                item: 2,
                k: 3,
            })
            .unwrap();
        assert!(response.bits_eq(
            &s.serve_one_uncached(&Request::Knn {
                shard: 0,
                item: 2,
                k: 3,
            })
            .unwrap()
        ));
        assert_eq!(metrics.rows_scanned, 8, "shard 0 holds 8 items");
        assert!(metrics.distance_cells > 0);
        assert!(metrics.total_nanos > 0);
        assert_eq!(metrics.cache_hits, 0, "explain skips the response cache");
        let ops: Vec<&str> = metrics.ops.iter().map(|o| o.op).collect();
        assert_eq!(ops, ["Scan", "Knn", "Project"]);

        // A hierarchical explain resolves through the plan cache: the
        // second call for the same (epoch, linkage) must be a plan hit.
        let h = Request::Hierarchical {
            shard: 1,
            linkage: dpe_mining::Linkage::Average,
            k: 3,
        };
        let (_, m1) = s.explain(&h).unwrap();
        assert_eq!((m1.plan_builds, m1.plan_hits), (1, 0));
        let (_, m2) = s.explain(&h).unwrap();
        assert_eq!((m2.plan_builds, m2.plan_hits), (0, 1));
    }
}
