//! The encrypted-SQL front door.
//!
//! A shard's pairwise distances can be *viewed* as a relational table: one
//! row per ordered pair `(item, anchor)` carrying the distance between
//! them. [`SqlTable`] registers such a virtual "pairs" table against a
//! shard, and [`Server::sql`] answers a SELECT subset over it by lowering
//! the query onto the same [`PlanOp`] algebra every other request compiles
//! to — one execution path, one cache, one metrics stream:
//!
//! ```sql
//! SELECT item FROM pairs
//! WHERE anchor = 3 AND dist <= 4602891378046628709
//! ORDER BY dist LIMIT 2
//! ```
//!
//! becomes `Scan → FilterRange{3, r} → Knn{3, 2} → Project(Items)`.
//!
//! Distances are stored as their **order-preserving integer image**
//! ([`dist_literal`]): for non-negative `f64`s, `to_bits() as i64` is
//! monotone, so integer comparisons in SQL agree exactly with float
//! comparisons in the executor — no epsilon anywhere. That exactness is
//! what lets the differential suite pin `Server::sql` bit-identical to
//! [`dpe_minidb`] executing the same SELECT over the materialized mirror
//! ([`Server::plaintext_mirror`]).
//!
//! Under the paper's threat model the *identifiers* of such a query are
//! sensitive but the distances are provider-visible, so the onion story is:
//! encrypt table/column names with `dpe_cryptdb::IdentRewriter` (DET
//! identifiers), register the binding under the encrypted names, and send
//! constants in the clear. The server never learns the plaintext schema.

use crate::exec::{PlanOp, Projection};
use crate::request::{Request, Response, ServerError};
use crate::server::Server;
use dpe_distance::QueryDistance;
use dpe_minidb::{ColumnType, Database, TableSchema, Value};
use dpe_sql::analysis::conjuncts;
use dpe_sql::{parse_query, ColumnRef, CompareOp, Expr, Literal, Query, SelectItem};

/// Binding of a virtual "pairs" table onto one shard: the table name (as
/// queried — typically a DET-encrypted identifier) plus the three column
/// spellings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlTable {
    /// Table name as it appears in queries.
    pub table: String,
    /// Shard whose distance matrix backs the table.
    pub shard: usize,
    /// Column holding the non-anchor item index (the SELECT output).
    pub item_col: String,
    /// Column holding the anchor item index (`WHERE anchor = i`).
    pub anchor_col: String,
    /// Column holding the pair's distance as [`dist_literal`] bits.
    pub dist_col: String,
}

/// The order-preserving integer image of a non-negative distance: for
/// `0.0 <= d`, `d.to_bits() as i64` is monotone and injective, so `<=` on
/// the images agrees exactly with `<=` on the distances.
pub fn dist_literal(d: f64) -> i64 {
    d.to_bits() as i64
}

/// Inverse of [`dist_literal`] as a filter radius. Negative images sit
/// below every distance (always-false radius); images in the NaN bit-range
/// sit above every real distance (always-true radius).
fn radius_from_bits(bits: i64) -> f64 {
    if bits < 0 {
        return -1.0;
    }
    let r = f64::from_bits(bits as u64);
    if r.is_nan() {
        f64::INFINITY
    } else {
        r
    }
}

fn col_matches(col: &ColumnRef, binding: &SqlTable, name: &str) -> bool {
    col.column == name && col.table.as_deref().is_none_or(|t| t == binding.table)
}

/// Lowers a parsed SELECT over `binding`'s pairs table into a
/// [`Request::Pipeline`]. The supported shape is
/// `SELECT <item> FROM <table> WHERE <anchor> = A [AND <dist> {<=,<} C]*
/// [ORDER BY <dist> [ASC]] [LIMIT k]`; anything else is
/// [`ServerError::UnsupportedSql`].
pub fn lower_select(query: &Query, binding: &SqlTable) -> Result<Request, ServerError> {
    let unsupported = |why: String| ServerError::UnsupportedSql(why);
    if query.from.name != binding.table {
        return Err(unsupported(format!(
            "table {} is not the bound pairs table",
            query.from.name
        )));
    }
    if query.distinct {
        return Err(unsupported("DISTINCT".into()));
    }
    if !query.joins.is_empty() {
        return Err(unsupported("JOIN".into()));
    }
    if !query.group_by.is_empty() {
        return Err(unsupported("GROUP BY".into()));
    }
    match query.select.as_slice() {
        [SelectItem::Column(c)] if col_matches(c, binding, &binding.item_col) => {}
        _ => {
            return Err(unsupported(format!(
                "SELECT list must be exactly the item column {}",
                binding.item_col
            )))
        }
    }

    let where_clause = query
        .where_clause
        .as_ref()
        .ok_or_else(|| unsupported(format!("WHERE {} = <item> is required", binding.anchor_col)))?;
    let predicates =
        conjuncts(where_clause).ok_or_else(|| unsupported("OR / NOT in WHERE".into()))?;

    // Pass 1: the anchor — exactly one `anchor = A` equality.
    let mut anchor: Option<usize> = None;
    for e in &predicates {
        if let Expr::Comparison { col, op, value } = e {
            if col_matches(col, binding, &binding.anchor_col) {
                if *op != CompareOp::Eq {
                    return Err(unsupported(format!(
                        "{} supports only equality",
                        binding.anchor_col
                    )));
                }
                let Literal::Int(a) = value else {
                    return Err(unsupported(format!(
                        "{} must compare against an integer item index",
                        binding.anchor_col
                    )));
                };
                let a = usize::try_from(*a).map_err(|_| {
                    unsupported(format!("{} index must be non-negative", binding.anchor_col))
                })?;
                if anchor.replace(a).is_some() {
                    return Err(unsupported(format!(
                        "exactly one {} predicate allowed",
                        binding.anchor_col
                    )));
                }
            }
        }
    }
    let anchor = anchor
        .ok_or_else(|| unsupported(format!("WHERE {} = <item> is required", binding.anchor_col)))?;

    // Pass 2: distance predicates, lowered in syntax order. A pipeline of
    // FilterRange ops is the conjunction; with no distance predicate, one
    // infinite-radius filter reproduces the pairs table's `item != anchor`
    // row set.
    let mut ops: Vec<PlanOp> = vec![PlanOp::Scan];
    let mut filtered = false;
    for e in &predicates {
        let Expr::Comparison { col, op, value } = e else {
            return Err(unsupported(format!("unsupported predicate {e:?}")));
        };
        if col_matches(col, binding, &binding.anchor_col) {
            continue;
        }
        if !col_matches(col, binding, &binding.dist_col) {
            return Err(unsupported(format!("unknown column {col}")));
        }
        let Literal::Int(bits) = value else {
            return Err(unsupported(format!(
                "{} must compare against a dist_literal integer",
                binding.dist_col
            )));
        };
        let radius = match op {
            CompareOp::Le => radius_from_bits(*bits),
            // Strict `<` on the monotone bit image is `<=` its predecessor.
            CompareOp::Lt => radius_from_bits(*bits - 1),
            _ => {
                return Err(unsupported(format!(
                    "{} supports only <= and <",
                    binding.dist_col
                )))
            }
        };
        ops.push(PlanOp::FilterRange {
            item: anchor,
            radius,
        });
        filtered = true;
    }
    if !filtered {
        ops.push(PlanOp::FilterRange {
            item: anchor,
            radius: f64::INFINITY,
        });
    }

    match query.order_by.as_slice() {
        [] => {
            if let Some(k) = query.limit {
                ops.push(PlanOp::Limit(k as usize));
            }
        }
        [o] if col_matches(&o.col, binding, &binding.dist_col) && !o.desc => {
            let k = query
                .limit
                .ok_or_else(|| unsupported("ORDER BY requires LIMIT".into()))?;
            ops.push(PlanOp::Knn {
                item: anchor,
                k: k as usize,
            });
        }
        _ => {
            return Err(unsupported(format!(
                "ORDER BY must be exactly {} ascending",
                binding.dist_col
            )))
        }
    }
    ops.push(PlanOp::Project(Projection::Items));

    Ok(Request::Pipeline {
        shard: binding.shard,
        ops,
    })
}

impl<M: QueryDistance + Sync> Server<M> {
    /// Registers (or replaces) a virtual pairs-table binding. Queries sent
    /// to [`Server::sql`] resolve their FROM table against these bindings
    /// by exact name — registering DET-encrypted names gives the encrypted
    /// front door.
    pub fn register_sql_table(&self, binding: SqlTable) -> Result<(), ServerError> {
        if binding.shard >= self.shard_count() {
            return Err(ServerError::UnknownShard {
                shard: binding.shard,
                shards: self.shard_count(),
            });
        }
        self.sql_tables
            .lock()
            .expect("sql tables lock poisoned")
            .insert(binding.table.clone(), binding);
        Ok(())
    }

    /// Parses and lowers a SELECT without executing it — the front door's
    /// EXPLAIN. The returned request is what [`Server::sql`] would serve.
    pub fn sql_to_request(&self, text: &str) -> Result<Request, ServerError> {
        let query =
            parse_query(text).map_err(|e| ServerError::UnsupportedSql(format!("parse: {e}")))?;
        let binding = self
            .sql_tables
            .lock()
            .expect("sql tables lock poisoned")
            .get(&query.from.name)
            .cloned()
            .ok_or_else(|| {
                ServerError::UnsupportedSql(format!(
                    "no pairs table registered as {}",
                    query.from.name
                ))
            })?;
        lower_select(&query, &binding)
    }

    /// Answers a SELECT over a registered pairs table through the same
    /// batch path as every other request — compiled to a plan, answered
    /// under one shard read lock, response-cached and metered.
    pub fn sql(&self, text: &str) -> Result<Response, ServerError> {
        let request = self.sql_to_request(text)?;
        self.serve_batch(std::slice::from_ref(&request), 1)
            .pop()
            .expect("one request yields exactly one result")
    }

    /// Materializes the plaintext relational mirror of a registered pairs
    /// table: one row `(item, anchor, dist_literal(d))` per ordered pair
    /// with `item != anchor`, inserted anchor-major then item-ascending so
    /// `dpe_minidb`'s stable ORDER BY breaks distance ties exactly like the
    /// executor's index-ascending kNN tie-break. The differential suite
    /// executes the same SELECT against this mirror and demands bit-equal
    /// results.
    pub fn plaintext_mirror(&self, table: &str) -> Result<Database, ServerError> {
        let binding = self
            .sql_tables
            .lock()
            .expect("sql tables lock poisoned")
            .get(table)
            .cloned()
            .ok_or_else(|| {
                ServerError::UnsupportedSql(format!("no pairs table registered as {table}"))
            })?;
        let guard = self.read_shard(binding.shard)?;
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            binding.table.clone(),
            vec![
                (binding.item_col.as_str(), ColumnType::Int),
                (binding.anchor_col.as_str(), ColumnType::Int),
                (binding.dist_col.as_str(), ColumnType::Int),
            ],
        ))
        .expect("fresh database has no table to collide with");
        let n = guard.len();
        for anchor in 0..n {
            for item in 0..n {
                if item == anchor {
                    continue;
                }
                db.insert(
                    &binding.table,
                    vec![
                        Value::Int(item as i64),
                        Value::Int(anchor as i64),
                        Value::Int(dist_literal(guard.matrix().get(anchor, item))),
                    ],
                )
                .expect("mirror row matches the schema it was built from");
            }
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binding() -> SqlTable {
        SqlTable {
            table: "pairs".into(),
            shard: 1,
            item_col: "item".into(),
            anchor_col: "anchor".into(),
            dist_col: "dist".into(),
        }
    }

    fn lower(sql: &str) -> Result<Request, ServerError> {
        lower_select(&parse_query(sql).unwrap(), &binding())
    }

    #[test]
    fn dist_literal_is_monotone() {
        let ds = [0.0, 1e-300, 0.25, 0.5, 1.0, 3.5, f64::INFINITY];
        for w in ds.windows(2) {
            assert!(dist_literal(w[0]) < dist_literal(w[1]));
        }
        assert!(dist_literal(0.0) >= 0);
    }

    #[test]
    fn bare_anchor_query_lowers_to_infinite_filter() {
        let req = lower("SELECT item FROM pairs WHERE anchor = 3").unwrap();
        let Request::Pipeline { shard, ops } = req else {
            panic!("expected pipeline")
        };
        assert_eq!(shard, 1);
        assert_eq!(
            ops,
            vec![
                PlanOp::Scan,
                PlanOp::FilterRange {
                    item: 3,
                    radius: f64::INFINITY
                },
                PlanOp::Project(Projection::Items),
            ]
        );
    }

    #[test]
    fn range_and_knn_clauses_lower_in_order() {
        let c = dist_literal(0.5);
        let req = lower(&format!(
            "SELECT item FROM pairs WHERE dist <= {c} AND anchor = 2 ORDER BY dist LIMIT 4"
        ))
        .unwrap();
        let Request::Pipeline { ops, .. } = req else {
            panic!("expected pipeline")
        };
        assert_eq!(
            ops,
            vec![
                PlanOp::Scan,
                PlanOp::FilterRange {
                    item: 2,
                    radius: 0.5
                },
                PlanOp::Knn { item: 2, k: 4 },
                PlanOp::Project(Projection::Items),
            ]
        );
    }

    #[test]
    fn strict_less_than_decrements_the_bit_image() {
        let c = dist_literal(0.5);
        let req = lower(&format!(
            "SELECT item FROM pairs WHERE anchor = 0 AND dist < {c}"
        ))
        .unwrap();
        let Request::Pipeline { ops, .. } = req else {
            panic!("expected pipeline")
        };
        let PlanOp::FilterRange { radius, .. } = ops[1] else {
            panic!("expected filter")
        };
        assert!(radius < 0.5);
        assert_eq!(dist_literal(radius), c - 1);
    }

    #[test]
    fn limit_without_order_by_lowers_to_limit_op() {
        let req = lower("SELECT item FROM pairs WHERE anchor = 1 LIMIT 3").unwrap();
        let Request::Pipeline { ops, .. } = req else {
            panic!("expected pipeline")
        };
        assert!(matches!(ops[2], PlanOp::Limit(3)));
    }

    #[test]
    fn unsupported_shapes_are_typed_errors() {
        for sql in [
            "SELECT item FROM pairs",                                 // no WHERE
            "SELECT item FROM pairs WHERE dist <= 5",                 // no anchor
            "SELECT item FROM pairs WHERE anchor = 1 OR anchor = 2",  // OR
            "SELECT item FROM pairs WHERE anchor = 1 AND anchor = 2", // two anchors
            "SELECT item FROM pairs WHERE anchor >= 1",               // anchor inequality
            "SELECT item FROM pairs WHERE anchor = -1",               // negative anchor
            "SELECT item FROM pairs WHERE anchor = 1 AND dist >= 5",  // dist lower bound
            "SELECT item FROM pairs WHERE anchor = 1 AND other = 5",  // unknown column
            "SELECT anchor FROM pairs WHERE anchor = 1",              // wrong SELECT list
            "SELECT DISTINCT item FROM pairs WHERE anchor = 1",       // DISTINCT
            "SELECT item FROM pairs WHERE anchor = 1 ORDER BY dist",  // ORDER BY sans LIMIT
            "SELECT item FROM pairs WHERE anchor = 1 ORDER BY dist DESC LIMIT 2", // DESC
            "SELECT item FROM elsewhere WHERE anchor = 1",            // wrong table
        ] {
            assert!(
                matches!(lower(sql), Err(ServerError::UnsupportedSql(_))),
                "{sql}"
            );
        }
    }

    #[test]
    fn negative_dist_literal_is_always_false() {
        let req = lower("SELECT item FROM pairs WHERE anchor = 0 AND dist <= -7").unwrap();
        let Request::Pipeline { ops, .. } = req else {
            panic!("expected pipeline")
        };
        let PlanOp::FilterRange { radius, .. } = ops[1] else {
            panic!("expected filter")
        };
        assert!(radius < 0.0, "no distance can satisfy the filter");
    }
}
