//! A slab-backed LRU cache for computed responses.
//!
//! The serving engine keys cached responses on *(shard, shard epoch,
//! request fingerprint)* — see [`crate::server`] — so this container only
//! needs to be a fast, allocation-reusing LRU: a `HashMap` from key to slab
//! slot plus an intrusive doubly-linked recency list threaded through the
//! slab. `get` and `put` are O(1); evicted slots are recycled through a
//! free list so a warm cache never reallocates.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Hit/miss/eviction counters, readable at any time via
/// [`LruCache::stats`]. Hit rate is the serving engine's headline cache
/// metric: under a Zipf-skewed tenant workload most repeated queries should
/// land here instead of recomputing a mining pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found a live entry.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure (not by `clear`).
    pub evictions: u64,
    /// Live entries right now.
    pub len: usize,
}

impl CacheStats {
    /// Hits over lookups, 0.0 when no lookups happened yet.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// A fixed-capacity least-recently-used cache.
///
/// Capacity 0 is legal and turns the cache into a no-op (every `get`
/// misses, every `put` is dropped) — the configuration the uncached
/// baseline measurements use.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    /// Most recently used entry, `NIL` when empty.
    head: usize,
    /// Least recently used entry, `NIL` when empty.
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Unlinks slot `i` from the recency list (it stays in the slab).
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    /// Links slot `i` in as the most recently used entry.
    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, promoting it to most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                if self.head != i {
                    self.unlink(i);
                    self.push_front(i);
                }
                Some(self.slab[i].value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used entry
    /// when the cache is full. A no-op at capacity 0.
    pub fn put(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let slot = if self.map.len() == self.capacity {
            // Recycle the least recently used slot in place.
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.evictions += 1;
            self.slab[victim].key = key.clone();
            self.slab[victim].value = value;
            victim
        } else if let Some(free) = self.free.pop() {
            self.slab[free] = Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            };
            free
        } else {
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    /// Drops every entry (slots are recycled; counters keep accumulating).
    pub fn clear(&mut self) {
        self.map.clear();
        let mut i = self.head;
        while i != NIL {
            let next = self.slab[i].next;
            self.free.push(i);
            i = next;
        }
        self.head = NIL;
        self.tail = NIL;
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_stored_value() {
        let mut c = LruCache::new(4);
        c.put("a", 1);
        c.put("b", 2);
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"b"), Some(2));
        assert_eq!(c.get(&"c"), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (2, 1, 2));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        assert_eq!(c.get(&"a"), Some(1)); // promote a; b is now LRU
        c.put("c", 3);
        assert_eq!(c.get(&"b"), None, "b was least recently used");
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn put_refreshes_recency_and_value() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.put("a", 10); // refresh a; b is now LRU
        c.put("c", 3);
        assert_eq!(c.get(&"a"), Some(10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn capacity_zero_is_a_noop() {
        let mut c = LruCache::new(0);
        c.put("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_recycles_slots_without_realloc() {
        let mut c = LruCache::new(3);
        for i in 0..3 {
            c.put(i, i);
        }
        c.clear();
        assert!(c.is_empty());
        for i in 10..13 {
            c.put(i, i);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.slab.len(), 3, "cleared slots must be reused");
        assert_eq!(c.get(&11), Some(11));
    }

    #[test]
    fn single_entry_cache_churns_correctly() {
        let mut c = LruCache::new(1);
        for i in 0..100 {
            c.put(i, i * 2);
            assert_eq!(c.get(&i), Some(i * 2));
            if i > 0 {
                assert_eq!(c.get(&(i - 1)), None);
            }
        }
        assert_eq!(c.stats().evictions, 99);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn recency_list_survives_random_churn() {
        // Model check against a naive vector-based LRU.
        let mut c = LruCache::new(4);
        let mut model: Vec<(u32, u32)> = Vec::new(); // front = MRU
        let mut state = 0x2545F4914F6CDD1Du64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = ((state >> 33) % 9) as u32;
            if state.is_multiple_of(3) {
                // put
                let value = (state >> 7) as u32;
                if let Some(p) = model.iter().position(|&(k, _)| k == key) {
                    model.remove(p);
                } else if model.len() == 4 {
                    model.pop();
                }
                model.insert(0, (key, value));
                c.put(key, value);
            } else {
                let expect = model.iter().position(|&(k, _)| k == key).map(|p| {
                    let e = model.remove(p);
                    model.insert(0, e);
                    e.1
                });
                assert_eq!(c.get(&key), expect);
            }
            assert_eq!(c.len(), model.len());
        }
    }
}
