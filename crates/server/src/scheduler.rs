//! The work-stealing batch scheduler.
//!
//! Requests are enqueued into one injector queue per shard. At drain time
//! each worker repeatedly *takes a whole shard queue at once* — that is the
//! batching: every request pending against a shard is answered under a
//! single shard read-lock acquisition, in one pass. A worker whose home
//! queue is empty steals the entire pending queue of another shard
//! (round-robin from its own position), so one hot tenant cannot idle the
//! other workers and a cold drain finishes as soon as all queues are
//! observed empty.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Cumulative scheduler counters (monotonic over the server's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Requests answered through the scheduler.
    pub served: u64,
    /// Shard batches processed (one batch = one lock acquisition); the
    /// coalescing ratio is `served / batches`.
    pub batches: u64,
    /// Batches a worker took from a shard other than its home position.
    pub steals: u64,
}

/// Stably regroups one coalesced shard batch so jobs with equal keys are
/// adjacent: groups appear in order of their first member, and the original
/// order is kept within each group. The batch path keys on a request's
/// clustering plan, so every `Hierarchical` request sharing a linkage runs
/// back-to-back — the plan cache then builds each dendrogram exactly once
/// per batch and serves the rest of the group while it is hot. Safe to
/// reorder because batch outputs are keyed by ticket, never by position.
pub(crate) fn group_stable_by<J, K: PartialEq>(
    jobs: VecDeque<J>,
    key: impl Fn(&J) -> K,
) -> VecDeque<J> {
    let mut seen: Vec<K> = Vec::new();
    let mut ranked: Vec<(usize, J)> = jobs
        .into_iter()
        .map(|job| {
            let k = key(&job);
            let rank = seen.iter().position(|s| *s == k).unwrap_or_else(|| {
                seen.push(k);
                seen.len() - 1
            });
            (rank, job)
        })
        .collect();
    ranked.sort_by_key(|&(rank, _)| rank); // stable: ties keep batch order
    ranked.into_iter().map(|(_, job)| job).collect()
}

/// Per-shard injector queues plus the counters above.
#[derive(Debug)]
pub(crate) struct ShardQueues<J> {
    queues: Vec<Mutex<VecDeque<J>>>,
    pending: AtomicUsize,
    served: AtomicU64,
    batches: AtomicU64,
    steals: AtomicU64,
}

impl<J> ShardQueues<J> {
    pub(crate) fn new(shards: usize) -> Self {
        ShardQueues {
            queues: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// Enqueues one job on its shard's queue.
    pub(crate) fn push(&self, shard: usize, job: J) {
        let mut q = self.queues[shard].lock().expect("queue lock poisoned");
        q.push_back(job);
        // Inside the lock scope: a concurrent `take_shard` decrements under
        // the same lock, so the counter can never transiently underflow.
        self.pending.fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs currently enqueued (across all shards).
    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// Takes **every** job pending on `shard` — the coalescing step.
    /// Returns an empty queue when there is nothing to take.
    fn take_shard(&self, shard: usize) -> VecDeque<J> {
        let mut q = self.queues[shard].lock().expect("queue lock poisoned");
        let taken = std::mem::take(&mut *q);
        if !taken.is_empty() {
            // Same lock scope as the matching fetch_add in `push`.
            self.pending.fetch_sub(taken.len(), Ordering::Relaxed);
        }
        taken
    }

    /// Folds another queue set's counters into this one — `serve_batch`
    /// drains a throwaway queue set, then credits the server's cumulative
    /// counters with what it did.
    pub(crate) fn absorb(&self, other: SchedulerStats) {
        self.served.fetch_add(other.served, Ordering::Relaxed);
        self.batches.fetch_add(other.batches, Ordering::Relaxed);
        self.steals.fetch_add(other.steals, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub(crate) fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            served: self.served.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }

    /// Drains every queue with `threads` workers. Worker `w` starts at
    /// shard `w % shards` and sweeps round-robin, taking whole shard
    /// queues; a take at offset > 0 counts as a steal. `process` is called
    /// once per non-empty batch with `(shard, jobs)` and returns that
    /// batch's outputs; all outputs are concatenated in unspecified order
    /// (callers re-sort by ticket).
    ///
    /// Workers exit after a full sweep observes every queue empty, so jobs
    /// pushed concurrently with a drain are picked up if any worker is
    /// still sweeping, and otherwise wait for the next drain.
    pub(crate) fn drain<R, F>(&self, threads: usize, process: F) -> Vec<R>
    where
        J: Send,
        R: Send,
        F: Fn(usize, VecDeque<J>) -> Vec<R> + Sync,
    {
        let shards = self.queues.len();
        if shards == 0 {
            return Vec::new();
        }
        let threads = threads.clamp(1, shards.max(1));
        let mut worker_results: Vec<Vec<R>> = Vec::with_capacity(threads);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for w in 0..threads {
                let process = &process;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let mut advanced = false;
                        for off in 0..shards {
                            let shard = (w + off) % shards;
                            let jobs = self.take_shard(shard);
                            if jobs.is_empty() {
                                continue;
                            }
                            advanced = true;
                            self.batches.fetch_add(1, Ordering::Relaxed);
                            if off > 0 {
                                self.steals.fetch_add(1, Ordering::Relaxed);
                            }
                            self.served.fetch_add(jobs.len() as u64, Ordering::Relaxed);
                            out.extend(process(shard, jobs));
                        }
                        if !advanced {
                            return out;
                        }
                    }
                }));
            }
            for (w, h) in handles.into_iter().enumerate() {
                worker_results.push(h.join().unwrap_or_else(|_| {
                    panic!(
                        "scheduler worker {w}/{threads} panicked inside the `process` \
                         callback; its taken-but-unanswered jobs are lost — check the \
                         shard answer path for the panic source"
                    )
                }));
            }
        });

        worker_results.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn drain_coalesces_per_shard_batches() {
        let q: ShardQueues<u32> = ShardQueues::new(3);
        for i in 0..12u32 {
            q.push((i % 3) as usize, i);
        }
        assert_eq!(q.pending(), 12);
        // Single worker: each shard's 4 jobs must arrive as one batch.
        let out = q.drain(1, |shard, jobs| {
            assert_eq!(jobs.len(), 4, "shard {shard} batch not coalesced");
            jobs.into_iter().map(|j| (shard, j)).collect()
        });
        assert_eq!(out.len(), 12);
        assert_eq!(q.pending(), 0);
        let stats = q.stats();
        assert_eq!(stats.served, 12);
        assert_eq!(stats.batches, 3);
        // A lone worker "steals" every shard beyond its home position.
        assert_eq!(stats.steals, 2);
    }

    #[test]
    fn drain_returns_every_job_exactly_once_under_contention() {
        let q: ShardQueues<u64> = ShardQueues::new(4);
        for i in 0..400u64 {
            q.push((i % 4) as usize, i);
        }
        let out = q.drain(4, |_, jobs| jobs.into_iter().collect());
        let seen: HashSet<u64> = out.iter().copied().collect();
        assert_eq!(out.len(), 400, "no job may be dropped or duplicated");
        assert_eq!(seen.len(), 400);
    }

    #[test]
    fn idle_worker_steals_from_a_loaded_shard() {
        // One worker homed on (empty) shard 0; all the work sits on shard
        // 2, reachable only by stealing at sweep offset 2. Deterministic:
        // no thread race decides whether the steal happens.
        let q: ShardQueues<u32> = ShardQueues::new(3);
        for i in 0..5u32 {
            q.push(2, i);
        }
        let out = q.drain(1, |shard, jobs| {
            assert_eq!(shard, 2);
            jobs.into_iter().collect::<Vec<_>>()
        });
        assert_eq!(out.len(), 5);
        let stats = q.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.steals, 1, "offset-2 take must count as a steal");
    }

    #[test]
    fn grouping_is_stable_and_orders_groups_by_first_member() {
        let jobs: VecDeque<(char, u32)> =
            [('b', 0), ('a', 1), ('b', 2), ('c', 3), ('a', 4), ('b', 5)].into();
        let grouped: Vec<(char, u32)> = group_stable_by(jobs, |&(k, _)| k).into();
        assert_eq!(
            grouped,
            vec![('b', 0), ('b', 2), ('b', 5), ('a', 1), ('a', 4), ('c', 3)]
        );
        // Degenerate cases: empty, and all-one-group (order untouched).
        assert!(group_stable_by(VecDeque::<u8>::new(), |_| ()).is_empty());
        let same: Vec<u8> = group_stable_by(VecDeque::from(vec![3u8, 1, 2]), |_| ()).into();
        assert_eq!(same, vec![3, 1, 2]);
    }

    #[test]
    fn empty_drain_terminates_immediately() {
        let q: ShardQueues<u32> = ShardQueues::new(2);
        let out = q.drain(8, |_, jobs| jobs.into_iter().collect::<Vec<_>>());
        assert!(out.is_empty());
        assert_eq!(q.stats().batches, 0);
    }
}
