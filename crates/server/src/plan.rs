//! The per-shard clustering plan cache.
//!
//! Agglomerative clustering is the one serving primitive whose expensive
//! artefact — the O(n³)-built [`Dendrogram`] — answers *many* distinct
//! requests: every `cut(k)` for any `k` reads the same merge list. Caching
//! finished responses alone would still rebuild the dendrogram once per
//! distinct `k`, so the engine caches the **plan** one level up: a
//! dendrogram is built once per *(shard, epoch, linkage)* and shared by
//! every subsequent `Hierarchical` request against that store version —
//! across requests in a batch, across batches, and across clients.
//!
//! Invalidation is lazy, exactly like the response cache's epoch keying: a
//! streaming ingest bumps the shard epoch, and the next plan lookup notices
//! the stored epoch is stale, drops the old dendrogram, and rebuilds
//! against the grown matrix. No invalidation scan ever runs on the ingest
//! path.

use dpe_mining::{Dendrogram, Linkage};
use std::sync::Arc;

/// Plan-cache counters, aggregated across shards by
/// [`crate::Server::stats`]. The amortization headline is
/// `hits / builds`: how many `cut(k)` answers each dendrogram build served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Dendrograms actually built (cache misses).
    pub builds: u64,
    /// Requests answered from an already-built plan.
    pub hits: u64,
    /// Plans dropped because their epoch went stale (lazy invalidation on
    /// first access after an ingest).
    pub invalidations: u64,
    /// Plans currently held.
    pub live: usize,
}

/// One shard's plans: at most one dendrogram per linkage rule, each pinned
/// to the shard epoch it was built against.
#[derive(Debug, Default)]
pub(crate) struct PlanCache {
    /// Indexed by [`crate::request::linkage_tag`]; `(epoch, plan)`.
    slots: [Option<(u64, Arc<Dendrogram>)>; 3],
    builds: u64,
    hits: u64,
    invalidations: u64,
}

impl PlanCache {
    pub(crate) fn new() -> Self {
        PlanCache::default()
    }

    /// Returns the plan for `(epoch, linkage)`, building it with `build`
    /// on a miss. A slot holding a plan for an older epoch is dropped and
    /// counted as an invalidation — the lazy half of epoch invalidation.
    pub(crate) fn get_or_build(
        &mut self,
        epoch: u64,
        linkage: Linkage,
        build: impl FnOnce() -> Dendrogram,
    ) -> Arc<Dendrogram> {
        let slot = &mut self.slots[crate::request::linkage_tag(linkage)];
        if let Some((built_at, plan)) = slot {
            if *built_at == epoch {
                self.hits += 1;
                return Arc::clone(plan);
            }
            *slot = None;
            self.invalidations += 1;
        }
        let plan = Arc::new(build());
        self.builds += 1;
        *slot = Some((epoch, Arc::clone(&plan)));
        plan
    }

    /// Drops every held plan (counters keep accumulating) — the cold-plan
    /// bench configuration; epoch keying makes this unnecessary for
    /// correctness.
    pub(crate) fn clear(&mut self) {
        self.slots = Default::default();
    }

    /// Counter snapshot.
    pub(crate) fn stats(&self) -> PlanStats {
        PlanStats {
            builds: self.builds,
            hits: self.hits,
            invalidations: self.invalidations,
            live: self.slots.iter().filter(|s| s.is_some()).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_distance::DistanceMatrix;
    use dpe_mining::agglomerative;

    fn plan_for(n: usize, linkage: Linkage) -> Dendrogram {
        let m = DistanceMatrix::from_fn(n, |i, j| ((i * 3 + j * 7) % 11) as f64 + 0.5);
        agglomerative(&m, linkage)
    }

    #[test]
    fn second_lookup_is_a_hit_not_a_build() {
        let mut cache = PlanCache::new();
        let mut builds = 0;
        for _ in 0..5 {
            let plan = cache.get_or_build(3, Linkage::Complete, || {
                builds += 1;
                plan_for(6, Linkage::Complete)
            });
            assert_eq!(plan.n, 6);
        }
        assert_eq!(builds, 1, "one dendrogram serves all five lookups");
        let stats = cache.stats();
        assert_eq!((stats.builds, stats.hits, stats.live), (1, 4, 1));
    }

    #[test]
    fn linkages_occupy_distinct_slots() {
        let mut cache = PlanCache::new();
        for linkage in [Linkage::Complete, Linkage::Single, Linkage::Average] {
            cache.get_or_build(0, linkage, || plan_for(5, linkage));
        }
        let stats = cache.stats();
        assert_eq!((stats.builds, stats.hits, stats.live), (3, 0, 3));
        // Re-reading any of the three hits its own slot.
        let single = cache.get_or_build(0, Linkage::Single, || unreachable!("must hit"));
        assert_eq!(single.digest(), plan_for(5, Linkage::Single).digest());
    }

    #[test]
    fn stale_epoch_invalidates_lazily() {
        let mut cache = PlanCache::new();
        let old = cache.get_or_build(1, Linkage::Complete, || plan_for(4, Linkage::Complete));
        // Epoch bumped (an ingest happened): the stored plan must NOT be
        // returned, whatever its content.
        let new = cache.get_or_build(2, Linkage::Complete, || plan_for(7, Linkage::Complete));
        assert_ne!(new.digest(), old.digest());
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.builds, 2);
        assert_eq!(stats.live, 1, "the stale plan is gone, not shadowed");
        // The rebuilt plan now serves its epoch.
        cache.get_or_build(2, Linkage::Complete, || unreachable!("must hit"));
        assert_eq!(cache.stats().hits, 1);
    }
}
