//! The serving wire types: requests, responses, tickets and errors.

use dpe_distance::DistanceError;
use std::fmt;

/// One client query against a tenant shard.
///
/// Every request names its target [`shard`](Request::shard); item indices
/// refer to positions inside that shard's store (insertion order, exactly
/// the indices [`crate::Server::ingest`] assigns). Float parameters are
/// fingerprinted bit-exactly for caching — two radii that differ in the
/// last ulp are two cache entries, never a wrong answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The `k` nearest neighbours of stored item `item`.
    Knn { shard: usize, item: usize, k: usize },
    /// Everything within `radius` of stored item `item` (inclusive).
    Range {
        shard: usize,
        item: usize,
        radius: f64,
    },
    /// LOF scores of every item in the shard.
    Lof { shard: usize, min_pts: usize },
    /// Items with `LOF > threshold`, descending by score.
    LofOutliers {
        shard: usize,
        min_pts: usize,
        threshold: f64,
    },
    /// Knorr–Ng DB(p, D) outliers of the shard.
    Outliers { shard: usize, p: f64, d: f64 },
}

impl Request {
    /// The shard this request routes to.
    pub fn shard(&self) -> usize {
        match *self {
            Request::Knn { shard, .. }
            | Request::Range { shard, .. }
            | Request::Lof { shard, .. }
            | Request::LofOutliers { shard, .. }
            | Request::Outliers { shard, .. } => shard,
        }
    }

    /// A hashable bit-exact fingerprint (shard excluded — the cache key
    /// carries the shard and its epoch separately).
    pub(crate) fn fingerprint(&self) -> RequestKey {
        match *self {
            Request::Knn { item, k, .. } => RequestKey {
                tag: 0,
                a: item,
                b: k,
                x: 0,
                y: 0,
            },
            Request::Range { item, radius, .. } => RequestKey {
                tag: 1,
                a: item,
                b: 0,
                x: radius.to_bits(),
                y: 0,
            },
            Request::Lof { min_pts, .. } => RequestKey {
                tag: 2,
                a: min_pts,
                b: 0,
                x: 0,
                y: 0,
            },
            Request::LofOutliers {
                min_pts, threshold, ..
            } => RequestKey {
                tag: 3,
                a: min_pts,
                b: 0,
                x: threshold.to_bits(),
                y: 0,
            },
            Request::Outliers { p, d, .. } => RequestKey {
                tag: 4,
                a: 0,
                b: 0,
                x: p.to_bits(),
                y: d.to_bits(),
            },
        }
    }
}

/// Bit-exact request fingerprint used in cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct RequestKey {
    tag: u8,
    a: usize,
    b: usize,
    x: u64,
    y: u64,
}

/// A computed answer.
///
/// `PartialEq` compares scores with `==`; for the bit-identical assertions
/// the regression suites need, use [`Response::bits_eq`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Item indices (kNN order, ascending range order, or outlier order —
    /// whatever the request's algorithm defines).
    Indices(Vec<usize>),
    /// One score per stored item (LOF).
    Scores(Vec<f64>),
}

impl Response {
    /// Bit-exact equality: index lists must match exactly and scores must
    /// match on their bit patterns (so NaN == NaN and -0.0 != 0.0).
    pub fn bits_eq(&self, other: &Response) -> bool {
        match (self, other) {
            (Response::Indices(a), Response::Indices(b)) => a == b,
            (Response::Scores(a), Response::Scores(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            _ => false,
        }
    }
}

/// Order-stamped receipt returned by [`crate::Server::submit`]; `drain`
/// reports results sorted by ticket, so submission order is recoverable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(pub u64);

/// Why a request (or ingest) was rejected. Requests never panic a worker:
/// everything the mining layer would assert on is validated up front.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The named shard does not exist.
    UnknownShard { shard: usize, shards: usize },
    /// The request's item index exceeds the shard's store.
    ItemOutOfBounds {
        shard: usize,
        item: usize,
        len: usize,
    },
    /// A parameter fails the target algorithm's preconditions.
    BadRequest(String),
    /// Distance computation failed during ingest.
    Distance(DistanceError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownShard { shard, shards } => {
                write!(f, "shard {shard} does not exist ({shards} shards)")
            }
            ServerError::ItemOutOfBounds { shard, item, len } => {
                write!(f, "item {item} out of bounds in shard {shard} (len {len})")
            }
            ServerError::BadRequest(why) => write!(f, "bad request: {why}"),
            ServerError::Distance(e) => write!(f, "distance computation failed: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<DistanceError> for ServerError {
    fn from(e: DistanceError) -> Self {
        ServerError::Distance(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_separate_kinds_and_parameters() {
        let reqs = [
            Request::Knn {
                shard: 0,
                item: 1,
                k: 3,
            },
            Request::Knn {
                shard: 0,
                item: 1,
                k: 4,
            },
            Request::Range {
                shard: 0,
                item: 1,
                radius: 3.0,
            },
            Request::Lof {
                shard: 0,
                min_pts: 3,
            },
            Request::LofOutliers {
                shard: 0,
                min_pts: 3,
                threshold: 1.5,
            },
            Request::Outliers {
                shard: 0,
                p: 0.8,
                d: 0.5,
            },
        ];
        for (i, a) in reqs.iter().enumerate() {
            for (j, b) in reqs.iter().enumerate() {
                assert_eq!(a.fingerprint() == b.fingerprint(), i == j, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn fingerprint_is_bit_exact_on_floats() {
        let a = Request::Range {
            shard: 0,
            item: 0,
            radius: 0.1,
        };
        let b = Request::Range {
            shard: 0,
            item: 0,
            radius: 0.1 + f64::EPSILON,
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_shard() {
        // The cache key carries (shard, epoch) beside the fingerprint.
        let a = Request::Lof {
            shard: 0,
            min_pts: 2,
        };
        let b = Request::Lof {
            shard: 7,
            min_pts: 2,
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn bits_eq_distinguishes_nan_payload_positions() {
        let a = Response::Scores(vec![1.0, f64::NAN]);
        let b = Response::Scores(vec![1.0, f64::NAN]);
        let c = Response::Scores(vec![f64::NAN, 1.0]);
        assert!(a.bits_eq(&b), "equal NaN patterns must compare equal");
        assert!(!a.bits_eq(&c));
        assert!(!a.bits_eq(&Response::Indices(vec![1])));
    }
}
