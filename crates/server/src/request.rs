//! The serving wire types: requests, responses, tickets and errors.

use crate::exec::{ClusterRule, OutlierRule, PlanOp, Projection};
use dpe_distance::DistanceError;
use dpe_durability::DurabilityError;
use dpe_mining::Linkage;
use std::fmt;

/// One client query against a tenant shard.
///
/// Every request names its target [`shard`](Request::shard); item indices
/// refer to positions inside that shard's store (insertion order, exactly
/// the indices [`crate::Server::ingest`] assigns). Float parameters are
/// fingerprinted bit-exactly for caching — two radii that differ in the
/// last ulp are two cache entries, never a wrong answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The `k` nearest neighbours of stored item `item`.
    Knn { shard: usize, item: usize, k: usize },
    /// Everything within `radius` of stored item `item` (inclusive).
    Range {
        shard: usize,
        item: usize,
        radius: f64,
    },
    /// LOF scores of every item in the shard.
    Lof { shard: usize, min_pts: usize },
    /// Items with `LOF > threshold`, descending by score.
    LofOutliers {
        shard: usize,
        min_pts: usize,
        threshold: f64,
    },
    /// Knorr–Ng DB(p, D) outliers of the shard.
    Outliers { shard: usize, p: f64, d: f64 },
    /// DBSCAN over the shard; answered as canonical flat labels
    /// (noise = −1).
    Dbscan {
        shard: usize,
        eps: f64,
        min_pts: usize,
    },
    /// K-medoids over the shard; answered as medoids + assignment + the
    /// deterministic within-cluster cost.
    KMedoids { shard: usize, k: usize },
    /// An agglomerative dendrogram under `linkage`, cut into exactly `k`
    /// clusters. The dendrogram is a *clustering plan*: built once per
    /// (shard, epoch, linkage) and reused for every `k` — see
    /// [`crate::PlanStats`].
    Hierarchical {
        shard: usize,
        linkage: Linkage,
        k: usize,
    },
    /// Frequent feature itemsets of the shard's query log (Apriori over
    /// `features(Q)` transactions, absolute `min_support`).
    FrequentItemsets { shard: usize, min_support: usize },
    /// A compound query: a chain of [`PlanOp`]s executed as **one** physical
    /// plan under a single shard read lock — filter → cluster-label →
    /// project in one scheduler pass instead of one round trip per step.
    /// The compiler normalizes the chain (leading `Scan`, trailing natural
    /// `Project` when omitted); whole-shard operators compute over the full
    /// shard and project onto the pipeline's current selection, so results
    /// are bit-identical to composing the single-shot variants client-side.
    /// Fingerprinted bit-exactly and cached like every other request.
    Pipeline { shard: usize, ops: Vec<PlanOp> },
}

impl Request {
    /// The shard this request routes to.
    pub fn shard(&self) -> usize {
        match *self {
            Request::Knn { shard, .. }
            | Request::Range { shard, .. }
            | Request::Lof { shard, .. }
            | Request::LofOutliers { shard, .. }
            | Request::Outliers { shard, .. }
            | Request::Dbscan { shard, .. }
            | Request::KMedoids { shard, .. }
            | Request::Hierarchical { shard, .. }
            | Request::FrequentItemsets { shard, .. } => shard,
            Request::Pipeline { shard, .. } => shard,
        }
    }

    /// The clustering plan this request consumes, if any: the batch path
    /// groups same-plan requests together and the plan cache builds each
    /// (shard, epoch, linkage) dendrogram exactly once.
    pub(crate) fn plan(&self) -> Option<Linkage> {
        match self {
            Request::Hierarchical { linkage, .. } => Some(*linkage),
            Request::Pipeline { ops, .. } => ops.iter().find_map(|op| match op {
                PlanOp::ClusterLabels(ClusterRule::Hierarchical { linkage, .. }) => Some(*linkage),
                _ => None,
            }),
            _ => None,
        }
    }

    /// A hashable bit-exact fingerprint (shard excluded — the cache key
    /// carries the shard and its epoch separately). The encoding is a
    /// tag-led word sequence with a fixed arity per tag, so it is
    /// self-delimiting: compound pipelines of any length fingerprint
    /// collision-free next to the single-shot variants.
    pub(crate) fn fingerprint(&self) -> RequestKey {
        let mut words: Vec<u64> = Vec::with_capacity(4);
        match self {
            Request::Knn { item, k, .. } => words.extend([0, *item as u64, *k as u64]),
            Request::Range { item, radius, .. } => {
                words.extend([1, *item as u64, radius.to_bits()])
            }
            Request::Lof { min_pts, .. } => words.extend([2, *min_pts as u64]),
            Request::LofOutliers {
                min_pts, threshold, ..
            } => words.extend([3, *min_pts as u64, threshold.to_bits()]),
            Request::Outliers { p, d, .. } => words.extend([4, p.to_bits(), d.to_bits()]),
            Request::Dbscan { eps, min_pts, .. } => {
                words.extend([5, *min_pts as u64, eps.to_bits()])
            }
            Request::KMedoids { k, .. } => words.extend([6, *k as u64]),
            Request::Hierarchical { linkage, k, .. } => {
                words.extend([7, *k as u64, linkage_tag(*linkage) as u64])
            }
            Request::FrequentItemsets { min_support, .. } => words.extend([8, *min_support as u64]),
            Request::Pipeline { ops, .. } => {
                words.extend([9, ops.len() as u64]);
                for op in ops {
                    encode_op(op, &mut words);
                }
            }
        }
        RequestKey(words)
    }
}

/// Appends one plan op's fingerprint words: an op tag followed by a fixed
/// number of operand words (floats bit-exact via `to_bits`).
fn encode_op(op: &PlanOp, words: &mut Vec<u64>) {
    match op {
        PlanOp::Scan => words.push(0),
        PlanOp::FilterRange { item, radius } => words.extend([1, *item as u64, radius.to_bits()]),
        PlanOp::Knn { item, k } => words.extend([2, *item as u64, *k as u64]),
        PlanOp::Lof { min_pts } => words.extend([3, *min_pts as u64]),
        PlanOp::Outliers(OutlierRule::DistanceBased { p, d }) => {
            words.extend([4, p.to_bits(), d.to_bits()])
        }
        PlanOp::Outliers(OutlierRule::LofThreshold { min_pts, threshold }) => {
            words.extend([5, *min_pts as u64, threshold.to_bits()])
        }
        PlanOp::ClusterLabels(ClusterRule::Dbscan { eps, min_pts }) => {
            words.extend([6, *min_pts as u64, eps.to_bits()])
        }
        PlanOp::ClusterLabels(ClusterRule::KMedoids { k }) => words.extend([7, *k as u64]),
        PlanOp::ClusterLabels(ClusterRule::Hierarchical { linkage, k }) => {
            words.extend([8, *k as u64, linkage_tag(*linkage) as u64])
        }
        PlanOp::Itemsets { min_support } => words.extend([9, *min_support as u64]),
        PlanOp::Project(projection) => {
            let kind = match projection {
                Projection::Items => 0u64,
                Projection::Scores => 1,
                Projection::Labels => 2,
                Projection::Medoids => 3,
                Projection::Itemsets => 4,
            };
            words.extend([10, kind]);
        }
        PlanOp::Limit(k) => words.extend([11, *k as u64]),
    }
}

/// Stable numeric tag per linkage rule, used in fingerprints and plan-cache
/// keys (the enum deliberately carries no `#[repr]`, so the mapping lives
/// here, next to the other wire encodings).
pub(crate) fn linkage_tag(linkage: Linkage) -> usize {
    match linkage {
        Linkage::Complete => 0,
        Linkage::Single => 1,
        Linkage::Average => 2,
    }
}

/// Bit-exact request fingerprint used in cache keys: a self-delimiting
/// tag-led word sequence (see [`Request::fingerprint`]), variable-length so
/// compound pipelines fingerprint exactly like everything else.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct RequestKey(Vec<u64>);

/// A computed answer.
///
/// `PartialEq` compares scores with `==`; for the bit-identical assertions
/// the regression suites need, use [`Response::bits_eq`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Item indices (kNN order, ascending range order, or outlier order —
    /// whatever the request's algorithm defines).
    Indices(Vec<usize>),
    /// One score per stored item (LOF).
    Scores(Vec<f64>),
    /// One canonical cluster label per stored item (DBSCAN, hierarchical
    /// cuts): noise is `−1`, clusters renumber `0..` by first member — see
    /// [`dpe_mining::labels`].
    Labels(Vec<i64>),
    /// A k-medoids clustering: medoid item indices (ascending), per-item
    /// assignment into `medoids`, and the deterministic within-cluster
    /// cost (stable index-order sum, compared bit-exactly).
    Medoids {
        medoids: Vec<usize>,
        assignment: Vec<usize>,
        cost: f64,
    },
    /// Frequent feature itemsets `(items, support)`, items ascending within
    /// each set, sets ordered by (size, items) — Apriori's canonical order.
    Itemsets(Vec<(Vec<String>, usize)>),
}

impl Response {
    /// Bit-exact equality: index/label/itemset lists must match exactly and
    /// float payloads must match on their bit patterns (so NaN == NaN and
    /// -0.0 != 0.0).
    pub fn bits_eq(&self, other: &Response) -> bool {
        match (self, other) {
            (Response::Indices(a), Response::Indices(b)) => a == b,
            (Response::Scores(a), Response::Scores(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (Response::Labels(a), Response::Labels(b)) => a == b,
            (
                Response::Medoids {
                    medoids: ma,
                    assignment: aa,
                    cost: ca,
                },
                Response::Medoids {
                    medoids: mb,
                    assignment: ab,
                    cost: cb,
                },
            ) => ma == mb && aa == ab && ca.to_bits() == cb.to_bits(),
            (Response::Itemsets(a), Response::Itemsets(b)) => a == b,
            _ => false,
        }
    }
}

/// Order-stamped receipt returned by [`crate::Server::submit`]; `drain`
/// reports results sorted by ticket, so submission order is recoverable.
/// The inner counter is an engine detail — read it through [`Ticket::id`].
// The clippy.toml ban on `PartialOrd::partial_cmp` targets NaN-prone
// float sorts; this derive expands to field-wise partial_cmp over
// non-float fields, which cannot hit the NaN pitfall.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(pub(crate) u64);

impl Ticket {
    /// The ticket's position in global submission order.
    pub fn id(self) -> u64 {
        self.0
    }
}

/// Why a request (or ingest) was rejected. Requests never panic a worker:
/// everything the mining layer would assert on is validated up front.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The named shard does not exist.
    UnknownShard { shard: usize, shards: usize },
    /// The request's item index exceeds the shard's store.
    ItemOutOfBounds {
        shard: usize,
        item: usize,
        len: usize,
    },
    /// A parameter fails the target algorithm's preconditions.
    BadRequest(String),
    /// Distance computation failed during ingest.
    Distance(DistanceError),
    /// A caller-supplied producer (e.g. the chunk iterator fed to
    /// [`crate::Server::ingest_stream`]) panicked on its worker thread.
    ProducerPanicked,
    /// A [`crate::Server::sql`] statement falls outside the supported
    /// SELECT subset (or names an unregistered table).
    UnsupportedSql(String),
    /// The durability layer failed: a WAL append, a checkpoint, or
    /// damaged on-disk state found during recovery (see
    /// [`dpe_durability::DurabilityError`] for the taxonomy).
    Durability(DurabilityError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownShard { shard, shards } => {
                write!(f, "shard {shard} does not exist ({shards} shards)")
            }
            ServerError::ItemOutOfBounds { shard, item, len } => {
                write!(f, "item {item} out of bounds in shard {shard} (len {len})")
            }
            ServerError::BadRequest(why) => write!(f, "bad request: {why}"),
            ServerError::Distance(e) => write!(f, "distance computation failed: {e}"),
            ServerError::ProducerPanicked => {
                write!(
                    f,
                    "the caller-supplied chunk producer panicked; ingested prefix was kept"
                )
            }
            ServerError::UnsupportedSql(why) => write!(f, "unsupported SQL: {why}"),
            ServerError::Durability(e) => write!(f, "durability failure: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<DistanceError> for ServerError {
    fn from(e: DistanceError) -> Self {
        ServerError::Distance(e)
    }
}

impl From<DurabilityError> for ServerError {
    fn from(e: DurabilityError) -> Self {
        ServerError::Durability(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_separate_kinds_and_parameters() {
        let reqs = [
            Request::Knn {
                shard: 0,
                item: 1,
                k: 3,
            },
            Request::Knn {
                shard: 0,
                item: 1,
                k: 4,
            },
            Request::Range {
                shard: 0,
                item: 1,
                radius: 3.0,
            },
            Request::Lof {
                shard: 0,
                min_pts: 3,
            },
            Request::LofOutliers {
                shard: 0,
                min_pts: 3,
                threshold: 1.5,
            },
            Request::Outliers {
                shard: 0,
                p: 0.8,
                d: 0.5,
            },
            Request::Dbscan {
                shard: 0,
                eps: 0.3,
                min_pts: 3,
            },
            Request::Dbscan {
                shard: 0,
                eps: 0.3,
                min_pts: 4,
            },
            Request::KMedoids { shard: 0, k: 3 },
            Request::Hierarchical {
                shard: 0,
                linkage: Linkage::Complete,
                k: 3,
            },
            Request::Hierarchical {
                shard: 0,
                linkage: Linkage::Single,
                k: 3,
            },
            Request::Hierarchical {
                shard: 0,
                linkage: Linkage::Complete,
                k: 4,
            },
            Request::FrequentItemsets {
                shard: 0,
                min_support: 3,
            },
            // Compound pipelines: never collide with the single-shot
            // variants they contain, and op order / parameters separate.
            Request::Pipeline {
                shard: 0,
                ops: vec![PlanOp::Knn { item: 1, k: 3 }],
            },
            Request::Pipeline {
                shard: 0,
                ops: vec![
                    PlanOp::FilterRange {
                        item: 1,
                        radius: 0.5,
                    },
                    PlanOp::Knn { item: 1, k: 3 },
                ],
            },
            Request::Pipeline {
                shard: 0,
                ops: vec![
                    PlanOp::FilterRange {
                        item: 1,
                        radius: 0.5,
                    },
                    PlanOp::ClusterLabels(ClusterRule::Hierarchical {
                        linkage: Linkage::Complete,
                        k: 3,
                    }),
                ],
            },
            Request::Pipeline {
                shard: 0,
                ops: vec![
                    PlanOp::FilterRange {
                        item: 1,
                        radius: 0.5,
                    },
                    PlanOp::ClusterLabels(ClusterRule::Hierarchical {
                        linkage: Linkage::Complete,
                        k: 3,
                    }),
                    PlanOp::Limit(2),
                ],
            },
        ];
        for (i, a) in reqs.iter().enumerate() {
            for (j, b) in reqs.iter().enumerate() {
                assert_eq!(a.fingerprint() == b.fingerprint(), i == j, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn fingerprint_is_bit_exact_on_floats() {
        let a = Request::Range {
            shard: 0,
            item: 0,
            radius: 0.1,
        };
        let b = Request::Range {
            shard: 0,
            item: 0,
            radius: 0.1 + f64::EPSILON,
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_shard() {
        // The cache key carries (shard, epoch) beside the fingerprint.
        let a = Request::Lof {
            shard: 0,
            min_pts: 2,
        };
        let b = Request::Lof {
            shard: 7,
            min_pts: 2,
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn clustering_responses_compare_bit_exactly() {
        let a = Response::Labels(vec![0, 0, 1, -1]);
        assert!(a.bits_eq(&Response::Labels(vec![0, 0, 1, -1])));
        assert!(!a.bits_eq(&Response::Labels(vec![0, 0, 1, 2])));
        assert!(!a.bits_eq(&Response::Indices(vec![0, 0, 1])));

        let m = Response::Medoids {
            medoids: vec![1, 4],
            assignment: vec![0, 0, 1, 1, 1],
            cost: 0.3,
        };
        assert!(m.bits_eq(&m.clone()));
        assert!(!m.bits_eq(&Response::Medoids {
            medoids: vec![1, 4],
            assignment: vec![0, 0, 1, 1, 1],
            cost: 0.3 + f64::EPSILON,
        }));
        // NaN costs are equal when their bit patterns are.
        let nan = Response::Medoids {
            medoids: vec![0],
            assignment: vec![0],
            cost: f64::NAN,
        };
        assert!(nan.bits_eq(&nan.clone()));

        let fi = Response::Itemsets(vec![(vec!["(FROM, t)".into()], 4)]);
        assert!(fi.bits_eq(&fi.clone()));
        assert!(!fi.bits_eq(&Response::Itemsets(vec![(vec!["(FROM, t)".into()], 5)])));
    }

    #[test]
    fn bits_eq_distinguishes_nan_payload_positions() {
        let a = Response::Scores(vec![1.0, f64::NAN]);
        let b = Response::Scores(vec![1.0, f64::NAN]);
        let c = Response::Scores(vec![f64::NAN, 1.0]);
        assert!(a.bits_eq(&b), "equal NaN patterns must compare equal");
        assert!(!a.bits_eq(&c));
        assert!(!a.bits_eq(&Response::Indices(vec![1])));
    }
}
