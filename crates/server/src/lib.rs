//! # dpe-server — sharded batch serving for encrypted mining queries
//!
//! The paper's outsourcing model ends with a service provider answering
//! many clients' distance-based queries over an encrypted store. This crate
//! is that provider: a multi-tenant engine that concurrently serves the
//! full mining suite — kNN / range / LOF / outlier point queries *and*
//! whole-shard clustering (DBSCAN, k-medoids, hierarchical cuts, frequent
//! feature itemsets) — from packed per-tenant distance matrices, with the
//! throughput tricks a real deployment needs:
//!
//! * **Sharding** — one [`Shard`] per tenant, each a contiguous row range
//!   with its own packed upper-triangle [`dpe_distance::DistanceMatrix`].
//!   Mining never crosses tenants, so no cross-shard distance is ever
//!   computed, and an ingest into one tenant never blocks readers of
//!   another.
//! * **Batch coalescing with work stealing** — requests queue per shard;
//!   a drain takes whole shard queues at once (one lock acquisition per
//!   batch) on workers that steal entire queues from loaded shards when
//!   their own are empty. See [`SchedulerStats`].
//! * **Epoch-keyed LRU response cache** — responses are cached under
//!   *(shard, shard epoch, bit-exact request fingerprint)*; a streaming
//!   insert bumps the epoch, so stale answers are unreachable by
//!   construction rather than by invalidation scans. Under a Zipf-skewed
//!   tenant workload — the realistic shape `dpe-workload` generates —
//!   repeated encrypted queries never recompute a mining pass. See
//!   [`CacheStats`].
//! * **Clustering plan cache** — agglomerative clustering's expensive
//!   artefact, the dendrogram, answers *every* `cut(k)`; it is built once
//!   per *(shard, epoch, linkage)* and shared across requests, batches and
//!   clients (same-plan requests are grouped adjacently within a batch).
//!   Ingests invalidate plans lazily through the same epoch keying. See
//!   [`PlanStats`].
//!
//! Every request — the nine single-shot variants and the compound
//! [`Request::Pipeline`] — compiles into one physical-plan algebra
//! ([`PlanOp`]) answered by a single pull-pipeline executor (see [`exec`]),
//! which accumulates per-query [`ExecutionMetrics`] surfaced through the
//! unified [`ServerStats`] snapshot ([`Server::stats`]) and per query via
//! [`Server::explain`]. A SQL front door ([`Server::sql`]) lowers a SELECT
//! subset over virtual "pairs" tables ([`SqlTable`]) onto the same ops.
//!
//! Because every answer is a pure function of a shard's distance matrix,
//! the engine inherits the paper's headline property end-to-end: a server
//! loaded with DPE-encrypted queries returns **bit-identical** responses
//! to one loaded with the plaintexts (the `serving_pipeline` integration
//! suite asserts exactly this).
//!
//! ## Example
//!
//! ```
//! use dpe_server::{Request, Server};
//! use dpe_distance::TokenDistance;
//! use dpe_sql::parse_query;
//!
//! // Two tenants, a 64-entry response cache.
//! let server = Server::builder(TokenDistance).shards(2).cache_capacity(64).build();
//! let log: Vec<_> = ["SELECT ra FROM t", "SELECT dec FROM t", "SELECT ra FROM u"]
//!     .iter()
//!     .map(|s| parse_query(s).unwrap())
//!     .collect();
//! server.ingest(0, &log).unwrap();
//!
//! // Clients submit; the server answers everything pending in one drain.
//! let ticket = server
//!     .submit(Request::Knn { shard: 0, item: 0, k: 2 })
//!     .unwrap();
//! let results = server.drain(4);
//! assert_eq!(results[0].0, ticket);
//! assert!(results[0].1.is_ok());
//! ```

#![forbid(unsafe_code)]

mod cache;
pub mod exec;
mod plan;
mod request;
mod scheduler;
mod server;
mod shard;
pub mod sql;

pub use cache::{CacheStats, LruCache};
pub use exec::{
    ClusterRule, ExecutionMetrics, OpMetric, OutlierRule, PhysicalPlan, PlanOp, Projection,
};
pub use plan::PlanStats;
pub use request::{Request, Response, ServerError, Ticket};
pub use scheduler::SchedulerStats;
pub use server::{Server, ServerBuilder, ServerStats};
pub use shard::{Shard, ShardIndex};
pub use sql::{dist_literal, lower_select, SqlTable};
