//! # The physical-plan executor
//!
//! The server's one execution path. Every [`crate::Request`] — the nine
//! single-shot variants and the compound [`crate::Request::Pipeline`] —
//! compiles ([`PhysicalPlan::compile`]) into a small operator algebra
//! ([`PlanOp`]): a `Scan`, a chain of selection/scoring operators, and a
//! final `Project`. One interpreter (`executor`) runs the chain under a
//! single shard read lock, accumulating [`ExecutionMetrics`] per query
//! (rows scanned, distance cells touched, cache/plan interactions,
//! per-operator wall time).
//!
//! Validation is **derived from the compiled plan**
//! (`PhysicalPlan::validate`): [`crate::Shard::validate`] and the
//! executor read the same op list, so an operator cannot ship with
//! execution semantics but missing bounds checks.

mod executor;
mod metrics;
mod plan;

pub use metrics::{ExecutionMetrics, OpMetric};
pub use plan::{ClusterRule, OutlierRule, PhysicalPlan, PlanOp, Projection};

pub(crate) use executor::{execute, DirectPlans, IndexSource, PlanSource};
