//! The pull-pipeline interpreter of the physical-plan algebra.
//!
//! One [`execute`] call answers one compiled [`PhysicalPlan`] against one
//! shard, under whatever lock the caller already holds (the batch path
//! holds a single shard read lock for a whole coalesced batch). State
//! between operators is a [`Frame`]: the ordered selection of item indices
//! plus an optional payload aligned to it. Whole-shard algorithms compute
//! over the entire matrix and project onto the selection, which is what
//! makes a compound pipeline bit-identical to the equivalent sequence of
//! single-shot requests (the `pipeline_differential` suite pins this).

use super::metrics::ExecutionMetrics;
use super::plan::{ClusterRule, OutlierRule, PhysicalPlan, PlanOp, Projection};
use crate::request::{Response, ServerError};
use crate::shard::{cut_response, Shard, ShardIndex};
use dpe_mining::{
    canonical_dbscan_labels, db_outliers, dbscan, frequent_itemsets, kmedoids, lof, lof_outliers,
    DbscanConfig, Dendrogram, Linkage, LofConfig, OutlierConfig,
};
use std::cmp::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Where the executor gets the shard's metric index, when one is built:
/// `PlanOp::{Knn, FilterRange}` pull from it instead of scanning the full
/// matrix row, and the triangle-inequality skips surface as
/// [`ExecutionMetrics::pruned_cells`]. Both plan sources sit beside it —
/// `DirectPlans` and `CachedPlans` resolve to the same shard's index, so
/// the cached and uncached paths prune identically.
pub(crate) trait IndexSource {
    /// The executing shard's metric index, when one is built.
    fn index(&self) -> Option<&ShardIndex>;
}

/// Where the executor gets dendrograms: the batch path resolves through the
/// per-shard plan cache (one build per `(epoch, linkage)`), the uncached
/// baseline builds from scratch. Implementations report hits/builds into
/// the query's metrics, so `ExecutionMetrics::plan_hits` stays truthful on
/// both paths.
pub(crate) trait PlanSource: IndexSource {
    /// The dendrogram for `linkage` over the shard being executed.
    fn resolve(&mut self, linkage: Linkage, metrics: &mut ExecutionMetrics) -> Arc<Dendrogram>;
}

/// Builds every dendrogram from scratch — the per-query dispatch baseline
/// ([`crate::Server::serve_one_uncached`] and [`Shard::answer`]).
pub(crate) struct DirectPlans<'a> {
    pub(crate) shard: &'a Shard,
}

impl IndexSource for DirectPlans<'_> {
    fn index(&self) -> Option<&ShardIndex> {
        self.shard.index()
    }
}

impl PlanSource for DirectPlans<'_> {
    fn resolve(&mut self, linkage: Linkage, metrics: &mut ExecutionMetrics) -> Arc<Dendrogram> {
        metrics.plan_builds += 1;
        metrics.distance_cells += self.shard.matrix().packed_len() as u64;
        Arc::new(self.shard.build_plan(linkage))
    }
}

/// Total ascending order with every NaN after every number — the same
/// ordering [`dpe_mining::knn_indices`] sorts by, so a `Knn` op over the
/// full scan reproduces it bit-identically.
#[inline]
fn nan_last_cmp(a: f64, b: f64) -> Ordering {
    a.is_nan().cmp(&b.is_nan()).then_with(|| a.total_cmp(&b))
}

/// Inter-operator state: the ordered selection plus payloads aligned to it.
/// `medoids` and `itemsets` are whole-shard artefacts (validation confines
/// their ops to undiluted scans).
#[derive(Default)]
struct Frame {
    selection: Vec<usize>,
    scores: Option<Vec<f64>>,
    labels: Option<Vec<i64>>,
    medoids: Option<(Vec<usize>, Vec<usize>, f64)>,
    itemsets: Option<Vec<(Vec<String>, usize)>>,
}

impl Frame {
    /// Reorders the selection (and aligned payloads) to `positions`, each a
    /// position into the *current* selection.
    fn take_positions(&mut self, positions: &[usize]) {
        self.selection = positions.iter().map(|&p| self.selection[p]).collect();
        if let Some(s) = &mut self.scores {
            *s = positions.iter().map(|&p| s[p]).collect();
        }
        if let Some(l) = &mut self.labels {
            *l = positions.iter().map(|&p| l[p]).collect();
        }
    }
}

/// Executes `plan` against `shard`, validating it first (the same
/// [`PhysicalPlan::validate`] the eager [`Shard::validate`] path uses —
/// single source, so the two can never disagree) and accumulating
/// per-operator metrics.
pub(crate) fn execute(
    shard: &Shard,
    shard_id: usize,
    plan: &PhysicalPlan,
    plans: &mut dyn PlanSource,
    metrics: &mut ExecutionMetrics,
) -> Result<Response, ServerError> {
    let started = Instant::now();
    plan.validate(shard_id, shard.len())?;
    let matrix = shard.matrix();
    let n = shard.len();
    let mut frame = Frame::default();
    let mut out: Option<Response> = None;

    for op in plan.ops() {
        let op_started = Instant::now();
        match op {
            PlanOp::Scan => {
                frame = Frame {
                    selection: (0..n).collect(),
                    ..Frame::default()
                };
                metrics.rows_scanned += n as u64;
            }
            PlanOp::FilterRange { item, radius } => {
                // Index path, taken when the selection is still the full
                // scan (position p holds item p, so the index's hit list
                // doubles as the position list): the VP-tree's hit set is
                // exactly the matrix predicate's — both read the same
                // packed cells, the tree just skips reading most of them.
                // A diluted selection reads fewer cells than the whole
                // index walk would, so it stays on the matrix path.
                let index = (frame.selection.len() == n)
                    .then(|| plans.index())
                    .flatten();
                if let Some(index) = index {
                    debug_assert_eq!(index.len(), n, "index out of lockstep with matrix");
                    let (hits, counters) = index.range(matrix, *item, *radius);
                    metrics.distance_cells += counters.computed;
                    metrics.pruned_cells += counters.pruned;
                    frame.take_positions(&hits);
                } else {
                    metrics.distance_cells += frame.selection.len() as u64;
                    let keep: Vec<usize> = (0..frame.selection.len())
                        .filter(|&p| {
                            let j = frame.selection[p];
                            j != *item && matrix.get(*item, j) <= *radius
                        })
                        .collect();
                    frame.take_positions(&keep);
                }
            }
            PlanOp::Knn { item, k } => {
                // Same full-scan gate as FilterRange: the tree's bounded
                // worst-first heap reproduces the matrix comparator
                // (NaN-last distance, then index) bit-identically.
                let index = (frame.selection.len() == n)
                    .then(|| plans.index())
                    .flatten();
                if let Some(index) = index {
                    debug_assert_eq!(index.len(), n, "index out of lockstep with matrix");
                    let (neighbours, counters) = index.knn(matrix, *item, *k);
                    metrics.distance_cells += counters.computed;
                    metrics.pruned_cells += counters.pruned;
                    frame.take_positions(&neighbours);
                } else {
                    let mut candidates: Vec<usize> = (0..frame.selection.len())
                        .filter(|&p| frame.selection[p] != *item)
                        .collect();
                    metrics.distance_cells += candidates.len() as u64;
                    let cmp = |&pa: &usize, &pb: &usize| {
                        let (a, b) = (frame.selection[pa], frame.selection[pb]);
                        nan_last_cmp(matrix.get(*item, a), matrix.get(*item, b)).then(a.cmp(&b))
                    };
                    // O(|selection|) selection of the k winners before the
                    // O(k log k) sort; the comparator is a strict total
                    // order, so this equals the full sort's prefix.
                    if *k < candidates.len() {
                        if *k == 0 {
                            candidates.clear();
                        } else {
                            candidates.select_nth_unstable_by(*k - 1, cmp);
                            candidates.truncate(*k);
                        }
                    }
                    candidates.sort_by(cmp);
                    frame.take_positions(&candidates);
                }
            }
            PlanOp::Lof { min_pts } => {
                metrics.distance_cells += matrix.packed_len() as u64;
                let full = lof(matrix, LofConfig { min_pts: *min_pts });
                frame.scores = Some(frame.selection.iter().map(|&i| full[i]).collect());
            }
            PlanOp::Outliers(rule) => {
                metrics.distance_cells += matrix.packed_len() as u64;
                let full = match rule {
                    OutlierRule::DistanceBased { p, d } => {
                        db_outliers(matrix, OutlierConfig { p: *p, d: *d })
                    }
                    OutlierRule::LofThreshold { min_pts, threshold } => {
                        lof_outliers(matrix, LofConfig { min_pts: *min_pts }, *threshold)
                    }
                };
                // Intersect with the selection, keeping the algorithm's
                // output order (ascending index for DB(p, D), descending
                // score for LOF outliers).
                let mut position_of = vec![usize::MAX; n];
                for (p, &i) in frame.selection.iter().enumerate() {
                    position_of[i] = p;
                }
                let keep: Vec<usize> = full
                    .into_iter()
                    .filter_map(|i| (position_of[i] != usize::MAX).then_some(position_of[i]))
                    .collect();
                frame.take_positions(&keep);
            }
            PlanOp::ClusterLabels(rule) => match rule {
                ClusterRule::Dbscan { eps, min_pts } => {
                    metrics.distance_cells += matrix.packed_len() as u64;
                    let full = canonical_dbscan_labels(&dbscan(
                        matrix,
                        DbscanConfig {
                            eps: *eps,
                            min_pts: *min_pts,
                        },
                    ));
                    frame.labels = Some(frame.selection.iter().map(|&i| full[i]).collect());
                }
                ClusterRule::KMedoids { k } => {
                    metrics.distance_cells += matrix.packed_len() as u64;
                    let r = kmedoids(matrix, *k);
                    let cost = r.cost(matrix);
                    frame.medoids = Some((r.medoids, r.assignment, cost));
                }
                ClusterRule::Hierarchical { linkage, k } => {
                    let dendrogram = plans.resolve(*linkage, metrics);
                    metrics.distance_cells += frame.selection.len() as u64;
                    let Response::Labels(full) = cut_response(&dendrogram, *k) else {
                        unreachable!("cut_response always yields labels")
                    };
                    frame.labels = Some(frame.selection.iter().map(|&i| full[i]).collect());
                }
            },
            PlanOp::Itemsets { min_support } => {
                let fi = frequent_itemsets(&shard.feature_transactions(), *min_support);
                frame.itemsets = Some(
                    fi.into_iter()
                        .map(|f| (f.items.into_iter().collect(), f.support))
                        .collect(),
                );
            }
            PlanOp::Limit(k) => {
                let keep: Vec<usize> = (0..frame.selection.len().min(*k)).collect();
                frame.take_positions(&keep);
            }
            PlanOp::Project(projection) => {
                let missing = |what: &str| {
                    ServerError::BadRequest(format!(
                        "Project({what}) without an op producing that payload"
                    ))
                };
                out = Some(match projection {
                    Projection::Items => Response::Indices(frame.selection.clone()),
                    Projection::Scores => {
                        Response::Scores(frame.scores.take().ok_or_else(|| missing("Scores"))?)
                    }
                    Projection::Labels => {
                        Response::Labels(frame.labels.take().ok_or_else(|| missing("Labels"))?)
                    }
                    Projection::Medoids => {
                        let (medoids, assignment, cost) =
                            frame.medoids.take().ok_or_else(|| missing("Medoids"))?;
                        Response::Medoids {
                            medoids,
                            assignment,
                            cost,
                        }
                    }
                    Projection::Itemsets => Response::Itemsets(
                        frame.itemsets.take().ok_or_else(|| missing("Itemsets"))?,
                    ),
                });
            }
        }
        metrics.record_op(op_name(op), op_started.elapsed());
    }

    let elapsed = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    // Instant can report 0 ns on coarse clocks; the metrics contract is
    // "non-zero for every executed query", so clamp up to 1.
    metrics.total_nanos += elapsed.max(1);
    out.ok_or_else(|| ServerError::BadRequest("pipeline produced no projection".into()))
}

/// Stable display name per operator kind, used in [`super::OpMetric`].
fn op_name(op: &PlanOp) -> &'static str {
    match op {
        PlanOp::Scan => "Scan",
        PlanOp::FilterRange { .. } => "FilterRange",
        PlanOp::Knn { .. } => "Knn",
        PlanOp::Lof { .. } => "Lof",
        PlanOp::Outliers(OutlierRule::DistanceBased { .. }) => "Outliers(DB)",
        PlanOp::Outliers(OutlierRule::LofThreshold { .. }) => "Outliers(LOF)",
        PlanOp::ClusterLabels(ClusterRule::Dbscan { .. }) => "ClusterLabels(DBSCAN)",
        PlanOp::ClusterLabels(ClusterRule::KMedoids { .. }) => "ClusterLabels(KMedoids)",
        PlanOp::ClusterLabels(ClusterRule::Hierarchical { .. }) => "ClusterLabels(Hierarchical)",
        PlanOp::Itemsets { .. } => "Itemsets",
        PlanOp::Limit(_) => "Limit",
        PlanOp::Project(_) => "Project",
    }
}
