//! The physical-plan algebra and the request compiler.
//!
//! Every [`Request`] — the nine single-shot variants *and* the compound
//! [`Request::Pipeline`] — compiles into one [`PhysicalPlan`]: a `Scan`
//! followed by selection/scoring operators and a final `Project`. The
//! executor ([`super::executor`]) is the only interpreter of this algebra,
//! so validation is derived from the compiled plan too
//! ([`PhysicalPlan::validate`]) — an operator cannot ship with execution
//! semantics but no bounds checks, because both read the same op list.

use crate::request::{Request, ServerError};
use dpe_mining::Linkage;

/// One operator of the physical-plan algebra.
///
/// Operators transform a *selection* (an ordered list of item indices,
/// initially the full scan) plus an optional aligned payload (scores or
/// labels). Whole-shard algorithms (`Lof`, `Outliers`, `ClusterLabels`)
/// always compute over the **entire** shard and then project onto the
/// current selection — so a pipelined `FilterRange → ClusterLabels` returns
/// exactly the labels the whole-shard clustering assigns the survivors,
/// bit-identical to a client composing the two single-shot requests.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Start from every stored item, in insertion order. Always the first
    /// op; the compiler inserts it when a pipeline omits it.
    Scan,
    /// Keep selected items within `radius` of item `item` (inclusive,
    /// `item` itself excluded, NaN distances never qualify) — the
    /// ε-neighbourhood semantics of [`dpe_mining::range_indices`].
    FilterRange {
        /// Anchor item.
        item: usize,
        /// Inclusive distance bound.
        radius: f64,
    },
    /// Keep the `k` selected items nearest to `item` (closest first,
    /// distance ties on the lower index, NaN last, `item` excluded) — the
    /// semantics of [`dpe_mining::knn_indices`] restricted to the
    /// selection.
    Knn {
        /// Anchor item.
        item: usize,
        /// Neighbour count.
        k: usize,
    },
    /// Attach whole-shard LOF scores to the selection.
    Lof {
        /// LOF neighbourhood size.
        min_pts: usize,
    },
    /// Replace the selection with the shard's outliers (in the outlier
    /// algorithm's order), intersected with the current selection.
    Outliers(OutlierRule),
    /// Attach whole-shard cluster labels (or a k-medoids clustering) to
    /// the selection.
    ClusterLabels(ClusterRule),
    /// Attach the shard's frequent feature itemsets (whole-shard only).
    Itemsets {
        /// Absolute Apriori support threshold.
        min_support: usize,
    },
    /// Truncate the selection (and its aligned payload) to the first `k`
    /// entries.
    Limit(usize),
    /// Materialize the wire [`crate::Response`]. Always the last op; the
    /// compiler appends the natural projection when a pipeline omits it.
    Project(Projection),
}

/// Which outlier definition an [`PlanOp::Outliers`] op applies.
#[derive(Debug, Clone, PartialEq)]
pub enum OutlierRule {
    /// Knorr–Ng DB(p, D) outliers, ascending index order.
    DistanceBased {
        /// Fraction of the shard that must be farther than `d`.
        p: f64,
        /// Distance threshold.
        d: f64,
    },
    /// Items with `LOF > threshold`, descending by score.
    LofThreshold {
        /// LOF neighbourhood size.
        min_pts: usize,
        /// Score cut-off.
        threshold: f64,
    },
}

/// Which clustering a [`PlanOp::ClusterLabels`] op computes.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterRule {
    /// DBSCAN flat labels (noise = −1), canonicalized.
    Dbscan {
        /// ε-neighbourhood radius.
        eps: f64,
        /// Core-point density threshold.
        min_pts: usize,
    },
    /// K-medoids (whole-shard only — its response is the medoid set, not a
    /// per-selection label vector).
    KMedoids {
        /// Cluster count.
        k: usize,
    },
    /// An agglomerative dendrogram under `linkage`, cut into `k` clusters.
    /// The dendrogram is resolved through the per-shard plan cache.
    Hierarchical {
        /// Linkage rule.
        linkage: Linkage,
        /// Cut size.
        k: usize,
    },
}

/// What the final [`PlanOp::Project`] materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Projection {
    /// The selection itself, as [`crate::Response::Indices`].
    Items,
    /// Per-selected-item LOF scores ([`crate::Response::Scores`]).
    Scores,
    /// Per-selected-item cluster labels ([`crate::Response::Labels`]).
    Labels,
    /// The whole-shard k-medoids result ([`crate::Response::Medoids`]).
    Medoids,
    /// The shard's frequent itemsets ([`crate::Response::Itemsets`]).
    Itemsets,
}

/// A compiled, executable plan: the single execution path every request
/// takes (see [`crate::Server`] and [`crate::Shard::answer`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    ops: Vec<PlanOp>,
}

impl PhysicalPlan {
    /// Compiles `request` into its physical plan. Single-shot variants map
    /// to `Scan → op → Project`; pipelines are normalized (a leading
    /// `Scan` and a trailing natural `Project` are inserted when omitted).
    pub fn compile(request: &Request) -> PhysicalPlan {
        let ops = match request.clone() {
            Request::Knn { item, k, .. } => vec![
                PlanOp::Scan,
                PlanOp::Knn { item, k },
                PlanOp::Project(Projection::Items),
            ],
            Request::Range { item, radius, .. } => vec![
                PlanOp::Scan,
                PlanOp::FilterRange { item, radius },
                PlanOp::Project(Projection::Items),
            ],
            Request::Lof { min_pts, .. } => vec![
                PlanOp::Scan,
                PlanOp::Lof { min_pts },
                PlanOp::Project(Projection::Scores),
            ],
            Request::LofOutliers {
                min_pts, threshold, ..
            } => vec![
                PlanOp::Scan,
                PlanOp::Outliers(OutlierRule::LofThreshold { min_pts, threshold }),
                PlanOp::Project(Projection::Items),
            ],
            Request::Outliers { p, d, .. } => vec![
                PlanOp::Scan,
                PlanOp::Outliers(OutlierRule::DistanceBased { p, d }),
                PlanOp::Project(Projection::Items),
            ],
            Request::Dbscan { eps, min_pts, .. } => vec![
                PlanOp::Scan,
                PlanOp::ClusterLabels(ClusterRule::Dbscan { eps, min_pts }),
                PlanOp::Project(Projection::Labels),
            ],
            Request::KMedoids { k, .. } => vec![
                PlanOp::Scan,
                PlanOp::ClusterLabels(ClusterRule::KMedoids { k }),
                PlanOp::Project(Projection::Medoids),
            ],
            Request::Hierarchical { linkage, k, .. } => vec![
                PlanOp::Scan,
                PlanOp::ClusterLabels(ClusterRule::Hierarchical { linkage, k }),
                PlanOp::Project(Projection::Labels),
            ],
            Request::FrequentItemsets { min_support, .. } => vec![
                PlanOp::Scan,
                PlanOp::Itemsets { min_support },
                PlanOp::Project(Projection::Itemsets),
            ],
            Request::Pipeline { ops, .. } => {
                let mut normalized = Vec::with_capacity(ops.len() + 2);
                if ops.first() != Some(&PlanOp::Scan) {
                    normalized.push(PlanOp::Scan);
                }
                let needs_project = !ops.iter().any(|op| matches!(op, PlanOp::Project(_)));
                normalized.extend(ops);
                if needs_project {
                    let natural = natural_projection(&normalized);
                    normalized.push(PlanOp::Project(natural));
                }
                normalized
            }
        };
        PhysicalPlan { ops }
    }

    /// The compiled operator sequence.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// Validates the plan against a shard of `n` items — structure (one
    /// leading `Scan`, one trailing `Project`, whole-shard ops undiluted)
    /// and every operator's parameter preconditions. This is the **single
    /// source** of request validation: [`crate::Shard::validate`] and the
    /// executor both call it, so a new op cannot ship with mismatched
    /// checks.
    pub(crate) fn validate(&self, shard: usize, n: usize) -> Result<(), ServerError> {
        let bad = |why: String| Err(ServerError::BadRequest(why));
        if self.ops.first() != Some(&PlanOp::Scan) {
            return bad("pipeline must start with Scan".into());
        }
        let last = self.ops.len() - 1;
        if !matches!(self.ops[last], PlanOp::Project(_)) {
            return bad("pipeline must end with a Project op".into());
        }

        let check_item = |item: usize| {
            if item < n {
                Ok(())
            } else {
                Err(ServerError::ItemOutOfBounds {
                    shard,
                    item,
                    len: n,
                })
            }
        };
        let check_min_pts = |min_pts: usize| {
            if min_pts == 0 {
                Err(ServerError::BadRequest("LOF min_pts must be ≥ 1".into()))
            } else if min_pts >= n {
                Err(ServerError::BadRequest(format!(
                    "LOF min_pts = {min_pts} needs ≥ {} stored items, shard {shard} has {n}",
                    min_pts + 1
                )))
            } else {
                Ok(())
            }
        };

        // Payload availability for the final projection, tracked op by op.
        let mut have_scores = false;
        let mut have_labels = false;
        let mut have_medoids = false;
        let mut have_itemsets = false;

        for (pos, op) in self.ops.iter().enumerate() {
            match op {
                PlanOp::Scan => {
                    if pos != 0 {
                        return bad("Scan is only valid as the first op".into());
                    }
                }
                PlanOp::Project(projection) => {
                    if pos != last {
                        return bad("Project is only valid as the last op".into());
                    }
                    let ok = match projection {
                        Projection::Items => true,
                        Projection::Scores => have_scores,
                        Projection::Labels => have_labels,
                        Projection::Medoids => have_medoids,
                        Projection::Itemsets => have_itemsets,
                    };
                    if !ok {
                        return bad(format!(
                            "Project({projection:?}) needs an earlier op producing that payload"
                        ));
                    }
                }
                PlanOp::FilterRange { item, radius } => {
                    if radius.is_nan() {
                        return bad("range radius is NaN".into());
                    }
                    check_item(*item)?;
                }
                PlanOp::Knn { item, .. } => check_item(*item)?,
                PlanOp::Lof { min_pts } => {
                    check_min_pts(*min_pts)?;
                    have_scores = true;
                }
                PlanOp::Outliers(OutlierRule::DistanceBased { p, d }) => {
                    if d.is_nan() {
                        return bad("outlier distance D is NaN".into());
                    }
                    if !(0.0..=1.0).contains(p) {
                        return bad(format!("outlier fraction p = {p} outside [0, 1]"));
                    }
                }
                PlanOp::Outliers(OutlierRule::LofThreshold { min_pts, threshold }) => {
                    if threshold.is_nan() {
                        return bad("LOF threshold is NaN".into());
                    }
                    check_min_pts(*min_pts)?;
                }
                PlanOp::ClusterLabels(ClusterRule::Dbscan { eps, min_pts }) => {
                    if eps.is_nan() {
                        return bad("DBSCAN eps is NaN".into());
                    }
                    if *min_pts == 0 {
                        return bad("DBSCAN min_pts must be ≥ 1".into());
                    }
                    have_labels = true;
                }
                PlanOp::ClusterLabels(ClusterRule::KMedoids { k }) => {
                    check_k("k-medoids", *k, n, shard)?;
                    if pos != 1 {
                        return bad(
                            "k-medoids is whole-shard only: it must follow Scan directly".into(),
                        );
                    }
                    have_medoids = true;
                }
                PlanOp::ClusterLabels(ClusterRule::Hierarchical { k, .. }) => {
                    check_k("hierarchical cut", *k, n, shard)?;
                    have_labels = true;
                }
                PlanOp::Itemsets { min_support } => {
                    if *min_support == 0 {
                        return bad("frequent-itemset min_support must be ≥ 1".into());
                    }
                    if pos != 1 {
                        return bad(
                            "frequent itemsets are whole-shard only: the op must follow Scan directly"
                                .into(),
                        );
                    }
                    have_itemsets = true;
                }
                PlanOp::Limit(_) => {}
            }
        }
        Ok(())
    }
}

/// The projection a pipeline gets when it does not spell one: whatever the
/// last payload-producing operator yields, falling back to the selection
/// itself. This makes a one-op pipeline answer exactly like its single-shot
/// twin (`Pipeline[Lof]` returns scores, like `Request::Lof`).
fn natural_projection(ops: &[PlanOp]) -> Projection {
    for op in ops.iter().rev() {
        match op {
            PlanOp::Lof { .. } => return Projection::Scores,
            PlanOp::ClusterLabels(ClusterRule::KMedoids { .. }) => return Projection::Medoids,
            PlanOp::ClusterLabels(_) => return Projection::Labels,
            PlanOp::Itemsets { .. } => return Projection::Itemsets,
            PlanOp::Outliers(_) | PlanOp::Knn { .. } | PlanOp::FilterRange { .. } => {
                return Projection::Items
            }
            PlanOp::Scan | PlanOp::Limit(_) | PlanOp::Project(_) => {}
        }
    }
    Projection::Items
}

/// `k`-style parameter check shared by k-medoids and hierarchical cuts: the
/// mining layer asserts `1 ≤ k ≤ n`; the server returns the error instead.
fn check_k(what: &str, k: usize, n: usize, shard: usize) -> Result<(), ServerError> {
    if k == 0 {
        Err(ServerError::BadRequest(format!("{what} k must be ≥ 1")))
    } else if k > n {
        Err(ServerError::BadRequest(format!(
            "{what} k = {k} exceeds shard {shard}'s {n} stored items"
        )))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shot_variants_compile_to_scan_op_project() {
        let plan = PhysicalPlan::compile(&Request::Knn {
            shard: 0,
            item: 2,
            k: 3,
        });
        assert_eq!(
            plan.ops(),
            &[
                PlanOp::Scan,
                PlanOp::Knn { item: 2, k: 3 },
                PlanOp::Project(Projection::Items),
            ]
        );
    }

    #[test]
    fn pipeline_normalization_inserts_scan_and_natural_project() {
        let plan = PhysicalPlan::compile(&Request::Pipeline {
            shard: 0,
            ops: vec![PlanOp::FilterRange {
                item: 1,
                radius: 0.5,
            }],
        });
        assert_eq!(plan.ops().len(), 3);
        assert_eq!(plan.ops()[0], PlanOp::Scan);
        assert_eq!(plan.ops()[2], PlanOp::Project(Projection::Items));

        let lof = PhysicalPlan::compile(&Request::Pipeline {
            shard: 0,
            ops: vec![PlanOp::Lof { min_pts: 2 }],
        });
        assert_eq!(lof.ops().last(), Some(&PlanOp::Project(Projection::Scores)));
    }

    #[test]
    fn validate_rejects_misplaced_structure() {
        let n = 8;
        let mid_scan = PhysicalPlan {
            ops: vec![
                PlanOp::Scan,
                PlanOp::Scan,
                PlanOp::Project(Projection::Items),
            ],
        };
        assert!(matches!(
            mid_scan.validate(0, n),
            Err(ServerError::BadRequest(_))
        ));

        let project_without_payload = PhysicalPlan {
            ops: vec![PlanOp::Scan, PlanOp::Project(Projection::Scores)],
        };
        assert!(matches!(
            project_without_payload.validate(0, n),
            Err(ServerError::BadRequest(_))
        ));

        let diluted_kmedoids = PhysicalPlan {
            ops: vec![
                PlanOp::Scan,
                PlanOp::FilterRange {
                    item: 0,
                    radius: 0.5,
                },
                PlanOp::ClusterLabels(ClusterRule::KMedoids { k: 2 }),
                PlanOp::Project(Projection::Medoids),
            ],
        };
        assert!(matches!(
            diluted_kmedoids.validate(0, n),
            Err(ServerError::BadRequest(_))
        ));
    }

    #[test]
    fn validate_bounds_every_anchor_position() {
        // An out-of-bounds anchor must surface as ItemOutOfBounds from any
        // op position — the regression the single-source validation fixes.
        let n = 4;
        for ops in [
            vec![PlanOp::Knn { item: 9, k: 1 }],
            vec![PlanOp::FilterRange {
                item: 9,
                radius: 1.0,
            }],
            vec![
                PlanOp::FilterRange {
                    item: 0,
                    radius: 1.0,
                },
                PlanOp::Knn { item: 9, k: 1 },
            ],
            vec![
                PlanOp::Knn { item: 0, k: 2 },
                PlanOp::FilterRange {
                    item: 9,
                    radius: 1.0,
                },
            ],
        ] {
            let plan = PhysicalPlan::compile(&Request::Pipeline { shard: 3, ops });
            assert_eq!(
                plan.validate(3, n),
                Err(ServerError::ItemOutOfBounds {
                    shard: 3,
                    item: 9,
                    len: n
                })
            );
        }
    }

    #[test]
    fn validate_rejects_nan_radius_at_every_op_position() {
        // A NaN radius would silently select nothing (every comparison is
        // false) — it must be a typed BadRequest no matter where in the
        // pipeline the FilterRange sits.
        let nan_range = PlanOp::FilterRange {
            item: 0,
            radius: f64::NAN,
        };
        for ops in [
            vec![nan_range.clone()],
            vec![nan_range.clone(), PlanOp::Knn { item: 0, k: 1 }],
            vec![PlanOp::Knn { item: 0, k: 2 }, nan_range.clone()],
            vec![
                PlanOp::FilterRange {
                    item: 1,
                    radius: 0.5,
                },
                PlanOp::Lof { min_pts: 2 },
                nan_range.clone(),
            ],
        ] {
            let plan = PhysicalPlan::compile(&Request::Pipeline { shard: 0, ops });
            let err = plan.validate(0, 4).unwrap_err();
            assert!(
                matches!(&err, ServerError::BadRequest(msg) if msg.contains("radius is NaN")),
                "expected NaN-radius BadRequest, got {err:?}"
            );
        }
    }
}
