//! Per-query execution metrics, threaded through every plan operator.
//!
//! Every query answered by the executor — point queries, whole-shard
//! clustering, compound pipelines, SQL — accumulates one
//! [`ExecutionMetrics`] while it runs: rows scanned, distance cells
//! touched, cache and plan-cache interactions, and per-operator wall time.
//! The server folds the per-query records into the aggregate surfaced by
//! [`crate::Server::stats`]; [`crate::Server::explain`] returns the
//! per-query record itself.

use std::time::Duration;

/// Wall time and invocation count for one operator kind within a query (or,
/// aggregated, across all queries — see [`ExecutionMetrics::merge`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpMetric {
    /// Operator name (`"Scan"`, `"FilterRange"`, `"Knn"`, …).
    pub op: &'static str,
    /// Times the operator ran.
    pub invocations: u64,
    /// Total wall time spent inside the operator, nanoseconds.
    pub nanos: u64,
}

/// Counters accumulated while executing one physical plan.
///
/// A cache *hit* produces a record with `cache_hits = 1` and nothing else —
/// the plan never ran. Every executed plan records at least its `Scan` and
/// `Project` operators, so `ops` is never empty for a computed answer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionMetrics {
    /// Items the `Scan` operator enumerated.
    pub rows_scanned: u64,
    /// Distance-matrix cells read by the operators (per-anchor operators
    /// count one cell per candidate; whole-matrix algorithms count the
    /// packed triangle they traverse; plan-cache hits count zero — the
    /// dendrogram's cells were paid for when it was built).
    pub distance_cells: u64,
    /// Distance cells a shard's metric index proved irrelevant via
    /// triangle-inequality pruning — never read at all. For an indexed
    /// `Knn`/`FilterRange` over `n` items, `distance_cells + pruned_cells`
    /// for that op totals `n`; non-indexed paths never increment this.
    pub pruned_cells: u64,
    /// Queries answered straight from the response cache.
    pub cache_hits: u64,
    /// Dendrograms resolved from the clustering-plan cache.
    pub plan_hits: u64,
    /// Dendrograms built because no cached plan matched.
    pub plan_builds: u64,
    /// Total wall time of the plan, nanoseconds.
    pub total_nanos: u64,
    /// Per-operator timings, in first-execution order.
    pub ops: Vec<OpMetric>,
}

impl ExecutionMetrics {
    /// Records one run of operator `op` taking `elapsed`.
    pub(crate) fn record_op(&mut self, op: &'static str, elapsed: Duration) {
        let nanos = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        match self.ops.iter_mut().find(|m| m.op == op) {
            Some(m) => {
                m.invocations += 1;
                m.nanos += nanos;
            }
            None => self.ops.push(OpMetric {
                op,
                invocations: 1,
                nanos,
            }),
        }
    }

    /// Folds `other` into `self` (operator timings merge by name) — how the
    /// server aggregates per-query records into [`crate::ServerStats`].
    pub fn merge(&mut self, other: &ExecutionMetrics) {
        self.rows_scanned += other.rows_scanned;
        self.distance_cells += other.distance_cells;
        self.pruned_cells += other.pruned_cells;
        self.cache_hits += other.cache_hits;
        self.plan_hits += other.plan_hits;
        self.plan_builds += other.plan_builds;
        self.total_nanos += other.total_nanos;
        for m in &other.ops {
            match self.ops.iter_mut().find(|o| o.op == m.op) {
                Some(o) => {
                    o.invocations += m.invocations;
                    o.nanos += m.nanos;
                }
                None => self.ops.push(m.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_op_accumulates_per_name() {
        let mut m = ExecutionMetrics::default();
        m.record_op("Scan", Duration::from_nanos(10));
        m.record_op("FilterRange", Duration::from_nanos(5));
        m.record_op("FilterRange", Duration::from_nanos(7));
        assert_eq!(m.ops.len(), 2);
        assert_eq!(m.ops[1].op, "FilterRange");
        assert_eq!(m.ops[1].invocations, 2);
        assert_eq!(m.ops[1].nanos, 12);
    }

    #[test]
    fn merge_sums_counters_and_joins_ops_by_name() {
        let mut a = ExecutionMetrics {
            rows_scanned: 10,
            distance_cells: 45,
            pruned_cells: 3,
            cache_hits: 1,
            plan_hits: 0,
            plan_builds: 1,
            total_nanos: 100,
            ops: vec![OpMetric {
                op: "Scan",
                invocations: 1,
                nanos: 20,
            }],
        };
        let b = ExecutionMetrics {
            rows_scanned: 5,
            distance_cells: 10,
            pruned_cells: 4,
            cache_hits: 0,
            plan_hits: 2,
            plan_builds: 0,
            total_nanos: 50,
            ops: vec![
                OpMetric {
                    op: "Scan",
                    invocations: 1,
                    nanos: 5,
                },
                OpMetric {
                    op: "Knn",
                    invocations: 1,
                    nanos: 9,
                },
            ],
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 15);
        assert_eq!(a.distance_cells, 55);
        assert_eq!(a.pruned_cells, 7);
        assert_eq!((a.cache_hits, a.plan_hits, a.plan_builds), (1, 2, 1));
        assert_eq!(a.total_nanos, 150);
        assert_eq!(a.ops.len(), 2);
        assert_eq!(a.ops[0].invocations, 2);
        assert_eq!(a.ops[0].nanos, 25);
    }
}
