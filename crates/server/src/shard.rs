//! One tenant shard: a contiguous row range of the global store with its
//! own packed distance matrix.
//!
//! Sharding is by tenant, so every mining request is answerable from one
//! shard's matrix alone — no cross-shard distances are ever materialized.
//! Each shard reuses the PR 2 incremental engine:
//! [`dpe_distance::DistanceMatrix::extend`] makes a streaming insert of `m`
//! queries cost exactly `m·n + m(m−1)/2` distance calls, and the packed
//! upper-triangle layout keeps the per-shard memory at `n(n−1)/2` cells.

use crate::exec::{self, ExecutionMetrics, PhysicalPlan};
use crate::request::{Request, Response, ServerError};
use dpe_distance::index::{MatrixSource, QueryCounters, VpTree};
use dpe_distance::{DistanceMatrix, QueryDistance};
use dpe_mining::apriori::Transaction;
use dpe_mining::{agglomerative, Dendrogram, Linkage};
use dpe_sql::{feature_set, Query};

/// A tenant's slice of the store: queries in insertion order plus the
/// packed matrix over them, versioned by an epoch that bumps on every
/// successful insert (cache keys embed it, so stale responses can never be
/// served after an [`Shard::ingest`]).
#[derive(Debug, Clone, Default)]
pub struct Shard {
    queries: Vec<Query>,
    matrix: DistanceMatrix,
    epoch: u64,
    /// The optional metric index (see [`ShardIndex`]); kept in lockstep
    /// with the matrix inside the same `&mut self` ingest, so it can never
    /// describe a different epoch than the matrix it prunes for.
    index: Option<ShardIndex>,
}

/// A shard's metric index: a [`VpTree`] over the shard's packed matrix.
/// The matrix stays the ground truth — the tree only decides *which* cells
/// a `Knn`/`FilterRange` op reads, so indexed answers are bit-identical to
/// matrix-path answers while triangle-inequality pruning skips the rest
/// (the skips surface as [`ExecutionMetrics::pruned_cells`]).
///
/// Building one is only sound for measures declaring
/// [`QueryDistance::is_metric`]; [`crate::Server`] enforces that — a
/// `Shard` handled directly leaves the check to the caller.
#[derive(Debug, Clone)]
pub struct ShardIndex {
    tree: VpTree,
}

impl ShardIndex {
    fn build(matrix: &DistanceMatrix) -> ShardIndex {
        let tree = VpTree::build(&MatrixSource(matrix))
            .expect("matrix-backed distance source cannot fail");
        ShardIndex { tree }
    }

    /// Streaming-insert maintenance: appended items join the tree's
    /// overflow (zero distance reads now), with a rebuild once the
    /// overflow outgrows half the built tree.
    fn absorb(&mut self, matrix: &DistanceMatrix) {
        self.tree
            .absorb(&MatrixSource(matrix))
            .expect("matrix-backed distance source cannot fail");
    }

    /// Exact kNN of `item` through the tree — bit-identical to
    /// [`dpe_mining::knn_indices`] over the same matrix.
    pub fn knn(
        &self,
        matrix: &DistanceMatrix,
        item: usize,
        k: usize,
    ) -> (Vec<usize>, QueryCounters) {
        self.tree
            .knn(&MatrixSource(matrix), item, k)
            .expect("matrix-backed distance source cannot fail")
    }

    /// Exact range query through the tree — bit-identical to
    /// [`dpe_mining::range_indices`] over the same matrix.
    pub fn range(
        &self,
        matrix: &DistanceMatrix,
        item: usize,
        radius: f64,
    ) -> (Vec<usize>, QueryCounters) {
        self.tree
            .range(&MatrixSource(matrix), item, radius)
            .expect("matrix-backed distance source cannot fail")
    }

    /// Items the index covers (always the shard's length).
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` when the index covers no items.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Items inside the tree structure proper (the rest are overflow).
    pub fn built_len(&self) -> usize {
        self.tree.built_len()
    }

    /// Appended items pending the next rebuild, scanned linearly.
    pub fn overflow_len(&self) -> usize {
        self.tree.overflow_len()
    }

    /// Full rebuilds triggered by streaming inserts so far.
    pub fn rebuilds(&self) -> u64 {
        self.tree.rebuilds()
    }
}

impl Shard {
    /// An empty shard.
    pub fn new() -> Shard {
        Shard::default()
    }

    /// Rebuilds a shard from recovered state: the query store, the packed
    /// matrix over it (bit-identical to the snapshotted one — recovery
    /// never recomputes snapshot cells), and the epoch the store had at
    /// that cut. The metric index is *not* restored — it is derived state;
    /// call [`Shard::enable_index`] afterwards to rebuild it.
    ///
    /// # Panics
    ///
    /// Panics when the matrix does not cover exactly the query count —
    /// [`dpe_durability`] validates this while decoding, so hitting the
    /// assert means a caller bypassed the snapshot codec.
    pub fn restore(queries: Vec<Query>, matrix: DistanceMatrix, epoch: u64) -> Shard {
        assert_eq!(
            matrix.len(),
            queries.len(),
            "restore: matrix covers {} items but {} queries were recovered",
            matrix.len(),
            queries.len()
        );
        Shard {
            queries,
            matrix,
            epoch,
            index: None,
        }
    }

    /// Streaming insert: appends `new` queries, computing only the new
    /// distance pairs. On error the shard (and its epoch) is unchanged.
    pub fn ingest<M: QueryDistance>(
        &mut self,
        new: &[Query],
        measure: &M,
    ) -> Result<(), ServerError> {
        self.matrix.extend(&self.queries, new, measure)?;
        self.queries.extend_from_slice(new);
        self.epoch += 1;
        // Same &mut self as the epoch bump: the index is updated (or the
        // whole ingest fails) before any reader can observe the new epoch.
        if let Some(index) = &mut self.index {
            index.absorb(&self.matrix);
        }
        Ok(())
    }

    /// Batched streaming insert: ingests `chunks` in order, skipping empty
    /// chunks (so they cannot bump the epoch), and returns the total item
    /// count applied. Each non-empty chunk is one [`Shard::ingest`] —
    /// exactly `m·n + m(m−1)/2` new distance calls and one epoch bump. On
    /// error the already-applied prefix of chunks (and its epoch bumps)
    /// remains; the failing chunk is rolled back.
    ///
    /// This is the owner-upload entry point the batched Paillier engine
    /// feeds: `dpe_paillier::batch::BatchEncryptor::encrypt_stream` hands
    /// ciphertext chunks to a producer whose output lands here (pipelined
    /// across threads by `Server::ingest_stream`).
    pub fn ingest_stream<M, I>(&mut self, chunks: I, measure: &M) -> Result<usize, ServerError>
    where
        M: QueryDistance,
        I: IntoIterator<Item = Vec<Query>>,
    {
        let mut total = 0usize;
        for chunk in chunks {
            if chunk.is_empty() {
                continue;
            }
            self.ingest(&chunk, measure)?;
            total += chunk.len();
        }
        Ok(total)
    }

    /// Items stored.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` before the first ingest.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Version counter, bumped by every successful [`Shard::ingest`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The stored queries, insertion order (request item indices point
    /// here).
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The packed matrix over the stored queries.
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.matrix
    }

    /// Builds (or rebuilds) the shard's metric index over the current
    /// matrix; every subsequent [`Shard::ingest`] keeps it current
    /// incrementally. The caller is responsible for only indexing metric
    /// measures ([`QueryDistance::is_metric`]) — [`crate::Server`] checks.
    pub fn enable_index(&mut self) {
        self.index = Some(ShardIndex::build(&self.matrix));
    }

    /// Drops the metric index; queries fall back to the matrix paths.
    pub fn disable_index(&mut self) {
        self.index = None;
    }

    /// The shard's metric index, when one is built.
    pub fn index(&self) -> Option<&ShardIndex> {
        self.index.as_ref()
    }

    /// Validates `request` against the shard's current size, returning the
    /// error a worker would otherwise panic on inside the mining layer.
    /// The checks are **derived from the compiled physical plan**
    /// (`PhysicalPlan::validate`) — the same single source the
    /// executor consults, so validation and execution cannot drift apart.
    pub fn validate(&self, request: &Request) -> Result<(), ServerError> {
        PhysicalPlan::compile(request).validate(request.shard(), self.len())
    }

    /// Answers a request from the packed matrix by compiling it into a
    /// physical plan and running the plan executor. Pure matrix reads —
    /// the caller holds (at least) a read lock. Dendrograms are built from
    /// scratch here; this is the uncached baseline — the server's batch
    /// path supplies the per-shard plan cache to the same executor instead
    /// (see [`crate::Server::stats`]).
    pub fn answer(&self, request: &Request) -> Result<Response, ServerError> {
        self.answer_with_metrics(request)
            .map(|(response, _)| response)
    }

    /// [`Shard::answer`], also returning the query's [`ExecutionMetrics`].
    pub fn answer_with_metrics(
        &self,
        request: &Request,
    ) -> Result<(Response, ExecutionMetrics), ServerError> {
        let plan = PhysicalPlan::compile(request);
        let mut metrics = ExecutionMetrics::default();
        let mut plans = exec::DirectPlans { shard: self };
        let response = exec::execute(self, request.shard(), &plan, &mut plans, &mut metrics)?;
        Ok((response, metrics))
    }

    /// Builds the agglomerative clustering plan for `linkage` from the
    /// packed matrix — the expensive artefact the server's plan cache
    /// stores once per (shard, epoch, linkage).
    pub fn build_plan(&self, linkage: Linkage) -> Dendrogram {
        agglomerative(&self.matrix, linkage)
    }

    /// The shard's query log as Apriori transactions: each query's
    /// `features(Q)` set, printed — set equality is all Apriori reads, so
    /// this serves plaintext and DPE-encrypted logs alike.
    pub(crate) fn feature_transactions(&self) -> Vec<Transaction<String>> {
        self.queries
            .iter()
            .map(|q| feature_set(q).iter().map(|f| f.to_string()).collect())
            .collect()
    }
}

/// Cuts a built plan into `k` clusters in canonical wire form. The cut's
/// ids are already renumbered by smallest leaf, so the conversion is just a
/// widening — shared by the uncached path and the plan-cached batch path so
/// they cannot diverge.
pub(crate) fn cut_response(plan: &Dendrogram, k: usize) -> Response {
    Response::Labels(plan.cut(k).into_iter().map(|c| c as i64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_distance::TokenDistance;
    use dpe_mining::{
        canonical_dbscan_labels, db_outliers, dbscan, kmedoids, knn_indices, lof, range_indices,
        DbscanConfig, LofConfig, OutlierConfig,
    };
    use dpe_sql::parse_query;

    fn queries(n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| {
                parse_query(&format!(
                    "SELECT ra, a{} FROM t{} WHERE objid = {}",
                    i % 4,
                    i % 3,
                    i * 11
                ))
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn ingest_matches_batch_matrix_and_bumps_epoch() {
        let all = queries(12);
        let full = DistanceMatrix::compute(&all, &TokenDistance).unwrap();
        let mut shard = Shard::new();
        assert_eq!(shard.epoch(), 0);
        shard.ingest(&all[..7], &TokenDistance).unwrap();
        shard.ingest(&all[7..], &TokenDistance).unwrap();
        assert_eq!(shard.epoch(), 2);
        assert_eq!(shard.len(), 12);
        assert!(shard.matrix().identical(&full));
    }

    #[test]
    fn index_tracks_ingest_and_answers_match_mining() {
        let all = queries(40);
        let mut shard = Shard::new();
        shard.ingest(&all[..10], &TokenDistance).unwrap();
        shard.enable_index();
        let built = shard.index().expect("index just built").built_len();
        assert_eq!(built, 10);

        // A small ingest lands in the overflow buffer; a large one forces
        // a rebuild. Either way every answer stays bit-identical to the
        // matrix path.
        shard.ingest(&all[10..13], &TokenDistance).unwrap();
        let index = shard.index().expect("index survives ingest");
        assert_eq!(index.len(), 13);
        assert_eq!(index.overflow_len(), 3, "small ingest buffers");

        shard.ingest(&all[13..], &TokenDistance).unwrap();
        let index = shard.index().expect("index survives ingest");
        assert_eq!(index.len(), 40);
        assert_eq!(index.overflow_len(), 0, "large ingest rebuilds");
        assert!(index.rebuilds() >= 1);

        for item in 0..shard.len() {
            let (got, counters) = index.knn(shard.matrix(), item, 6);
            let want = knn_indices(shard.matrix(), item, 6);
            assert_eq!(got, want, "knn anchor {item}");
            assert_eq!(counters.computed + counters.pruned, 40);
            let (got, _) = index.range(shard.matrix(), item, 0.4);
            let want = range_indices(shard.matrix(), item, 0.4);
            assert_eq!(got, want, "range anchor {item}");
        }

        shard.disable_index();
        assert!(shard.index().is_none());
    }

    #[test]
    fn ingest_stream_matches_one_shot_ingest() {
        let all = queries(15);
        let mut oracle = Shard::new();
        oracle.ingest(&all, &TokenDistance).unwrap();
        let mut shard = Shard::new();
        let chunks: Vec<Vec<Query>> = vec![
            all[..4].to_vec(),
            Vec::new(), // empty chunks are skipped, not epoch-bumped
            all[4..9].to_vec(),
            all[9..].to_vec(),
        ];
        let total = shard.ingest_stream(chunks, &TokenDistance).unwrap();
        assert_eq!(total, 15);
        assert_eq!(shard.len(), 15);
        assert_eq!(shard.epoch(), 3, "one bump per non-empty chunk");
        assert!(shard.matrix().identical(oracle.matrix()));
    }

    #[test]
    fn ingest_stream_error_keeps_applied_prefix() {
        /// Token distance that errors after a fixed number of calls, so a
        /// later chunk of a stream fails while earlier ones succeed.
        struct FailAfter(std::cell::Cell<usize>);
        impl QueryDistance for FailAfter {
            fn distance(&self, a: &Query, b: &Query) -> Result<f64, dpe_distance::DistanceError> {
                if self.0.get() == 0 {
                    return Err(dpe_distance::DistanceError::MissingDomain("budget".into()));
                }
                self.0.set(self.0.get() - 1);
                TokenDistance.distance(a, b)
            }
            fn name(&self) -> &'static str {
                "fail-after"
            }
        }
        let all = queries(9);
        let mut shard = Shard::new();
        // Chunk 1 (5 items) costs 10 calls, chunk 2 (4 items on 5) costs
        // 26: a budget of 15 applies chunk 1 and fails inside chunk 2.
        let chunks = vec![all[..5].to_vec(), all[5..].to_vec()];
        let err = shard
            .ingest_stream(chunks, &FailAfter(std::cell::Cell::new(15)))
            .unwrap_err();
        assert!(matches!(err, ServerError::Distance(_)));
        assert_eq!(shard.len(), 5, "failing chunk fully rolled back");
        assert_eq!(shard.epoch(), 1, "only the applied chunk bumped");
        let mut oracle = Shard::new();
        oracle.ingest(&all[..5], &TokenDistance).unwrap();
        assert!(shard.matrix().identical(oracle.matrix()));
    }

    #[test]
    fn answers_agree_with_direct_mining_calls() {
        let mut shard = Shard::new();
        shard.ingest(&queries(10), &TokenDistance).unwrap();
        let m = shard.matrix();

        let knn = shard
            .answer(&Request::Knn {
                shard: 0,
                item: 3,
                k: 4,
            })
            .unwrap();
        assert_eq!(knn, Response::Indices(knn_indices(m, 3, 4)));

        let range = shard
            .answer(&Request::Range {
                shard: 0,
                item: 3,
                radius: 0.5,
            })
            .unwrap();
        assert_eq!(range, Response::Indices(range_indices(m, 3, 0.5)));

        let scores = shard
            .answer(&Request::Lof {
                shard: 0,
                min_pts: 3,
            })
            .unwrap();
        assert!(scores.bits_eq(&Response::Scores(lof(m, LofConfig { min_pts: 3 }))));

        let out = shard
            .answer(&Request::Outliers {
                shard: 0,
                p: 0.6,
                d: 0.4,
            })
            .unwrap();
        assert_eq!(
            out,
            Response::Indices(db_outliers(m, OutlierConfig { p: 0.6, d: 0.4 }))
        );
    }

    #[test]
    fn clustering_answers_agree_with_direct_mining_calls() {
        let mut shard = Shard::new();
        shard.ingest(&queries(10), &TokenDistance).unwrap();
        let m = shard.matrix();

        let db = shard
            .answer(&Request::Dbscan {
                shard: 0,
                eps: 0.5,
                min_pts: 2,
            })
            .unwrap();
        assert!(
            db.bits_eq(&Response::Labels(canonical_dbscan_labels(&dbscan(
                m,
                DbscanConfig {
                    eps: 0.5,
                    min_pts: 2,
                },
            ))))
        );

        let km = shard.answer(&Request::KMedoids { shard: 0, k: 3 }).unwrap();
        let oracle = kmedoids(m, 3);
        assert!(km.bits_eq(&Response::Medoids {
            cost: oracle.cost(m),
            medoids: oracle.medoids,
            assignment: oracle.assignment,
        }));

        for linkage in [Linkage::Complete, Linkage::Single, Linkage::Average] {
            let cut = shard
                .answer(&Request::Hierarchical {
                    shard: 0,
                    linkage,
                    k: 4,
                })
                .unwrap();
            let expect: Vec<i64> = agglomerative(m, linkage)
                .cut(4)
                .into_iter()
                .map(|c| c as i64)
                .collect();
            assert!(cut.bits_eq(&Response::Labels(expect)), "{linkage:?}");
        }

        let fi = shard
            .answer(&Request::FrequentItemsets {
                shard: 0,
                min_support: 3,
            })
            .unwrap();
        match fi {
            Response::Itemsets(sets) => {
                assert!(!sets.is_empty(), "shared SELECT/FROM features recur");
                assert!(sets.iter().all(|(_, support)| *support >= 3));
            }
            other => panic!("expected itemsets, got {other:?}"),
        }
    }

    #[test]
    fn validation_turns_panics_into_errors() {
        let mut shard = Shard::new();
        shard.ingest(&queries(4), &TokenDistance).unwrap();

        let oob = shard.answer(&Request::Knn {
            shard: 2,
            item: 4,
            k: 1,
        });
        assert_eq!(
            oob,
            Err(ServerError::ItemOutOfBounds {
                shard: 2,
                item: 4,
                len: 4
            })
        );

        for bad in [
            Request::Lof {
                shard: 0,
                min_pts: 0,
            },
            Request::Lof {
                shard: 0,
                min_pts: 4,
            },
            Request::Outliers {
                shard: 0,
                p: 1.5,
                d: 0.1,
            },
            Request::Range {
                shard: 0,
                item: 0,
                radius: f64::NAN,
            },
            Request::LofOutliers {
                shard: 0,
                min_pts: 2,
                threshold: f64::NAN,
            },
            Request::Outliers {
                shard: 0,
                p: 0.5,
                d: f64::NAN,
            },
            Request::Dbscan {
                shard: 0,
                eps: f64::NAN,
                min_pts: 2,
            },
            Request::Dbscan {
                shard: 0,
                eps: 0.5,
                min_pts: 0,
            },
            Request::KMedoids { shard: 0, k: 0 },
            Request::KMedoids { shard: 0, k: 5 },
            Request::Hierarchical {
                shard: 0,
                linkage: Linkage::Complete,
                k: 0,
            },
            Request::Hierarchical {
                shard: 0,
                linkage: Linkage::Average,
                k: 5,
            },
            Request::FrequentItemsets {
                shard: 0,
                min_support: 0,
            },
        ] {
            assert!(
                matches!(shard.answer(&bad), Err(ServerError::BadRequest(_))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn failed_ingest_leaves_shard_untouched() {
        struct Poison;
        impl QueryDistance for Poison {
            fn distance(&self, _: &Query, _: &Query) -> Result<f64, dpe_distance::DistanceError> {
                Err(dpe_distance::DistanceError::MissingDomain("poison".into()))
            }
            fn name(&self) -> &'static str {
                "poison"
            }
        }
        let mut shard = Shard::new();
        shard.ingest(&queries(5), &TokenDistance).unwrap();
        let before = shard.clone();
        let err = shard.ingest(&queries(3), &Poison).unwrap_err();
        assert!(matches!(err, ServerError::Distance(_)));
        assert_eq!(shard.len(), before.len());
        assert_eq!(shard.epoch(), before.epoch());
        assert!(shard.matrix().identical(before.matrix()));
    }
}
