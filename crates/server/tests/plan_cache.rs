//! Regression suite for the clustering plan cache's epoch lifecycle.
//!
//! The bug class being pinned: a dendrogram cached before an `ingest`
//! being served afterwards. Plans are keyed by (shard, epoch, linkage)
//! with *lazy* invalidation — the ingest path never scans anything; the
//! first plan lookup after the epoch bump drops the stale dendrogram and
//! rebuilds. The cold-vs-warm build/hit counters exposed by
//! [`Server::stats`] are pinned exactly, so a silent regression in
//! either direction (rebuild-per-request, or stale-serve) fails loudly.

use dpe_distance::TokenDistance;
use dpe_mining::Linkage;
use dpe_server::{Request, Response, Server};
use dpe_workload::{LogConfig, LogGenerator};

fn build_server(per_shard: usize) -> Server<TokenDistance> {
    let server = Server::builder(TokenDistance)
        .shards(2)
        .cache_capacity(64)
        .build();
    for shard in 0..2 {
        let log = LogGenerator::generate(&LogConfig {
            queries: per_shard,
            seed: 0x9A7 + shard as u64,
            ..Default::default()
        });
        server.ingest(shard, &log).unwrap();
    }
    server
}

fn cut(shard: usize, k: usize) -> Request {
    Request::Hierarchical {
        shard,
        linkage: Linkage::Complete,
        k,
    }
}

fn labels(result: &Response) -> &[i64] {
    match result {
        Response::Labels(v) => v,
        other => panic!("expected labels, got {other:?}"),
    }
}

#[test]
fn cold_then_warm_counters_are_exact() {
    const N: usize = 12;
    let server = build_server(N);
    assert_eq!(server.stats().plans, Default::default(), "cold start");

    // Cold: the first cut builds; the k-sweep that follows must not.
    let sweep: Vec<Request> = (1..=N).map(|k| cut(0, k)).collect();
    let results = server.serve_batch(&sweep, 2);
    for (k, result) in (1..=N).zip(&results) {
        let mut distinct: Vec<i64> = labels(result.as_ref().unwrap()).to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), k);
    }
    let cold = server.stats().plans;
    assert_eq!(
        (cold.builds, cold.hits, cold.invalidations, cold.live),
        (1, (N - 1) as u64, 0, 1),
        "a k-sweep is one build + N−1 plan hits"
    );

    // Warm: repeat the sweep with the response cache emptied, so every
    // request reaches the plan layer again — still zero new builds.
    server.clear_cache();
    let _ = server.serve_batch(&sweep, 2);
    let warm = server.stats().plans;
    assert_eq!(warm.builds, 1, "warm plan must serve all k without builds");
    assert_eq!(warm.hits, (2 * N - 1) as u64);
}

#[test]
fn epoch_bump_invalidates_the_plan_lazily() {
    const N: usize = 10;
    const EXTRA: usize = 3;
    let server = build_server(N);

    // Warm the plan and remember the stale answer's shape.
    let before = &server.serve_batch(&[cut(0, 2)], 1)[0];
    assert_eq!(labels(before.as_ref().unwrap()).len(), N);
    let warmed = server.stats().plans;
    assert_eq!((warmed.builds, warmed.invalidations), (1, 0));

    // Ingest: epoch bumps, but invalidation is lazy — nothing rebuilt,
    // the stale plan still counted live until next touched.
    let extra = LogGenerator::generate(&LogConfig {
        queries: EXTRA,
        seed: 0xFEED,
        ..Default::default()
    });
    server.ingest(0, &extra).unwrap();
    let after_ingest = server.stats().plans;
    assert_eq!(
        (after_ingest.builds, after_ingest.invalidations),
        (1, 0),
        "ingest must not eagerly touch plans"
    );

    // A cached dendrogram served now would yield N labels — that is the
    // bug this test exists to catch. The epoch key forces a rebuild over
    // the grown store instead.
    let after = &server.serve_batch(&[cut(0, 2)], 1)[0];
    assert_eq!(
        labels(after.as_ref().unwrap()).len(),
        N + EXTRA,
        "stale cached dendrogram served after ingest"
    );
    let rebuilt = server.stats().plans;
    assert_eq!(
        (rebuilt.builds, rebuilt.invalidations, rebuilt.live),
        (2, 1, 1),
        "exactly one invalidation + one rebuild after the epoch bump"
    );
    // And the rebuilt answer is the uncached oracle's.
    let oracle = server.serve_one_uncached(&cut(0, 2)).unwrap();
    assert!(after.as_ref().unwrap().bits_eq(&oracle));
}

#[test]
fn only_the_ingested_shard_loses_its_plan() {
    let server = build_server(8);
    let _ = server.serve_batch(&[cut(0, 2), cut(1, 2)], 2);
    assert_eq!(server.stats().plans.builds, 2);

    let extra = LogGenerator::generate(&LogConfig {
        queries: 2,
        seed: 0xABBA,
        ..Default::default()
    });
    server.ingest(0, &extra).unwrap();
    server.clear_cache();
    let _ = server.serve_batch(&[cut(0, 3), cut(1, 3)], 2);
    let stats = server.stats().plans;
    assert_eq!(
        (stats.builds, stats.invalidations),
        (3, 1),
        "shard 1's plan must survive shard 0's ingest"
    );
}

#[test]
fn uncached_baseline_never_touches_the_plan_cache() {
    let server = build_server(9);
    for k in 1..=9 {
        server.serve_one_uncached(&cut(0, k)).unwrap();
    }
    assert_eq!(
        server.stats().plans,
        Default::default(),
        "serve_one_uncached is the no-cache baseline by contract"
    );
}

#[test]
fn submit_drain_path_reuses_plans_too() {
    let server = build_server(11);
    for k in 1..=11 {
        server.submit(cut(0, k)).unwrap();
        server.submit(cut(1, k)).unwrap();
    }
    let results = server.drain(2);
    assert!(results.iter().all(|(_, r)| r.is_ok()));
    let stats = server.stats().plans;
    assert_eq!(stats.builds, 2, "one plan per shard for the whole drain");
    assert_eq!(stats.hits, 20);
}
