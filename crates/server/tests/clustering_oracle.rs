//! Differential oracle suite for the served clustering surface.
//!
//! The contract, mirroring `concurrency.rs` for the four clustering
//! request kinds: however many client threads submit, however batches are
//! grouped and plans cached, and whenever streaming inserts land, every
//! served `Dbscan` / `KMedoids` / `Hierarchical` / `FrequentItemsets`
//! response is **bit-identical** (`bits_eq`) to a direct `dpe_mining` call
//! on a distance matrix recomputed sequentially from scratch — a code path
//! the server never touches. Plan caching and batch grouping may change
//! *when* a dendrogram is built, never *what* any cut answers.

use dpe_distance::{DistanceMatrix, TokenDistance};
use dpe_mining::apriori::Transaction;
use dpe_mining::{
    agglomerative, canonical_dbscan_labels, dbscan, frequent_itemsets, kmedoids, DbscanConfig,
    Linkage,
};
use dpe_server::{Request, Response, Server, Ticket};
use dpe_sql::{feature_set, Query};
use dpe_workload::{LogConfig, LogGenerator};
use std::sync::Barrier;

const SHARDS: usize = 4;
const LINKAGES: [Linkage; 3] = [Linkage::Complete, Linkage::Single, Linkage::Average];

fn tenant_log(shard: usize, n: usize) -> Vec<Query> {
    LogGenerator::generate(&LogConfig {
        queries: n,
        seed: 0xC10C + shard as u64,
        ..Default::default()
    })
}

fn build_server(per_shard: usize, cache: usize) -> Server<TokenDistance> {
    let server = Server::builder(TokenDistance)
        .shards(SHARDS)
        .cache_capacity(cache)
        .build();
    for shard in 0..SHARDS {
        server.ingest(shard, &tenant_log(shard, per_shard)).unwrap();
    }
    server
}

/// The deterministic clustering stream client `c` submits: a fixed
/// interleaving of all four kinds across the shards, parameter grids wide
/// enough to exercise plan reuse (many k per linkage) and cache keying.
fn client_stream(c: usize, len: usize, per_shard: usize) -> Vec<Request> {
    (0..len)
        .map(|i| {
            let shard = (c * 3 + i) % SHARDS;
            match (c + i * 7) % 6 {
                0 => Request::Dbscan {
                    shard,
                    eps: 0.2 + 0.1 * ((i % 5) as f64),
                    min_pts: 2 + i % 3,
                },
                1 => Request::KMedoids {
                    shard,
                    k: 1 + (c + i) % (per_shard.min(6)),
                },
                2 | 3 => Request::Hierarchical {
                    shard,
                    linkage: LINKAGES[(c + i) % 3],
                    k: 1 + (i * 5 + c) % per_shard,
                },
                4 => Request::FrequentItemsets {
                    shard,
                    min_support: 2 + i % 4,
                },
                _ => Request::Knn {
                    shard,
                    item: (c + i * 3) % per_shard,
                    k: 1 + i % 5,
                },
            }
        })
        .collect()
}

/// Single-threaded oracle: direct `dpe_mining` calls on a sequentially
/// recomputed matrix (and, for itemsets, on the raw tenant log).
fn oracle(matrix: &DistanceMatrix, log: &[Query], request: &Request) -> Response {
    match *request {
        Request::Dbscan { eps, min_pts, .. } => Response::Labels(canonical_dbscan_labels(&dbscan(
            matrix,
            DbscanConfig { eps, min_pts },
        ))),
        Request::KMedoids { k, .. } => {
            let r = kmedoids(matrix, k);
            Response::Medoids {
                cost: r.cost(matrix),
                medoids: r.medoids,
                assignment: r.assignment,
            }
        }
        Request::Hierarchical { linkage, k, .. } => Response::Labels(
            agglomerative(matrix, linkage)
                .cut(k)
                .into_iter()
                .map(|c| c as i64)
                .collect(),
        ),
        Request::FrequentItemsets { min_support, .. } => {
            let tx: Vec<Transaction<String>> = log
                .iter()
                .map(|q| feature_set(q).iter().map(|f| f.to_string()).collect())
                .collect();
            Response::Itemsets(
                frequent_itemsets(&tx, min_support)
                    .into_iter()
                    .map(|f| (f.items.into_iter().collect(), f.support))
                    .collect(),
            )
        }
        Request::Knn { item, k, .. } => Response::Indices(dpe_mining::knn_indices(matrix, item, k)),
        _ => unreachable!("stream only issues clustering kinds + knn"),
    }
}

/// Per-shard (matrix, log) pairs recomputed from scratch — the server
/// never sees these objects.
fn oracle_stores(per_shard: usize, extra: usize) -> Vec<(DistanceMatrix, Vec<Query>)> {
    (0..SHARDS)
        .map(|shard| {
            let mut log = tenant_log(shard, per_shard);
            log.extend(tenant_log(shard + 100, extra));
            let m = DistanceMatrix::compute(&log, &TokenDistance).unwrap();
            (m, log)
        })
        .collect()
}

fn check(
    stores: &[(DistanceMatrix, Vec<Query>)],
    submissions: &[(Ticket, Request)],
    results: &[(Ticket, Result<Response, dpe_server::ServerError>)],
) {
    for (ticket, request) in submissions {
        let (_, result) = results
            .iter()
            .find(|(t, _)| t == ticket)
            .expect("every submitted ticket answered");
        let (matrix, log) = &stores[request.shard()];
        let expect = oracle(matrix, log, request);
        assert!(
            result.as_ref().unwrap().bits_eq(&expect),
            "ticket {ticket:?} diverged for {request:?}"
        );
    }
}

#[test]
fn concurrent_clustering_submissions_match_sequential_oracle_bitwise() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 24;
    const PER_SHARD: usize = 18;

    let server = build_server(PER_SHARD, 256);
    let stores = oracle_stores(PER_SHARD, 0);

    let barrier = Barrier::new(CLIENTS);
    let mut submissions: Vec<(Ticket, Request)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let server = &server;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    client_stream(c, PER_CLIENT, PER_SHARD)
                        .into_iter()
                        .map(|req| (server.submit(req.clone()).unwrap(), req))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            submissions.extend(h.join().unwrap());
        }
    });
    let results = server.drain(4);
    assert_eq!(results.len(), CLIENTS * PER_CLIENT);
    check(&stores, &submissions, &results);

    // The whole concurrent run must have amortized dendrogram builds: at
    // most one per (shard, linkage), far fewer than hierarchical requests.
    let plans = server.stats().plans;
    assert!(plans.builds <= (SHARDS * LINKAGES.len()) as u64);
    assert!(
        plans.hits > plans.builds,
        "plan reuse must dominate: {plans:?}"
    );
}

#[test]
fn serve_batch_matches_oracle_across_thread_counts() {
    const PER_SHARD: usize = 16;
    let server = build_server(PER_SHARD, 128);
    let stores = oracle_stores(PER_SHARD, 0);

    let mut requests = Vec::new();
    for c in 0..5 {
        requests.extend(client_stream(c, 20, PER_SHARD));
    }
    for threads in [1, 2, 4, 8] {
        let results = server.serve_batch(&requests, threads);
        assert_eq!(results.len(), requests.len());
        for (request, result) in requests.iter().zip(&results) {
            let (matrix, log) = &stores[request.shard()];
            let expect = oracle(matrix, log, request);
            assert!(
                result.as_ref().unwrap().bits_eq(&expect),
                "threads={threads}, {request:?}"
            );
        }
    }
}

#[test]
fn mid_stream_ingest_keeps_every_clustering_phase_bit_identical() {
    const PER_SHARD: usize = 14;
    const EXTRA: usize = 5;
    let server = build_server(PER_SHARD, 256);
    let before = oracle_stores(PER_SHARD, 0);
    let after = oracle_stores(PER_SHARD, EXTRA);

    let run_phase = |stores: &[(DistanceMatrix, Vec<Query>)], items: usize| {
        let mut submissions = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|c| {
                    let server = &server;
                    scope.spawn(move || {
                        client_stream(c, 18, items)
                            .into_iter()
                            .map(|req| (server.submit(req.clone()).unwrap(), req))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                submissions.extend(h.join().unwrap());
            }
        });
        let results = server.drain(4);
        check(stores, &submissions, &results);
    };

    // Phase A: pre-insert store (warms plan + response caches).
    run_phase(&before, PER_SHARD);
    let warmed = server.stats().plans;
    assert!(warmed.builds > 0);

    // Mid-stream: every shard ingests a batch, bumping its epoch. Plans
    // are invalidated lazily — nothing is rebuilt yet.
    for shard in 0..SHARDS {
        server
            .ingest(shard, &tenant_log(shard + 100, EXTRA))
            .unwrap();
    }
    assert_eq!(
        server.stats().plans.builds,
        warmed.builds,
        "ingest itself must not rebuild plans"
    );

    // Phase B: identical stream shape against the grown store. Every
    // answer re-derives from the new epoch; the stale plans surface as
    // invalidations, never as answers.
    run_phase(&after, PER_SHARD + EXTRA);
    let final_stats = server.stats().plans;
    assert!(
        final_stats.invalidations > 0,
        "phase B must have dropped stale plans: {final_stats:?}"
    );
    assert!(final_stats.builds > warmed.builds);
}

#[test]
fn ingest_racing_clustering_readers_is_linearizable_per_request() {
    // Readers hammer a hierarchical cut on shard 0 while a writer ingests
    // into it. Every response must equal the oracle for either the pre- or
    // post-ingest store — nothing torn, no stale plan after the epoch bump.
    const PER_SHARD: usize = 12;
    const EXTRA: usize = 4;
    let server = build_server(PER_SHARD, 64);
    let pre_stores = oracle_stores(PER_SHARD, 0);
    let post_stores = oracle_stores(PER_SHARD, EXTRA);

    let request = Request::Hierarchical {
        shard: 0,
        linkage: Linkage::Complete,
        k: 3,
    };
    let expect_pre = oracle(&pre_stores[0].0, &pre_stores[0].1, &request);
    let expect_post = oracle(&post_stores[0].0, &post_stores[0].1, &request);
    // Label vectors have the store's length, so the phases are observable.
    assert!(!expect_pre.bits_eq(&expect_post));

    std::thread::scope(|scope| {
        let server = &server;
        let writer = scope.spawn(move || {
            server.ingest(0, &tenant_log(100, EXTRA)).unwrap();
        });
        let request = &request;
        let readers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut answers = Vec::new();
                    for _ in 0..25 {
                        answers.push(server.serve_batch(std::slice::from_ref(request), 1));
                    }
                    answers
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            for batch in r.join().unwrap() {
                let answer = batch[0].as_ref().unwrap();
                assert!(
                    answer.bits_eq(&expect_pre) || answer.bits_eq(&expect_post),
                    "response matches neither pre- nor post-ingest oracle"
                );
            }
        }
    });

    // After the writer is done only the post-ingest cut may appear.
    let final_answer = &server.serve_batch(std::slice::from_ref(&request), 2)[0];
    assert!(final_answer.as_ref().unwrap().bits_eq(&expect_post));
}

#[test]
fn cached_and_uncached_clustering_paths_agree_under_churn() {
    const PER_SHARD: usize = 15;
    let cached = build_server(PER_SHARD, 256);
    let uncached = build_server(PER_SHARD, 0);

    let mut requests = Vec::new();
    for c in 0..4 {
        requests.extend(client_stream(c, 16, PER_SHARD));
    }
    for pass in 0..3 {
        let a = cached.serve_batch(&requests, 4);
        let b = uncached.serve_batch(&requests, 4);
        for ((x, y), req) in a.iter().zip(&b).zip(&requests) {
            assert!(
                x.as_ref().unwrap().bits_eq(y.as_ref().unwrap()),
                "pass {pass}: cached diverged from uncached for {req:?}"
            );
        }
    }
    assert!(cached.stats().cache.hits > 0);
    // The response-cache-disabled server still amortizes plan builds —
    // the two caches are independent layers.
    assert!(uncached.stats().plans.hits > 0);
}
