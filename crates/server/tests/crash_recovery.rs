//! Crash-recovery differential suite (ISSUE 10 tentpole acceptance).
//!
//! One contract, checked three ways: a recovered server serves
//! **bit-identical** responses to an uncrashed oracle that ingested the
//! surviving history —
//!
//! 1. the clean round trip: checkpoint mid-history, keep writing, drop,
//!    recover — every request variant (knn, range, lof, outliers,
//!    clustering, pipeline, sql) must answer bit-identically, including
//!    after *post-recovery* ingests on both sides;
//! 2. the kill sweep: a [`FailpointFs`] byte budget cuts the WAL at,
//!    one byte before, and one byte past **every** record boundary
//!    (the acknowledged-but-lost crash model — the server believed every
//!    write succeeded); recovery must replay exactly the records whose
//!    last byte reached disk, then serve like an oracle that only ever
//!    saw those;
//! 3. damaged state — torn WAL magic, flipped snapshot byte, flipped
//!    frame byte — surfaces as a typed [`ServerError::Durability`],
//!    never as a garbage shard.
//!
//! When `DPE_RECOVERY_CORPUS` is set, every sweep case's WAL image is
//! copied there before recovery is attempted, so a failing CI run
//! uploads the exact bytes that broke recovery as its fuzz corpus.

use dpe_distance::TokenDistance;
use dpe_durability::testkit::FailpointFs;
use dpe_durability::{Durability, DurabilityError};
use dpe_mining::Linkage;
use dpe_server::{
    dist_literal, ClusterRule, PlanOp, Projection, Request, Response, Server, ServerError, SqlTable,
};
use dpe_sql::Query;
use dpe_workload::{LogConfig, LogGenerator};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpe-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn batch(seed: u64, n: usize) -> Vec<Query> {
    LogGenerator::generate(&LogConfig {
        queries: n,
        seed: 0xC4A5 + seed,
        ..Default::default()
    })
}

/// Every request variant the server serves, parameterized only by shard —
/// items/anchors are small indices so the same list exercises stores of
/// any size (out-of-bounds on a short store is part of the contract: the
/// recovered server must return the *same typed error* as the oracle).
fn variant_requests(shard: usize) -> Vec<Request> {
    vec![
        Request::Knn {
            shard,
            item: 1,
            k: 3,
        },
        Request::Range {
            shard,
            item: 0,
            radius: 0.6,
        },
        Request::Lof { shard, min_pts: 2 },
        Request::LofOutliers {
            shard,
            min_pts: 2,
            threshold: 1.0,
        },
        Request::Outliers {
            shard,
            p: 0.4,
            d: 0.5,
        },
        Request::Dbscan {
            shard,
            eps: 0.5,
            min_pts: 2,
        },
        Request::KMedoids { shard, k: 2 },
        Request::Hierarchical {
            shard,
            linkage: Linkage::Complete,
            k: 2,
        },
        Request::FrequentItemsets {
            shard,
            min_support: 2,
        },
        Request::Pipeline {
            shard,
            ops: vec![
                PlanOp::FilterRange {
                    item: 0,
                    radius: 0.9,
                },
                PlanOp::Knn { item: 0, k: 2 },
            ],
        },
        Request::Pipeline {
            shard,
            ops: vec![
                PlanOp::FilterRange {
                    item: 0,
                    radius: 0.8,
                },
                PlanOp::ClusterLabels(ClusterRule::Hierarchical {
                    linkage: Linkage::Single,
                    k: 2,
                }),
                PlanOp::Project(Projection::Labels),
            ],
        },
    ]
}

fn pairs_binding(shard: usize) -> SqlTable {
    SqlTable {
        table: "pairs".into(),
        shard,
        item_col: "item".into(),
        anchor_col: "anchor".into(),
        dist_col: "dist".into(),
    }
}

fn sql_workload() -> Vec<String> {
    let c = dist_literal(0.7);
    vec![
        "SELECT item FROM pairs WHERE anchor = 0".into(),
        format!("SELECT item FROM pairs WHERE anchor = 1 AND dist <= {c}"),
        "SELECT item FROM pairs WHERE anchor = 0 ORDER BY dist LIMIT 4".into(),
    ]
}

/// Ok ⇒ bit-identical response; Err ⇒ the same typed error.
fn assert_same(
    got: &Result<Response, ServerError>,
    want: &Result<Response, ServerError>,
    ctx: &dyn std::fmt::Debug,
) {
    match (got, want) {
        (Ok(g), Ok(w)) => assert!(g.bits_eq(w), "response bits diverged: {ctx:?}"),
        (Err(g), Err(w)) => assert_eq!(g, w, "error diverged: {ctx:?}"),
        (g, w) => panic!("Ok/Err diverged for {ctx:?}: got {g:?}, want {w:?}"),
    }
}

fn assert_servers_agree(
    recovered: &Server<TokenDistance>,
    oracle: &Server<TokenDistance>,
    shards: usize,
    ctx: &str,
) {
    for shard in 0..shards {
        for req in variant_requests(shard) {
            assert_same(
                &recovered.serve_one_uncached(&req),
                &oracle.serve_one_uncached(&req),
                &(ctx, &req),
            );
        }
    }
    for sql in sql_workload() {
        match (recovered.sql(&sql), oracle.sql(&sql)) {
            (Ok(g), Ok(w)) => assert!(g.bits_eq(&w), "{ctx}: sql bits diverged: {sql}"),
            (Err(g), Err(w)) => assert_eq!(g, w, "{ctx}: sql error diverged: {sql}"),
            (g, w) => panic!("{ctx}: sql Ok/Err diverged for {sql}: got {g:?}, want {w:?}"),
        }
    }
}

/// Clean crash (drop without checkpoint-flush) after a mid-history
/// checkpoint: recovery = snapshot base + WAL tail, bit-identical across
/// every variant, and the recovered engine keeps logging afterwards.
#[test]
fn recovered_server_is_bit_identical_across_every_request_variant() {
    const SHARDS: usize = 3;
    let dir = tmp("variants");
    let durable = Server::builder(TokenDistance)
        .shards(SHARDS)
        .durability(&dir)
        .build();
    let oracle = Server::builder(TokenDistance).shards(SHARDS).build();

    // History: plain ingests, a checkpoint in the middle, a streamed
    // ingest, and more plain ingests past the snapshot.
    for shard in 0..SHARDS {
        let b = batch(shard as u64, 6 + shard);
        durable.ingest(shard, &b).unwrap();
        oracle.ingest(shard, &b).unwrap();
    }
    durable.checkpoint().unwrap();
    let streamed = batch(90, 6);
    let chunks: Vec<Vec<Query>> = streamed.chunks(2).map(<[Query]>::to_vec).collect();
    durable.ingest_stream(1, chunks.clone()).unwrap();
    oracle.ingest_stream(1, chunks).unwrap();
    for shard in 0..SHARDS {
        let b = batch(100 + shard as u64, 3);
        durable.ingest(shard, &b).unwrap();
        oracle.ingest(shard, &b).unwrap();
    }
    let epochs: Vec<u64> = (0..SHARDS)
        .map(|s| durable.shard_epoch(s).unwrap())
        .collect();
    drop(durable);

    let recovered = Server::builder(TokenDistance)
        .durability(&dir)
        .recover()
        .unwrap();
    assert_eq!(recovered.shard_count(), SHARDS);
    for (shard, &epoch) in epochs.iter().enumerate() {
        assert_eq!(
            recovered.shard_epoch(shard).unwrap(),
            epoch,
            "shard {shard}"
        );
    }
    // SQL bindings are session state, not durable state: re-register on
    // both sides and the front door must agree bit-for-bit.
    recovered.register_sql_table(pairs_binding(1)).unwrap();
    oracle.register_sql_table(pairs_binding(1)).unwrap();
    assert_servers_agree(&recovered, &oracle, SHARDS, "post-recovery");

    // The recovered engine keeps logging: ingest on both sides, agree
    // again, then a *second* recovery sees the post-recovery writes.
    let extra = batch(777, 4);
    recovered.ingest(2, &extra).unwrap();
    oracle.ingest(2, &extra).unwrap();
    assert_servers_agree(&recovered, &oracle, SHARDS, "post-recovery ingest");
    let final_epoch = recovered.shard_epoch(2).unwrap();
    drop(recovered);
    let twice = Server::builder(TokenDistance)
        .durability(&dir)
        .recover()
        .unwrap();
    twice.register_sql_table(pairs_binding(1)).unwrap();
    assert_eq!(twice.shard_epoch(2).unwrap(), final_epoch);
    assert_servers_agree(&twice, &oracle, SHARDS, "second recovery");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The kill sweep: cut the WAL at / one byte before / one byte past every
/// record boundary. The server acknowledged every write; recovery must
/// serve exactly the prefix whose bytes survived.
#[test]
fn kill_after_every_wal_record_boundary_recovers_the_exact_prefix() {
    // Phase A: unbudgeted run, learning each record's end offset.
    let batches: Vec<Vec<Query>> = vec![
        batch(1, 3),
        batch(2, 2),
        Vec::new(), // an empty batch is a real record: it bumps the epoch
        batch(3, 4),
        batch(4, 1),
    ];
    let dir_a = tmp("sweep-full");
    let full = Server::builder(TokenDistance).durability(&dir_a).build();
    let mut boundaries = Vec::new();
    for b in &batches {
        full.ingest(0, b).unwrap();
        boundaries.push(full.stats().durability.unwrap().wal_bytes);
    }
    drop(full);
    std::fs::remove_dir_all(&dir_a).unwrap();

    // Phase B: budgets bracketing every boundary, plus "only the magic
    // survived" (8) and "nothing lost" (MAX).
    let mut budgets = vec![8, u64::MAX];
    for &b in &boundaries {
        budgets.extend([b - 1, b, b + 1]);
    }
    budgets.sort_unstable();
    budgets.dedup();

    let corpus = std::env::var_os("DPE_RECOVERY_CORPUS").map(PathBuf::from);
    if let Some(c) = &corpus {
        std::fs::create_dir_all(c).unwrap();
    }

    for budget in budgets {
        let dir = tmp(&format!("sweep-{budget}"));
        let fp = FailpointFs::new(budget);
        let engine = Arc::new(Durability::create_with(&dir, 1, &fp).unwrap());
        let crashed = Server::builder(TokenDistance)
            .durability_engine(engine)
            .build();
        for b in &batches {
            // The crash model is acknowledged-but-lost: every ingest
            // reports success even though bytes past the budget never
            // reached the disk.
            crashed.ingest(0, b).unwrap();
        }
        drop(crashed);

        // Archive the damaged WAL *before* attempting recovery, so a
        // failure below still leaves the corpus artifact behind.
        if let Some(c) = &corpus {
            std::fs::copy(
                dir.join("wal").join("shard-0.wal"),
                c.join(format!("budget-{budget}.wal")),
            )
            .unwrap();
        }

        let survivors = boundaries.iter().filter(|&&b| b <= budget).count();
        let recovered = Server::builder(TokenDistance)
            .durability(&dir)
            .recover()
            .unwrap();
        assert_eq!(
            recovered.shard_epoch(0).unwrap(),
            survivors as u64,
            "budget {budget}: wrong number of records replayed"
        );

        let oracle = Server::builder(TokenDistance).build();
        for b in &batches[..survivors] {
            oracle.ingest(0, b).unwrap();
        }
        recovered.register_sql_table(pairs_binding(0)).unwrap();
        oracle.register_sql_table(pairs_binding(0)).unwrap();
        assert_servers_agree(&recovered, &oracle, 1, &format!("budget {budget}"));

        // Life goes on after recovery: the torn tail was truncated, so
        // new writes land on a clean log and survive a second recovery.
        let extra = batch(55, 3);
        recovered.ingest(0, &extra).unwrap();
        oracle.ingest(0, &extra).unwrap();
        assert_servers_agree(
            &recovered,
            &oracle,
            1,
            &format!("budget {budget} post-ingest"),
        );
        drop(recovered);
        let twice = Server::builder(TokenDistance)
            .durability(&dir)
            .recover()
            .unwrap();
        assert_eq!(twice.shard_epoch(0).unwrap(), survivors as u64 + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A budget that tears the 8-byte WAL magic itself is corruption, not a
/// fresh log: recovery refuses with a typed error.
#[test]
fn torn_wal_magic_is_a_typed_error() {
    let dir = tmp("torn-magic");
    let fp = FailpointFs::new(5);
    let engine = Arc::new(Durability::create_with(&dir, 1, &fp).unwrap());
    let s = Server::builder(TokenDistance)
        .durability_engine(engine)
        .build();
    s.ingest(0, &batch(1, 2)).unwrap();
    drop(s);
    let err = Server::builder(TokenDistance)
        .durability(&dir)
        .recover()
        .unwrap_err();
    assert!(
        matches!(
            &err,
            ServerError::Durability(DurabilityError::CorruptRecord { offset: 0, .. })
        ),
        "{err:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Flipping a byte inside a *complete* WAL frame (past the length prefix)
/// is a checksum mismatch — a typed error, never a silently altered
/// record.
#[test]
fn corrupt_wal_checksum_is_a_typed_error() {
    let dir = tmp("flip-frame");
    let s = Server::builder(TokenDistance).durability(&dir).build();
    s.ingest(0, &batch(1, 3)).unwrap();
    s.ingest(0, &batch(2, 2)).unwrap();
    drop(s);
    let wal = dir.join("wal").join("shard-0.wal");
    let mut bytes = std::fs::read(&wal).unwrap();
    // Offset 8 (magic) + 12 (frame header) + 2 lands in the first
    // record's payload: the frame is complete, its checksum now wrong.
    bytes[8 + 12 + 2] ^= 0x40;
    std::fs::write(&wal, &bytes).unwrap();
    let err = Server::builder(TokenDistance)
        .durability(&dir)
        .recover()
        .unwrap_err();
    assert!(
        matches!(
            &err,
            ServerError::Durability(DurabilityError::CorruptRecord { shard: 0, .. })
        ),
        "{err:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A partially written / bit-rotted snapshot is a typed error — recovery
/// never builds shards from a snapshot that fails its checksum.
#[test]
fn corrupt_snapshot_is_a_typed_error() {
    let dir = tmp("flip-snap");
    let s = Server::builder(TokenDistance)
        .shards(2)
        .durability(&dir)
        .build();
    s.ingest(0, &batch(1, 4)).unwrap();
    s.ingest(1, &batch(2, 3)).unwrap();
    s.checkpoint().unwrap();
    drop(s);
    let snap_dir = dir.join("snap");
    let snap = std::fs::read_dir(&snap_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "dps"))
        .expect("checkpoint wrote a snapshot");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&snap, &bytes).unwrap();
    let err = Server::builder(TokenDistance)
        .durability(&dir)
        .recover()
        .unwrap_err();
    assert!(
        matches!(
            &err,
            ServerError::Durability(DurabilityError::CorruptSnapshot { .. })
        ),
        "{err:?}"
    );

    // Truncation (a partial snapshot write that somehow got renamed) is
    // equally typed.
    let full = std::fs::read(&snap).unwrap();
    std::fs::write(&snap, &full[..full.len() / 3]).unwrap();
    let err = Server::builder(TokenDistance)
        .durability(&dir)
        .recover()
        .unwrap_err();
    assert!(
        matches!(
            &err,
            ServerError::Durability(DurabilityError::CorruptSnapshot { .. })
        ),
        "{err:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
