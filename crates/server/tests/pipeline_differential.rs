//! Differential suite for the physical-plan executor, compound pipelines
//! and the SQL front door.
//!
//! Three oracles, one contract — **bit-identical** answers:
//!
//! 1. every single-variant request answered through the plan executor must
//!    equal a [`Request::Pipeline`] spelling the same ops;
//! 2. a compound pipeline must equal the client composing the equivalent
//!    single-variant round trips by hand — under 8-thread submits and
//!    mid-stream ingests (the concurrency suite's oracle pattern);
//! 3. `Server::sql` over a registered pairs table (plaintext *or*
//!    DET-encrypted identifiers) must equal `dpe_minidb` executing the
//!    same SELECT against the materialized plaintext mirror.

use dpe_cryptdb::IdentRewriter;
use dpe_crypto::MasterKey;
use dpe_mining::Linkage;
use dpe_server::{
    dist_literal, ClusterRule, OutlierRule, PlanOp, Projection, Request, Response, Server,
    ServerError, SqlTable,
};
use dpe_sql::analysis::rewrite_query;
use dpe_sql::{parse_query, Query};
use dpe_workload::{LogConfig, LogGenerator};
use std::sync::Barrier;

const SHARDS: usize = 4;
const PER_SHARD: usize = 18;

fn tenant_log(shard: usize, n: usize) -> Vec<Query> {
    LogGenerator::generate(&LogConfig {
        queries: n,
        seed: 0xD1FF + shard as u64,
        ..Default::default()
    })
}

fn build_server(cache: usize) -> Server<TokenDistance> {
    let server = Server::builder(TokenDistance)
        .shards(SHARDS)
        .cache_capacity(cache)
        .build();
    for shard in 0..SHARDS {
        server.ingest(shard, &tenant_log(shard, PER_SHARD)).unwrap();
    }
    server
}

use dpe_distance::TokenDistance;

fn indices(r: &Response) -> &[usize] {
    match r {
        Response::Indices(v) => v,
        other => panic!("expected indices, got {other:?}"),
    }
}

fn labels(r: &Response) -> &[i64] {
    match r {
        Response::Labels(v) => v,
        other => panic!("expected labels, got {other:?}"),
    }
}

/// Every pre-existing variant vs. the pipeline spelling the same ops.
#[test]
fn single_variant_requests_equal_their_pipeline_spelling() {
    let server = build_server(0);
    let shard = 1;
    let cases: Vec<(Request, Vec<PlanOp>)> = vec![
        (
            Request::Knn {
                shard,
                item: 3,
                k: 5,
            },
            vec![PlanOp::Knn { item: 3, k: 5 }],
        ),
        (
            Request::Range {
                shard,
                item: 2,
                radius: 0.6,
            },
            vec![PlanOp::FilterRange {
                item: 2,
                radius: 0.6,
            }],
        ),
        (
            Request::Lof { shard, min_pts: 3 },
            vec![PlanOp::Lof { min_pts: 3 }],
        ),
        (
            Request::LofOutliers {
                shard,
                min_pts: 3,
                threshold: 1.05,
            },
            vec![PlanOp::Outliers(OutlierRule::LofThreshold {
                min_pts: 3,
                threshold: 1.05,
            })],
        ),
        (
            Request::Outliers {
                shard,
                p: 0.5,
                d: 0.5,
            },
            vec![PlanOp::Outliers(OutlierRule::DistanceBased {
                p: 0.5,
                d: 0.5,
            })],
        ),
        (
            Request::Dbscan {
                shard,
                eps: 0.45,
                min_pts: 2,
            },
            vec![PlanOp::ClusterLabels(ClusterRule::Dbscan {
                eps: 0.45,
                min_pts: 2,
            })],
        ),
        (
            Request::KMedoids { shard, k: 3 },
            vec![PlanOp::ClusterLabels(ClusterRule::KMedoids { k: 3 })],
        ),
        (
            Request::Hierarchical {
                shard,
                linkage: Linkage::Complete,
                k: 4,
            },
            vec![PlanOp::ClusterLabels(ClusterRule::Hierarchical {
                linkage: Linkage::Complete,
                k: 4,
            })],
        ),
        (
            Request::FrequentItemsets {
                shard,
                min_support: 2,
            },
            vec![PlanOp::Itemsets { min_support: 2 }],
        ),
    ];
    for (single, ops) in cases {
        let pipeline = Request::Pipeline {
            shard,
            ops: ops.clone(),
        };
        let direct = server.serve_one_uncached(&single).unwrap();
        let piped = server.serve_one_uncached(&pipeline).unwrap();
        assert!(piped.bits_eq(&direct), "uncached: {single:?}");
        let batch = server.serve_batch(&[single.clone(), pipeline], 2);
        let (a, b) = (batch[0].as_ref().unwrap(), batch[1].as_ref().unwrap());
        assert!(
            a.bits_eq(&direct) && b.bits_eq(&direct),
            "batched: {single:?}"
        );
    }
}

/// Compound filter → cluster-label pipelines vs. the client composing the
/// equivalent single-variant round trips, under 8 concurrent threads with
/// ingests landing mid-stream. `serve_batch` answers one shard's requests
/// of one call under a single read lock, so the pipeline and its
/// composition oracle always observe the same epoch — whatever the ingest
/// thread does meanwhile.
#[test]
fn compound_pipelines_equal_client_composition_under_concurrency() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 12;
    let server = build_server(256);
    let barrier = Barrier::new(CLIENTS + 1);

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let server = &server;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for i in 0..ROUNDS {
                    let shard = (c + i) % SHARDS;
                    let item = (c * 5 + i * 3) % PER_SHARD;
                    let radius = 0.3 + 0.1 * ((i % 5) as f64);
                    let (linkage, k) = ([Linkage::Single, Linkage::Complete][i % 2], 2 + i % 4);
                    let compound = Request::Pipeline {
                        shard,
                        ops: vec![
                            PlanOp::FilterRange { item, radius },
                            PlanOp::ClusterLabels(ClusterRule::Hierarchical { linkage, k }),
                            PlanOp::Project(Projection::Labels),
                        ],
                    };
                    let range = Request::Range {
                        shard,
                        item,
                        radius,
                    };
                    let hierarchical = Request::Hierarchical { shard, linkage, k };
                    let batch = server.serve_batch(&[compound, range, hierarchical], 2);
                    let got = labels(batch[0].as_ref().unwrap());
                    let sel = indices(batch[1].as_ref().unwrap());
                    let full = labels(batch[2].as_ref().unwrap());
                    // The client's composition: project the whole-shard
                    // labels onto the range selection.
                    let composed: Vec<i64> = sel.iter().map(|&j| full[j]).collect();
                    assert_eq!(got, composed.as_slice(), "client {c} round {i}");
                }
            });
        }
        // Mid-stream ingests: epoch bumps land while clients are serving.
        barrier.wait();
        for wave in 0..3 {
            for shard in 0..SHARDS {
                server
                    .ingest(shard, &tenant_log(shard + 50 + wave, 2))
                    .unwrap();
            }
        }
    });
}

/// A compound pipeline fingerprint is cacheable: bit-equal re-asks hit.
#[test]
fn compound_pipelines_cache_and_invalidate_by_epoch() {
    let server = build_server(64);
    let req = Request::Pipeline {
        shard: 0,
        ops: vec![
            PlanOp::FilterRange {
                item: 1,
                radius: 0.7,
            },
            PlanOp::Knn { item: 1, k: 4 },
        ],
    };
    let first = server.serve_batch(std::slice::from_ref(&req), 1);
    let before = server.stats();
    let second = server.serve_batch(std::slice::from_ref(&req), 1);
    let after = server.stats();
    assert!(first[0]
        .as_ref()
        .unwrap()
        .bits_eq(second[0].as_ref().unwrap()));
    assert_eq!(after.cache.hits, before.cache.hits + 1);

    server.ingest(0, &tenant_log(99, 2)).unwrap();
    let third = server.serve_batch(std::slice::from_ref(&req), 1);
    let post = server.stats();
    assert_eq!(post.cache.hits, after.cache.hits, "epoch bump must miss");
    assert!(third[0].is_ok());
}

/// Satellite 3 regression: an out-of-bounds item in **every** op position
/// returns a typed `ServerError` through the full serving path — never a
/// panic out of the mining layer.
#[test]
fn out_of_bounds_anchors_error_in_every_op_position() {
    let server = build_server(0);
    let bad = PER_SHARD + 7; // beyond every shard
    let cases: Vec<Vec<PlanOp>> = vec![
        vec![PlanOp::FilterRange {
            item: bad,
            radius: 0.5,
        }],
        vec![PlanOp::Knn { item: bad, k: 2 }],
        vec![
            PlanOp::FilterRange {
                item: 0,
                radius: 0.9,
            },
            PlanOp::Knn { item: bad, k: 2 },
        ],
        vec![
            PlanOp::Knn { item: 0, k: 9 },
            PlanOp::FilterRange {
                item: bad,
                radius: 0.9,
            },
        ],
        vec![
            PlanOp::FilterRange {
                item: 0,
                radius: 0.9,
            },
            PlanOp::FilterRange {
                item: bad,
                radius: 0.9,
            },
            PlanOp::Knn { item: 1, k: 2 },
        ],
    ];
    for ops in cases {
        for shard in 0..SHARDS {
            let req = Request::Pipeline {
                shard,
                ops: ops.clone(),
            };
            let direct = server.serve_one_uncached(&req);
            assert!(
                matches!(direct, Err(ServerError::ItemOutOfBounds { .. })),
                "uncached {ops:?}: {direct:?}"
            );
            let batched = &server.serve_batch(std::slice::from_ref(&req), 1)[0];
            assert!(
                matches!(batched, Err(ServerError::ItemOutOfBounds { .. })),
                "batched {ops:?}: {batched:?}"
            );
        }
    }
    // Structural violations are typed errors too.
    for ops in [
        vec![PlanOp::Scan, PlanOp::Scan],
        vec![
            PlanOp::Project(Projection::Items),
            PlanOp::Knn { item: 0, k: 1 },
        ],
        vec![PlanOp::Project(Projection::Scores)],
        vec![
            PlanOp::FilterRange {
                item: 0,
                radius: 0.5,
            },
            PlanOp::ClusterLabels(ClusterRule::KMedoids { k: 2 }),
        ],
    ] {
        let req = Request::Pipeline { shard: 0, ops };
        assert!(matches!(
            server.serve_one_uncached(&req),
            Err(ServerError::BadRequest(_))
        ));
    }
}

/// Acceptance: every pre-existing variant flows through the executor with
/// non-zero per-query metrics.
#[test]
fn every_variant_reports_nonzero_execution_metrics() {
    let server = build_server(64);
    let shard = 2;
    let requests = vec![
        Request::Knn {
            shard,
            item: 0,
            k: 3,
        },
        Request::Range {
            shard,
            item: 0,
            radius: 0.5,
        },
        Request::Lof { shard, min_pts: 2 },
        Request::LofOutliers {
            shard,
            min_pts: 2,
            threshold: 1.0,
        },
        Request::Outliers {
            shard,
            p: 0.4,
            d: 0.5,
        },
        Request::Dbscan {
            shard,
            eps: 0.5,
            min_pts: 2,
        },
        Request::KMedoids { shard, k: 2 },
        Request::Hierarchical {
            shard,
            linkage: Linkage::Average,
            k: 3,
        },
        Request::FrequentItemsets {
            shard,
            min_support: 2,
        },
        Request::Pipeline {
            shard,
            ops: vec![
                PlanOp::FilterRange {
                    item: 0,
                    radius: 0.9,
                },
                PlanOp::Knn { item: 0, k: 2 },
            ],
        },
    ];
    let before = server.stats();
    for req in &requests {
        let (_, m) = server.explain(req).unwrap();
        assert!(m.total_nanos > 0, "{req:?}");
        assert_eq!(m.rows_scanned, PER_SHARD as u64, "{req:?}");
        assert!(!m.ops.is_empty(), "{req:?}");
        assert_eq!(m.ops[0].op, "Scan", "{req:?}");
    }
    let after = server.stats();
    assert_eq!(after.queries, before.queries + requests.len() as u64);
    assert!(after.exec.total_nanos > before.exec.total_nanos);
    assert!(
        after.exec.rows_scanned >= before.exec.rows_scanned + (requests.len() * PER_SHARD) as u64
    );
}

fn pairs_binding(table: &str, item: &str, anchor: &str, dist: &str, shard: usize) -> SqlTable {
    SqlTable {
        table: table.into(),
        shard,
        item_col: item.into(),
        anchor_col: anchor.into(),
        dist_col: dist.into(),
    }
}

/// The SELECT shapes the front door supports, parameterized over the
/// binding's spellings (plaintext or encrypted idents).
fn select_workload(t: &SqlTable, radii: &[f64]) -> Vec<String> {
    let (tb, it, an, di) = (&t.table, &t.item_col, &t.anchor_col, &t.dist_col);
    let mut out = Vec::new();
    for anchor in [0usize, 3, PER_SHARD - 1] {
        out.push(format!("SELECT {it} FROM {tb} WHERE {an} = {anchor}"));
        out.push(format!(
            "SELECT {it} FROM {tb} WHERE {an} = {anchor} LIMIT 4"
        ));
        for &r in radii {
            let c = dist_literal(r);
            out.push(format!(
                "SELECT {it} FROM {tb} WHERE {an} = {anchor} AND {di} <= {c}"
            ));
            out.push(format!(
                "SELECT {it} FROM {tb} WHERE {an} = {anchor} AND {di} < {c}"
            ));
            out.push(format!(
                "SELECT {it} FROM {tb} WHERE {di} <= {c} AND {an} = {anchor} ORDER BY {di} LIMIT 5"
            ));
        }
        out.push(format!(
            "SELECT {it} FROM {tb} WHERE {an} = {anchor} ORDER BY {di} ASC LIMIT 3"
        ));
    }
    out
}

/// `Server::sql` vs. `dpe_minidb` executing the same SELECT against the
/// materialized plaintext mirror: identical row sets, identical order.
#[test]
fn sql_front_door_matches_minidb_on_the_mirror() {
    let server = build_server(64);
    let binding = pairs_binding("pairs", "item", "anchor", "dist", 1);
    server.register_sql_table(binding.clone()).unwrap();
    let mirror = server.plaintext_mirror("pairs").unwrap();

    let workload = select_workload(&binding, &[0.0, 0.35, 0.6, 1.0]);
    assert!(workload.len() > 20);
    for sql in &workload {
        let got = server.sql(sql).unwrap();
        let got: Vec<i64> = indices(&got).iter().map(|&i| i as i64).collect();
        let rs = dpe_minidb::execute(&mirror, &parse_query(sql).unwrap()).unwrap();
        let want = rs.int_column("item").unwrap();
        assert_eq!(got, want, "{sql}");
    }
}

/// The encrypted front door: identifiers DET-encrypted with the CryptDB
/// onion rewriter, constants in the clear. The encrypted spelling must
/// answer bit-identically to the plaintext spelling — and to minidb over a
/// mirror materialized under the encrypted names.
#[test]
fn encrypted_sql_matches_plaintext_and_minidb() {
    let server = build_server(64);
    let master = MasterKey::from_bytes([42; 32]);
    let mut rewriter = IdentRewriter::new(&master);

    let plain = pairs_binding("pairs", "item", "anchor", "dist", 2);
    let enc = pairs_binding(
        &rewriter.table_ident("pairs"),
        &rewriter.column_ident("item"),
        &rewriter.column_ident("anchor"),
        &rewriter.column_ident("dist"),
        2,
    );
    server.register_sql_table(plain.clone()).unwrap();
    server.register_sql_table(enc.clone()).unwrap();
    let enc_mirror = server.plaintext_mirror(&enc.table).unwrap();

    for sql in select_workload(&plain, &[0.3, 0.8]) {
        let parsed = parse_query(&sql).unwrap();
        let enc_sql = rewrite_query(&parsed, &mut rewriter).to_string();
        assert_ne!(sql, enc_sql, "identifiers must actually change");

        let plain_resp = server.sql(&sql).unwrap();
        let enc_resp = server.sql(&enc_sql).unwrap();
        assert!(enc_resp.bits_eq(&plain_resp), "{sql}");

        // And the provider-side relational view agrees.
        let rs = dpe_minidb::execute(&enc_mirror, &parse_query(&enc_sql).unwrap()).unwrap();
        let want = rs.int_column(&enc.item_col).unwrap();
        let got: Vec<i64> = indices(&enc_resp).iter().map(|&i| i as i64).collect();
        assert_eq!(got, want, "{enc_sql}");
    }
}

/// Unsupported SQL is a typed error through the server path, and unknown
/// tables name the problem.
#[test]
fn sql_front_door_rejects_unsupported_shapes() {
    let server = build_server(0);
    server
        .register_sql_table(pairs_binding("pairs", "item", "anchor", "dist", 0))
        .unwrap();
    for sql in [
        "SELECT item FROM unknown WHERE anchor = 1",
        "SELECT item FROM pairs",
        "SELECT item FROM pairs WHERE anchor = 1 OR anchor = 2",
        "not even sql",
    ] {
        assert!(
            matches!(server.sql(sql), Err(ServerError::UnsupportedSql(_))),
            "{sql}"
        );
    }
    // Registering against a missing shard is refused eagerly.
    assert!(matches!(
        server.register_sql_table(pairs_binding("p2", "i", "a", "d", 99)),
        Err(ServerError::UnknownShard { .. })
    ));
}

/// SQL answers stay correct across a mid-stream ingest: the lowered
/// pipeline is epoch-cached like any request, and the mirror rebuilt after
/// the ingest agrees with the post-ingest answers.
#[test]
fn sql_front_door_tracks_ingests() {
    let server = build_server(64);
    let binding = pairs_binding("pairs", "item", "anchor", "dist", 3);
    server.register_sql_table(binding.clone()).unwrap();
    let sql = "SELECT item FROM pairs WHERE anchor = 2 ORDER BY dist LIMIT 6";

    let before = server.sql(sql).unwrap();
    server.ingest(3, &tenant_log(777, 3)).unwrap();
    let after = server.sql(sql).unwrap();

    let mirror = server.plaintext_mirror("pairs").unwrap();
    let rs = dpe_minidb::execute(&mirror, &parse_query(sql).unwrap()).unwrap();
    let want = rs.int_column("item").unwrap();
    let got: Vec<i64> = indices(&after).iter().map(|&i| i as i64).collect();
    assert_eq!(got, want);
    // The store grew; the top-6 may legitimately change, but even if the
    // indices coincide the pre-ingest answer must have been served from the
    // old epoch, not a stale cache slot (epoch keying guarantees it).
    assert_eq!(indices(&before).len(), 6);
    assert_eq!(indices(&after).len(), 6);
}
