//! Concurrency regression suite for the batch-serving engine.
//!
//! The contract under test: however many client threads submit, however the
//! work-stealing workers interleave, and whenever streaming inserts land,
//! every response is **bit-identical** to what a single-threaded oracle
//! computes against the store state the request observed. Caching, batching
//! and stealing are allowed to change *when* work happens — never *what* is
//! answered.

use dpe_distance::{DistanceMatrix, TokenDistance};
use dpe_mining::{knn_indices, lof, range_indices, LofConfig};
use dpe_server::{Request, Response, Server, ServerError, Ticket};
use dpe_sql::Query;
use dpe_workload::{LogConfig, LogGenerator};
use std::sync::Barrier;

const SHARDS: usize = 4;

fn tenant_log(shard: usize, n: usize) -> Vec<Query> {
    LogGenerator::generate(&LogConfig {
        queries: n,
        seed: 0xC0FFEE + shard as u64,
        ..Default::default()
    })
}

fn build_server(per_shard: usize, cache: usize) -> Server<TokenDistance> {
    let server = Server::builder(TokenDistance)
        .shards(SHARDS)
        .cache_capacity(cache)
        .build();
    for shard in 0..SHARDS {
        server.ingest(shard, &tenant_log(shard, per_shard)).unwrap();
    }
    server
}

/// The deterministic request stream client `c` submits: a fixed
/// interleaving of kNN and range queries (plus the occasional LOF) across
/// the shards, skewed toward shard 0 like a hot tenant.
fn client_stream(c: usize, len: usize, per_shard: usize) -> Vec<Request> {
    (0..len)
        .map(|i| {
            let mix = (c * 7 + i * 13) % 10;
            let shard = if mix < 4 { 0 } else { (c + i) % SHARDS };
            let item = (c * 11 + i * 3) % per_shard;
            match mix % 3 {
                0 => Request::Knn {
                    shard,
                    item,
                    k: 1 + (i % 7),
                },
                1 => Request::Range {
                    shard,
                    item,
                    radius: 0.2 + 0.1 * ((i % 5) as f64),
                },
                _ => Request::Lof {
                    shard,
                    min_pts: 2 + (i % 3),
                },
            }
        })
        .collect()
}

/// Single-threaded oracle over a plain matrix (independent of the server's
/// code paths wherever possible).
fn oracle(matrix: &DistanceMatrix, request: &Request) -> Response {
    match *request {
        Request::Knn { item, k, .. } => Response::Indices(knn_indices(matrix, item, k)),
        Request::Range { item, radius, .. } => {
            Response::Indices(range_indices(matrix, item, radius))
        }
        Request::Lof { min_pts, .. } => Response::Scores(lof(matrix, LofConfig { min_pts })),
        _ => unreachable!("stream only issues knn/range/lof"),
    }
}

/// Matrices recomputed from scratch per shard — the server never sees them.
fn oracle_matrices(per_shard: usize, extra: usize) -> Vec<DistanceMatrix> {
    (0..SHARDS)
        .map(|shard| {
            let mut log = tenant_log(shard, per_shard);
            log.extend(tenant_log(shard + 100, extra));
            DistanceMatrix::compute(&log, &TokenDistance).unwrap()
        })
        .collect()
}

#[test]
fn concurrent_submissions_match_sequential_oracle_bitwise() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 40;
    const PER_SHARD: usize = 24;

    let server = build_server(PER_SHARD, 128);
    let matrices = oracle_matrices(PER_SHARD, 0);

    // All clients submit concurrently from their own threads.
    let barrier = Barrier::new(CLIENTS);
    let mut submissions: Vec<(Ticket, Request)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let server = &server;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    client_stream(c, PER_CLIENT, PER_SHARD)
                        .into_iter()
                        .map(|req| (server.submit(req.clone()).unwrap(), req))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            submissions.extend(h.join().unwrap());
        }
    });
    assert_eq!(server.queued(), CLIENTS * PER_CLIENT);

    let results = server.drain(4);
    assert_eq!(results.len(), CLIENTS * PER_CLIENT);

    // Tickets are unique and results come back sorted by them.
    for window in results.windows(2) {
        assert!(window[0].0 < window[1].0, "drain must sort by ticket");
    }

    // Every ticket's answer is bit-identical to the oracle's.
    for (ticket, request) in &submissions {
        let (_, result) = results
            .iter()
            .find(|(t, _)| t == ticket)
            .expect("every submitted ticket answered");
        let expect = oracle(&matrices[request.shard()], request);
        assert!(
            result.as_ref().unwrap().bits_eq(&expect),
            "ticket {ticket:?} diverged for {request:?}"
        );
    }
}

#[test]
fn serve_batch_matches_oracle_in_input_order() {
    const PER_SHARD: usize = 20;
    let server = build_server(PER_SHARD, 64);
    let matrices = oracle_matrices(PER_SHARD, 0);

    let mut requests = Vec::new();
    for c in 0..6 {
        requests.extend(client_stream(c, 25, PER_SHARD));
    }
    for threads in [1, 2, 4, 8] {
        let results = server.serve_batch(&requests, threads);
        assert_eq!(results.len(), requests.len());
        for (request, result) in requests.iter().zip(&results) {
            let expect = oracle(&matrices[request.shard()], request);
            assert!(
                result.as_ref().unwrap().bits_eq(&expect),
                "threads={threads}, {request:?}"
            );
        }
    }
}

#[test]
fn mid_stream_ingest_keeps_every_phase_bit_identical() {
    const PER_SHARD: usize = 18;
    const EXTRA: usize = 6;
    let server = build_server(PER_SHARD, 128);
    let before = oracle_matrices(PER_SHARD, 0);
    let after = oracle_matrices(PER_SHARD, EXTRA);

    let run_phase = |matrices: &[DistanceMatrix], items: usize| {
        let mut submissions = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|c| {
                    let server = &server;
                    scope.spawn(move || {
                        client_stream(c, 30, items)
                            .into_iter()
                            .map(|req| (server.submit(req.clone()).unwrap(), req))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                submissions.extend(h.join().unwrap());
            }
        });
        let results = server.drain(4);
        for (ticket, request) in &submissions {
            let (_, result) = results.iter().find(|(t, _)| t == ticket).unwrap();
            let expect = oracle(&matrices[request.shard()], request);
            assert!(
                result.as_ref().unwrap().bits_eq(&expect),
                "{request:?} diverged"
            );
        }
    };

    // Phase A: pre-insert store.
    run_phase(&before, PER_SHARD);

    // Mid-stream: every shard ingests a batch (the incremental extend
    // path), which must atomically invalidate that shard's cache.
    for shard in 0..SHARDS {
        server
            .ingest(shard, &tenant_log(shard + 100, EXTRA))
            .unwrap();
        assert_eq!(server.shard_len(shard).unwrap(), PER_SHARD + EXTRA);
        assert_eq!(server.shard_epoch(shard).unwrap(), 2);
    }

    // Phase B: identical request stream, now answered from the grown store.
    run_phase(&after, PER_SHARD + EXTRA);
}

#[test]
fn ingest_racing_readers_is_linearizable_per_request() {
    // Readers hammer shard 0 while a writer ingests into it. Every
    // response must equal the oracle for either the pre- or post-ingest
    // store — nothing torn, nothing stale-after-epoch.
    const PER_SHARD: usize = 16;
    const EXTRA: usize = 5;
    let server = build_server(PER_SHARD, 64);
    let pre_all = oracle_matrices(PER_SHARD, 0);
    let post_all = oracle_matrices(PER_SHARD, EXTRA);
    let (pre, post) = (&pre_all[0], &post_all[0]);

    let request = Request::Knn {
        shard: 0,
        item: 3,
        k: PER_SHARD + EXTRA, // k > n: result length reveals the store size
    };
    let expect_pre = oracle(pre, &request);
    let expect_post = oracle(post, &request);
    assert!(
        !expect_pre.bits_eq(&expect_post),
        "phases must be observable"
    );

    std::thread::scope(|scope| {
        let server = &server;
        let writer = scope.spawn(move || {
            server.ingest(0, &tenant_log(100, EXTRA)).unwrap();
        });
        let request = &request;
        let readers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut answers = Vec::new();
                    for _ in 0..50 {
                        answers.push(server.serve_one_uncached(request).unwrap());
                    }
                    answers
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            for answer in r.join().unwrap() {
                assert!(
                    answer.bits_eq(&expect_pre) || answer.bits_eq(&expect_post),
                    "response matches neither pre- nor post-ingest oracle"
                );
            }
        }
    });

    // After the writer is done, only the post-ingest answer may appear —
    // including through the batched, cached path.
    let final_answer = &server.serve_batch(std::slice::from_ref(&request), 2)[0];
    assert!(final_answer.as_ref().unwrap().bits_eq(&expect_post));
}

#[test]
fn cached_and_uncached_paths_agree_under_churn() {
    const PER_SHARD: usize = 20;
    let cached = build_server(PER_SHARD, 256);
    let uncached = build_server(PER_SHARD, 0);

    let mut requests = Vec::new();
    for c in 0..5 {
        requests.extend(client_stream(c, 20, PER_SHARD));
    }
    // Serve the stream three times: the second and third pass on the
    // cached server are mostly hits, and must stay bit-identical to the
    // cache-disabled server's answers.
    for pass in 0..3 {
        let a = cached.serve_batch(&requests, 4);
        let b = uncached.serve_batch(&requests, 4);
        for ((x, y), req) in a.iter().zip(&b).zip(&requests) {
            assert!(
                x.as_ref().unwrap().bits_eq(y.as_ref().unwrap()),
                "pass {pass}: cached diverged from uncached for {req:?}"
            );
        }
    }
    let stats = cached.stats().cache;
    assert!(
        stats.hits > 0,
        "the repeated passes must actually exercise the cache: {stats:?}"
    );
    assert_eq!(uncached.stats().cache.hits, 0);
}

#[test]
fn invalid_requests_fail_cleanly_among_valid_traffic() {
    let server = build_server(10, 32);
    let requests = vec![
        Request::Knn {
            shard: 0,
            item: 2,
            k: 3,
        },
        Request::Knn {
            shard: SHARDS,
            item: 0,
            k: 1,
        },
        Request::Lof {
            shard: 1,
            min_pts: 0,
        },
        Request::Range {
            shard: 2,
            item: 99,
            radius: 0.5,
        },
        Request::Outliers {
            shard: 3,
            p: 0.5,
            d: 0.3,
        },
    ];
    let results = server.serve_batch(&requests, 4);
    assert!(results[0].is_ok());
    assert!(matches!(results[1], Err(ServerError::UnknownShard { .. })));
    assert!(matches!(results[2], Err(ServerError::BadRequest(_))));
    assert!(matches!(
        results[3],
        Err(ServerError::ItemOutOfBounds { item: 99, .. })
    ));
    assert!(results[4].is_ok());
}
