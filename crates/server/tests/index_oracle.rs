//! Differential suite for the metric-indexed serving paths.
//!
//! The contract: a server built with `.metric_index(true)` answers every
//! kNN / range / pipeline request **bit-identically** to both a plain
//! (matrix-path) server and a single-threaded oracle recomputed from
//! scratch — under 8-thread concurrent submits, through the cached and
//! uncached paths, and across mid-stream ingests that grow the index
//! incrementally. The index is allowed to change how many distance cells
//! are *touched* (that is the point), never what is *answered*.

use dpe_distance::{DistanceMatrix, TokenDistance};
use dpe_mining::{knn_indices, range_indices};
use dpe_server::{Request, Response, Server, Ticket};
use dpe_sql::Query;
use dpe_workload::{LogConfig, LogGenerator};
use std::sync::Barrier;

const SHARDS: usize = 3;

fn tenant_log(shard: usize, n: usize) -> Vec<Query> {
    LogGenerator::generate(&LogConfig {
        queries: n,
        seed: 0xD15C + shard as u64,
        ..Default::default()
    })
}

fn build_server(per_shard: usize, indexed: bool) -> Server<TokenDistance> {
    let server = Server::builder(TokenDistance)
        .shards(SHARDS)
        .cache_capacity(64)
        .metric_index(indexed)
        .build();
    for shard in 0..SHARDS {
        server.ingest(shard, &tenant_log(shard, per_shard)).unwrap();
    }
    server
}

fn oracle_matrices(per_shard: usize, extra: usize) -> Vec<DistanceMatrix> {
    (0..SHARDS)
        .map(|shard| {
            let mut log = tenant_log(shard, per_shard);
            log.extend(tenant_log(shard + 100, extra));
            DistanceMatrix::compute(&log, &TokenDistance).unwrap()
        })
        .collect()
}

/// kNN / range / compound-pipeline mix; only index-eligible ops so every
/// divergence is attributable to the index.
fn client_stream(c: usize, len: usize, per_shard: usize) -> Vec<Request> {
    (0..len)
        .map(|i| {
            let shard = (c + i) % SHARDS;
            let item = (c * 11 + i * 3) % per_shard;
            match (c * 7 + i * 13) % 3 {
                0 => Request::Knn {
                    shard,
                    item,
                    k: 1 + (i % 9),
                },
                1 => Request::Range {
                    shard,
                    item,
                    radius: 0.2 + 0.1 * ((i % 6) as f64),
                },
                _ => Request::Pipeline {
                    shard,
                    ops: vec![
                        dpe_server::PlanOp::FilterRange { item, radius: 0.9 },
                        dpe_server::PlanOp::Knn {
                            item,
                            k: 2 + (i % 5),
                        },
                    ],
                },
            }
        })
        .collect()
}

fn oracle(matrix: &DistanceMatrix, request: &Request) -> Option<Response> {
    match request {
        Request::Knn { item, k, .. } => Some(Response::Indices(knn_indices(matrix, *item, *k))),
        Request::Range { item, radius, .. } => {
            Some(Response::Indices(range_indices(matrix, *item, *radius)))
        }
        // Pipelines are compared indexed-vs-plain server instead of
        // against a hand-rolled composition.
        _ => None,
    }
}

#[test]
fn indexed_server_matches_oracle_under_concurrent_submits() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 30;
    const PER_SHARD: usize = 26;

    let indexed = build_server(PER_SHARD, true);
    let plain = build_server(PER_SHARD, false);
    let matrices = oracle_matrices(PER_SHARD, 0);

    let barrier = Barrier::new(CLIENTS);
    let mut submissions: Vec<(Ticket, Request)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let indexed = &indexed;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    client_stream(c, PER_CLIENT, PER_SHARD)
                        .into_iter()
                        .map(|req| (indexed.submit(req.clone()).unwrap(), req))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            submissions.extend(h.join().unwrap());
        }
    });
    let results = indexed.drain(4);
    assert_eq!(results.len(), CLIENTS * PER_CLIENT);

    for (ticket, request) in &submissions {
        let (_, result) = results
            .iter()
            .find(|(t, _)| t == ticket)
            .expect("every submitted ticket answered");
        let got = result.as_ref().unwrap();
        if let Some(expect) = oracle(&matrices[request.shard()], request) {
            assert!(got.bits_eq(&expect), "{request:?} diverged from oracle");
        }
        let expect = plain.serve_one_uncached(request).unwrap();
        assert!(
            got.bits_eq(&expect),
            "{request:?} diverged from plain server"
        );
    }
}

#[test]
fn mid_stream_ingest_keeps_indexed_answers_bit_identical() {
    const PER_SHARD: usize = 12;
    let indexed = build_server(PER_SHARD, true);
    let plain = build_server(PER_SHARD, false);

    // Oracle logs mirror every ingest the servers see.
    let mut logs: Vec<Vec<Query>> = (0..SHARDS).map(|s| tenant_log(s, PER_SHARD)).collect();

    // Three ingest waves: the first two are small enough to land in the
    // index's overflow buffer, the last forces a rebuild. After each wave
    // both servers see the same store and must stay in bit-lockstep.
    for (wave, extra) in [(100usize, 2usize), (200, 3), (300, 24)].into_iter() {
        for (shard, log) in logs.iter_mut().enumerate() {
            let chunk = tenant_log(shard + wave, extra);
            indexed.ingest(shard, &chunk).unwrap();
            plain.ingest(shard, &chunk).unwrap();
            log.extend(chunk);
            assert_eq!(
                indexed.shard_epoch(shard).unwrap(),
                plain.shard_epoch(shard).unwrap(),
                "epochs must advance in lockstep"
            );
            assert_eq!(indexed.shard_len(shard).unwrap(), log.len());
        }
        let n = indexed.shard_len(0).unwrap();
        let matrices: Vec<DistanceMatrix> = logs
            .iter()
            .map(|log| DistanceMatrix::compute(log, &TokenDistance).unwrap())
            .collect();
        for c in 0..4 {
            for request in client_stream(c, 20, n) {
                let a = indexed.serve_one_uncached(&request).unwrap();
                let b = plain.serve_one_uncached(&request).unwrap();
                assert!(a.bits_eq(&b), "wave {wave}: {request:?} diverged");
                if let Some(expect) = oracle(&matrices[request.shard()], &request) {
                    assert!(a.bits_eq(&expect), "wave {wave}: {request:?} vs oracle");
                }
            }
        }
    }
}

#[test]
fn indexed_execution_actually_prunes_and_accounts_every_cell() {
    const PER_SHARD: usize = 64;
    let indexed = build_server(PER_SHARD, true);
    let plain = build_server(PER_SHARD, false);

    let mut pruned_total = 0u64;
    for item in 0..PER_SHARD {
        let req = Request::Knn {
            shard: 0,
            item,
            k: 3,
        };
        let (_, m) = indexed.explain(&req).unwrap();
        // Exhaustive accounting: every other item was computed or pruned.
        assert_eq!(
            m.distance_cells + m.pruned_cells,
            PER_SHARD as u64,
            "anchor {item}"
        );
        pruned_total += m.pruned_cells;

        let (_, plain_m) = plain.explain(&req).unwrap();
        assert_eq!(plain_m.pruned_cells, 0, "matrix path never claims pruning");
    }
    // The triangle inequality must be doing real work on a 64-item shard,
    // not just accounting for itself.
    assert!(
        pruned_total > 0,
        "indexed kNN never pruned a single cell across {PER_SHARD} anchors"
    );

    let (_, m) = indexed
        .explain(&Request::Range {
            shard: 0,
            item: 0,
            radius: 0.05,
        })
        .unwrap();
    assert_eq!(m.distance_cells + m.pruned_cells, PER_SHARD as u64);
}

#[test]
fn cached_and_uncached_indexed_paths_agree() {
    const PER_SHARD: usize = 20;
    let indexed = build_server(PER_SHARD, true);
    let plain = build_server(PER_SHARD, false);

    let mut requests = Vec::new();
    for c in 0..5 {
        requests.extend(client_stream(c, 20, PER_SHARD));
    }
    for pass in 0..3 {
        let a = indexed.serve_batch(&requests, 4);
        let b = plain.serve_batch(&requests, 4);
        for ((x, y), req) in a.iter().zip(&b).zip(&requests) {
            assert!(
                x.as_ref().unwrap().bits_eq(y.as_ref().unwrap()),
                "pass {pass}: indexed diverged from plain for {req:?}"
            );
        }
    }
    assert!(indexed.stats().cache.hits > 0);
}
