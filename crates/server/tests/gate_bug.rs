// Quick repro: Pipeline [Outliers(LofThreshold thr=0)] keeps all n items
// reordered by descending LOF score; a following Knn/FilterRange sees
// selection.len() == n and takes the index path, misinterpreting item ids
// as positions.
use dpe_distance::TokenDistance;
use dpe_server::{OutlierRule, PlanOp, Request, Server};
use dpe_sql::parse_query;

#[test]
fn gate_bug() {
    let queries: Vec<_> = (0..12)
        .map(|i| {
            parse_query(&format!(
                "SELECT a{}, b{} FROM t{} WHERE x = {}",
                i % 4,
                i % 7,
                i % 3,
                i % 5
            ))
            .unwrap()
        })
        .collect();
    let indexed = Server::builder(TokenDistance).metric_index(true).build();
    let plain = Server::builder(TokenDistance).build();
    indexed.ingest(0, &queries).unwrap();
    plain.ingest(0, &queries).unwrap();
    let req = Request::Pipeline {
        shard: 0,
        ops: vec![
            PlanOp::Outliers(OutlierRule::LofThreshold {
                min_pts: 2,
                threshold: 0.0,
            }),
            PlanOp::Knn { item: 0, k: 4 },
        ],
    };
    let a = indexed.serve_one_uncached(&req).unwrap();
    let b = plain.serve_one_uncached(&req).unwrap();
    println!("indexed: {a:?}");
    println!("plain:   {b:?}");
    assert!(
        a.bits_eq(&b),
        "MISMATCH: indexed path diverges from plain path"
    );
    println!("no divergence");
}
