//! Batched, throughput-oriented Paillier encryption.
//!
//! The outsourcing model has the data owner continuously encrypting and
//! uploading records, and a textbook [`PublicKey::encrypt`] spends almost
//! all of its time on one thing: the plaintext-independent factor
//! `r^n mod n²`. This module splits that work off the hot path three ways:
//!
//! * **[`RandomnessPool`]** precomputes `r^n` factors ahead of demand —
//!   sequentially, or dealt across scoped worker threads
//!   ([`RandomnessPool::refill_parallel`], the same range-dealing pattern
//!   as `DistanceMatrix::compute_parallel`). A pooled encryption is then a
//!   single modular multiplication.
//! * **Fixed-base sampling** ([`BatchEncryptor::fixed_base`]) replaces the
//!   full `r^n` exponentiation with a windowed table walk
//!   ([`dpe_bignum::FixedBaseTable`]): factors are drawn as `h^a` for a
//!   fixed `h = r₀^n mod n²`, so even a *cold* pool refills several times
//!   faster than square-and-multiply.
//! * **[`BatchEncryptor::encrypt_batch`] / [`BatchEncryptor::encrypt_stream`]**
//!   deal plaintext chunks across scoped worker threads, overlapping the
//!   production of the next chunk with the encryption of the current one.
//!
//! Underneath both sampling modes sits the bignum Montgomery layer:
//! exact-mode refills run `r^n mod n²` through the key's cached
//! [`dpe_bignum::MontgomeryCtx`] (via [`PublicKey::precompute_randomness`]),
//! and the fixed-base table stores its rows in Montgomery form, so every
//! per-factor multiplication is a division-free REDC step. Neither changes
//! a single output bit — the equivalence proptests below hold unchanged.
//!
//! In **exact** mode ([`BatchEncryptor::new`]) every API here consumes
//! randomness in the same order as sequential [`PublicKey::encrypt`]
//! calls, so batched output is bit-for-bit identical to the one-at-a-time
//! path given the same seeded RNG — the property the crate's proptests
//! pin. Fixed-base mode trades that equivalence (and the uniformity of
//! `r` over all of `(ℤ/nℤ)*` — factors range over the subgroup generated
//! by `h`) for throughput; like the rest of this reproduction it is a
//! performance model, not a production cryptosystem.

use crate::keys::PublicKey;
use crate::scheme::{Ciphertext, PaillierError};
use dpe_bignum::random::{uniform_coprime, uniform_range};
use dpe_bignum::{BigUint, FixedBaseTable};
use rand::RngCore;
use std::collections::VecDeque;
use std::sync::Mutex;

/// How a pool draws fresh randomness factors.
#[derive(Debug)]
enum Sampler {
    /// Draw `r ← (ℤ/nℤ)*` and pay the full `r^n mod n²` exponentiation —
    /// bit-compatible with [`PublicKey::encrypt`].
    Exact,
    /// Draw `a ← [1, n)` and return `h^a` from a precomputed windowed
    /// table over the fixed base `h = r₀^n mod n²`.
    FixedBase(Box<FixedBaseTable>),
}

/// A randomness draw whose expensive half may still be pending: pooled
/// factors arrive [`Factor::Ready`]; fresh draws carry the raw `r` (exact
/// mode) or exponent `a` (fixed-base mode) so worker threads can finish
/// them off the RNG's thread.
#[derive(Debug)]
enum Factor {
    /// A precomputed `r^n mod n²`, ready to multiply.
    Ready(BigUint),
    /// A fresh draw still needing its exponentiation.
    Fresh(BigUint),
}

/// A chunk staged for worker threads: the plaintexts plus one drawn
/// factor per plaintext, in order.
type StagedChunk = (Vec<BigUint>, Vec<Factor>);

/// Counters describing a pool's lifetime behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Factors precomputed by refills (never decreases).
    pub precomputed: u64,
    /// Encryptions served from the pool.
    pub served: u64,
    /// Encryptions that found the pool empty and sampled on demand.
    pub misses: u64,
}

/// Interior state guarded by the pool's mutex.
#[derive(Debug, Default)]
struct PoolState {
    entries: VecDeque<BigUint>,
    stats: PoolStats,
}

/// A refillable pool of precomputed Paillier randomness factors
/// (`r^n mod n²`).
///
/// Producers push factors with [`RandomnessPool::refill`] /
/// [`RandomnessPool::refill_parallel`]; the encryption hot path pops them
/// with [`RandomnessPool::take`]. All methods take `&self`, so a refill
/// worker can top the pool up concurrently with encrypting drains.
///
/// In exact mode the pool draws each `r` from the RNG **in FIFO order**
/// and serves factors in that same order, which is what keeps pooled
/// batched encryption bit-identical to sequential [`PublicKey::encrypt`]
/// calls on the same seeded RNG.
#[derive(Debug)]
pub struct RandomnessPool {
    public: PublicKey,
    sampler: Sampler,
    state: Mutex<PoolState>,
}

impl RandomnessPool {
    /// An empty pool drawing exact (encrypt-compatible) randomness for
    /// `public`.
    pub fn new(public: &PublicKey) -> RandomnessPool {
        RandomnessPool {
            public: public.clone(),
            sampler: Sampler::Exact,
            state: Mutex::new(PoolState::default()),
        }
    }

    /// An empty pool drawing fixed-base randomness: one random
    /// `r₀ ← (ℤ/nℤ)*` is paid for up front (`h = r₀^n mod n²`, plus the
    /// windowed table over `h`), after which every factor costs a table
    /// walk instead of a full exponentiation.
    pub fn fixed_base<R: RngCore>(public: &PublicKey, rng: &mut R) -> RandomnessPool {
        let r0 = uniform_coprime(public.n(), rng);
        let h = public.precompute_randomness(&r0);
        let table = FixedBaseTable::new(&h, public.n_squared(), public.n().bit_len());
        RandomnessPool {
            public: public.clone(),
            sampler: Sampler::FixedBase(Box::new(table)),
            state: Mutex::new(PoolState::default()),
        }
    }

    /// `true` when factors come from the fixed-base table rather than
    /// exact `r^n` exponentiations.
    pub fn is_fixed_base(&self) -> bool {
        matches!(self.sampler, Sampler::FixedBase(_))
    }

    /// Draws the raw half of a fresh factor from `rng` — cheap, and the
    /// only part that must happen in sequential order.
    fn draw<R: RngCore>(&self, rng: &mut R) -> BigUint {
        match &self.sampler {
            Sampler::Exact => uniform_coprime(self.public.n(), rng),
            Sampler::FixedBase(_) => uniform_range(&BigUint::one(), self.public.n(), rng),
        }
    }

    /// Finishes a draw into a ready factor (the expensive half; safe to
    /// run on any thread).
    fn finish(&self, raw: &BigUint) -> BigUint {
        match &self.sampler {
            Sampler::Exact => self.public.precompute_randomness(raw),
            Sampler::FixedBase(table) => table.pow(raw),
        }
    }

    /// Resolves a [`Factor`] to its ready value.
    fn resolve(&self, factor: Factor) -> BigUint {
        match factor {
            Factor::Ready(f) => f,
            Factor::Fresh(raw) => self.finish(&raw),
        }
    }

    /// Precomputes `count` factors on the calling thread, pushing each as
    /// it completes so concurrent [`RandomnessPool::take`] calls drain the
    /// pool while it refills.
    pub fn refill<R: RngCore>(&self, count: usize, rng: &mut R) {
        for _ in 0..count {
            let raw = self.draw(rng);
            let factor = self.finish(&raw);
            let mut state = self.lock();
            state.entries.push_back(factor);
            state.stats.precomputed += 1;
        }
    }

    /// Precomputes `count` factors across `threads` scoped worker threads.
    ///
    /// The raw draws happen sequentially on the calling thread (preserving
    /// the RNG stream order that exact-mode bit-equivalence relies on);
    /// only the exponentiations are dealt out, each worker writing into
    /// its own disjoint chunk, and the finished factors are enqueued in
    /// draw order.
    pub fn refill_parallel<R: RngCore>(&self, count: usize, threads: usize, rng: &mut R) {
        if count == 0 {
            return;
        }
        let raws: Vec<BigUint> = (0..count).map(|_| self.draw(rng)).collect();
        let mut factors: Vec<Option<BigUint>> = vec![None; count];
        let threads = threads.clamp(1, count);
        std::thread::scope(|scope| {
            let mut rest_raw: &[BigUint] = &raws;
            let mut rest_out: &mut [Option<BigUint>] = &mut factors;
            for w in 0..threads {
                let take = rest_raw.len().div_ceil(threads - w);
                let (raw_chunk, raw_tail) = rest_raw.split_at(take);
                let (out_chunk, out_tail) = rest_out.split_at_mut(take);
                rest_raw = raw_tail;
                rest_out = out_tail;
                scope.spawn(move || {
                    for (slot, raw) in out_chunk.iter_mut().zip(raw_chunk) {
                        *slot = Some(self.finish(raw));
                    }
                });
            }
        });
        let mut state = self.lock();
        for factor in factors {
            state
                .entries
                .push_back(factor.expect("every chunk was dealt to a worker"));
            state.stats.precomputed += 1;
        }
    }

    /// Pops the oldest pooled factor, or `None` when the pool is empty.
    /// Prefer [`RandomnessPool::take`], which records hit/miss statistics
    /// and falls back to an on-demand draw.
    pub fn pop(&self) -> Option<BigUint> {
        self.lock().entries.pop_front()
    }

    /// The encryption hot path: a pooled factor when one is available
    /// (recorded as served), otherwise an on-demand draw from `rng`
    /// (recorded as a miss). In exact mode the result consumes randomness
    /// exactly like [`PublicKey::encrypt`] would.
    pub fn take<R: RngCore>(&self, rng: &mut R) -> BigUint {
        match self.take_factor(rng) {
            Factor::Ready(f) => f,
            fresh => self.resolve(fresh),
        }
    }

    /// Like [`RandomnessPool::take`] but defers the expensive half of a
    /// miss, so batch paths can finish it on a worker thread.
    fn take_factor<R: RngCore>(&self, rng: &mut R) -> Factor {
        let popped = {
            let mut state = self.lock();
            match state.entries.pop_front() {
                Some(f) => {
                    state.stats.served += 1;
                    Some(f)
                }
                None => {
                    state.stats.misses += 1;
                    None
                }
            }
        };
        match popped {
            Some(f) => Factor::Ready(f),
            None => Factor::Fresh(self.draw(rng)),
        }
    }

    /// Factors currently pooled.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// `true` when no factors are pooled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters (refilled / served / missed).
    pub fn stats(&self) -> PoolStats {
        self.lock().stats
    }

    /// The public key the factors belong to.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.state.lock().expect("randomness pool lock poisoned")
    }
}

/// A throughput-oriented encryption engine: a [`RandomnessPool`] plus
/// chunk-dealing batch and stream APIs over scoped worker threads.
///
/// ```
/// use dpe_paillier::batch::BatchEncryptor;
/// use dpe_paillier::{KeyPair, TEST_PRIME_BITS};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let keys = KeyPair::generate(TEST_PRIME_BITS, &mut rng);
/// let engine = BatchEncryptor::new(keys.public());
/// engine.pool().refill_parallel(4, 2, &mut rng);
///
/// let values: Vec<_> = (0u64..4).map(dpe_bignum::BigUint::from).collect();
/// let cts = engine.encrypt_batch(&values, &mut rng).unwrap();
/// assert_eq!(keys.private().decrypt_u64(&cts[3]).unwrap(), 3);
/// ```
#[derive(Debug)]
pub struct BatchEncryptor {
    pool: RandomnessPool,
}

impl BatchEncryptor {
    /// An engine in exact mode: batched output is bit-identical to
    /// sequential [`PublicKey::encrypt`] calls on the same seeded RNG.
    pub fn new(public: &PublicKey) -> BatchEncryptor {
        BatchEncryptor {
            pool: RandomnessPool::new(public),
        }
    }

    /// An engine in fixed-base mode: fresh factors cost a windowed table
    /// walk instead of a full `r^n` exponentiation (several times faster
    /// even with a cold pool), at the price of exact-mode bit
    /// compatibility.
    pub fn fixed_base<R: RngCore>(public: &PublicKey, rng: &mut R) -> BatchEncryptor {
        BatchEncryptor {
            pool: RandomnessPool::fixed_base(public, rng),
        }
    }

    /// An engine around an existing pool (e.g. one a background worker is
    /// already topping up).
    pub fn with_pool(pool: RandomnessPool) -> BatchEncryptor {
        BatchEncryptor { pool }
    }

    /// The engine's randomness pool — refill it ahead of bursts.
    pub fn pool(&self) -> &RandomnessPool {
        &self.pool
    }

    /// The public key encryptions are made under.
    pub fn public(&self) -> &PublicKey {
        self.pool.public()
    }

    /// Encrypts one value through the pool: a single modular
    /// multiplication when a factor is pooled.
    pub fn encrypt_one<R: RngCore>(
        &self,
        m: &BigUint,
        rng: &mut R,
    ) -> Result<Ciphertext, PaillierError> {
        let factor = self.pool.take(rng);
        self.public().encrypt_with_precomputed(m, &factor)
    }

    /// Encrypts a batch on the calling thread, draining the pool first and
    /// sampling on demand past its end. In exact mode the output is
    /// bit-identical to encrypting `values` one by one with
    /// [`PublicKey::encrypt`] on the same seeded RNG.
    pub fn encrypt_batch<R: RngCore>(
        &self,
        values: &[BigUint],
        rng: &mut R,
    ) -> Result<Vec<Ciphertext>, PaillierError> {
        self.check_all(values)?;
        values.iter().map(|m| self.encrypt_one(m, rng)).collect()
    }

    /// Encrypts a batch dealt across `threads` scoped worker threads.
    ///
    /// Pool pops and fresh draws happen sequentially on the calling thread
    /// (preserving RNG stream order); workers finish the pending
    /// exponentiations and the final multiplications in disjoint chunks.
    /// Output is bit-identical to [`BatchEncryptor::encrypt_batch`].
    pub fn encrypt_batch_parallel<R: RngCore>(
        &self,
        values: &[BigUint],
        threads: usize,
        rng: &mut R,
    ) -> Result<Vec<Ciphertext>, PaillierError> {
        self.check_all(values)?;
        let factors: Vec<Factor> = values.iter().map(|_| self.pool.take_factor(rng)).collect();
        Ok(self.finish_chunked(values, factors, threads))
    }

    /// Streaming encryption: pulls plaintexts from `items` in chunks of
    /// `chunk_size`, encrypts each chunk across `threads` workers, and
    /// hands finished chunks to `sink` in order. While workers encrypt
    /// chunk *k*, the calling thread is already pulling and sampling chunk
    /// *k + 1* — so a slow producer (disk, network, record assembly)
    /// overlaps with the modular arithmetic. Returns the total number of
    /// ciphertexts produced.
    ///
    /// In exact mode the concatenated output is bit-identical to
    /// [`BatchEncryptor::encrypt_batch`] over the collected iterator.
    pub fn encrypt_stream<I, R, F>(
        &self,
        items: I,
        chunk_size: usize,
        threads: usize,
        rng: &mut R,
        mut sink: F,
    ) -> Result<usize, PaillierError>
    where
        I: IntoIterator<Item = BigUint>,
        R: RngCore,
        F: FnMut(Vec<Ciphertext>),
    {
        let chunk_size = chunk_size.max(1);
        let mut iter = items.into_iter();
        let mut total = 0usize;
        let mut pending = self.prepare_chunk(&mut iter, chunk_size, rng)?;
        while let Some((values, factors)) = pending.take() {
            let mut next: Result<Option<StagedChunk>, PaillierError> = Ok(None);
            let mut out = Vec::new();
            std::thread::scope(|scope| {
                let handle = scope.spawn(|| self.finish_chunked(&values, factors, threads));
                // Overlap: produce and sample the next chunk while the
                // workers in `finish_chunked` encrypt this one.
                next = self.prepare_chunk(&mut iter, chunk_size, rng);
                out = handle.join().expect("encrypt worker panicked");
            });
            total += out.len();
            sink(out);
            pending = next?;
        }
        Ok(total)
    }

    /// Pulls up to `chunk_size` plaintexts and pairs each with a factor
    /// (pool pop or deferred fresh draw). Errors on oversized plaintexts
    /// *before* any arithmetic is spent on the chunk.
    fn prepare_chunk<R: RngCore>(
        &self,
        iter: &mut impl Iterator<Item = BigUint>,
        chunk_size: usize,
        rng: &mut R,
    ) -> Result<Option<StagedChunk>, PaillierError> {
        let values: Vec<BigUint> = iter.take(chunk_size).collect();
        if values.is_empty() {
            return Ok(None);
        }
        self.check_all(&values)?;
        let factors = values.iter().map(|_| self.pool.take_factor(rng)).collect();
        Ok(Some((values, factors)))
    }

    /// Finishes `values[i]` with `factors[i]` across scoped workers, each
    /// writing its own disjoint output chunk. Infallible: plaintexts were
    /// range-checked when the factors were drawn.
    fn finish_chunked(
        &self,
        values: &[BigUint],
        factors: Vec<Factor>,
        threads: usize,
    ) -> Vec<Ciphertext> {
        let threads = threads.clamp(1, values.len().max(1));
        let mut out: Vec<Option<Ciphertext>> = vec![None; values.len()];
        let mut factors = VecDeque::from(factors);
        std::thread::scope(|scope| {
            let mut rest_vals: &[BigUint] = values;
            let mut rest_out: &mut [Option<Ciphertext>] = &mut out;
            for w in 0..threads {
                let take = rest_vals.len().div_ceil(threads - w);
                let (val_chunk, val_tail) = rest_vals.split_at(take);
                let (out_chunk, out_tail) = rest_out.split_at_mut(take);
                rest_vals = val_tail;
                rest_out = out_tail;
                let factor_chunk: Vec<Factor> = factors.drain(..take).collect();
                scope.spawn(move || {
                    for ((slot, m), factor) in out_chunk.iter_mut().zip(val_chunk).zip(factor_chunk)
                    {
                        let f = self.pool.resolve(factor);
                        *slot = Some(
                            self.public()
                                .encrypt_with_precomputed(m, &f)
                                .expect("plaintexts were range-checked at draw time"),
                        );
                    }
                });
            }
        });
        out.into_iter()
            .map(|c| c.expect("every chunk was dealt to a worker"))
            .collect()
    }

    /// Rejects any plaintext `≥ n` up front, so worker-side encryption is
    /// infallible.
    fn check_all(&self, values: &[BigUint]) -> Result<(), PaillierError> {
        let n = self.public().n();
        for m in values {
            if m >= n {
                return Err(PaillierError::PlaintextTooLarge {
                    bits: m.bit_len(),
                    modulus_bits: n.bit_len(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KeyPair, TEST_PRIME_BITS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    /// One keypair for the whole suite — keygen dominates test time.
    fn keys() -> &'static KeyPair {
        static KEYS: OnceLock<KeyPair> = OnceLock::new();
        KEYS.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(42);
            KeyPair::generate(TEST_PRIME_BITS, &mut rng)
        })
    }

    fn values(n: u64) -> Vec<BigUint> {
        (0..n).map(|i| BigUint::from(i * 7919 + 13)).collect()
    }

    fn sequential_oracle(vals: &[BigUint], seed: u64) -> Vec<Ciphertext> {
        let mut rng = StdRng::seed_from_u64(seed);
        vals.iter()
            .map(|m| keys().public().encrypt(m, &mut rng).unwrap())
            .collect()
    }

    #[test]
    fn empty_pool_batch_is_bit_identical_to_sequential() {
        let vals = values(12);
        let engine = BatchEncryptor::new(keys().public());
        let mut rng = StdRng::seed_from_u64(5);
        let batched = engine.encrypt_batch(&vals, &mut rng).unwrap();
        assert_eq!(batched, sequential_oracle(&vals, 5));
    }

    #[test]
    fn prefilled_pool_batch_is_bit_identical_to_sequential() {
        let vals = values(10);
        let engine = BatchEncryptor::new(keys().public());
        let mut rng = StdRng::seed_from_u64(77);
        // Pool covers 6 of 10: pops then on-demand draws must replay the
        // exact randomness stream of ten sequential encrypts.
        engine.pool().refill(6, &mut rng);
        let batched = engine.encrypt_batch(&vals, &mut rng).unwrap();
        assert_eq!(batched, sequential_oracle(&vals, 77));
        let stats = engine.pool().stats();
        assert_eq!((stats.precomputed, stats.served, stats.misses), (6, 6, 4));
    }

    #[test]
    fn parallel_refill_and_batch_stay_bit_identical() {
        let vals = values(9);
        for threads in [1, 2, 4, 8] {
            let engine = BatchEncryptor::new(keys().public());
            let mut rng = StdRng::seed_from_u64(threads as u64);
            engine.pool().refill_parallel(5, threads, &mut rng);
            let batched = engine
                .encrypt_batch_parallel(&vals, threads, &mut rng)
                .unwrap();
            assert_eq!(
                batched,
                sequential_oracle(&vals, threads as u64),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn stream_concatenation_is_bit_identical_to_sequential() {
        let vals = values(11);
        let engine = BatchEncryptor::new(keys().public());
        let mut rng = StdRng::seed_from_u64(31);
        engine.pool().refill(3, &mut rng);
        let mut chunks: Vec<usize> = Vec::new();
        let mut streamed: Vec<Ciphertext> = Vec::new();
        let total = engine
            .encrypt_stream(vals.iter().cloned(), 4, 2, &mut rng, |chunk| {
                chunks.push(chunk.len());
                streamed.extend(chunk);
            })
            .unwrap();
        assert_eq!(total, 11);
        assert_eq!(chunks, vec![4, 4, 3]);
        assert_eq!(streamed, sequential_oracle(&vals, 31));
    }

    #[test]
    fn fixed_base_mode_roundtrips_and_randomizes() {
        let mut rng = StdRng::seed_from_u64(9);
        let engine = BatchEncryptor::fixed_base(keys().public(), &mut rng);
        assert!(engine.pool().is_fixed_base());
        engine.pool().refill_parallel(8, 4, &mut rng);
        let vals = values(16);
        let cts = engine.encrypt_batch(&vals, &mut rng).unwrap();
        for (m, ct) in vals.iter().zip(&cts) {
            assert_eq!(&keys().private().decrypt(ct).unwrap(), m);
        }
        // Factors are h^a with fresh a each: ciphertexts never repeat.
        for (i, a) in cts.iter().enumerate() {
            for b in &cts[i + 1..] {
                assert_ne!(a.value(), b.value());
            }
        }
    }

    #[test]
    fn refill_under_drain_conserves_factors() {
        let engine = BatchEncryptor::new(keys().public());
        let pool = engine.pool();
        let drained = std::thread::scope(|scope| {
            let producer = scope.spawn(|| {
                let mut rng = StdRng::seed_from_u64(1);
                for _ in 0..4 {
                    pool.refill(4, &mut rng);
                }
            });
            let consumer = scope.spawn(|| {
                let mut got = 0usize;
                while got < 10 {
                    if pool.pop().is_some() {
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                got
            });
            producer.join().expect("producer");
            consumer.join().expect("consumer")
        });
        let stats = pool.stats();
        assert_eq!(stats.precomputed, 16);
        assert_eq!(drained + pool.len(), 16, "no factor lost or duplicated");
    }

    #[test]
    fn oversized_plaintext_rejected_before_work() {
        let engine = BatchEncryptor::new(keys().public());
        let mut rng = StdRng::seed_from_u64(2);
        let bad = vec![BigUint::from(1u64), keys().public().n().clone()];
        assert!(matches!(
            engine.encrypt_batch(&bad, &mut rng),
            Err(PaillierError::PlaintextTooLarge { .. })
        ));
        assert!(matches!(
            engine.encrypt_batch_parallel(&bad, 2, &mut rng),
            Err(PaillierError::PlaintextTooLarge { .. })
        ));
        let err = engine.encrypt_stream(bad, 8, 2, &mut rng, |_| {
            panic!("sink must not see a failed chunk")
        });
        assert!(matches!(err, Err(PaillierError::PlaintextTooLarge { .. })));
    }

    #[test]
    fn empty_inputs_are_fine() {
        let engine = BatchEncryptor::new(keys().public());
        let mut rng = StdRng::seed_from_u64(3);
        assert!(engine.encrypt_batch(&[], &mut rng).unwrap().is_empty());
        assert!(engine
            .encrypt_batch_parallel(&[], 4, &mut rng)
            .unwrap()
            .is_empty());
        let total = engine
            .encrypt_stream(std::iter::empty(), 4, 2, &mut rng, |_| {
                panic!("no chunks expected")
            })
            .unwrap();
        assert_eq!(total, 0);
        engine.pool().refill_parallel(0, 4, &mut rng);
        assert!(engine.pool().is_empty());
    }
}
