//! # dpe-paillier — the Paillier cryptosystem (the HOM class)
//!
//! Textbook Paillier (Fontaine & Galand's survey \[11\] is the paper's
//! reference for HOM): probabilistic public-key encryption over ℤ/n²ℤ that is
//! additively homomorphic,
//!
//! ```text
//! Enc(a) · Enc(b) mod n²  decrypts to  a + b mod n
//! Enc(a)^k        mod n²  decrypts to  k · a mod n
//! ```
//!
//! which is what lets CryptDB evaluate `SUM(...)` over encrypted columns.
//! In the paper's Table I, HOM appears as the onion layer the access-area
//! scheme deliberately *avoids* (PROB suffices for aggregate-only
//! attributes) — `dpe-bench`'s S1 experiment quantifies that difference.
//!
//! Key generation uses `p, q` primes of equal bit length with `gcd(pq,
//! (p−1)(q−1)) = 1`, `g = n + 1`, and the CRT-free decryption
//! `m = L(c^λ mod n²) · μ mod n` with `L(u) = (u − 1)/n`.

mod hom;
mod keys;
mod scheme;

pub use hom::{sum_ciphertexts, EncryptedSum};
pub use keys::{KeyPair, PrivateKey, PublicKey};
pub use scheme::{Ciphertext, PaillierError, DEFAULT_PRIME_BITS, TEST_PRIME_BITS};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_keys() -> KeyPair {
        // One fixed keypair for the whole property suite: keygen is the
        // expensive part and the properties quantify over plaintexts.
        let mut rng = StdRng::seed_from_u64(1234);
        KeyPair::generate(TEST_PRIME_BITS, &mut rng)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn roundtrip(m in 0u64..u64::MAX) {
            let kp = test_keys();
            let mut rng = StdRng::seed_from_u64(m);
            let ct = kp.public().encrypt_u64(m, &mut rng);
            prop_assert_eq!(kp.private().decrypt_u64(&ct).unwrap(), m);
        }

        #[test]
        fn additive_homomorphism(a in 0u64..(1 << 62), b in 0u64..(1 << 62)) {
            let kp = test_keys();
            let mut rng = StdRng::seed_from_u64(a ^ b);
            let ca = kp.public().encrypt_u64(a, &mut rng);
            let cb = kp.public().encrypt_u64(b, &mut rng);
            let sum = kp.public().add(&ca, &cb);
            prop_assert_eq!(kp.private().decrypt_u64(&sum).unwrap(), a + b);
        }

        #[test]
        fn scalar_multiplication(a in 0u64..(1 << 40), k in 0u64..(1 << 20)) {
            let kp = test_keys();
            let mut rng = StdRng::seed_from_u64(a.wrapping_mul(31) ^ k);
            let ca = kp.public().encrypt_u64(a, &mut rng);
            let prod = kp.public().mul_scalar(&ca, k);
            prop_assert_eq!(kp.private().decrypt_u64(&prod).unwrap(), a * k);
        }

        #[test]
        fn probabilistic_encryption(m in 0u64..1000) {
            // Two encryptions of the same value are distinct ciphertexts
            // (HOM ⊂ PROB in Fig. 1).
            let kp = test_keys();
            let mut rng = StdRng::seed_from_u64(999);
            let c1 = kp.public().encrypt_u64(m, &mut rng);
            let c2 = kp.public().encrypt_u64(m, &mut rng);
            prop_assert_ne!(c1.value(), c2.value());
        }
    }
}
