//! # dpe-paillier — the Paillier cryptosystem (the HOM class)
//!
//! Textbook Paillier (Fontaine & Galand's survey \[11\] is the paper's
//! reference for HOM): probabilistic public-key encryption over ℤ/n²ℤ that is
//! additively homomorphic,
//!
//! ```text
//! Enc(a) · Enc(b) mod n²  decrypts to  a + b mod n
//! Enc(a)^k        mod n²  decrypts to  k · a mod n
//! ```
//!
//! which is what lets CryptDB evaluate `SUM(...)` over encrypted columns.
//! In the paper's Table I, HOM appears as the onion layer the access-area
//! scheme deliberately *avoids* (PROB suffices for aggregate-only
//! attributes) — `dpe-bench`'s S1 experiment quantifies that difference.
//!
//! Key generation uses `p, q` primes of equal bit length with `gcd(pq,
//! (p−1)(q−1)) = 1`, `g = n + 1`, and the CRT-free decryption
//! `m = L(c^λ mod n²) · μ mod n` with `L(u) = (u − 1)/n`.

pub mod batch;
mod hom;
mod keys;
mod scheme;

pub use batch::{BatchEncryptor, PoolStats, RandomnessPool};
pub use hom::{sum_ciphertexts, EncryptedSum};
pub use keys::{KeyPair, PrivateKey, PublicKey};
pub use scheme::{Ciphertext, PaillierError, DEFAULT_PRIME_BITS, TEST_PRIME_BITS};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_keys() -> KeyPair {
        // One fixed keypair for the whole property suite: keygen is the
        // expensive part and the properties quantify over plaintexts.
        let mut rng = StdRng::seed_from_u64(1234);
        KeyPair::generate(TEST_PRIME_BITS, &mut rng)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn roundtrip(m in 0u64..u64::MAX) {
            let kp = test_keys();
            let mut rng = StdRng::seed_from_u64(m);
            let ct = kp.public().encrypt_u64(m, &mut rng);
            prop_assert_eq!(kp.private().decrypt_u64(&ct).unwrap(), m);
        }

        #[test]
        fn additive_homomorphism(a in 0u64..(1 << 62), b in 0u64..(1 << 62)) {
            let kp = test_keys();
            let mut rng = StdRng::seed_from_u64(a ^ b);
            let ca = kp.public().encrypt_u64(a, &mut rng);
            let cb = kp.public().encrypt_u64(b, &mut rng);
            let sum = kp.public().add(&ca, &cb);
            prop_assert_eq!(kp.private().decrypt_u64(&sum).unwrap(), a + b);
        }

        #[test]
        fn scalar_multiplication(a in 0u64..(1 << 40), k in 0u64..(1 << 20)) {
            let kp = test_keys();
            let mut rng = StdRng::seed_from_u64(a.wrapping_mul(31) ^ k);
            let ca = kp.public().encrypt_u64(a, &mut rng);
            let prod = kp.public().mul_scalar(&ca, k);
            prop_assert_eq!(kp.private().decrypt_u64(&prod).unwrap(), a * k);
        }

        #[test]
        fn batched_encryption_is_bit_identical_to_sequential(
            vals in proptest::collection::vec(0u64..u64::MAX, 0..12),
            seed in 0u64..1000,
            prefill in 0usize..16,
            threads in 1usize..5,
        ) {
            // The tentpole claim of `batch`: no matter how the pool is
            // prefilled or the work is dealt, exact-mode batching replays
            // the randomness stream of one-at-a-time encryption.
            let kp = test_keys();
            let vals: Vec<dpe_bignum::BigUint> =
                vals.into_iter().map(dpe_bignum::BigUint::from).collect();
            let oracle: Vec<Ciphertext> = {
                let mut rng = StdRng::seed_from_u64(seed);
                vals.iter()
                    .map(|m| kp.public().encrypt(m, &mut rng).unwrap())
                    .collect()
            };
            let engine = BatchEncryptor::new(kp.public());
            let mut rng = StdRng::seed_from_u64(seed);
            engine.pool().refill_parallel(prefill, threads, &mut rng);
            prop_assert_eq!(
                engine.encrypt_batch_parallel(&vals, threads, &mut rng).unwrap(),
                oracle
            );
        }

        #[test]
        fn pool_conserves_factors_under_drain(
            refills in proptest::collection::vec(0usize..6, 1..4),
            pops in 0usize..24,
        ) {
            let kp = test_keys();
            let pool = RandomnessPool::new(kp.public());
            let total: usize = refills.iter().sum();
            let popped = std::thread::scope(|scope| {
                let refiller = scope.spawn(|| {
                    let mut rng = StdRng::seed_from_u64(8);
                    for count in &refills {
                        pool.refill(*count, &mut rng);
                    }
                });
                let drainer = scope.spawn(|| {
                    (0..pops).filter(|_| pool.pop().is_some()).count()
                });
                refiller.join().expect("refiller");
                drainer.join().expect("drainer")
            });
            prop_assert_eq!(pool.stats().precomputed, total as u64);
            prop_assert_eq!(popped + pool.len(), total);
        }

        #[test]
        fn probabilistic_encryption(m in 0u64..1000) {
            // Two encryptions of the same value are distinct ciphertexts
            // (HOM ⊂ PROB in Fig. 1).
            let kp = test_keys();
            let mut rng = StdRng::seed_from_u64(999);
            let c1 = kp.public().encrypt_u64(m, &mut rng);
            let c2 = kp.public().encrypt_u64(m, &mut rng);
            prop_assert_ne!(c1.value(), c2.value());
        }
    }
}
