//! # dpe-paillier — the Paillier cryptosystem (the HOM class)
//!
//! Textbook Paillier (Fontaine & Galand's survey \[11\] is the paper's
//! reference for HOM): probabilistic public-key encryption over ℤ/n²ℤ that is
//! additively homomorphic,
//!
//! ```text
//! Enc(a) · Enc(b) mod n²  decrypts to  a + b mod n
//! Enc(a)^k        mod n²  decrypts to  k · a mod n
//! ```
//!
//! which is what lets CryptDB evaluate `SUM(...)` over encrypted columns.
//! In the paper's Table I, HOM appears as the onion layer the access-area
//! scheme deliberately *avoids* (PROB suffices for aggregate-only
//! attributes) — `dpe-bench`'s S1 experiment quantifies that difference.
//!
//! Key generation uses `p, q` primes of equal bit length with `gcd(pq,
//! (p−1)(q−1)) = 1` and `g = n + 1`. Decryption takes the CRT fast path
//! (two half-width exponentiations mod `p²`/`q²`, Garner recombination);
//! the textbook λ-path `m = L(c^λ mod n²) · μ mod n` with
//! `L(u) = (u − 1)/n` is kept as [`PrivateKey::decrypt_lambda`], the
//! pinned reference and bench baseline. Both validate ciphertext
//! membership in `(ℤ/n²ℤ)*` and all modular exponentiation under a key
//! runs through its cached Montgomery context (see `dpe_bignum`).

#![forbid(unsafe_code)]

pub mod batch;
mod hom;
mod keys;
mod scheme;

pub use batch::{BatchEncryptor, PoolStats, RandomnessPool};
pub use hom::{sum_ciphertexts, weighted_product, EncryptedSum};
pub use keys::{KeyPair, PrivateKey, PublicKey};
pub use scheme::{Ciphertext, PaillierError, DEFAULT_PRIME_BITS, TEST_PRIME_BITS};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_keys() -> KeyPair {
        // One fixed keypair for the whole property suite: keygen is the
        // expensive part and the properties quantify over plaintexts.
        let mut rng = StdRng::seed_from_u64(1234);
        KeyPair::generate(TEST_PRIME_BITS, &mut rng)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn roundtrip(m in 0u64..u64::MAX) {
            let kp = test_keys();
            let mut rng = StdRng::seed_from_u64(m);
            let ct = kp.public().encrypt_u64(m, &mut rng);
            prop_assert_eq!(kp.private().decrypt_u64(&ct).unwrap(), m);
        }

        #[test]
        fn additive_homomorphism(a in 0u64..(1 << 62), b in 0u64..(1 << 62)) {
            let kp = test_keys();
            let mut rng = StdRng::seed_from_u64(a ^ b);
            let ca = kp.public().encrypt_u64(a, &mut rng);
            let cb = kp.public().encrypt_u64(b, &mut rng);
            let sum = kp.public().add(&ca, &cb);
            prop_assert_eq!(kp.private().decrypt_u64(&sum).unwrap(), a + b);
        }

        #[test]
        fn scalar_multiplication(a in 0u64..(1 << 40), k in 0u64..(1 << 20)) {
            let kp = test_keys();
            let mut rng = StdRng::seed_from_u64(a.wrapping_mul(31) ^ k);
            let ca = kp.public().encrypt_u64(a, &mut rng);
            let prod = kp.public().mul_scalar(&ca, k);
            prop_assert_eq!(kp.private().decrypt_u64(&prod).unwrap(), a * k);
        }

        #[test]
        fn batched_encryption_is_bit_identical_to_sequential(
            vals in proptest::collection::vec(0u64..u64::MAX, 0..12),
            seed in 0u64..1000,
            prefill in 0usize..16,
            threads in 1usize..5,
        ) {
            // The tentpole claim of `batch`: no matter how the pool is
            // prefilled or the work is dealt, exact-mode batching replays
            // the randomness stream of one-at-a-time encryption.
            let kp = test_keys();
            let vals: Vec<dpe_bignum::BigUint> =
                vals.into_iter().map(dpe_bignum::BigUint::from).collect();
            let oracle: Vec<Ciphertext> = {
                let mut rng = StdRng::seed_from_u64(seed);
                vals.iter()
                    .map(|m| kp.public().encrypt(m, &mut rng).unwrap())
                    .collect()
            };
            let engine = BatchEncryptor::new(kp.public());
            let mut rng = StdRng::seed_from_u64(seed);
            engine.pool().refill_parallel(prefill, threads, &mut rng);
            prop_assert_eq!(
                engine.encrypt_batch_parallel(&vals, threads, &mut rng).unwrap(),
                oracle
            );
        }

        #[test]
        fn pool_conserves_factors_under_drain(
            refills in proptest::collection::vec(0usize..6, 1..4),
            pops in 0usize..24,
        ) {
            let kp = test_keys();
            let pool = RandomnessPool::new(kp.public());
            let total: usize = refills.iter().sum();
            let popped = std::thread::scope(|scope| {
                let refiller = scope.spawn(|| {
                    let mut rng = StdRng::seed_from_u64(8);
                    for count in &refills {
                        pool.refill(*count, &mut rng);
                    }
                });
                let drainer = scope.spawn(|| {
                    (0..pops).filter(|_| pool.pop().is_some()).count()
                });
                refiller.join().expect("refiller");
                drainer.join().expect("drainer")
            });
            prop_assert_eq!(pool.stats().precomputed, total as u64);
            prop_assert_eq!(popped + pool.len(), total);
        }

        #[test]
        fn crt_decrypt_matches_lambda(m in 0u64..u64::MAX, seed in 0u64..1000) {
            // The CRT fast path is pinned bit-identical to the textbook
            // λ-path on every encryptable plaintext.
            let kp = test_keys();
            let mut rng = StdRng::seed_from_u64(seed);
            let ct = kp.public().encrypt_u64(m, &mut rng);
            let crt = kp.private().decrypt(&ct).unwrap();
            let lambda = kp.private().decrypt_lambda(&ct).unwrap();
            prop_assert_eq!(&crt, &lambda);
            prop_assert_eq!(crt.to_u64(), Some(m));
        }

        #[test]
        fn decrypt_paths_agree_on_arbitrary_values(
            limbs in proptest::collection::vec(any::<u64>(), 0..9),
        ) {
            // Adversarial ciphertexts (not produced by encrypt): both
            // paths must agree on validity, and on the recovered residue
            // when the value is a genuine group element.
            let kp = test_keys();
            let c = &dpe_bignum::BigUint::from_limbs(limbs) % kp.public().n_squared();
            let ct = Ciphertext::new(c);
            match (kp.private().decrypt(&ct), kp.private().decrypt_lambda(&ct)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(PaillierError::InvalidCiphertext), Err(PaillierError::InvalidCiphertext)) => {}
                (crt, lambda) => prop_assert!(
                    false,
                    "paths disagree: crt={crt:?} lambda={lambda:?}"
                ),
            }
        }

        #[test]
        fn probabilistic_encryption(m in 0u64..1000) {
            // Two encryptions of the same value are distinct ciphertexts
            // (HOM ⊂ PROB in Fig. 1).
            let kp = test_keys();
            let mut rng = StdRng::seed_from_u64(999);
            let c1 = kp.public().encrypt_u64(m, &mut rng);
            let c2 = kp.public().encrypt_u64(m, &mut rng);
            prop_assert_ne!(c1.value(), c2.value());
        }
    }
}
