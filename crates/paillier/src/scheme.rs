//! Ciphertext type, error type, and key-size presets.

use dpe_bignum::BigUint;
use std::fmt;

/// Prime size (bits) for realistic keys: 1024-bit primes → 2048-bit `n`.
pub const DEFAULT_PRIME_BITS: usize = 1024;

/// Prime size (bits) for fast test keys: 128-bit primes → 256-bit `n`.
/// Still comfortably holds `u64` sums.
pub const TEST_PRIME_BITS: usize = 128;

/// A Paillier ciphertext: an element of ℤ/n²ℤ.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ciphertext(BigUint);

impl Ciphertext {
    /// Wraps a raw group element.
    pub fn new(value: BigUint) -> Self {
        Ciphertext(value)
    }

    /// The raw group element.
    pub fn value(&self) -> &BigUint {
        &self.0
    }
}

impl fmt::Debug for Ciphertext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Ciphertexts are huge; show a truncated fingerprint.
        let hex = self.0.to_hex();
        let head = &hex[..hex.len().min(16)];
        write!(f, "PaillierCiphertext({head}…, {} bits)", self.0.bit_len())
    }
}

/// Errors from Paillier operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaillierError {
    /// Plaintext ≥ n.
    PlaintextTooLarge {
        /// Bit length of the offending plaintext.
        bits: usize,
        /// Bit length of the modulus.
        modulus_bits: usize,
    },
    /// Ciphertext is zero or ≥ n².
    InvalidCiphertext,
    /// Decrypted plaintext does not fit the requested integer width.
    PlaintextOverflow,
}

impl fmt::Display for PaillierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PaillierError::PlaintextTooLarge { bits, modulus_bits } => {
                write!(
                    f,
                    "plaintext of {bits} bits exceeds modulus of {modulus_bits} bits"
                )
            }
            PaillierError::InvalidCiphertext => write!(f, "ciphertext outside (0, n²)"),
            PaillierError::PlaintextOverflow => write!(f, "plaintext overflows requested width"),
        }
    }
}

impl std::error::Error for PaillierError {}
