//! Paillier key generation and the public/private key types.

use crate::scheme::{Ciphertext as PaillierCiphertext, PaillierError};
use dpe_bignum::prime::gen_prime;
use dpe_bignum::random::uniform_coprime;
use dpe_bignum::{BigUint, MontgomeryCtx};
use rand::RngCore;

/// Paillier public key: the modulus `n` (with cached `n²` and its
/// Montgomery context).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicKey {
    n: BigUint,
    n_squared: BigUint,
    /// REDC context for `n²` — `n` is a product of odd primes, so `n²` is
    /// always odd. Built once at keygen; every `r^n` and `c^k`
    /// exponentiation under this key reuses it instead of paying the
    /// context-setup divisions per call.
    mont: MontgomeryCtx,
}

/// Paillier private key: `λ = lcm(p−1, q−1)` and `μ = L(g^λ mod n²)^−1 mod n`,
/// plus the prime factorization for CRT decryption.
#[derive(Clone)]
pub struct PrivateKey {
    lambda: BigUint,
    mu: BigUint,
    crt: CrtContext,
    public: PublicKey,
}

/// Precomputed CRT decryption state: the classic ~4× Paillier speedup.
///
/// Instead of one `λ`-bit exponentiation mod `n²`, decryption runs two
/// half-width exponentiations mod `p²` and `q²` (each on quarter-size
/// limb counts) and recombines with Garner's formula:
/// `m = m_p + p · ((m_q − m_p) · p⁻¹ mod q)`. Per prime,
/// `m_p = L_p(c^(p−1) mod p²) · h_p mod p` with `L_p(u) = (u−1)/p` and
/// `h_p = L_p(g^(p−1) mod p²)⁻¹ mod p = ((p−1)·q)⁻¹ mod p` for `g = n+1`.
/// Valid for every `c ∈ (ℤ/n²ℤ)*`, so the result is bit-identical to the
/// λ-path ([`PrivateKey::decrypt_lambda`]).
#[derive(Clone)]
struct CrtContext {
    p: BigUint,
    q: BigUint,
    p_squared: BigUint,
    q_squared: BigUint,
    p_minus_1: BigUint,
    q_minus_1: BigUint,
    /// `((p−1)·q)⁻¹ mod p`.
    hp: BigUint,
    /// `((q−1)·p)⁻¹ mod q`.
    hq: BigUint,
    /// `p⁻¹ mod q`, Garner's recombination coefficient.
    p_inv_q: BigUint,
    /// REDC contexts for the two half-size exponentiations.
    mont_p2: MontgomeryCtx,
    mont_q2: MontgomeryCtx,
}

impl CrtContext {
    /// Builds the CRT state from the two key primes (`p ≠ q`, both odd).
    fn new(p: &BigUint, q: &BigUint) -> CrtContext {
        let p_squared = p * p;
        let q_squared = q * q;
        let p_minus_1 = p - &BigUint::one();
        let q_minus_1 = q - &BigUint::one();
        let hp = (&p_minus_1 * q % p)
            .modinv(p)
            .expect("(p−1)·q is coprime to the prime p");
        let hq = (&q_minus_1 * p % q)
            .modinv(q)
            .expect("(q−1)·p is coprime to the prime q");
        let p_inv_q = p.modinv(q).expect("distinct primes are coprime");
        let mont_p2 = MontgomeryCtx::new(&p_squared).expect("p² is odd");
        let mont_q2 = MontgomeryCtx::new(&q_squared).expect("q² is odd");
        CrtContext {
            p: p.clone(),
            q: q.clone(),
            p_squared,
            q_squared,
            p_minus_1,
            q_minus_1,
            hp,
            hq,
            p_inv_q,
            mont_p2,
            mont_q2,
        }
    }

    /// `m mod p` from `c`: `L_p(c^(p−1) mod p²) · h_p mod p`.
    fn half_decrypt(
        c: &BigUint,
        p: &BigUint,
        p_squared: &BigUint,
        p_minus_1: &BigUint,
        hp: &BigUint,
        mont: &MontgomeryCtx,
    ) -> BigUint {
        let u = mont.pow(&(c % p_squared), p_minus_1);
        let l = &(&u - &BigUint::one()) / p;
        l.modmul(hp, p)
    }

    /// Full CRT decryption of a validated ciphertext.
    fn decrypt(&self, c: &BigUint) -> BigUint {
        let mp = CrtContext::half_decrypt(
            c,
            &self.p,
            &self.p_squared,
            &self.p_minus_1,
            &self.hp,
            &self.mont_p2,
        );
        let mq = CrtContext::half_decrypt(
            c,
            &self.q,
            &self.q_squared,
            &self.q_minus_1,
            &self.hq,
            &self.mont_q2,
        );
        // Garner: m = m_p + p·((m_q − m_p)·p⁻¹ mod q) < p·q = n.
        let t = mq.modsub(&mp, &self.q).modmul(&self.p_inv_q, &self.q);
        &mp + &(&self.p * &t)
    }
}

/// A matched public/private key pair.
#[derive(Clone)]
pub struct KeyPair {
    public: PublicKey,
    private: PrivateKey,
}

impl PublicKey {
    /// The modulus `n`; plaintexts live in `[0, n)`.
    pub fn n(&self) -> &BigUint {
        &self.n
    }

    /// Cached `n²`; ciphertexts live in `[0, n²)`.
    pub fn n_squared(&self) -> &BigUint {
        &self.n_squared
    }

    /// Encrypts `m ∈ [0, n)`: `c = (n+1)^m · r^n mod n²` with uniform
    /// `r ∈ (ℤ/nℤ)*`. Uses the `(n+1)^m = 1 + m·n (mod n²)` shortcut.
    pub fn encrypt<R: RngCore>(
        &self,
        m: &BigUint,
        rng: &mut R,
    ) -> Result<PaillierCiphertext, PaillierError> {
        // Range-check before drawing: a rejected plaintext must not
        // consume RNG state (callers replaying seeded streams rely on it).
        self.check_plaintext(m)?;
        let r = uniform_coprime(&self.n, rng);
        self.encrypt_with_randomness(m, &r)
    }

    /// Encrypts `m` under caller-supplied randomness `r ∈ (ℤ/nℤ)*` — the
    /// deterministic core of [`PublicKey::encrypt`], exposed so batched
    /// paths (and equivalence tests) can separate drawing randomness from
    /// the modular arithmetic it feeds.
    pub fn encrypt_with_randomness(
        &self,
        m: &BigUint,
        r: &BigUint,
    ) -> Result<PaillierCiphertext, PaillierError> {
        // Reject before the expensive r^n exponentiation.
        self.check_plaintext(m)?;
        let r_n = self.precompute_randomness(r);
        self.encrypt_with_precomputed(m, &r_n)
    }

    /// The shared plaintext range check: `m` must lie in `[0, n)`.
    fn check_plaintext(&self, m: &BigUint) -> Result<(), PaillierError> {
        if m >= &self.n {
            return Err(PaillierError::PlaintextTooLarge {
                bits: m.bit_len(),
                modulus_bits: self.n.bit_len(),
            });
        }
        Ok(())
    }

    /// The expensive half of an encryption: `r^n mod n²`, independent of
    /// the plaintext. [`crate::batch::RandomnessPool`] computes these off
    /// the hot path; [`PublicKey::encrypt_with_precomputed`] then finishes
    /// an encryption with a single modular multiplication.
    pub fn precompute_randomness(&self, r: &BigUint) -> BigUint {
        // The key's cached REDC context skips the per-call Montgomery
        // setup `BigUint::modpow` would pay; results are bit-identical.
        self.mont.pow(r, &self.n)
    }

    /// Finishes an encryption from a precomputed randomness factor
    /// `r_n = r^n mod n²`: `c = (1 + m·n) · r_n mod n²` — one modular
    /// multiplication, the batched engine's hot path.
    pub fn encrypt_with_precomputed(
        &self,
        m: &BigUint,
        r_n: &BigUint,
    ) -> Result<PaillierCiphertext, PaillierError> {
        self.check_plaintext(m)?;
        // m < n (checked above) ⇒ 1 + m·n ≤ 1 + (n−1)·n < n², so the
        // value is already reduced — no division needed on the hot path.
        let g_m = &BigUint::one() + &(m * &self.n);
        debug_assert!(g_m < self.n_squared);
        Ok(PaillierCiphertext::new(g_m.modmul(r_n, &self.n_squared)))
    }

    /// Convenience: encrypts a `u64`.
    pub fn encrypt_u64<R: RngCore>(&self, m: u64, rng: &mut R) -> PaillierCiphertext {
        self.encrypt(&BigUint::from(m), rng)
            .expect("u64 plaintext always fits a ≥128-bit modulus")
    }

    /// Homomorphic addition: `Dec(add(a, b)) = Dec(a) + Dec(b) mod n`.
    pub fn add(&self, a: &PaillierCiphertext, b: &PaillierCiphertext) -> PaillierCiphertext {
        PaillierCiphertext::new(a.value().modmul(b.value(), &self.n_squared))
    }

    /// Homomorphic scalar multiplication: `Dec(mul_scalar(a, k)) = k·Dec(a) mod n`.
    pub fn mul_scalar(&self, a: &PaillierCiphertext, k: u64) -> PaillierCiphertext {
        PaillierCiphertext::new(self.mont.pow(a.value(), &BigUint::from(k)))
    }

    /// The key's cached Montgomery context for `n²`, shared with the
    /// batched multi-exponentiation paths in [`crate::hom`].
    pub(crate) fn mont(&self) -> &MontgomeryCtx {
        &self.mont
    }

    /// Re-randomizes a ciphertext without changing its plaintext
    /// (multiplies by a fresh encryption of zero).
    pub fn rerandomize<R: RngCore>(
        &self,
        a: &PaillierCiphertext,
        rng: &mut R,
    ) -> PaillierCiphertext {
        let zero = self
            .encrypt(&BigUint::zero(), rng)
            .expect("zero is always a valid plaintext");
        self.add(a, &zero)
    }
}

impl PrivateKey {
    /// Decrypts via the CRT fast path (see `CrtContext`): two half-width
    /// exponentiations mod `p²`/`q²` plus Garner recombination,
    /// bit-identical to [`PrivateKey::decrypt_lambda`] and ~4× faster.
    ///
    /// Returns [`PaillierError::InvalidCiphertext`] unless
    /// `c ∈ (ℤ/n²ℤ)*` — i.e. `c < n²` and `gcd(c, n) = 1`. Values outside
    /// the group (notably multiples of `p` or `q`) are not encryptions of
    /// anything; both decryption formulas would silently produce garbage
    /// for them.
    pub fn decrypt(&self, c: &PaillierCiphertext) -> Result<BigUint, PaillierError> {
        self.validate(c)?;
        Ok(self.crt.decrypt(c.value()))
    }

    /// Decrypts via the textbook λ-path: `m = L(c^λ mod n²) · μ mod n`
    /// with `L(u) = (u−1)/n`. Kept as the pinned reference (and bench
    /// baseline) for the CRT fast path; same validation, same result.
    pub fn decrypt_lambda(&self, c: &PaillierCiphertext) -> Result<BigUint, PaillierError> {
        self.validate(c)?;
        let n2 = &self.public.n_squared;
        let u = self.public.mont.pow(c.value(), &self.lambda);
        debug_assert!(&u < n2);
        let l = &(&u - &BigUint::one()) / &self.public.n;
        Ok(l.modmul(&self.mu, &self.public.n))
    }

    /// Membership check for `(ℤ/n²ℤ)*`: rejects out-of-range ciphertexts
    /// and those sharing a factor with `n` (zero included — it is
    /// divisible by both primes). The key holder knows the factorization,
    /// so `gcd(c, n) = 1` reduces to `p ∤ c ∧ q ∤ c` — two short
    /// divisions instead of a full Euclid loop, keeping validation
    /// negligible next to the decryption exponentiations.
    fn validate(&self, c: &PaillierCiphertext) -> Result<(), PaillierError> {
        // Non-short-circuit `|`: both residues are always computed, so the
        // rejection's timing does not reveal *which* prime divides an
        // attacker-chosen ciphertext (gcd(c, n) would hand them a factor;
        // short-circuit timing would narrow the search).
        let out_of_range = c.value() >= &self.public.n_squared;
        let shares_factor =
            // dpe-analyze: allow(secret-division, reason = "validation must reduce c mod p and mod q to reject non-units; both residues are computed unconditionally, see comment above")
            (c.value() % &self.crt.p).is_zero() | (c.value() % &self.crt.q).is_zero();
        // dpe-analyze: allow(secret-branch, reason = "the accept/reject outcome itself is the caller-visible result, not a hidden timing channel")
        if out_of_range | shares_factor {
            // dpe-analyze: allow(secret-early-return, reason = "rejection is the observable API outcome; the branch guard above is already flat")
            return Err(PaillierError::InvalidCiphertext);
        }
        Ok(())
    }

    /// Decrypts into a `u64` (errors if the plaintext overflows).
    pub fn decrypt_u64(&self, c: &PaillierCiphertext) -> Result<u64, PaillierError> {
        self.decrypt(c)?
            .to_u64()
            .ok_or(PaillierError::PlaintextOverflow)
    }

    /// The matching public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }
}

impl KeyPair {
    /// Generates a key pair from two fresh `prime_bits`-bit primes.
    ///
    /// `prime_bits` must be ≥ 64 so every `u64` plaintext fits `n`.
    /// [`crate::TEST_PRIME_BITS`] (fast) and [`crate::DEFAULT_PRIME_BITS`]
    /// (realistic) are provided.
    pub fn generate<R: RngCore>(prime_bits: usize, rng: &mut R) -> Self {
        assert!(
            prime_bits >= 64,
            "primes below 64 bits cannot hold u64 plaintexts"
        );
        loop {
            let p = gen_prime(prime_bits, rng);
            let q = gen_prime(prime_bits, rng);
            if p == q {
                continue;
            }
            let n = &p * &q;
            let p1 = &p - &BigUint::one();
            let q1 = &q - &BigUint::one();
            // gcd(n, (p−1)(q−1)) must be 1 for λ/μ to exist; retry otherwise.
            if !n.gcd(&(&p1 * &q1)).is_one() {
                continue;
            }
            let lambda = p1.lcm(&q1);
            let n_squared = &n * &n;
            // μ = L(g^λ mod n²)^−1 with g = n+1: g^λ = 1 + λ·n (mod n²).
            let g_lambda = (&BigUint::one() + &(&lambda * &n)) % &n_squared;
            let l = &(&g_lambda - &BigUint::one()) / &n;
            let Some(mu) = l.modinv(&n) else { continue };
            let mont =
                MontgomeryCtx::new(&n_squared).expect("n² is odd: n is a product of odd primes");
            let crt = CrtContext::new(&p, &q);
            let public = PublicKey { n, n_squared, mont };
            let private = PrivateKey {
                lambda,
                mu,
                crt,
                public: public.clone(),
            };
            return KeyPair { public, private };
        }
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// The private half.
    pub fn private(&self) -> &PrivateKey {
        &self.private
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::TEST_PRIME_BITS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> KeyPair {
        let mut rng = StdRng::seed_from_u64(42);
        KeyPair::generate(TEST_PRIME_BITS, &mut rng)
    }

    #[test]
    fn keygen_modulus_size() {
        let kp = keypair();
        assert_eq!(kp.public().n().bit_len(), TEST_PRIME_BITS * 2);
    }

    #[test]
    fn encrypt_decrypt_small_values() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(7);
        for m in [0u64, 1, 2, 255, 10_000, u64::MAX] {
            let ct = kp.public().encrypt_u64(m, &mut rng);
            assert_eq!(kp.private().decrypt_u64(&ct).unwrap(), m);
        }
    }

    #[test]
    fn plaintext_must_be_below_n() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(7);
        let too_big = kp.public().n().clone();
        assert!(matches!(
            kp.public().encrypt(&too_big, &mut rng),
            Err(PaillierError::PlaintextTooLarge { .. })
        ));
    }

    #[test]
    fn invalid_ciphertext_rejected() {
        let kp = keypair();
        let zero = PaillierCiphertext::new(BigUint::zero());
        assert!(matches!(
            kp.private().decrypt(&zero),
            Err(PaillierError::InvalidCiphertext)
        ));
        let huge = PaillierCiphertext::new(kp.public().n_squared().clone());
        assert!(matches!(
            kp.private().decrypt(&huge),
            Err(PaillierError::InvalidCiphertext)
        ));
    }

    #[test]
    fn ciphertext_sharing_factor_with_n_rejected() {
        // Regression: values with gcd(c, n) ≠ 1 are not in (ℤ/n²ℤ)* and
        // used to decrypt silently to garbage. Multiples of p, of q, and
        // of n itself must all be rejected — by both decryption paths.
        let kp = keypair();
        let p = kp.private().crt.p.clone();
        let q = kp.private().crt.q.clone();
        let n = kp.public().n().clone();
        for c in [
            &p * &BigUint::from(12_345u64), // ≡ 0 mod p only
            &q * &BigUint::from(67_890u64), // ≡ 0 mod q only
            n.clone(),                      // ≡ 0 mod both
            &n * &BigUint::two(),
        ] {
            let ct = PaillierCiphertext::new(c.clone());
            assert!(
                matches!(
                    kp.private().decrypt(&ct),
                    Err(PaillierError::InvalidCiphertext)
                ),
                "CRT path accepted gcd-sharing c"
            );
            assert!(
                matches!(
                    kp.private().decrypt_lambda(&ct),
                    Err(PaillierError::InvalidCiphertext)
                ),
                "λ path accepted gcd-sharing c"
            );
        }
    }

    #[test]
    fn crt_and_lambda_paths_agree() {
        // The CRT fast path must be bit-identical to the λ reference on
        // every valid ciphertext — including plaintexts at the domain
        // edges and rerandomized group elements.
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(21);
        let n_minus_1 = kp.public().n() - &BigUint::one();
        for m in [
            BigUint::zero(),
            BigUint::one(),
            BigUint::from(u64::MAX),
            n_minus_1,
        ] {
            let ct = kp.public().encrypt(&m, &mut rng).unwrap();
            let crt = kp.private().decrypt(&ct).unwrap();
            let lambda = kp.private().decrypt_lambda(&ct).unwrap();
            assert_eq!(crt, lambda);
            assert_eq!(crt, m);
            let ct2 = kp.public().rerandomize(&ct, &mut rng);
            assert_eq!(
                kp.private().decrypt(&ct2).unwrap(),
                kp.private().decrypt_lambda(&ct2).unwrap()
            );
        }
    }

    #[test]
    fn rerandomize_preserves_plaintext_changes_bytes() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(7);
        let ct = kp.public().encrypt_u64(123, &mut rng);
        let ct2 = kp.public().rerandomize(&ct, &mut rng);
        assert_ne!(ct.value(), ct2.value());
        assert_eq!(kp.private().decrypt_u64(&ct2).unwrap(), 123);
    }

    #[test]
    fn split_encryption_path_matches_encrypt() {
        // encrypt ≡ draw r, precompute r^n, finish with one modmul: the
        // three-step split the batch engine uses must be bit-identical.
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(99);
        let r = dpe_bignum::random::uniform_coprime(kp.public().n(), &mut rng);
        let m = BigUint::from(987_654_321u64);
        let direct = {
            let mut rng = StdRng::seed_from_u64(99);
            kp.public().encrypt(&m, &mut rng).unwrap()
        };
        let split = kp.public().encrypt_with_randomness(&m, &r).unwrap();
        let precomputed = kp.public().precompute_randomness(&r);
        let finished = kp
            .public()
            .encrypt_with_precomputed(&m, &precomputed)
            .unwrap();
        assert_eq!(direct, split);
        assert_eq!(direct, finished);
        assert_eq!(kp.private().decrypt(&finished).unwrap(), m);
    }

    #[test]
    fn precomputed_path_rejects_large_plaintexts() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(3);
        let r = dpe_bignum::random::uniform_coprime(kp.public().n(), &mut rng);
        let r_n = kp.public().precompute_randomness(&r);
        let too_big = kp.public().n().clone();
        assert!(matches!(
            kp.public().encrypt_with_precomputed(&too_big, &r_n),
            Err(PaillierError::PlaintextTooLarge { .. })
        ));
    }

    #[test]
    fn sum_wraps_modulo_n() {
        // (n − 1) + 2 ≡ 1 (mod n): the homomorphism is modular.
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(7);
        let n_minus_1 = kp.public().n() - &BigUint::one();
        let a = kp.public().encrypt(&n_minus_1, &mut rng).unwrap();
        let b = kp.public().encrypt(&BigUint::two(), &mut rng).unwrap();
        let sum = kp.public().add(&a, &b);
        assert_eq!(kp.private().decrypt(&sum).unwrap(), BigUint::one());
    }
}
