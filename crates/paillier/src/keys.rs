//! Paillier key generation and the public/private key types.

use crate::scheme::{Ciphertext as PaillierCiphertext, PaillierError};
use dpe_bignum::prime::gen_prime;
use dpe_bignum::random::uniform_coprime;
use dpe_bignum::BigUint;
use rand::RngCore;

/// Paillier public key: the modulus `n` (with cached `n²`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicKey {
    n: BigUint,
    n_squared: BigUint,
}

/// Paillier private key: `λ = lcm(p−1, q−1)` and `μ = L(g^λ mod n²)^−1 mod n`.
#[derive(Clone)]
pub struct PrivateKey {
    lambda: BigUint,
    mu: BigUint,
    public: PublicKey,
}

/// A matched public/private key pair.
#[derive(Clone)]
pub struct KeyPair {
    public: PublicKey,
    private: PrivateKey,
}

impl PublicKey {
    /// The modulus `n`; plaintexts live in `[0, n)`.
    pub fn n(&self) -> &BigUint {
        &self.n
    }

    /// Cached `n²`; ciphertexts live in `[0, n²)`.
    pub fn n_squared(&self) -> &BigUint {
        &self.n_squared
    }

    /// Encrypts `m ∈ [0, n)`: `c = (n+1)^m · r^n mod n²` with uniform
    /// `r ∈ (ℤ/nℤ)*`. Uses the `(n+1)^m = 1 + m·n (mod n²)` shortcut.
    pub fn encrypt<R: RngCore>(
        &self,
        m: &BigUint,
        rng: &mut R,
    ) -> Result<PaillierCiphertext, PaillierError> {
        // Range-check before drawing: a rejected plaintext must not
        // consume RNG state (callers replaying seeded streams rely on it).
        self.check_plaintext(m)?;
        let r = uniform_coprime(&self.n, rng);
        self.encrypt_with_randomness(m, &r)
    }

    /// Encrypts `m` under caller-supplied randomness `r ∈ (ℤ/nℤ)*` — the
    /// deterministic core of [`PublicKey::encrypt`], exposed so batched
    /// paths (and equivalence tests) can separate drawing randomness from
    /// the modular arithmetic it feeds.
    pub fn encrypt_with_randomness(
        &self,
        m: &BigUint,
        r: &BigUint,
    ) -> Result<PaillierCiphertext, PaillierError> {
        // Reject before the expensive r^n exponentiation.
        self.check_plaintext(m)?;
        let r_n = self.precompute_randomness(r);
        self.encrypt_with_precomputed(m, &r_n)
    }

    /// The shared plaintext range check: `m` must lie in `[0, n)`.
    fn check_plaintext(&self, m: &BigUint) -> Result<(), PaillierError> {
        if m >= &self.n {
            return Err(PaillierError::PlaintextTooLarge {
                bits: m.bit_len(),
                modulus_bits: self.n.bit_len(),
            });
        }
        Ok(())
    }

    /// The expensive half of an encryption: `r^n mod n²`, independent of
    /// the plaintext. [`crate::batch::RandomnessPool`] computes these off
    /// the hot path; [`PublicKey::encrypt_with_precomputed`] then finishes
    /// an encryption with a single modular multiplication.
    pub fn precompute_randomness(&self, r: &BigUint) -> BigUint {
        r.modpow(&self.n, &self.n_squared)
    }

    /// Finishes an encryption from a precomputed randomness factor
    /// `r_n = r^n mod n²`: `c = (1 + m·n) · r_n mod n²` — one modular
    /// multiplication, the batched engine's hot path.
    pub fn encrypt_with_precomputed(
        &self,
        m: &BigUint,
        r_n: &BigUint,
    ) -> Result<PaillierCiphertext, PaillierError> {
        self.check_plaintext(m)?;
        let g_m = (&BigUint::one() + &(m * &self.n)) % &self.n_squared;
        Ok(PaillierCiphertext::new(g_m.modmul(r_n, &self.n_squared)))
    }

    /// Convenience: encrypts a `u64`.
    pub fn encrypt_u64<R: RngCore>(&self, m: u64, rng: &mut R) -> PaillierCiphertext {
        self.encrypt(&BigUint::from(m), rng)
            .expect("u64 plaintext always fits a ≥128-bit modulus")
    }

    /// Homomorphic addition: `Dec(add(a, b)) = Dec(a) + Dec(b) mod n`.
    pub fn add(&self, a: &PaillierCiphertext, b: &PaillierCiphertext) -> PaillierCiphertext {
        PaillierCiphertext::new(a.value().modmul(b.value(), &self.n_squared))
    }

    /// Homomorphic scalar multiplication: `Dec(mul_scalar(a, k)) = k·Dec(a) mod n`.
    pub fn mul_scalar(&self, a: &PaillierCiphertext, k: u64) -> PaillierCiphertext {
        PaillierCiphertext::new(a.value().modpow(&BigUint::from(k), &self.n_squared))
    }

    /// Re-randomizes a ciphertext without changing its plaintext
    /// (multiplies by a fresh encryption of zero).
    pub fn rerandomize<R: RngCore>(
        &self,
        a: &PaillierCiphertext,
        rng: &mut R,
    ) -> PaillierCiphertext {
        let zero = self
            .encrypt(&BigUint::zero(), rng)
            .expect("zero is always a valid plaintext");
        self.add(a, &zero)
    }
}

impl PrivateKey {
    /// Decrypts: `m = L(c^λ mod n²) · μ mod n` with `L(u) = (u−1)/n`.
    pub fn decrypt(&self, c: &PaillierCiphertext) -> Result<BigUint, PaillierError> {
        let n2 = &self.public.n_squared;
        if c.value() >= n2 || c.value().is_zero() {
            return Err(PaillierError::InvalidCiphertext);
        }
        let u = c.value().modpow(&self.lambda, n2);
        let l = &(&u - &BigUint::one()) / &self.public.n;
        Ok(l.modmul(&self.mu, &self.public.n))
    }

    /// Decrypts into a `u64` (errors if the plaintext overflows).
    pub fn decrypt_u64(&self, c: &PaillierCiphertext) -> Result<u64, PaillierError> {
        self.decrypt(c)?
            .to_u64()
            .ok_or(PaillierError::PlaintextOverflow)
    }

    /// The matching public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }
}

impl KeyPair {
    /// Generates a key pair from two fresh `prime_bits`-bit primes.
    ///
    /// `prime_bits` must be ≥ 64 so every `u64` plaintext fits `n`.
    /// [`crate::TEST_PRIME_BITS`] (fast) and [`crate::DEFAULT_PRIME_BITS`]
    /// (realistic) are provided.
    pub fn generate<R: RngCore>(prime_bits: usize, rng: &mut R) -> Self {
        assert!(
            prime_bits >= 64,
            "primes below 64 bits cannot hold u64 plaintexts"
        );
        loop {
            let p = gen_prime(prime_bits, rng);
            let q = gen_prime(prime_bits, rng);
            if p == q {
                continue;
            }
            let n = &p * &q;
            let p1 = &p - &BigUint::one();
            let q1 = &q - &BigUint::one();
            // gcd(n, (p−1)(q−1)) must be 1 for λ/μ to exist; retry otherwise.
            if !n.gcd(&(&p1 * &q1)).is_one() {
                continue;
            }
            let lambda = p1.lcm(&q1);
            let n_squared = &n * &n;
            // μ = L(g^λ mod n²)^−1 with g = n+1: g^λ = 1 + λ·n (mod n²).
            let g_lambda = (&BigUint::one() + &(&lambda * &n)) % &n_squared;
            let l = &(&g_lambda - &BigUint::one()) / &n;
            let Some(mu) = l.modinv(&n) else { continue };
            let public = PublicKey { n, n_squared };
            let private = PrivateKey {
                lambda,
                mu,
                public: public.clone(),
            };
            return KeyPair { public, private };
        }
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// The private half.
    pub fn private(&self) -> &PrivateKey {
        &self.private
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::TEST_PRIME_BITS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> KeyPair {
        let mut rng = StdRng::seed_from_u64(42);
        KeyPair::generate(TEST_PRIME_BITS, &mut rng)
    }

    #[test]
    fn keygen_modulus_size() {
        let kp = keypair();
        assert_eq!(kp.public().n().bit_len(), TEST_PRIME_BITS * 2);
    }

    #[test]
    fn encrypt_decrypt_small_values() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(7);
        for m in [0u64, 1, 2, 255, 10_000, u64::MAX] {
            let ct = kp.public().encrypt_u64(m, &mut rng);
            assert_eq!(kp.private().decrypt_u64(&ct).unwrap(), m);
        }
    }

    #[test]
    fn plaintext_must_be_below_n() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(7);
        let too_big = kp.public().n().clone();
        assert!(matches!(
            kp.public().encrypt(&too_big, &mut rng),
            Err(PaillierError::PlaintextTooLarge { .. })
        ));
    }

    #[test]
    fn invalid_ciphertext_rejected() {
        let kp = keypair();
        let zero = PaillierCiphertext::new(BigUint::zero());
        assert!(matches!(
            kp.private().decrypt(&zero),
            Err(PaillierError::InvalidCiphertext)
        ));
        let huge = PaillierCiphertext::new(kp.public().n_squared().clone());
        assert!(matches!(
            kp.private().decrypt(&huge),
            Err(PaillierError::InvalidCiphertext)
        ));
    }

    #[test]
    fn rerandomize_preserves_plaintext_changes_bytes() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(7);
        let ct = kp.public().encrypt_u64(123, &mut rng);
        let ct2 = kp.public().rerandomize(&ct, &mut rng);
        assert_ne!(ct.value(), ct2.value());
        assert_eq!(kp.private().decrypt_u64(&ct2).unwrap(), 123);
    }

    #[test]
    fn split_encryption_path_matches_encrypt() {
        // encrypt ≡ draw r, precompute r^n, finish with one modmul: the
        // three-step split the batch engine uses must be bit-identical.
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(99);
        let r = dpe_bignum::random::uniform_coprime(kp.public().n(), &mut rng);
        let m = BigUint::from(987_654_321u64);
        let direct = {
            let mut rng = StdRng::seed_from_u64(99);
            kp.public().encrypt(&m, &mut rng).unwrap()
        };
        let split = kp.public().encrypt_with_randomness(&m, &r).unwrap();
        let precomputed = kp.public().precompute_randomness(&r);
        let finished = kp
            .public()
            .encrypt_with_precomputed(&m, &precomputed)
            .unwrap();
        assert_eq!(direct, split);
        assert_eq!(direct, finished);
        assert_eq!(kp.private().decrypt(&finished).unwrap(), m);
    }

    #[test]
    fn precomputed_path_rejects_large_plaintexts() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(3);
        let r = dpe_bignum::random::uniform_coprime(kp.public().n(), &mut rng);
        let r_n = kp.public().precompute_randomness(&r);
        let too_big = kp.public().n().clone();
        assert!(matches!(
            kp.public().encrypt_with_precomputed(&too_big, &r_n),
            Err(PaillierError::PlaintextTooLarge { .. })
        ));
    }

    #[test]
    fn sum_wraps_modulo_n() {
        // (n − 1) + 2 ≡ 1 (mod n): the homomorphism is modular.
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(7);
        let n_minus_1 = kp.public().n() - &BigUint::one();
        let a = kp.public().encrypt(&n_minus_1, &mut rng).unwrap();
        let b = kp.public().encrypt(&BigUint::two(), &mut rng).unwrap();
        let sum = kp.public().add(&a, &b);
        assert_eq!(kp.private().decrypt(&sum).unwrap(), BigUint::one());
    }
}
