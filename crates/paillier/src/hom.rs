//! Aggregate helper: an encrypted running sum, the HOM capability CryptDB's
//! HOM onion exposes for `SUM(...)`/`AVG(...)` rewriting.

use crate::keys::PublicKey;
use crate::scheme::{Ciphertext, PaillierError};
use dpe_bignum::{multi_modpow_ctx, BigUint};
use rand::RngCore;

/// `∏ cᵢ^{kᵢ} mod n²` — the ciphertext encrypting `Σ kᵢ·mᵢ mod n` — in one
/// Straus multi-exponentiation pass over the key's cached Montgomery
/// context, instead of one full `modpow` per term.
///
/// Bit-identical to folding [`PublicKey::mul_scalar`] products together
/// with [`PublicKey::add`]; an empty `terms` slice yields the trivial
/// encryption of zero (ciphertext value `1`).
pub fn weighted_product(public: &PublicKey, terms: &[(Ciphertext, u64)]) -> Ciphertext {
    let pairs: Vec<(BigUint, BigUint)> = terms
        .iter()
        .map(|(ct, k)| (ct.value().clone(), BigUint::from(*k)))
        .collect();
    Ciphertext::new(multi_modpow_ctx(&pairs, public.mont()))
}

/// A running homomorphic sum over ciphertexts.
///
/// Starts at an encryption of zero and folds ciphertexts in with the group
/// operation; the service provider can aggregate without ever decrypting.
pub struct EncryptedSum {
    public: PublicKey,
    acc: Ciphertext,
    count: usize,
}

impl EncryptedSum {
    /// Starts an empty sum (`Enc(0)`).
    pub fn new<R: RngCore>(public: &PublicKey, rng: &mut R) -> Self {
        let zero = public
            .encrypt(&BigUint::zero(), rng)
            .expect("zero always encrypts");
        EncryptedSum {
            public: public.clone(),
            acc: zero,
            count: 0,
        }
    }

    /// Folds one ciphertext into the sum.
    pub fn add(&mut self, ct: &Ciphertext) {
        self.acc = self.public.add(&self.acc, ct);
        self.count += 1;
    }

    /// Folds a plaintext-weighted ciphertext: `acc += k · Dec(ct)`.
    pub fn add_weighted(&mut self, ct: &Ciphertext, k: u64) {
        let scaled = self.public.mul_scalar(ct, k);
        self.acc = self.public.add(&self.acc, &scaled);
        self.count += 1;
    }

    /// Folds a batch of plaintext-weighted ciphertexts in one Straus
    /// multi-exponentiation pass: `acc += Σ kᵢ · Dec(ctᵢ)`. Result is
    /// identical to calling [`EncryptedSum::add_weighted`] per term, at a
    /// fraction of the squaring work (one shared chain instead of one per
    /// term).
    pub fn add_weighted_batch(&mut self, terms: &[(Ciphertext, u64)]) {
        let product = weighted_product(&self.public, terms);
        self.acc = self.public.add(&self.acc, &product);
        self.count += terms.len();
    }

    /// Number of folded terms (needed by the client to turn SUM into AVG).
    pub fn count(&self) -> usize {
        self.count
    }

    /// The encrypted total.
    pub fn ciphertext(&self) -> &Ciphertext {
        &self.acc
    }

    /// Consumes the sum, returning the encrypted total.
    pub fn into_ciphertext(self) -> Ciphertext {
        self.acc
    }
}

/// Homomorphically sums a slice of ciphertexts.
pub fn sum_ciphertexts<R: RngCore>(
    public: &PublicKey,
    cts: &[Ciphertext],
    rng: &mut R,
) -> Result<Ciphertext, PaillierError> {
    let mut sum = EncryptedSum::new(public, rng);
    for ct in cts {
        sum.add(ct);
    }
    Ok(sum.into_ciphertext())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;
    use crate::scheme::TEST_PRIME_BITS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (KeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(77);
        (KeyPair::generate(TEST_PRIME_BITS, &mut rng), rng)
    }

    #[test]
    fn encrypted_sum_matches_plain_sum() {
        let (kp, mut rng) = setup();
        let values = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let cts: Vec<_> = values
            .iter()
            .map(|&v| kp.public().encrypt_u64(v, &mut rng))
            .collect();
        let total = sum_ciphertexts(kp.public(), &cts, &mut rng).unwrap();
        assert_eq!(
            kp.private().decrypt_u64(&total).unwrap(),
            values.iter().sum::<u64>()
        );
    }

    #[test]
    fn empty_sum_is_zero() {
        let (kp, mut rng) = setup();
        let total = sum_ciphertexts(kp.public(), &[], &mut rng).unwrap();
        assert_eq!(kp.private().decrypt_u64(&total).unwrap(), 0);
    }

    #[test]
    fn weighted_sum() {
        let (kp, mut rng) = setup();
        let ct = kp.public().encrypt_u64(10, &mut rng);
        let mut sum = EncryptedSum::new(kp.public(), &mut rng);
        sum.add_weighted(&ct, 7); // 70
        sum.add(&kp.public().encrypt_u64(5, &mut rng)); // +5
        assert_eq!(sum.count(), 2);
        assert_eq!(kp.private().decrypt_u64(sum.ciphertext()).unwrap(), 75);
    }

    #[test]
    fn weighted_product_matches_scalar_fold() {
        // The Straus pass must be bit-identical to the mul_scalar/add
        // fold it replaces — same group elements, not just same plaintext.
        let (kp, mut rng) = setup();
        let terms: Vec<(Ciphertext, u64)> = [(3u64, 7u64), (1, 0), (4, 1), (9, u64::MAX >> 32)]
            .iter()
            .map(|&(m, k)| (kp.public().encrypt_u64(m, &mut rng), k))
            .collect();
        let fast = weighted_product(kp.public(), &terms);
        let naive = terms
            .iter()
            .fold(Ciphertext::new(BigUint::one()), |acc, (ct, k)| {
                kp.public().add(&acc, &kp.public().mul_scalar(ct, *k))
            });
        assert_eq!(fast, naive);
        // Empty product is the trivial encryption of zero.
        assert_eq!(
            weighted_product(kp.public(), &[]),
            Ciphertext::new(BigUint::one())
        );
    }

    #[test]
    fn add_weighted_batch_matches_per_term() {
        let (kp, mut rng) = setup();
        let terms: Vec<(Ciphertext, u64)> = [(10u64, 3u64), (20, 2), (30, 1)]
            .iter()
            .map(|&(m, k)| (kp.public().encrypt_u64(m, &mut rng), k))
            .collect();
        let mut batched = EncryptedSum::new(kp.public(), &mut StdRng::seed_from_u64(5));
        batched.add_weighted_batch(&terms);
        let mut per_term = EncryptedSum::new(kp.public(), &mut StdRng::seed_from_u64(5));
        for (ct, k) in &terms {
            per_term.add_weighted(ct, *k);
        }
        assert_eq!(batched.count(), per_term.count());
        assert_eq!(
            kp.private().decrypt(batched.ciphertext()).unwrap(),
            kp.private().decrypt(per_term.ciphertext()).unwrap()
        );
        assert_eq!(kp.private().decrypt_u64(batched.ciphertext()).unwrap(), 100);
    }

    #[test]
    fn avg_via_count() {
        let (kp, mut rng) = setup();
        let values = [10u64, 20, 30, 40];
        let mut sum = EncryptedSum::new(kp.public(), &mut rng);
        for &v in &values {
            sum.add(&kp.public().encrypt_u64(v, &mut rng));
        }
        let n = sum.count() as u64;
        let total = kp.private().decrypt_u64(sum.ciphertext()).unwrap();
        assert_eq!(total / n, 25);
    }
}
