//! Aggregate helper: an encrypted running sum, the HOM capability CryptDB's
//! HOM onion exposes for `SUM(...)`/`AVG(...)` rewriting.

use crate::keys::PublicKey;
use crate::scheme::{Ciphertext, PaillierError};
use dpe_bignum::BigUint;
use rand::RngCore;

/// A running homomorphic sum over ciphertexts.
///
/// Starts at an encryption of zero and folds ciphertexts in with the group
/// operation; the service provider can aggregate without ever decrypting.
pub struct EncryptedSum {
    public: PublicKey,
    acc: Ciphertext,
    count: usize,
}

impl EncryptedSum {
    /// Starts an empty sum (`Enc(0)`).
    pub fn new<R: RngCore>(public: &PublicKey, rng: &mut R) -> Self {
        let zero = public
            .encrypt(&BigUint::zero(), rng)
            .expect("zero always encrypts");
        EncryptedSum {
            public: public.clone(),
            acc: zero,
            count: 0,
        }
    }

    /// Folds one ciphertext into the sum.
    pub fn add(&mut self, ct: &Ciphertext) {
        self.acc = self.public.add(&self.acc, ct);
        self.count += 1;
    }

    /// Folds a plaintext-weighted ciphertext: `acc += k · Dec(ct)`.
    pub fn add_weighted(&mut self, ct: &Ciphertext, k: u64) {
        let scaled = self.public.mul_scalar(ct, k);
        self.acc = self.public.add(&self.acc, &scaled);
        self.count += 1;
    }

    /// Number of folded terms (needed by the client to turn SUM into AVG).
    pub fn count(&self) -> usize {
        self.count
    }

    /// The encrypted total.
    pub fn ciphertext(&self) -> &Ciphertext {
        &self.acc
    }

    /// Consumes the sum, returning the encrypted total.
    pub fn into_ciphertext(self) -> Ciphertext {
        self.acc
    }
}

/// Homomorphically sums a slice of ciphertexts.
pub fn sum_ciphertexts<R: RngCore>(
    public: &PublicKey,
    cts: &[Ciphertext],
    rng: &mut R,
) -> Result<Ciphertext, PaillierError> {
    let mut sum = EncryptedSum::new(public, rng);
    for ct in cts {
        sum.add(ct);
    }
    Ok(sum.into_ciphertext())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;
    use crate::scheme::TEST_PRIME_BITS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (KeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(77);
        (KeyPair::generate(TEST_PRIME_BITS, &mut rng), rng)
    }

    #[test]
    fn encrypted_sum_matches_plain_sum() {
        let (kp, mut rng) = setup();
        let values = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let cts: Vec<_> = values
            .iter()
            .map(|&v| kp.public().encrypt_u64(v, &mut rng))
            .collect();
        let total = sum_ciphertexts(kp.public(), &cts, &mut rng).unwrap();
        assert_eq!(
            kp.private().decrypt_u64(&total).unwrap(),
            values.iter().sum::<u64>()
        );
    }

    #[test]
    fn empty_sum_is_zero() {
        let (kp, mut rng) = setup();
        let total = sum_ciphertexts(kp.public(), &[], &mut rng).unwrap();
        assert_eq!(kp.private().decrypt_u64(&total).unwrap(), 0);
    }

    #[test]
    fn weighted_sum() {
        let (kp, mut rng) = setup();
        let ct = kp.public().encrypt_u64(10, &mut rng);
        let mut sum = EncryptedSum::new(kp.public(), &mut rng);
        sum.add_weighted(&ct, 7); // 70
        sum.add(&kp.public().encrypt_u64(5, &mut rng)); // +5
        assert_eq!(sum.count(), 2);
        assert_eq!(kp.private().decrypt_u64(sum.ciphertext()).unwrap(), 75);
    }

    #[test]
    fn avg_via_count() {
        let (kp, mut rng) = setup();
        let values = [10u64, 20, 30, 40];
        let mut sum = EncryptedSum::new(kp.public(), &mut rng);
        for &v in &values {
            sum.add(&kp.public().encrypt_u64(v, &mut rng));
        }
        let n = sum.count() as u64;
        let total = kp.private().decrypt_u64(sum.ciphertext()).unwrap();
        assert_eq!(total / n, 25);
    }
}
