//! # dpe-mining — distance-based data mining
//!
//! The mining algorithms the paper's introduction motivates, all operating
//! purely on a [`dpe_distance::DistanceMatrix`] — which is the whole point:
//! if encryption preserves pairwise distances (Definition 1), every
//! algorithm here produces **identical** output on plaintext and ciphertext
//! inputs. The M1 experiment checks exactly that.
//!
//! * [`mod@kmedoids`] — k-medoids in the style of Park & Jun \[5\];
//! * [`mod@dbscan`] — density-based clustering, Ester et al. \[4\];
//! * [`hierarchical`] — agglomerative clustering: complete link (Defays
//!   \[3\]), single link (SLINK) and average link (UPGMA);
//! * [`outliers`] — Knorr–Ng DB(p, D) distance-based outliers \[6\];
//! * [`mod@lof`] — Local Outlier Factor (Breunig et al.), the density-based
//!   outlier score;
//! * [`knn`] — k-nearest-neighbour queries;
//! * [`range`] — ε-neighbourhood range queries (DBSCAN's region query as a
//!   standalone serving primitive);
//! * [`apriori`] — frequent itemsets and association rules (the encrypted
//!   OLAP-log use case of the paper's reference \[17\]);
//! * [`agreement`] — Rand index / adjusted Rand index to quantify
//!   plaintext-vs-ciphertext agreement (1.0 everywhere under DPE);
//! * [`labels`] — stable flat-label canonicalization (noise = −1, clusters
//!   renumbered by first member), the wire form served clustering answers
//!   are fingerprinted and cached under.
//!
//! Algorithms are deterministic: ties break on the lower index, k-medoids
//! seeds with a deterministic greedy (no RNG), so equal distance matrices
//! imply equal outputs — no flaky "identical" assertions.

#![forbid(unsafe_code)]

mod order;

pub mod agreement;
pub mod apriori;
pub mod dbscan;
pub mod hierarchical;
pub mod kmedoids;
pub mod knn;
pub mod labels;
pub mod lof;
pub mod outliers;
pub mod range;

pub use agreement::{adjusted_rand_index, rand_index};
pub use apriori::{association_rules, frequent_itemsets, FrequentItemset, Rule};
pub use dbscan::{dbscan, DbscanConfig, DbscanLabel};
pub use hierarchical::{
    agglomerative, average_link, complete_link, single_link, Dendrogram, Linkage, Merge,
};
pub use kmedoids::{kmedoids, KMedoidsResult};
pub use knn::knn_indices;
pub use labels::{canonical_dbscan_labels, canonical_labels, NOISE};
pub use lof::{lof, lof_outliers, LofConfig};
pub use outliers::{db_outliers, OutlierConfig};
pub use range::range_indices;
