//! Knorr–Ng DB(p, D) distance-based outliers \[6\].
//!
//! An item is a DB(p, D)-outlier when at least fraction `p` of the other
//! items lie at distance greater than `D` from it.

use dpe_distance::DistanceMatrix;

/// Parameters of the DB(p, D) definition.
#[derive(Debug, Clone, Copy)]
pub struct OutlierConfig {
    /// Fraction `p ∈ [0, 1]` of the dataset that must be far away.
    pub p: f64,
    /// Distance threshold `D`.
    pub d: f64,
}

/// Returns the indices of all DB(p, D)-outliers, ascending.
pub fn db_outliers(matrix: &DistanceMatrix, config: OutlierConfig) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&config.p), "p must lie in [0, 1]");
    let n = matrix.len();
    if n <= 1 {
        return Vec::new();
    }
    (0..n)
        .filter(|&i| {
            let far = (0..n)
                .filter(|&j| j != i && matrix.get(i, j) > config.d)
                .count();
            far as f64 >= config.p * (n - 1) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_far_point() -> DistanceMatrix {
        // 0-4 close together; 5 far from everyone.
        DistanceMatrix::from_fn(6, |i, j| if i == 5 || j == 5 { 0.9 } else { 0.1 })
    }

    #[test]
    fn isolates_the_far_point() {
        let outliers = db_outliers(&one_far_point(), OutlierConfig { p: 0.8, d: 0.5 });
        assert_eq!(outliers, vec![5]);
    }

    #[test]
    fn no_outliers_with_loose_threshold() {
        let outliers = db_outliers(&one_far_point(), OutlierConfig { p: 0.8, d: 0.95 });
        assert!(outliers.is_empty());
    }

    #[test]
    fn everyone_outlier_when_all_far() {
        let m = DistanceMatrix::from_fn(4, |_, _| 1.0);
        let outliers = db_outliers(&m, OutlierConfig { p: 1.0, d: 0.5 });
        assert_eq!(outliers, vec![0, 1, 2, 3]);
    }

    #[test]
    fn p_zero_flags_everything() {
        // With p = 0 the "at least 0 far" condition is vacuous.
        let m = DistanceMatrix::from_fn(3, |_, _| 0.0);
        let outliers = db_outliers(&m, OutlierConfig { p: 0.0, d: 0.5 });
        assert_eq!(outliers, vec![0, 1, 2]);
    }

    #[test]
    fn singleton_and_empty_inputs() {
        let empty = DistanceMatrix::from_fn(0, |_, _| 0.0);
        assert!(db_outliers(&empty, OutlierConfig { p: 0.5, d: 0.5 }).is_empty());
        let one = DistanceMatrix::from_fn(1, |_, _| 0.0);
        assert!(db_outliers(&one, OutlierConfig { p: 0.5, d: 0.5 }).is_empty());
    }

    #[test]
    #[should_panic(expected = "p must lie in")]
    fn p_out_of_range_panics() {
        db_outliers(&one_far_point(), OutlierConfig { p: 1.5, d: 0.5 });
    }
}
