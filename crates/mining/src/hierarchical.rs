//! Agglomerative hierarchical clustering over a distance matrix.
//!
//! Complete link is the method of Defays' CLINK (the paper's reference
//! \[3\]); single link (SLINK's criterion) and average link (UPGMA) are the
//! other two classic linkage rules, included because they too are pure
//! functions of the pairwise distances — so a DPE-encrypted log dendrogram
//! is *identical* to the plaintext one under any of them (the
//! `mining_invariance` tests pin this down per linkage).
//!
//! Implemented as exact O(n³) agglomeration, ample for query-log sizes;
//! merge ties break deterministically on the smaller cluster ids so plain
//! and encrypted runs cannot diverge on equal distances.

use dpe_distance::DistanceMatrix;

/// Linkage criterion: how the distance between two clusters is derived
/// from item pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// Farthest pair (CLINK \[3\]) — the paper's cited method.
    #[default]
    Complete,
    /// Closest pair (SLINK) — chains through dense regions.
    Single,
    /// Unweighted mean over all cross pairs (UPGMA).
    Average,
}

impl Linkage {
    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Linkage::Complete => "complete",
            Linkage::Single => "single",
            Linkage::Average => "average",
        }
    }
}

/// One merge step of the dendrogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id (`a < b` by construction).
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Id of the newly formed cluster (`n + step`).
    pub id: usize,
}

/// A dendrogram over `n` leaves.
///
/// Leaves are clusters `0..n`; merge `s` creates cluster `n + s`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    /// Number of leaves.
    pub n: usize,
    /// Merges in order of increasing distance (ties: lower cluster ids
    /// first), length `n - 1` for non-empty inputs.
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Serializes the dendrogram to a canonical byte string: `n` as a
    /// little-endian `u64`, then per merge `(a, b, id, distance bits)` as
    /// four little-endian `u64`s. Two dendrograms serialize identically iff
    /// they are bit-identical (distances compare on their bit patterns), so
    /// the byte string — or its [`Dendrogram::digest`] — is a sound
    /// fingerprint for plan caching.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 32 * self.merges.len());
        out.extend_from_slice(&(self.n as u64).to_le_bytes());
        for m in &self.merges {
            out.extend_from_slice(&(m.a as u64).to_le_bytes());
            out.extend_from_slice(&(m.b as u64).to_le_bytes());
            out.extend_from_slice(&(m.id as u64).to_le_bytes());
            out.extend_from_slice(&m.distance.to_bits().to_le_bytes());
        }
        out
    }

    /// Inverse of [`Dendrogram::to_bytes`]. Returns `None` on truncated or
    /// trailing input (the encoding is fixed-width) and on structurally
    /// invalid dendrograms — exactly `n − 1` merges, each with
    /// `a < b < id = n + step` — so a parsed value upholds every invariant
    /// [`Dendrogram::cut`] indexes by (no panics or bogus cluster counts
    /// from hostile bytes).
    pub fn from_bytes(bytes: &[u8]) -> Option<Dendrogram> {
        let mut take = {
            let mut rest = bytes;
            move || -> Option<u64> {
                let (chunk, tail) = rest.split_first_chunk::<8>()?;
                rest = tail;
                Some(u64::from_le_bytes(*chunk))
            }
        };
        if bytes.len() < 8 || !(bytes.len() - 8).is_multiple_of(32) {
            return None;
        }
        let n = take()? as usize;
        let merges = (0..(bytes.len() - 8) / 32)
            .map(|_| {
                Some(Merge {
                    a: take()? as usize,
                    b: take()? as usize,
                    id: take()? as usize,
                    distance: f64::from_bits(take()?),
                })
            })
            .collect::<Option<Vec<Merge>>>()?;
        if merges.len() != n.saturating_sub(1) {
            return None;
        }
        for (step, m) in merges.iter().enumerate() {
            if !(m.a < m.b && m.b < m.id && m.id == n + step) {
                return None;
            }
        }
        Some(Dendrogram { n, merges })
    }

    /// FNV-1a hash of the canonical serialization — the compact plan
    /// fingerprint the serving layer's cache statistics and regression
    /// tests pin warm-vs-cold plan identity with.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for byte in self.to_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Cuts the dendrogram into exactly `k` clusters and returns per-leaf
    /// assignments with cluster ids renumbered `0..k` in order of their
    /// smallest leaf.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n.max(1), "k must be in 1..=n");
        // Apply the first n - k merges with a union-find.
        let total = self.n + self.merges.len();
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for merge in self.merges.iter().take(self.n - k) {
            let ra = find(&mut parent, merge.a);
            let rb = find(&mut parent, merge.b);
            parent[ra] = merge.id;
            parent[rb] = merge.id;
        }
        // Renumber roots by smallest member leaf.
        let mut root_of: Vec<usize> = (0..self.n).map(|i| find(&mut parent, i)).collect();
        let mut order: Vec<usize> = Vec::new();
        for &r in &root_of {
            if !order.contains(&r) {
                order.push(r);
            }
        }
        for r in &mut root_of {
            *r = order.iter().position(|x| x == r).unwrap();
        }
        root_of
    }
}

/// Builds the dendrogram under the given linkage rule.
pub fn agglomerative(matrix: &DistanceMatrix, linkage: Linkage) -> Dendrogram {
    let n = matrix.len();
    // Active clusters: id → member leaves.
    let mut members: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));

    let cluster_dist = |ma: &[usize], mb: &[usize]| -> f64 {
        match linkage {
            Linkage::Complete => {
                let mut worst: f64 = 0.0;
                for &x in ma {
                    for &y in mb {
                        worst = worst.max(matrix.get(x, y));
                    }
                }
                worst
            }
            Linkage::Single => {
                let mut best = f64::INFINITY;
                for &x in ma {
                    for &y in mb {
                        best = best.min(matrix.get(x, y));
                    }
                }
                best
            }
            Linkage::Average => {
                let mut sum = 0.0;
                for &x in ma {
                    for &y in mb {
                        sum += matrix.get(x, y);
                    }
                }
                sum / (ma.len() * mb.len()) as f64
            }
        }
    };

    while active.len() > 1 {
        // Find the closest active pair; ties break on (a, b) order.
        let mut best = (f64::INFINITY, usize::MAX, usize::MAX);
        for i in 0..active.len() {
            for j in i + 1..active.len() {
                let (a, b) = (active[i], active[j]);
                let d = cluster_dist(members[a].as_ref().unwrap(), members[b].as_ref().unwrap());
                if d < best.0 {
                    best = (d, a, b);
                }
            }
        }
        let (distance, a, b) = best;
        let id = members.len();
        let mut merged = members[a].take().unwrap();
        merged.extend(members[b].take().unwrap());
        merged.sort_unstable();
        members.push(Some(merged));
        active.retain(|&c| c != a && c != b);
        active.push(id);
        merges.push(Merge { a, b, distance, id });
    }

    Dendrogram { n, merges }
}

/// Builds the complete-link dendrogram (Defays \[3\]).
pub fn complete_link(matrix: &DistanceMatrix) -> Dendrogram {
    agglomerative(matrix, Linkage::Complete)
}

/// Builds the single-link dendrogram (SLINK criterion).
pub fn single_link(matrix: &DistanceMatrix) -> Dendrogram {
    agglomerative(matrix, Linkage::Single)
}

/// Builds the average-link (UPGMA) dendrogram.
pub fn average_link(matrix: &DistanceMatrix) -> Dendrogram {
    agglomerative(matrix, Linkage::Average)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> DistanceMatrix {
        // Items on a line at positions 0, 1, 2, 10, 11, 12.
        let pos: [f64; 6] = [0.0, 1.0, 2.0, 10.0, 11.0, 12.0];
        DistanceMatrix::from_fn(6, |i, j| (pos[i] - pos[j]).abs())
    }

    #[test]
    fn merge_count() {
        let d = complete_link(&chain());
        assert_eq!(d.merges.len(), 5);
        assert_eq!(d.n, 6);
    }

    #[test]
    fn cut_two_recovers_blobs() {
        for linkage in [Linkage::Complete, Linkage::Single, Linkage::Average] {
            let d = agglomerative(&chain(), linkage);
            let cut = d.cut(2);
            assert_eq!(cut[0], cut[1], "{linkage:?}");
            assert_eq!(cut[1], cut[2], "{linkage:?}");
            assert_eq!(cut[3], cut[4], "{linkage:?}");
            assert_eq!(cut[4], cut[5], "{linkage:?}");
            assert_ne!(cut[0], cut[3], "{linkage:?}");
            // Renumbering: first cluster (containing leaf 0) gets id 0.
            assert_eq!(cut[0], 0, "{linkage:?}");
        }
    }

    #[test]
    fn cut_extremes() {
        let d = complete_link(&chain());
        assert!(d.cut(1).iter().all(|&c| c == 0));
        assert_eq!(d.cut(6), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn merge_distances_are_complete_link() {
        let d = complete_link(&chain());
        // First merges happen at distance 1 (adjacent points).
        assert_eq!(d.merges[0].distance, 1.0);
        // The final merge spans the full chain: complete-link distance 12.
        assert_eq!(d.merges.last().unwrap().distance, 12.0);
    }

    #[test]
    fn single_link_final_merge_is_blob_gap() {
        // {0,1,2} vs {3,4,5}: the closest cross pair is 2 ↔ 10 at 8.
        let d = single_link(&chain());
        assert_eq!(d.merges.last().unwrap().distance, 8.0);
    }

    #[test]
    fn average_link_between_single_and_complete() {
        let s = single_link(&chain()).merges.last().unwrap().distance;
        let a = average_link(&chain()).merges.last().unwrap().distance;
        let c = complete_link(&chain()).merges.last().unwrap().distance;
        assert!(s < a && a < c, "expected {s} < {a} < {c}");
        // UPGMA over the two 3-blobs: mean of |pi - pj| for the 9 cross
        // pairs = 10 exactly (positions are symmetric around the gap).
        assert!((a - 10.0).abs() < 1e-12);
    }

    #[test]
    fn single_link_chains_where_complete_splits() {
        // A chain of equidistant points: single link happily grows one
        // cluster; complete link's merge heights grow with diameter.
        let pos: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let m = DistanceMatrix::from_fn(8, |i, j| (pos[i] - pos[j]).abs());
        let s = single_link(&m);
        let c = complete_link(&m);
        // All single-link merges happen at distance 1.
        assert!(s.merges.iter().all(|mg| mg.distance == 1.0));
        // Complete-link's last merge is the full diameter.
        assert_eq!(c.merges.last().unwrap().distance, 7.0);
    }

    #[test]
    fn complete_link_exceeds_single_link() {
        // {0,1,2} vs {3,4,5}: single-link 8, complete-link 12 — the merge
        // records the complete-link value.
        let d = complete_link(&chain());
        let last = d.merges.last().unwrap();
        assert!(last.distance > 8.0);
    }

    #[test]
    fn deterministic() {
        let m = DistanceMatrix::from_fn(12, |i, j| ((i * 5 + j * 3) % 11) as f64 + 0.5);
        for linkage in [Linkage::Complete, Linkage::Single, Linkage::Average] {
            assert_eq!(agglomerative(&m, linkage), agglomerative(&m, linkage));
        }
    }

    #[test]
    fn serialization_round_trips_bit_exactly() {
        for linkage in [Linkage::Complete, Linkage::Single, Linkage::Average] {
            let d = agglomerative(&chain(), linkage);
            let bytes = d.to_bytes();
            assert_eq!(bytes.len(), 8 + 32 * d.merges.len());
            let back = Dendrogram::from_bytes(&bytes).unwrap();
            assert_eq!(back, d, "{linkage:?}");
            assert_eq!(back.digest(), d.digest());
        }
    }

    #[test]
    fn from_bytes_rejects_truncation_and_trailing_garbage() {
        let d = complete_link(&chain());
        let bytes = d.to_bytes();
        assert!(Dendrogram::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(Dendrogram::from_bytes(&bytes[..7]).is_none());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Dendrogram::from_bytes(&padded).is_none());
        assert!(Dendrogram::from_bytes(&[]).is_none());
    }

    #[test]
    fn from_bytes_rejects_structurally_invalid_dendrograms() {
        // Well-formed length, hostile content: a `cut` on any of these
        // would otherwise panic or report the wrong cluster count.
        let encode = |n: u64, merges: &[(u64, u64, u64)]| -> Vec<u8> {
            let mut out = n.to_le_bytes().to_vec();
            for &(a, b, id) in merges {
                for v in [a, b, id, 1.0f64.to_bits()] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            out
        };
        // Merge count must be exactly n − 1.
        assert!(Dendrogram::from_bytes(&encode(5, &[])).is_none());
        assert!(Dendrogram::from_bytes(&encode(u64::MAX, &[])).is_none());
        // Operand ids out of range / misordered / wrong new-cluster id.
        assert!(Dendrogram::from_bytes(&encode(2, &[(1000, 1001, 1002)])).is_none());
        assert!(Dendrogram::from_bytes(&encode(2, &[(1, 0, 2)])).is_none());
        assert!(Dendrogram::from_bytes(&encode(2, &[(0, 1, 7)])).is_none());
        // The minimal valid two-leaf dendrogram still parses.
        assert!(Dendrogram::from_bytes(&encode(2, &[(0, 1, 2)])).is_some());
    }

    #[test]
    fn digest_separates_linkages_and_distance_bits() {
        let complete = complete_link(&chain()).digest();
        let single = single_link(&chain()).digest();
        assert_ne!(complete, single);
        // One ulp on one merge distance must change the fingerprint.
        let mut d = complete_link(&chain());
        d.merges[0].distance = f64::from_bits(d.merges[0].distance.to_bits() + 1);
        assert_ne!(d.digest(), complete);
    }

    #[test]
    fn empty_and_singleton_dendrograms_serialize() {
        for n in [0usize, 1] {
            let m = DistanceMatrix::from_fn(n, |_, _| 0.0);
            let d = complete_link(&m);
            assert!(d.merges.is_empty());
            let back = Dendrogram::from_bytes(&d.to_bytes()).unwrap();
            assert_eq!(back, d);
        }
    }

    #[test]
    fn linkage_names() {
        assert_eq!(Linkage::Complete.name(), "complete");
        assert_eq!(Linkage::Single.name(), "single");
        assert_eq!(Linkage::Average.name(), "average");
        assert_eq!(Linkage::default(), Linkage::Complete);
    }
}
