//! Local Outlier Factor (Breunig et al., SIGMOD 2000).
//!
//! The density-based cousin of Knorr–Ng's distance-based outliers \[6\]: a
//! point is outlying when its local density is small *relative to the
//! densities of its neighbours*. Like every algorithm in this crate, LOF is
//! a pure function of the pairwise distance matrix — which is exactly why
//! DPE makes it outsourceable: the service provider computes identical LOF
//! scores from the encrypted log.
//!
//! Definitions (for `k = min_pts`):
//!
//! * `k-distance(p)` — distance to p's k-th nearest neighbour;
//! * `N_k(p)` — every point within `k-distance(p)` (ties included);
//! * `reach-dist_k(p, o) = max(k-distance(o), d(p, o))`;
//! * `lrd_k(p) = 1 / mean_{o ∈ N_k(p)} reach-dist_k(p, o)`;
//! * `LOF_k(p) = mean_{o ∈ N_k(p)} lrd_k(o) / lrd_k(p)`.
//!
//! Scores ≈ 1 mean inlier; scores substantially above 1 mean the point is
//! locally sparse. Duplicate-heavy data can make `lrd` infinite; ∞/∞
//! ratios are taken as 1, following the reference implementation folklore.

use crate::order::nan_last_cmp;
use dpe_distance::DistanceMatrix;

/// Configuration for [`lof`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LofConfig {
    /// Neighbourhood size `k` (`MinPts` in the original paper), ≥ 1.
    pub min_pts: usize,
}

/// Computes the LOF score of every point from the distance matrix.
///
/// Returns one score per point. Points whose neighbourhood density equals
/// their neighbours' get ≈ 1.0; isolated points get > 1.
///
/// # Panics
///
/// Panics when `min_pts` is 0 or ≥ the number of points (every point needs
/// `min_pts` *other* points as neighbours).
pub fn lof(matrix: &DistanceMatrix, config: LofConfig) -> Vec<f64> {
    let n = matrix.len();
    let k = config.min_pts;
    assert!(k >= 1, "min_pts must be ≥ 1");
    assert!(
        k < n,
        "min_pts = {k} needs at least {} points, got {n}",
        k + 1
    );

    // k-distance and k-neighbourhood (with ties) per point.
    let mut kdist = vec![0.0f64; n];
    let mut neigh: Vec<Vec<usize>> = Vec::with_capacity(n);
    for (i, kd_slot) in kdist.iter_mut().enumerate() {
        let mut others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        // A NaN distance sorts last (either sign) instead of panicking, so
        // it never lands inside the k-neighbourhood spuriously.
        others.sort_by(|&a, &b| nan_last_cmp(matrix.get(i, a), matrix.get(i, b)).then(a.cmp(&b)));
        let kd = matrix.get(i, others[k - 1]);
        *kd_slot = kd;
        // All points within the k-distance — ties beyond index k included.
        let members: Vec<usize> = others
            .into_iter()
            .filter(|&j| matrix.get(i, j) <= kd)
            .collect();
        neigh.push(members);
    }

    // Local reachability density.
    let mut lrd = vec![0.0f64; n];
    for i in 0..n {
        let sum: f64 = neigh[i]
            .iter()
            .map(|&o| matrix.get(i, o).max(kdist[o]))
            .sum();
        lrd[i] = if sum == 0.0 {
            f64::INFINITY // all neighbours are duplicates of i
        } else {
            neigh[i].len() as f64 / sum
        };
    }

    // LOF = mean neighbour-lrd ratio.
    (0..n)
        .map(|i| {
            let ratios: Vec<f64> = neigh[i]
                .iter()
                .map(|&o| {
                    if lrd[o].is_infinite() && lrd[i].is_infinite() {
                        1.0
                    } else {
                        lrd[o] / lrd[i]
                    }
                })
                .collect();
            ratios.iter().sum::<f64>() / ratios.len() as f64
        })
        .collect()
}

/// Indices of points with `LOF > threshold`, sorted descending by score —
/// the typical "report the outliers" surface on top of [`lof`].
pub fn lof_outliers(matrix: &DistanceMatrix, config: LofConfig, threshold: f64) -> Vec<usize> {
    let scores = lof(matrix, config);
    let mut idx: Vec<usize> = (0..scores.len())
        .filter(|&i| scores[i] > threshold)
        .collect();
    idx.sort_by(|&a, &b| nan_last_cmp(scores[b], scores[a]).then(a.cmp(&b)));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight blobs plus one far-away singleton (index 8).
    fn blob_with_outlier() -> DistanceMatrix {
        let pos: [f64; 9] = [0.0, 0.5, 1.0, 1.5, 10.0, 10.5, 11.0, 11.5, 50.0];
        DistanceMatrix::from_fn(9, |i, j| (pos[i] - pos[j]).abs())
    }

    #[test]
    fn isolated_point_scores_highest() {
        let scores = lof(&blob_with_outlier(), LofConfig { min_pts: 3 });
        let max_idx = (0..scores.len())
            .max_by(|&a, &b| scores[a].total_cmp(&scores[b]))
            .unwrap();
        assert_eq!(max_idx, 8, "scores: {scores:?}");
        assert!(scores[8] > 2.0, "outlier score too low: {}", scores[8]);
    }

    #[test]
    fn uniform_cluster_scores_near_one() {
        // Equally spaced points: everyone's density matches the neighbours'.
        let m = DistanceMatrix::from_fn(10, |i, j| (i as f64 - j as f64).abs());
        let scores = lof(&m, LofConfig { min_pts: 2 });
        for (i, s) in scores.iter().enumerate() {
            assert!(
                (0.5..2.0).contains(s),
                "interior-ish point {i} got extreme LOF {s}"
            );
        }
    }

    #[test]
    fn duplicates_do_not_produce_nan() {
        // Three exact duplicates + two distinct points.
        let pos: [f64; 5] = [1.0, 1.0, 1.0, 5.0, 9.0];
        let m = DistanceMatrix::from_fn(5, |i, j| (pos[i] - pos[j]).abs());
        let scores = lof(&m, LofConfig { min_pts: 2 });
        assert!(scores.iter().all(|s| !s.is_nan()), "{scores:?}");
        // The duplicate triple is maximally dense: LOF = 1 (∞/∞ convention).
        assert!((scores[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lof_outliers_thresholding() {
        let m = blob_with_outlier();
        let out = lof_outliers(&m, LofConfig { min_pts: 3 }, 1.5);
        assert!(out.contains(&8));
        assert!(!out.contains(&1));
        // Descending score order: the singleton leads.
        assert_eq!(out[0], 8);
    }

    #[test]
    fn deterministic() {
        let m = blob_with_outlier();
        let c = LofConfig { min_pts: 3 };
        assert_eq!(lof(&m, c), lof(&m, c));
    }

    #[test]
    #[should_panic(expected = "min_pts")]
    fn rejects_min_pts_zero() {
        lof(&blob_with_outlier(), LofConfig { min_pts: 0 });
    }

    #[test]
    #[should_panic(expected = "min_pts")]
    fn rejects_min_pts_too_large() {
        lof(&blob_with_outlier(), LofConfig { min_pts: 9 });
    }

    #[test]
    fn scale_invariance_of_relative_order() {
        // LOF depends on distance *ratios*: scaling all distances by a
        // constant must keep the score vector identical.
        let m1 = blob_with_outlier();
        let m2 = DistanceMatrix::from_fn(m1.len(), |i, j| 7.0 * m1.get(i, j));
        let c = LofConfig { min_pts: 3 };
        let (s1, s2) = (lof(&m1, c), lof(&m2, c));
        for (a, b) in s1.iter().zip(&s2) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
