//! k-nearest-neighbour queries over a distance matrix.

use crate::order::nan_last_cmp;
use dpe_distance::DistanceMatrix;

/// The `k` nearest neighbours of item `i` (excluding `i`), closest first;
/// distance ties break on the lower index. Returns fewer than `k` when the
/// dataset is small.
pub fn knn_indices(matrix: &DistanceMatrix, i: usize, k: usize) -> Vec<usize> {
    let n = matrix.len();
    assert!(i < n, "query index {i} out of bounds (n={n})");
    let mut others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
    // NaN from a degenerate measure sorts last (either sign) instead of
    // panicking mid-mining.
    others.sort_by(|&a, &b| nan_last_cmp(matrix.get(i, a), matrix.get(i, b)).then(a.cmp(&b)));
    others.truncate(k);
    others
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> DistanceMatrix {
        let pos: [f64; 5] = [0.0, 1.0, 3.0, 7.0, 20.0];
        DistanceMatrix::from_fn(5, |i, j| (pos[i] - pos[j]).abs())
    }

    #[test]
    fn nearest_first() {
        assert_eq!(knn_indices(&line(), 0, 3), vec![1, 2, 3]);
        assert_eq!(knn_indices(&line(), 2, 2), vec![1, 0]);
    }

    #[test]
    fn excludes_self() {
        assert!(!knn_indices(&line(), 3, 4).contains(&3));
    }

    #[test]
    fn k_larger_than_dataset() {
        assert_eq!(knn_indices(&line(), 0, 100).len(), 4);
    }

    #[test]
    fn ties_break_on_index() {
        let m = DistanceMatrix::from_fn(4, |_, _| 0.5);
        assert_eq!(knn_indices(&m, 0, 3), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_query_index_panics() {
        knn_indices(&line(), 9, 1);
    }
}
