//! k-nearest-neighbour queries over a distance matrix.

use crate::order::nan_last_cmp;
use dpe_distance::DistanceMatrix;

/// The `k` nearest neighbours of item `i` (excluding `i`), closest first;
/// distance ties break on the lower index. Returns fewer than `k` when the
/// dataset is small.
pub fn knn_indices(matrix: &DistanceMatrix, i: usize, k: usize) -> Vec<usize> {
    let n = matrix.len();
    assert!(i < n, "query index {i} out of bounds (n={n})");
    let mut others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
    // NaN from a degenerate measure sorts last (either sign) instead of
    // panicking mid-mining.
    let cmp =
        |&a: &usize, &b: &usize| nan_last_cmp(matrix.get(i, a), matrix.get(i, b)).then(a.cmp(&b));
    // O(n) selection of the k winners before the O(k log k) sort, instead
    // of sorting all n−1 candidates. The comparator is a strict total
    // order (ties split on index), so the selected set and its sorted
    // order are exactly the full sort's prefix — bit-identical.
    if k < others.len() {
        if k == 0 {
            others.clear();
        } else {
            others.select_nth_unstable_by(k - 1, cmp);
            others.truncate(k);
        }
    }
    others.sort_by(cmp);
    others
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> DistanceMatrix {
        let pos: [f64; 5] = [0.0, 1.0, 3.0, 7.0, 20.0];
        DistanceMatrix::from_fn(5, |i, j| (pos[i] - pos[j]).abs())
    }

    #[test]
    fn nearest_first() {
        assert_eq!(knn_indices(&line(), 0, 3), vec![1, 2, 3]);
        assert_eq!(knn_indices(&line(), 2, 2), vec![1, 0]);
    }

    #[test]
    fn excludes_self() {
        assert!(!knn_indices(&line(), 3, 4).contains(&3));
    }

    #[test]
    fn k_larger_than_dataset() {
        assert_eq!(knn_indices(&line(), 0, 100).len(), 4);
    }

    #[test]
    fn ties_break_on_index() {
        let m = DistanceMatrix::from_fn(4, |_, _| 0.5);
        assert_eq!(knn_indices(&m, 0, 3), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_query_index_panics() {
        knn_indices(&line(), 9, 1);
    }

    #[test]
    fn selection_matches_full_sort_with_ties_and_nans() {
        // The select-then-sort fast path must reproduce the full sort's
        // prefix bit-identically, including NaN-last ordering and index
        // tie-breaks, for every k.
        let n = 23;
        let m = DistanceMatrix::from_fn(n, |i, j| match (i * 31 + j * 7) % 5 {
            0 => f64::NAN,
            c => 0.25 * c as f64, // heavy ties
        });
        for i in 0..n {
            let mut reference: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            reference.sort_by(|&a, &b| nan_last_cmp(m.get(i, a), m.get(i, b)).then(a.cmp(&b)));
            for k in 0..=n {
                let mut expect = reference.clone();
                expect.truncate(k);
                assert_eq!(knn_indices(&m, i, k), expect, "i={i} k={k}");
            }
        }
    }
}
