//! Stable flat-clustering label canonicalization.
//!
//! The serving layer caches clustering responses under bit-exact request
//! fingerprints and asserts answers bit-identical across code paths, so a
//! served label vector must be a pure function of the *partition* — never
//! of internal cluster-id bookkeeping (discovery order, medoid indices,
//! dendrogram node ids). The canonical form used on the wire: noise is
//! [`NOISE`] (`-1`), clusters are renumbered `0..` in order of each
//! cluster's first member. Two clusterings canonicalize identically iff
//! they induce the same partition with the same noise set.

use crate::dbscan::DbscanLabel;

/// The canonical wire label for noise points.
pub const NOISE: i64 = -1;

/// The single definition of the canonical numbering rule — both public
/// entry points renumber through one of these, so DBSCAN and
/// hierarchical-cut wire labels can never drift apart.
fn renumberer() -> impl FnMut(usize) -> i64 {
    let mut order: Vec<usize> = Vec::new();
    move |id| match order.iter().position(|&seen| seen == id) {
        Some(pos) => pos as i64,
        None => {
            order.push(id);
            (order.len() - 1) as i64
        }
    }
}

/// Renumbers arbitrary cluster ids to the canonical `0..k` form: the
/// cluster of the lowest-indexed item becomes `0`, the next unseen cluster
/// `1`, and so on. Idempotent, and invariant under any bijective renaming
/// of the input ids.
pub fn canonical_labels(ids: &[usize]) -> Vec<i64> {
    let mut renumber = renumberer();
    ids.iter().map(|&id| renumber(id)).collect()
}

/// Canonical wire form of a DBSCAN labelling: noise maps to [`NOISE`],
/// cluster ids are renumbered by first appearance (which preserves the
/// deterministic discovery order [`crate::dbscan::dbscan`] already
/// guarantees, and normalizes any labelling that does not).
pub fn canonical_dbscan_labels(labels: &[DbscanLabel]) -> Vec<i64> {
    let mut renumber = renumberer();
    labels
        .iter()
        .map(|label| match *label {
            DbscanLabel::Noise => NOISE,
            DbscanLabel::Cluster(id) => renumber(id),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renumbers_by_first_appearance() {
        assert_eq!(
            canonical_labels(&[7, 7, 3, 7, 3, 9]),
            vec![0, 0, 1, 0, 1, 2]
        );
        assert_eq!(canonical_labels(&[]), Vec::<i64>::new());
    }

    #[test]
    fn idempotent_and_renaming_invariant() {
        let a = canonical_labels(&[5, 1, 5, 2, 1]);
        // Bijective renaming 5→10, 1→20, 2→30 canonicalizes identically.
        let b = canonical_labels(&[10, 20, 10, 30, 20]);
        assert_eq!(a, b);
        let again = canonical_labels(&a.iter().map(|&x| x as usize).collect::<Vec<_>>());
        assert_eq!(again, a);
    }

    #[test]
    fn dbscan_noise_is_minus_one_and_clusters_renumber() {
        let labels = [
            DbscanLabel::Cluster(4),
            DbscanLabel::Noise,
            DbscanLabel::Cluster(4),
            DbscanLabel::Cluster(0),
            DbscanLabel::Noise,
        ];
        assert_eq!(
            canonical_dbscan_labels(&labels),
            vec![0, NOISE, 0, 1, NOISE]
        );
    }

    #[test]
    fn distinguishes_different_partitions() {
        let split = canonical_labels(&[0, 0, 1, 1]);
        let merged = canonical_labels(&[0, 0, 0, 0]);
        assert_ne!(split, merged);
    }
}
