//! Clustering-agreement metrics: Rand index and adjusted Rand index.
//!
//! The M1 experiment's acceptance criterion is agreement 1.0 between the
//! plaintext and ciphertext clusterings — DPE guarantees identical label
//! *partitions* even if cluster ids were permuted, so the comparison uses a
//! partition metric rather than raw label equality.

/// Rand index ∈ [0, 1]: fraction of item pairs on which both clusterings
/// agree (together/apart). Panics on length mismatch.
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "clusterings must label the same items");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            let same_a = a[i] == a[j];
            let same_b = b[i] == b[j];
            if same_a == same_b {
                agree += 1;
            }
            total += 1;
        }
    }
    agree as f64 / total as f64
}

/// Adjusted Rand index (Hubert & Arabie): chance-corrected, 1.0 iff the
/// partitions are identical, ≈ 0 for independent random partitions.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "clusterings must label the same items");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ka = a.iter().max().map_or(0, |m| m + 1);
    let kb = b.iter().max().map_or(0, |m| m + 1);
    let mut contingency = vec![vec![0usize; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        contingency[x][y] += 1;
    }
    let choose2 = |x: usize| (x * x.saturating_sub(1) / 2) as f64;
    let sum_ij: f64 = contingency.iter().flatten().map(|&x| choose2(x)).sum();
    let sum_a: f64 = contingency
        .iter()
        .map(|row| choose2(row.iter().sum()))
        .sum();
    let sum_b: f64 = (0..kb)
        .map(|j| choose2(contingency.iter().map(|row| row[j]).sum()))
        .sum();
    let expected = sum_a * sum_b / choose2(n);
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < f64::EPSILON {
        // Degenerate: both partitions trivial (all-same or all-distinct).
        return 1.0;
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = [0, 0, 1, 1, 2];
        assert_eq!(rand_index(&a, &a), 1.0);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
    }

    #[test]
    fn label_permutation_still_one() {
        // Same partition, different ids.
        let a = [0, 0, 1, 1, 2, 2];
        let b = [2, 2, 0, 0, 1, 1];
        assert_eq!(rand_index(&a, &b), 1.0);
        assert_eq!(adjusted_rand_index(&a, &b), 1.0);
    }

    #[test]
    fn disagreement_lowers_scores() {
        let a = [0, 0, 0, 1, 1, 1];
        let b = [0, 0, 1, 1, 1, 1];
        assert!(rand_index(&a, &b) < 1.0);
        assert!(adjusted_rand_index(&a, &b) < 1.0);
    }

    #[test]
    fn known_rand_value() {
        // a: {0,1},{2}; b: {0},{1,2} → pairs: (0,1) together/apart,
        // (0,2) apart/apart agree, (1,2) apart/together → 1/3 agree.
        let a = [0, 0, 1];
        let b = [0, 1, 1];
        assert!((rand_index(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ari_near_zero_for_random_like_partitions() {
        let a = [0, 1, 0, 1, 0, 1, 0, 1];
        let b = [0, 0, 1, 1, 0, 0, 1, 1];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.5, "ari = {ari}");
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(rand_index(&[], &[]), 1.0);
        assert_eq!(rand_index(&[0], &[3]), 1.0);
        assert_eq!(adjusted_rand_index(&[0], &[1]), 1.0);
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn length_mismatch_panics() {
        rand_index(&[0, 1], &[0]);
    }
}
