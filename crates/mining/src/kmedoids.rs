//! K-medoids clustering (PAM-style alternation, Park & Jun \[5\]).

use crate::order::nan_last_cmp;
use dpe_distance::DistanceMatrix;

/// Result of a k-medoids run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KMedoidsResult {
    /// Medoid item indices, one per cluster, sorted ascending.
    pub medoids: Vec<usize>,
    /// Cluster assignment per item: `assignment[i]` indexes `medoids`.
    pub assignment: Vec<usize>,
    /// Number of update iterations performed.
    pub iterations: usize,
}

impl KMedoidsResult {
    /// Total within-cluster cost Σ d(i, medoid(i)).
    ///
    /// **Deterministic by contract**: the sum folds items in stable index
    /// order `0..n`, so equal matrices and equal assignments always yield
    /// the *bit-identical* float — float addition is order-sensitive, and
    /// the serving layer caches responses (including this cost) under
    /// bit-exact fingerprints, so any summation-order freedom here would be
    /// a cache-soundness bug.
    pub fn cost(&self, matrix: &DistanceMatrix) -> f64 {
        (0..self.assignment.len()).fold(0.0f64, |acc, i| {
            acc + matrix.get(i, self.medoids[self.assignment[i]])
        })
    }
}

/// Runs k-medoids on a distance matrix.
///
/// Deterministic throughout: initial medoids are chosen by the Park & Jun
/// heuristic (items minimizing the sum of normalized distances), assignment
/// ties break toward the lower medoid index, and the update step picks the
/// lowest-index cost-minimizing medoid. Panics when `k` is zero or exceeds
/// the item count.
pub fn kmedoids(matrix: &DistanceMatrix, k: usize) -> KMedoidsResult {
    let n = matrix.len();
    assert!(k >= 1 && k <= n, "k must be in 1..=n (k={k}, n={n})");

    // Park & Jun initialization: v_j = Σ_i d(i,j) / Σ_l d(i,l); take the k
    // smallest v_j.
    let row_sums: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|l| matrix.get(i, l)).sum::<f64>())
        .collect();
    let mut scores: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let v = (0..n)
                .map(|i| {
                    if row_sums[i] > 0.0 {
                        matrix.get(i, j) / row_sums[i]
                    } else {
                        0.0
                    }
                })
                .sum::<f64>();
            (v, j)
        })
        .collect();
    // NaN seeding scores (degenerate measures) sort last — either NaN sign
    // — rather than panicking, so they are never picked as initial medoids.
    scores.sort_by(|a, b| nan_last_cmp(a.0, b.0).then(a.1.cmp(&b.1)));
    let mut medoids: Vec<usize> = scores.iter().take(k).map(|&(_, j)| j).collect();
    medoids.sort_unstable();

    let mut assignment = assign(matrix, &medoids);
    let mut iterations = 0;
    loop {
        iterations += 1;
        // Update: per cluster, the member minimizing the in-cluster distance
        // sum becomes the medoid.
        let mut new_medoids = medoids.clone();
        for (c, slot) in new_medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            // nan_last_cmp: a NaN cost loses to every finite cost, and if
            // *every* cost is NaN the lowest-index member still wins — the
            // usize::MAX sentinel must never escape as a "medoid". The
            // explicit Equal arm pins the tie-break to the lowest item
            // index whatever order `members` is visited in: cost ties are
            // common on symmetric stores, and an order-dependent winner
            // would make equal matrices disagree on medoid identity —
            // unsound for fingerprint-keyed response caching.
            let mut best = (f64::INFINITY, usize::MAX);
            for &candidate in &members {
                let cost: f64 = members.iter().map(|&m| matrix.get(candidate, m)).sum();
                let better = best.1 == usize::MAX
                    || match nan_last_cmp(cost, best.0) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => candidate < best.1,
                        std::cmp::Ordering::Greater => false,
                    };
                if better {
                    best = (cost, candidate);
                }
            }
            *slot = best.1;
        }
        new_medoids.sort_unstable();
        let new_assignment = assign(matrix, &new_medoids);
        if new_medoids == medoids && new_assignment == assignment {
            break;
        }
        medoids = new_medoids;
        assignment = new_assignment;
        if iterations > n {
            break; // cost is non-increasing; this is a safety valve
        }
    }

    KMedoidsResult {
        medoids,
        assignment,
        iterations,
    }
}

fn assign(matrix: &DistanceMatrix, medoids: &[usize]) -> Vec<usize> {
    (0..matrix.len())
        .map(|i| {
            // `medoids` is sorted ascending and the comparison is strict,
            // so distance ties deterministically assign to the lowest
            // medoid index (and an all-NaN row falls through to cluster 0).
            let mut best = (f64::INFINITY, 0usize);
            for (c, &m) in medoids.iter().enumerate() {
                let d = matrix.get(i, m);
                if d < best.0 {
                    best = (d, c);
                }
            }
            best.1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight groups far apart.
    fn two_blobs() -> DistanceMatrix {
        // Items 0-2 mutually close, 3-5 mutually close, groups far apart.
        DistanceMatrix::from_fn(6, |i, j| {
            let gi = i / 3;
            let gj = j / 3;
            if gi == gj {
                0.1
            } else {
                1.0
            }
        })
    }

    #[test]
    fn separates_two_blobs() {
        let r = kmedoids(&two_blobs(), 2);
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[1], r.assignment[2]);
        assert_eq!(r.assignment[3], r.assignment[4]);
        assert_eq!(r.assignment[4], r.assignment[5]);
        assert_ne!(r.assignment[0], r.assignment[3]);
    }

    #[test]
    fn k_equals_n_zero_cost() {
        let m = two_blobs();
        let r = kmedoids(&m, 6);
        assert_eq!(r.cost(&m), 0.0);
        assert_eq!(r.medoids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn k_one_single_cluster() {
        let r = kmedoids(&two_blobs(), 1);
        assert!(r.assignment.iter().all(|&c| c == 0));
    }

    #[test]
    fn deterministic() {
        let m = DistanceMatrix::from_fn(20, |i, j| ((i * 7 + j * 13) % 17) as f64 / 17.0 + 0.01);
        assert_eq!(kmedoids(&m, 4), kmedoids(&m, 4));
    }

    #[test]
    fn cost_never_worse_than_initialization() {
        let m = DistanceMatrix::from_fn(15, |i, j| ((i + j) % 7) as f64 / 7.0 + 0.05);
        let r = kmedoids(&m, 3);
        // Final medoids are local optima: swapping any medoid for any other
        // member of its cluster must not lower in-cluster cost.
        for (c, &medoid) in r.medoids.iter().enumerate() {
            let members: Vec<usize> = (0..m.len()).filter(|&i| r.assignment[i] == c).collect();
            let current: f64 = members.iter().map(|&x| m.get(medoid, x)).sum();
            for &alt in &members {
                let alt_cost: f64 = members.iter().map(|&x| m.get(alt, x)).sum();
                assert!(alt_cost >= current - 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn zero_k_panics() {
        kmedoids(&two_blobs(), 0);
    }

    /// A symmetric pseudo-random matrix from one seed (xorshift-mixed LCG,
    /// no RNG dependency needed).
    fn seeded_matrix(seed: u64, n: usize) -> DistanceMatrix {
        DistanceMatrix::from_fn(n, |i, j| {
            let (lo, hi) = (i.min(j) as u64, i.max(j) as u64);
            let mut s = seed ^ (lo.wrapping_mul(0x9E3779B97F4A7C15)) ^ (hi << 32);
            s ^= s >> 33;
            s = s.wrapping_mul(0xFF51AFD7ED558CCD);
            s ^= s >> 33;
            (s % 10_000) as f64 / 10_000.0 + 0.001
        })
    }

    #[test]
    fn seeded_runs_are_bit_identical_including_cost() {
        // The serving layer caches k-medoids answers (medoids, assignment
        // AND cost) under bit-exact fingerprints: two runs on equal
        // matrices must agree on everything down to the cost's bit pattern.
        for seed in [0xA11CE, 0xB0B, 0xD15EA5E] {
            for (n, k) in [(17, 3), (24, 5), (9, 9)] {
                let m1 = seeded_matrix(seed, n);
                let m2 = seeded_matrix(seed, n);
                let (r1, r2) = (kmedoids(&m1, k), kmedoids(&m2, k));
                assert_eq!(r1, r2, "seed {seed:#x}, n={n}, k={k}");
                assert_eq!(
                    r1.cost(&m1).to_bits(),
                    r2.cost(&m2).to_bits(),
                    "cost bits diverged for seed {seed:#x}, n={n}, k={k}"
                );
            }
        }
    }

    #[test]
    fn medoid_update_ties_break_to_the_lowest_index() {
        // Four items pairwise equidistant: every member of every cluster
        // ties on in-cluster cost, so the chosen medoids are decided purely
        // by the tie-break — which must pick the lowest item indices.
        let m = DistanceMatrix::from_fn(4, |_, _| 1.0);
        let r = kmedoids(&m, 2);
        assert_eq!(r.medoids, vec![0, 1]);
        // Assignment ties (equidistant to both medoids) go to the lower
        // medoid index; items 2 and 3 are distance 1 from both.
        assert_eq!(r.assignment[2], 0);
        assert_eq!(r.assignment[3], 0);
    }
}
