//! K-medoids clustering (PAM-style alternation, Park & Jun \[5\]).

use crate::order::nan_last_cmp;
use dpe_distance::DistanceMatrix;

/// Result of a k-medoids run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KMedoidsResult {
    /// Medoid item indices, one per cluster, sorted ascending.
    pub medoids: Vec<usize>,
    /// Cluster assignment per item: `assignment[i]` indexes `medoids`.
    pub assignment: Vec<usize>,
    /// Number of update iterations performed.
    pub iterations: usize,
}

impl KMedoidsResult {
    /// Total within-cluster cost Σ d(i, medoid(i)) ×1 (sum of distances).
    pub fn cost(&self, matrix: &DistanceMatrix) -> f64 {
        self.assignment
            .iter()
            .enumerate()
            .map(|(i, &c)| matrix.get(i, self.medoids[c]))
            .sum()
    }
}

/// Runs k-medoids on a distance matrix.
///
/// Deterministic throughout: initial medoids are chosen by the Park & Jun
/// heuristic (items minimizing the sum of normalized distances), assignment
/// ties break toward the lower medoid index, and the update step picks the
/// lowest-index cost-minimizing medoid. Panics when `k` is zero or exceeds
/// the item count.
pub fn kmedoids(matrix: &DistanceMatrix, k: usize) -> KMedoidsResult {
    let n = matrix.len();
    assert!(k >= 1 && k <= n, "k must be in 1..=n (k={k}, n={n})");

    // Park & Jun initialization: v_j = Σ_i d(i,j) / Σ_l d(i,l); take the k
    // smallest v_j.
    let row_sums: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|l| matrix.get(i, l)).sum::<f64>())
        .collect();
    let mut scores: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let v = (0..n)
                .map(|i| {
                    if row_sums[i] > 0.0 {
                        matrix.get(i, j) / row_sums[i]
                    } else {
                        0.0
                    }
                })
                .sum::<f64>();
            (v, j)
        })
        .collect();
    // NaN seeding scores (degenerate measures) sort last — either NaN sign
    // — rather than panicking, so they are never picked as initial medoids.
    scores.sort_by(|a, b| nan_last_cmp(a.0, b.0).then(a.1.cmp(&b.1)));
    let mut medoids: Vec<usize> = scores.iter().take(k).map(|&(_, j)| j).collect();
    medoids.sort_unstable();

    let mut assignment = assign(matrix, &medoids);
    let mut iterations = 0;
    loop {
        iterations += 1;
        // Update: per cluster, the member minimizing the in-cluster distance
        // sum becomes the medoid.
        let mut new_medoids = medoids.clone();
        for (c, slot) in new_medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            // nan_last_cmp: a NaN cost loses to every finite cost, and if
            // *every* cost is NaN the lowest-index member still wins — the
            // usize::MAX sentinel must never escape as a "medoid".
            let mut best = (f64::INFINITY, usize::MAX);
            for &candidate in &members {
                let cost: f64 = members.iter().map(|&m| matrix.get(candidate, m)).sum();
                if best.1 == usize::MAX || nan_last_cmp(cost, best.0).is_lt() {
                    best = (cost, candidate);
                }
            }
            *slot = best.1;
        }
        new_medoids.sort_unstable();
        let new_assignment = assign(matrix, &new_medoids);
        if new_medoids == medoids && new_assignment == assignment {
            break;
        }
        medoids = new_medoids;
        assignment = new_assignment;
        if iterations > n {
            break; // cost is non-increasing; this is a safety valve
        }
    }

    KMedoidsResult {
        medoids,
        assignment,
        iterations,
    }
}

fn assign(matrix: &DistanceMatrix, medoids: &[usize]) -> Vec<usize> {
    (0..matrix.len())
        .map(|i| {
            let mut best = (f64::INFINITY, 0usize);
            for (c, &m) in medoids.iter().enumerate() {
                let d = matrix.get(i, m);
                if d < best.0 {
                    best = (d, c);
                }
            }
            best.1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight groups far apart.
    fn two_blobs() -> DistanceMatrix {
        // Items 0-2 mutually close, 3-5 mutually close, groups far apart.
        DistanceMatrix::from_fn(6, |i, j| {
            let gi = i / 3;
            let gj = j / 3;
            if gi == gj {
                0.1
            } else {
                1.0
            }
        })
    }

    #[test]
    fn separates_two_blobs() {
        let r = kmedoids(&two_blobs(), 2);
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[1], r.assignment[2]);
        assert_eq!(r.assignment[3], r.assignment[4]);
        assert_eq!(r.assignment[4], r.assignment[5]);
        assert_ne!(r.assignment[0], r.assignment[3]);
    }

    #[test]
    fn k_equals_n_zero_cost() {
        let m = two_blobs();
        let r = kmedoids(&m, 6);
        assert_eq!(r.cost(&m), 0.0);
        assert_eq!(r.medoids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn k_one_single_cluster() {
        let r = kmedoids(&two_blobs(), 1);
        assert!(r.assignment.iter().all(|&c| c == 0));
    }

    #[test]
    fn deterministic() {
        let m = DistanceMatrix::from_fn(20, |i, j| ((i * 7 + j * 13) % 17) as f64 / 17.0 + 0.01);
        assert_eq!(kmedoids(&m, 4), kmedoids(&m, 4));
    }

    #[test]
    fn cost_never_worse_than_initialization() {
        let m = DistanceMatrix::from_fn(15, |i, j| ((i + j) % 7) as f64 / 7.0 + 0.05);
        let r = kmedoids(&m, 3);
        // Final medoids are local optima: swapping any medoid for any other
        // member of its cluster must not lower in-cluster cost.
        for (c, &medoid) in r.medoids.iter().enumerate() {
            let members: Vec<usize> = (0..m.len()).filter(|&i| r.assignment[i] == c).collect();
            let current: f64 = members.iter().map(|&x| m.get(medoid, x)).sum();
            for &alt in &members {
                let alt_cost: f64 = members.iter().map(|&x| m.get(alt, x)).sum();
                assert!(alt_cost >= current - 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn zero_k_panics() {
        kmedoids(&two_blobs(), 0);
    }
}
