//! Range queries (ε-neighbourhoods) over a distance matrix.
//!
//! The third classic query shape the outsourcing model must serve next to
//! kNN and outlier scoring: "everything within distance `radius` of item
//! `i`". DBSCAN's region queries are exactly this, but the serving layer
//! needs it as a standalone primitive.

use dpe_distance::DistanceMatrix;

/// All items within `radius` of item `i` (excluding `i` itself), in
/// ascending index order. The boundary is inclusive (`d ≤ radius`), matching
/// DBSCAN's ε-neighbourhood convention; a NaN distance from a degenerate
/// measure never qualifies.
pub fn range_indices(matrix: &DistanceMatrix, i: usize, radius: f64) -> Vec<usize> {
    let n = matrix.len();
    assert!(i < n, "query index {i} out of bounds (n={n})");
    (0..n)
        .filter(|&j| j != i && matrix.get(i, j) <= radius)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> DistanceMatrix {
        let pos: [f64; 5] = [0.0, 1.0, 3.0, 7.0, 20.0];
        DistanceMatrix::from_fn(5, |i, j| (pos[i] - pos[j]).abs())
    }

    #[test]
    fn inclusive_boundary_ascending_order() {
        assert_eq!(range_indices(&line(), 0, 3.0), vec![1, 2]);
        assert_eq!(range_indices(&line(), 2, 4.0), vec![0, 1, 3]);
    }

    #[test]
    fn excludes_self_even_at_radius_zero() {
        assert!(range_indices(&line(), 1, 0.0).is_empty());
        let dup = DistanceMatrix::from_fn(3, |_, _| 0.0);
        // Duplicates at distance 0 are within every radius; self is not.
        assert_eq!(range_indices(&dup, 1, 0.0), vec![0, 2]);
    }

    #[test]
    fn huge_radius_returns_everyone_else() {
        assert_eq!(range_indices(&line(), 4, f64::INFINITY), vec![0, 1, 2, 3]);
    }

    #[test]
    fn nan_distances_never_qualify() {
        let m = DistanceMatrix::from_fn(3, |i, j| if i == 0 && j == 1 { f64::NAN } else { 1.0 });
        assert_eq!(range_indices(&m, 0, 10.0), vec![2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_query_index_panics() {
        range_indices(&line(), 5, 1.0);
    }
}
