//! Total float orderings for mining-internal sorts.

use std::cmp::Ordering;

/// Total ascending order with **every** NaN after every number.
///
/// `f64::total_cmp` alone is total but sign-sensitive: negative NaN sorts
/// *before* −∞, and runtime 0.0/0.0 produces negative NaN on x86-64 — so a
/// degenerate measure's NaN would rank as the *nearest* neighbour. Keying
/// on `is_nan()` first sends either NaN sign to the far end, which is the
/// "maximally distant / worst score" reading every algorithm here wants.
#[inline]
pub(crate) fn nan_last_cmp(a: f64, b: f64) -> Ordering {
    a.is_nan().cmp(&b.is_nan()).then_with(|| a.total_cmp(&b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_nan_signs_sort_last() {
        let neg_nan = -f64::NAN;
        assert!(neg_nan.is_nan() && neg_nan.is_sign_negative());
        let mut v = [
            1.0,
            neg_nan,
            f64::NEG_INFINITY,
            f64::NAN,
            0.0,
            f64::INFINITY,
        ];
        v.sort_by(|a, b| nan_last_cmp(*a, *b));
        assert_eq!(v[0], f64::NEG_INFINITY);
        assert_eq!(v[3], f64::INFINITY);
        assert!(v[4].is_nan() && v[5].is_nan());
        // And deterministically: −NaN before +NaN via total_cmp.
        assert!(v[4].is_sign_negative() && v[5].is_sign_positive());
    }
}
