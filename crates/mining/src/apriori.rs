//! Apriori association-rule mining over transactions.
//!
//! The paper's conclusion points out that "result equivalence for SQL
//! queries is also useful for association-rule mining over encrypted SQL
//! logs \[17\]": treating each query's characteristic set (features, accessed
//! attributes, result tuples) as a *transaction*, frequent itemsets and
//! rules are functions of set equalities only — so any c-equivalent
//! encryption preserves them up to item renaming. The
//! `association_rules_encrypted` integration test exercises exactly that.
//!
//! Classic level-wise Apriori (Agrawal & Srikant): generate candidate
//! k-itemsets from frequent (k−1)-itemsets, prune by the downward-closure
//! property, count, repeat.

use std::collections::{BTreeMap, BTreeSet};

/// A transaction: a set of items.
pub type Transaction<T> = BTreeSet<T>;

/// A frequent itemset with its absolute support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset<T: Ord> {
    /// The items.
    pub items: BTreeSet<T>,
    /// Number of transactions containing all of them.
    pub support: usize,
}

/// An association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule<T: Ord> {
    /// Left-hand side (non-empty).
    pub antecedent: BTreeSet<T>,
    /// Right-hand side (non-empty, disjoint from the antecedent).
    pub consequent: BTreeSet<T>,
    /// Support of antecedent ∪ consequent (absolute count).
    pub support: usize,
    /// Confidence = support(A ∪ C) / support(A).
    pub confidence: f64,
}

/// Mines all frequent itemsets with `support ≥ min_support` (absolute
/// count, ≥ 1). Returns them ordered by (size, items).
pub fn frequent_itemsets<T: Ord + Clone>(
    transactions: &[Transaction<T>],
    min_support: usize,
) -> Vec<FrequentItemset<T>> {
    assert!(min_support >= 1, "min_support must be at least 1");
    let mut result: Vec<FrequentItemset<T>> = Vec::new();

    // Level 1: frequent single items.
    let mut counts: BTreeMap<&T, usize> = BTreeMap::new();
    for t in transactions {
        for item in t {
            *counts.entry(item).or_default() += 1;
        }
    }
    let mut current: Vec<BTreeSet<T>> = counts
        .iter()
        .filter(|(_, &c)| c >= min_support)
        .map(|(item, _)| {
            let mut s = BTreeSet::new();
            s.insert((*item).clone());
            s
        })
        .collect();
    for itemset in &current {
        let support = count_support(transactions, itemset);
        result.push(FrequentItemset {
            items: itemset.clone(),
            support,
        });
    }

    // Level k: join frequent (k−1)-itemsets sharing a (k−2)-prefix.
    while !current.is_empty() {
        let mut candidates: BTreeSet<BTreeSet<T>> = BTreeSet::new();
        for i in 0..current.len() {
            for j in i + 1..current.len() {
                let union: BTreeSet<T> = current[i].union(&current[j]).cloned().collect();
                if union.len() != current[i].len() + 1 {
                    continue;
                }
                // Downward closure: every (k−1)-subset must be frequent.
                let all_subsets_frequent = union.iter().all(|drop| {
                    let mut sub = union.clone();
                    sub.remove(drop);
                    current.contains(&sub)
                });
                if all_subsets_frequent {
                    candidates.insert(union);
                }
            }
        }
        let mut next = Vec::new();
        for candidate in candidates {
            let support = count_support(transactions, &candidate);
            if support >= min_support {
                result.push(FrequentItemset {
                    items: candidate.clone(),
                    support,
                });
                next.push(candidate);
            }
        }
        current = next;
    }

    result.sort_by(|a, b| {
        a.items
            .len()
            .cmp(&b.items.len())
            .then(a.items.cmp(&b.items))
    });
    result
}

fn count_support<T: Ord>(transactions: &[Transaction<T>], itemset: &BTreeSet<T>) -> usize {
    transactions.iter().filter(|t| itemset.is_subset(t)).count()
}

/// Generates all rules with `confidence ≥ min_confidence` from the frequent
/// itemsets (single-consequent rules, the common Apriori output).
pub fn association_rules<T: Ord + Clone>(
    transactions: &[Transaction<T>],
    itemsets: &[FrequentItemset<T>],
    min_confidence: f64,
) -> Vec<Rule<T>> {
    assert!((0.0..=1.0).contains(&min_confidence));
    let mut rules = Vec::new();
    for fi in itemsets.iter().filter(|fi| fi.items.len() >= 2) {
        for consequent_item in &fi.items {
            let mut antecedent = fi.items.clone();
            antecedent.remove(consequent_item);
            let antecedent_support = count_support(transactions, &antecedent);
            if antecedent_support == 0 {
                continue;
            }
            let confidence = fi.support as f64 / antecedent_support as f64;
            if confidence >= min_confidence {
                let mut consequent = BTreeSet::new();
                consequent.insert(consequent_item.clone());
                rules.push(Rule {
                    antecedent,
                    consequent,
                    support: fi.support,
                    confidence,
                });
            }
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(b.support.cmp(&a.support))
            .then(a.antecedent.cmp(&b.antecedent))
    });
    rules
}

/// The *shape* of a rule set: (antecedent size, consequent size, support,
/// confidence bits) per rule — invariant under any item renaming, which is
/// what an encrypted mining run must reproduce exactly.
pub fn rule_shape<T: Ord>(rules: &[Rule<T>]) -> Vec<(usize, usize, usize, u64)> {
    let mut shape: Vec<_> = rules
        .iter()
        .map(|r| {
            (
                r.antecedent.len(),
                r.consequent.len(),
                r.support,
                r.confidence.to_bits(),
            )
        })
        .collect();
    shape.sort_unstable();
    shape
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(items: &[&str]) -> Transaction<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    /// The textbook market-basket example.
    fn baskets() -> Vec<Transaction<String>> {
        vec![
            t(&["bread", "milk"]),
            t(&["bread", "diapers", "beer", "eggs"]),
            t(&["milk", "diapers", "beer", "cola"]),
            t(&["bread", "milk", "diapers", "beer"]),
            t(&["bread", "milk", "diapers", "cola"]),
        ]
    }

    #[test]
    fn frequent_singletons() {
        let fi = frequent_itemsets(&baskets(), 3);
        let singles: Vec<_> = fi
            .iter()
            .filter(|f| f.items.len() == 1)
            .map(|f| (f.items.iter().next().unwrap().clone(), f.support))
            .collect();
        assert!(singles.contains(&("bread".into(), 4)));
        assert!(singles.contains(&("milk".into(), 4)));
        assert!(singles.contains(&("diapers".into(), 4)));
        assert!(singles.contains(&("beer".into(), 3)));
        assert!(!singles.iter().any(|(i, _)| i == "cola")); // support 2 < 3
    }

    #[test]
    fn frequent_pairs_via_downward_closure() {
        let fi = frequent_itemsets(&baskets(), 3);
        let pair: BTreeSet<String> = t(&["beer", "diapers"]);
        let found = fi
            .iter()
            .find(|f| f.items == pair)
            .expect("beer+diapers is frequent");
        assert_eq!(found.support, 3);
    }

    #[test]
    fn rules_have_correct_confidence() {
        let fi = frequent_itemsets(&baskets(), 3);
        let rules = association_rules(&baskets(), &fi, 0.7);
        // {beer} ⇒ {diapers}: support 3, antecedent support 3 → confidence 1.
        let rule = rules
            .iter()
            .find(|r| r.antecedent == t(&["beer"]) && r.consequent == t(&["diapers"]))
            .expect("beer ⇒ diapers");
        assert_eq!(rule.confidence, 1.0);
        assert_eq!(rule.support, 3);
        // All reported rules meet the threshold.
        assert!(rules.iter().all(|r| r.confidence >= 0.7));
    }

    #[test]
    fn min_support_monotone() {
        let lo = frequent_itemsets(&baskets(), 2);
        let hi = frequent_itemsets(&baskets(), 4);
        assert!(hi.len() < lo.len());
        // Every itemset frequent at the high threshold is frequent at the low.
        for f in &hi {
            assert!(lo.iter().any(|g| g.items == f.items));
        }
    }

    #[test]
    fn renaming_items_preserves_rule_shape() {
        // The DPE argument in miniature: a bijective item renaming (what a
        // DET encryption does to feature sets) keeps supports/confidences.
        let plain = baskets();
        let renamed: Vec<Transaction<String>> = plain
            .iter()
            .map(|tx| tx.iter().map(|i| format!("enc_{i}")).collect())
            .collect();
        let fi_p = frequent_itemsets(&plain, 3);
        let fi_e = frequent_itemsets(&renamed, 3);
        let rules_p = association_rules(&plain, &fi_p, 0.6);
        let rules_e = association_rules(&renamed, &fi_e, 0.6);
        assert_eq!(rule_shape(&rules_p), rule_shape(&rules_e));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let none: Vec<Transaction<String>> = Vec::new();
        assert!(frequent_itemsets(&none, 1).is_empty());
        let one = vec![t(&["a"])];
        let fi = frequent_itemsets(&one, 1);
        assert_eq!(fi.len(), 1);
        assert!(association_rules(&one, &fi, 0.5).is_empty());
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn zero_support_panics() {
        frequent_itemsets(&baskets(), 0);
    }
}
