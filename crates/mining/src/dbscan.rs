//! DBSCAN (Ester et al. \[4\]) over a distance matrix.

use dpe_distance::DistanceMatrix;

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy)]
pub struct DbscanConfig {
    /// Neighbourhood radius (inclusive: `d ≤ eps`).
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

/// Per-item DBSCAN label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbscanLabel {
    /// Member of cluster `id` (0-based, in discovery order).
    Cluster(usize),
    /// Noise.
    Noise,
}

/// Runs DBSCAN. Deterministic: points are seeded in index order, so cluster
/// ids are stable for equal matrices.
pub fn dbscan(matrix: &DistanceMatrix, config: DbscanConfig) -> Vec<DbscanLabel> {
    let n = matrix.len();
    let neighbours =
        |i: usize| -> Vec<usize> { (0..n).filter(|&j| matrix.get(i, j) <= config.eps).collect() };

    let mut labels = vec![None::<DbscanLabel>; n];
    let mut next_cluster = 0usize;

    for seed in 0..n {
        if labels[seed].is_some() {
            continue;
        }
        let seed_neigh = neighbours(seed);
        if seed_neigh.len() < config.min_pts {
            labels[seed] = Some(DbscanLabel::Noise);
            continue;
        }
        let cluster = next_cluster;
        next_cluster += 1;
        labels[seed] = Some(DbscanLabel::Cluster(cluster));
        // Expand over density-reachable points (classic queue expansion).
        let mut queue: std::collections::VecDeque<usize> = seed_neigh.into();
        while let Some(p) = queue.pop_front() {
            match labels[p] {
                Some(DbscanLabel::Noise) => {
                    // Border point adopted by the cluster.
                    labels[p] = Some(DbscanLabel::Cluster(cluster));
                }
                Some(DbscanLabel::Cluster(_)) => continue,
                None => {
                    labels[p] = Some(DbscanLabel::Cluster(cluster));
                    let p_neigh = neighbours(p);
                    if p_neigh.len() >= config.min_pts {
                        queue.extend(p_neigh);
                    }
                }
            }
        }
    }

    labels
        .into_iter()
        .map(|l| l.expect("every point labelled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs_with_noise() -> DistanceMatrix {
        // 0-3: dense blob A; 4-7: dense blob B; 8: far from everything.
        DistanceMatrix::from_fn(9, |i, j| {
            let group = |x: usize| {
                if x < 4 {
                    0
                } else if x < 8 {
                    1
                } else {
                    2
                }
            };
            if group(i) == group(j) {
                0.1
            } else {
                1.0
            }
        })
    }

    #[test]
    fn finds_two_clusters_and_noise() {
        let labels = dbscan(
            &blobs_with_noise(),
            DbscanConfig {
                eps: 0.2,
                min_pts: 3,
            },
        );
        assert_eq!(labels[0], DbscanLabel::Cluster(0));
        assert!(labels[..4].iter().all(|&l| l == DbscanLabel::Cluster(0)));
        assert!(labels[4..8].iter().all(|&l| l == DbscanLabel::Cluster(1)));
        assert_eq!(labels[8], DbscanLabel::Noise);
    }

    #[test]
    fn everything_noise_when_min_pts_too_high() {
        let labels = dbscan(
            &blobs_with_noise(),
            DbscanConfig {
                eps: 0.2,
                min_pts: 6,
            },
        );
        assert!(labels.iter().all(|&l| l == DbscanLabel::Noise));
    }

    #[test]
    fn one_cluster_when_eps_spans_all() {
        let labels = dbscan(
            &blobs_with_noise(),
            DbscanConfig {
                eps: 2.0,
                min_pts: 3,
            },
        );
        assert!(labels.iter().all(|&l| l == DbscanLabel::Cluster(0)));
    }

    #[test]
    fn border_points_join_first_discovered_cluster() {
        // Chain: 0-1-2 dense; 3 within eps of 2 only (border).
        let m = DistanceMatrix::from_fn(4, |i, j| {
            let d = (i as f64 - j as f64).abs();
            d * 0.3
        });
        let labels = dbscan(
            &m,
            DbscanConfig {
                eps: 0.35,
                min_pts: 3,
            },
        );
        // 0,1,2 core-ish chain; 3 is density-reachable border.
        assert_eq!(labels[0], DbscanLabel::Cluster(0));
        assert_eq!(labels[3], DbscanLabel::Cluster(0));
    }

    #[test]
    fn deterministic() {
        let m = DistanceMatrix::from_fn(25, |i, j| ((i * 3 + j * 11) % 13) as f64 / 13.0 + 0.02);
        let cfg = DbscanConfig {
            eps: 0.4,
            min_pts: 4,
        };
        assert_eq!(dbscan(&m, cfg), dbscan(&m, cfg));
    }

    #[test]
    fn empty_input() {
        let m = DistanceMatrix::from_fn(0, |_, _| 0.0);
        assert!(dbscan(
            &m,
            DbscanConfig {
                eps: 0.5,
                min_pts: 2
            }
        )
        .is_empty());
    }
}
