//! Regression: a NaN produced by a degenerate distance measure must not
//! panic mid-mining — and must rank as *maximally far*, whatever its sign.
//!
//! `knn_indices`, `lof`/`lof_outliers` and the `kmedoids` seeding used to
//! sort with `partial_cmp(..).expect(..)` / `.unwrap()`, so one NaN cell in
//! the distance matrix aborted the whole outsourced-mining run. All float
//! orderings now sort NaN last via an `is_nan()`-first key over
//! `f64::total_cmp`. The sign matters: runtime `0.0 / 0.0` produces
//! *negative* NaN on x86-64, and `total_cmp` alone would rank −NaN before
//! −∞ — i.e. as the **nearest** neighbour. Every test below therefore runs
//! with both NaN signs.

use dpe_distance::DistanceMatrix;
use dpe_mining::{
    db_outliers, dbscan, kmedoids, knn_indices, lof, lof_outliers, DbscanConfig, DbscanLabel,
    LofConfig, OutlierConfig,
};

/// Both NaN payloads a degenerate measure can hand the sorts. The negative
/// one is what `0.0 / 0.0` evaluates to at runtime on x86-64.
fn nan_values() -> [f64; 3] {
    let num = std::hint::black_box(0.0f64);
    let den = std::hint::black_box(0.0f64);
    [f64::NAN, -f64::NAN, num / den]
}

/// Points on a line, except the pair (2, 5) whose distance is `nan` — the
/// shape a degenerate measure (0/0-style division) would produce.
fn nan_bearing_matrix(nan: f64) -> DistanceMatrix {
    let pos: [f64; 8] = [0.0, 0.5, 1.0, 1.5, 10.0, 10.5, 11.0, 50.0];
    DistanceMatrix::from_fn(8, |i, j| {
        if (i, j) == (2, 5) {
            nan
        } else {
            (pos[i] - pos[j]).abs()
        }
    })
}

#[test]
fn knn_survives_nan_and_sorts_it_last() {
    for nan in nan_values() {
        let m = nan_bearing_matrix(nan);
        // Full ranking from point 2: the NaN neighbour (5) must come last.
        let ranked = knn_indices(&m, 2, 7);
        assert_eq!(ranked.len(), 7);
        assert_eq!(
            *ranked.last().unwrap(),
            5,
            "NaN distance must rank last, got {ranked:?} (nan = {nan})"
        );
        // And from the other endpoint of the NaN pair symmetrically.
        let ranked = knn_indices(&m, 5, 7);
        assert_eq!(*ranked.last().unwrap(), 2);
        // A small k never touches the NaN pair — in particular the NaN is
        // NOT the nearest neighbour (the −NaN failure mode of bare
        // total_cmp).
        assert_eq!(knn_indices(&m, 2, 2), vec![1, 3]);
        assert_eq!(knn_indices(&m, 5, 1), vec![4]);
    }
}

#[test]
fn lof_survives_nan() {
    for nan in nan_values() {
        let m = nan_bearing_matrix(nan);
        let scores = lof(&m, LofConfig { min_pts: 3 });
        assert_eq!(scores.len(), 8);
        // Points far from the NaN pair keep finite, sensible scores.
        assert!(scores[0].is_finite() && scores[7].is_finite(), "{scores:?}");
        // The genuine singleton still dominates every finite score.
        let finite_max = scores
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_finite())
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(finite_max, 7, "{scores:?}");
    }
}

#[test]
fn lof_outliers_survives_nan_and_excludes_nan_scores() {
    for nan in nan_values() {
        let m = nan_bearing_matrix(nan);
        let out = lof_outliers(&m, LofConfig { min_pts: 3 }, 1.5);
        // NaN > threshold is false, so a NaN score can never be reported.
        let scores = lof(&m, LofConfig { min_pts: 3 });
        for &i in &out {
            assert!(!scores[i].is_nan());
        }
        assert!(out.contains(&7), "the real outlier survives: {out:?}");
    }
}

#[test]
fn kmedoids_survives_nan() {
    for nan in nan_values() {
        let m = nan_bearing_matrix(nan);
        let r = kmedoids(&m, 3);
        assert_eq!(r.assignment.len(), 8);
        assert_eq!(r.medoids.len(), 3);
        assert!(r.assignment.iter().all(|&c| c < 3));
        // Determinism is preserved under the NaN-last total order.
        assert_eq!(r, kmedoids(&m, 3));
    }
}

#[test]
fn kmedoids_survives_an_all_nan_cluster() {
    for nan in nan_values() {
        // Two items whose mutual distance is NaN, k = 1: every candidate
        // medoid cost in the update step is NaN. The old `cost < best.0`
        // comparison left the usize::MAX sentinel as the "medoid" and the
        // next assignment indexed out of bounds; the NaN-last order must
        // instead keep the lowest-index member.
        let m = DistanceMatrix::from_fn(2, |_, _| nan);
        let r = kmedoids(&m, 1);
        assert_eq!(r.medoids, vec![0], "nan = {nan}");
        assert_eq!(r.assignment, vec![0, 0]);
    }
}

#[test]
fn threshold_based_algorithms_survive_nan() {
    // dbscan and db_outliers only compare (no sort); NaN compares false on
    // both `<=` and `>`, i.e. a NaN edge is "not a neighbour" and "not
    // far" — pin that they run to completion and stay deterministic.
    for nan in nan_values() {
        let m = nan_bearing_matrix(nan);
        let cfg = DbscanConfig {
            eps: 0.6,
            min_pts: 3,
        };
        let labels = dbscan(&m, cfg);
        assert_eq!(labels.len(), 8);
        assert_eq!(labels[7], DbscanLabel::Noise);
        assert_eq!(labels, dbscan(&m, cfg));

        let out = db_outliers(&m, OutlierConfig { p: 0.8, d: 5.0 });
        assert_eq!(out, vec![7]);
    }
}
