//! Property tests for the clustering primitives the serving layer builds
//! plans from: for random symmetric dissimilarity matrices,
//! [`Dendrogram::cut`] must partition into exactly `k` canonical clusters
//! for every `1 ≤ k ≤ n`, merge heights must be monotone under every
//! linkage (all three rules are reducible, so the naive global-min
//! agglomeration can never invert), dendrograms must round-trip through
//! their canonical byte serialization, and DBSCAN labels must satisfy the
//! core/noise invariants in canonical wire form.

use dpe_distance::DistanceMatrix;
use dpe_mining::{
    agglomerative, canonical_dbscan_labels, canonical_labels, dbscan, DbscanConfig, DbscanLabel,
    Dendrogram, Linkage, NOISE,
};
use proptest::prelude::*;

const MAX_N: usize = 12;
const MAX_CELLS: usize = MAX_N * (MAX_N - 1) / 2;

/// A symmetric zero-diagonal matrix over the first `n(n−1)/2` sampled
/// cells, each in `[0, 1)` on a 1/1000 grid (so distance ties actually
/// happen and exercise the deterministic tie-breaks).
fn matrix(n: usize, cells: &[u64]) -> DistanceMatrix {
    DistanceMatrix::from_fn(n, |i, j| {
        if i == j {
            return 0.0;
        }
        let (lo, hi) = (i.min(j), i.max(j));
        (cells[hi * (hi - 1) / 2 + lo] % 1000) as f64 / 1000.0
    })
}

const LINKAGES: [Linkage; 3] = [Linkage::Complete, Linkage::Single, Linkage::Average];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cut_yields_exactly_k_canonical_clusters(
        n in 2usize..=MAX_N,
        cells in proptest::collection::vec(0u64..1_000_000, MAX_CELLS..MAX_CELLS + 1),
    ) {
        let m = matrix(n, &cells);
        for linkage in LINKAGES {
            let d = agglomerative(&m, linkage);
            prop_assert_eq!(d.n, n);
            prop_assert_eq!(d.merges.len(), n - 1);
            for k in 1..=n {
                let cut = d.cut(k);
                prop_assert_eq!(cut.len(), n);
                let mut seen: Vec<usize> = cut.clone();
                seen.sort_unstable();
                seen.dedup();
                prop_assert_eq!(seen.len(), k, "{:?} cut({}) must have k clusters", linkage, k);
                prop_assert_eq!(*cut.iter().max().unwrap(), k - 1);
                // Canonical: ids are already numbered by first appearance,
                // so canonicalization is the identity.
                let canon = canonical_labels(&cut);
                let as_i64: Vec<i64> = cut.iter().map(|&c| c as i64).collect();
                prop_assert_eq!(canon, as_i64, "{:?} cut({}) not canonical", linkage, k);
            }
            // The extremes: one cluster, and the identity partition.
            prop_assert!(d.cut(1).iter().all(|&c| c == 0));
            prop_assert_eq!(d.cut(n), (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn merge_heights_are_monotone_per_linkage(
        n in 2usize..=MAX_N,
        cells in proptest::collection::vec(0u64..1_000_000, MAX_CELLS..MAX_CELLS + 1),
    ) {
        let m = matrix(n, &cells);
        for linkage in LINKAGES {
            let d = agglomerative(&m, linkage);
            for pair in d.merges.windows(2) {
                prop_assert!(
                    pair[0].distance <= pair[1].distance,
                    "{:?} inverted: {} then {}",
                    linkage,
                    pair[0].distance,
                    pair[1].distance
                );
            }
            // Merge ids are allocated in order, operands always older.
            for (step, merge) in d.merges.iter().enumerate() {
                prop_assert_eq!(merge.id, n + step);
                prop_assert!(merge.a < merge.b && merge.b < merge.id);
            }
        }
    }

    #[test]
    fn dendrogram_serialization_round_trips(
        n in 2usize..=MAX_N,
        cells in proptest::collection::vec(0u64..1_000_000, MAX_CELLS..MAX_CELLS + 1),
    ) {
        let m = matrix(n, &cells);
        for linkage in LINKAGES {
            let d = agglomerative(&m, linkage);
            let back = Dendrogram::from_bytes(&d.to_bytes())
                .expect("canonical serialization must parse");
            prop_assert_eq!(&back, &d);
            prop_assert_eq!(back.digest(), d.digest());
        }
    }

    #[test]
    fn dbscan_core_and_noise_invariants_hold(
        n in 2usize..=MAX_N,
        cells in proptest::collection::vec(0u64..1_000_000, MAX_CELLS..MAX_CELLS + 1),
        eps_grid in 0u64..1_000,
        min_pts in 1usize..6,
    ) {
        let m = matrix(n, &cells);
        let eps = eps_grid as f64 / 1000.0;
        let labels = dbscan(&m, DbscanConfig { eps, min_pts });
        prop_assert_eq!(labels.len(), n);

        let neighbours = |i: usize| -> Vec<usize> {
            (0..n).filter(|&j| m.get(i, j) <= eps).collect()
        };
        for (i, label) in labels.iter().enumerate() {
            let degree = neighbours(i).len();
            match label {
                // Core points are always clustered, never noise.
                DbscanLabel::Noise => prop_assert!(
                    degree < min_pts,
                    "noise point {} has {} ≥ {} neighbours within eps",
                    i, degree, min_pts
                ),
                DbscanLabel::Cluster(_) => {}
            }
            if degree >= min_pts {
                prop_assert!(
                    matches!(label, DbscanLabel::Cluster(_)),
                    "core point {} left unclustered", i
                );
            }
        }

        // Two core points within eps of each other are directly
        // density-reachable, so they must share a cluster.
        for i in 0..n {
            for j in 0..n {
                if neighbours(i).len() >= min_pts
                    && neighbours(j).len() >= min_pts
                    && m.get(i, j) <= eps
                {
                    prop_assert_eq!(labels[i], labels[j], "split core pair ({}, {})", i, j);
                }
            }
        }

        // Canonical wire form: dbscan discovers clusters in index order, so
        // canonicalization is the identity mapping with noise at −1.
        let canon = canonical_dbscan_labels(&labels);
        let direct: Vec<i64> = labels
            .iter()
            .map(|l| match *l {
                DbscanLabel::Noise => NOISE,
                DbscanLabel::Cluster(id) => id as i64,
            })
            .collect();
        prop_assert_eq!(canon, direct);
    }
}
