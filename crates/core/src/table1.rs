//! Regenerates the paper's **Table I** from the Definition-6 engine and
//! cross-checks it against the published row contents.

use crate::notions::EquivalenceNotion;
use crate::selection::{derive_row, ConstChoice, TableRow};
use dpe_crypto::EncryptionClass;

/// The published Table I, row by row, as expectation data.
///
/// `enc_const` spells the paper's cell: `DET`, `PROB`, `via CryptDB`,
/// `via CryptDB, except HOM`.
pub struct ExpectedRow {
    /// Measure name.
    pub measure: &'static str,
    /// (log, db-content, domains).
    pub shared: (bool, bool, bool),
    /// Equivalence-notion name.
    pub notion: &'static str,
    /// Characteristic function c.
    pub characteristic: &'static str,
    /// EncRel cell.
    pub enc_rel: &'static str,
    /// EncAttr cell.
    pub enc_attr: &'static str,
    /// EncA.Const cell.
    pub enc_const: &'static str,
}

/// The four published rows.
pub const EXPECTED: [ExpectedRow; 4] = [
    ExpectedRow {
        measure: "Token-Based Query-String Distance",
        shared: (true, false, false),
        notion: "Token Equivalence",
        characteristic: "tokens",
        enc_rel: "DET",
        enc_attr: "DET",
        enc_const: "DET",
    },
    ExpectedRow {
        measure: "Query-Structure Distance",
        shared: (true, false, false),
        notion: "Structural Equivalence",
        characteristic: "features",
        enc_rel: "DET",
        enc_attr: "DET",
        enc_const: "PROB",
    },
    ExpectedRow {
        measure: "Query-Result Distance",
        shared: (true, true, false),
        notion: "Result Equivalence",
        characteristic: "result tuples",
        enc_rel: "DET",
        enc_attr: "DET",
        enc_const: "via CryptDB",
    },
    ExpectedRow {
        measure: "Query-Access-Area Distance",
        shared: (true, false, true),
        notion: "Access-Area Equivalence",
        characteristic: "access_A",
        enc_rel: "DET",
        enc_attr: "DET",
        enc_const: "via CryptDB, except HOM",
    },
];

/// Renders a derived constant choice the way the paper's table spells it.
pub fn render_const_choice(choice: &ConstChoice) -> String {
    match choice {
        ConstChoice::Uniform(c) => c.name().to_string(),
        ConstChoice::PerUsage {
            equality,
            range,
            aggregate_only,
        } => {
            // The CryptDB composite (DET for equality, OPE for ranges):
            // aggregate-only decides between "via CryptDB" (HOM) and
            // "via CryptDB, except HOM" (PROB).
            match (equality, range, aggregate_only) {
                (EncryptionClass::Det, EncryptionClass::Ope, EncryptionClass::Hom) => {
                    "via CryptDB".to_string()
                }
                (EncryptionClass::Det, EncryptionClass::Ope, EncryptionClass::Prob) => {
                    "via CryptDB, except HOM".to_string()
                }
                _ => format!("{choice}"),
            }
        }
    }
}

/// Derives all four rows.
pub fn derive_table() -> Vec<TableRow> {
    EquivalenceNotion::ALL
        .iter()
        .map(|&n| derive_row(n))
        .collect()
}

/// Checks the derived table against [`EXPECTED`]; returns mismatch
/// descriptions (empty = exact reproduction).
pub fn check_against_paper() -> Vec<String> {
    let mut mismatches = Vec::new();
    for (derived, expected) in derive_table().iter().zip(EXPECTED.iter()) {
        let notion = derived.notion;
        if notion.measure_name() != expected.measure {
            mismatches.push(format!(
                "measure name: {} != {}",
                notion.measure_name(),
                expected.measure
            ));
        }
        let s = notion.shared_information();
        if (s.log, s.db_content, s.domains) != expected.shared {
            mismatches.push(format!("{}: shared info mismatch", expected.measure));
        }
        if notion.name() != expected.notion {
            mismatches.push(format!("{}: notion name mismatch", expected.measure));
        }
        if notion.characteristic() != expected.characteristic {
            mismatches.push(format!("{}: characteristic mismatch", expected.measure));
        }
        if derived.enc_rel.name() != expected.enc_rel {
            mismatches.push(format!(
                "{}: EncRel {} != {}",
                expected.measure, derived.enc_rel, expected.enc_rel
            ));
        }
        if derived.enc_attr.name() != expected.enc_attr {
            mismatches.push(format!(
                "{}: EncAttr {} != {}",
                expected.measure, derived.enc_attr, expected.enc_attr
            ));
        }
        let rendered = render_const_choice(&derived.enc_const);
        if rendered != expected.enc_const {
            mismatches.push(format!(
                "{}: EncConst {} != {}",
                expected.measure, rendered, expected.enc_const
            ));
        }
    }
    mismatches
}

/// ASCII rendering of the derived table (the T1 experiment's output).
pub fn render_table() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<38} {:<22} {:<25} {:<14} {:<7} {:<8} {}\n",
        "Distance Measure",
        "Shared Information",
        "Equivalence Notion",
        "c",
        "EncRel",
        "EncAttr",
        "EncA.Const"
    ));
    out.push_str(&"-".repeat(140));
    out.push('\n');
    for row in derive_table() {
        let s = row.notion.shared_information();
        let shared = format!(
            "log:{} db:{} dom:{}",
            if s.log { "y" } else { "n" },
            if s.db_content { "y" } else { "n" },
            if s.domains { "y" } else { "n" }
        );
        out.push_str(&format!(
            "{:<38} {:<22} {:<25} {:<14} {:<7} {:<8} {}\n",
            row.notion.measure_name(),
            shared,
            row.notion.name(),
            row.notion.characteristic(),
            row.enc_rel.name(),
            row.enc_attr.name(),
            render_const_choice(&row.enc_const),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_table_matches_the_paper_exactly() {
        let mismatches = check_against_paper();
        assert!(mismatches.is_empty(), "Table I mismatches: {mismatches:#?}");
    }

    #[test]
    fn rendering_contains_all_cells() {
        let text = render_table();
        for expected in EXPECTED {
            assert!(
                text.contains(expected.measure),
                "missing {}",
                expected.measure
            );
            assert!(
                text.contains(expected.enc_const),
                "missing {}",
                expected.enc_const
            );
        }
    }

    #[test]
    fn four_rows() {
        assert_eq!(derive_table().len(), 4);
    }
}
