//! # dpe-core — the paper's contribution: KIT-DPE
//!
//! *Distance-Based Data Mining over Encrypted Data* (Tex, Schäler, Böhm —
//! ICDE 2018) proposes **distance-preserving encryption** (DPE) and the
//! **KIT-DPE** engineering procedure. This crate is that contribution,
//! executable:
//!
//! * [`dpe`] — Definition 1 (DPE) and Definition 2 (c-equivalence) as
//!   checkable predicates over query logs;
//! * [`taxonomy`] — Fig. 1: the property-preserving encryption class
//!   lattice with its security levels;
//! * [`notions`] — the four equivalence notions of the SQL case study
//!   (token, structural, result, access-area) with their per-slot
//!   requirements and shared-information columns;
//! * [`selection`] — Definition 6: *appropriate* class selection — for each
//!   slot, the maximally secure class that still ensures the notion;
//! * [`scheme`] — concrete, runnable DPE schemes for all four measures,
//!   built from the classes the selection engine picks;
//! * [`verify`] — the empirical harness: exhaustive pairwise
//!   distance-preservation checks, c-equivalence commuting squares, and
//!   mining-result invariance;
//! * [`table1`] — regenerates the paper's Table I from the machinery and
//!   cross-checks it against the published row contents;
//! * [`procedure`] — the four KIT-DPE steps as an orchestrated pipeline.

#![forbid(unsafe_code)]

pub mod dpe;
pub mod error;
pub mod notions;
pub mod procedure;
pub mod scheme;
pub mod selection;
pub mod table1;
pub mod taxonomy;
pub mod verify;

pub use dpe::DpeReport;
pub use error::CoreError;
pub use notions::{EquivalenceNotion, SharedInformation};
pub use scheme::{AccessAreaDpe, QueryEncryptor, ResultDpe, StructuralDpe, TokenDpe};
pub use selection::{ConstChoice, SlotChoice, TableRow};
pub use taxonomy::Taxonomy;

// The class enum lives in dpe-crypto (lowest common crate); it is part of
// this crate's conceptual API.
pub use dpe_crypto::EncryptionClass;
