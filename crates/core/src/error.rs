//! Error type for the KIT-DPE layer.

use dpe_cryptdb::CryptDbError;
use dpe_distance::DistanceError;
use std::fmt;

/// Errors from scheme construction, query encryption or verification.
#[derive(Debug)]
pub enum CoreError {
    /// An attribute needed by the scheme has no domain entry.
    MissingDomain(String),
    /// OPE constant encryption failed (out of domain / overflow).
    OpeFailure {
        /// Attribute.
        attribute: String,
        /// Offending value.
        value: i64,
    },
    /// Distance computation failed.
    Distance(DistanceError),
    /// CryptDB layer failure (result-distance scheme).
    CryptDb(CryptDbError),
    /// A constant's type conflicts with its attribute's domain.
    TypeMismatch {
        /// Attribute.
        attribute: String,
        /// Description of the conflict.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::MissingDomain(a) => write!(f, "attribute {a} has no domain"),
            CoreError::OpeFailure { attribute, value } => {
                write!(f, "OPE cannot encrypt {value} for attribute {attribute}")
            }
            CoreError::Distance(e) => write!(f, "distance computation failed: {e}"),
            CoreError::CryptDb(e) => write!(f, "CryptDB layer failed: {e}"),
            CoreError::TypeMismatch { attribute, detail } => {
                write!(f, "type mismatch on {attribute}: {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<DistanceError> for CoreError {
    fn from(e: DistanceError) -> Self {
        CoreError::Distance(e)
    }
}

impl From<CryptDbError> for CoreError {
    fn from(e: CryptDbError) -> Self {
        CoreError::CryptDb(e)
    }
}
