//! The four equivalence notions of the SQL case study (paper §IV-B) and the
//! *capability requirements* each imposes on the three encryption slots.
//!
//! A notion is ensured by an encryption class iff the class preserves the
//! plaintext properties the characteristic function depends on. Encoding
//! the requirement as a *capability predicate* (rather than hardcoding the
//! class) lets Definition 6 derive Table I instead of quoting it.

use dpe_crypto::EncryptionClass;
use std::fmt;

/// The four notions, one per distance measure of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EquivalenceNotion {
    /// `c = tokens` — token-based query-string distance.
    Token,
    /// `c = features` — query-structure distance.
    Structural,
    /// `c = result_tuples` — query-result distance (Definition 4).
    Result,
    /// `c = access_A` for every attribute — access-area distance.
    AccessArea,
}

/// The *Shared Information* columns of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedInformation {
    /// The (encrypted) query log itself.
    pub log: bool,
    /// The content of all accessed attributes (encrypted database).
    pub db_content: bool,
    /// The attribute domains.
    pub domains: bool,
}

/// The three slots of the high-level scheme (paper §IV-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// `EncRel`.
    Relation,
    /// `EncAttr`.
    Attribute,
    /// `EncA.Const` for constants of attribute `A`.
    Constant,
}

/// How constants of an attribute are *used* by queries, which determines
/// the capability their encryption must preserve. (The constant slot of the
/// result and access-area rows is usage-dependent — the "via CryptDB"
/// entries of Table I.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstUsage {
    /// Equality predicates (`=`, `IN`) on categorical or key attributes.
    Equality,
    /// Range predicates (`<`, `BETWEEN`, …) and ORDER BY on ordered
    /// attributes.
    Range,
    /// The attribute occurs **only** inside arithmetic aggregates
    /// (`SUM`/`AVG`) — no predicate ever touches it.
    AggregateOnly,
}

impl EquivalenceNotion {
    /// All four notions, in Table I row order.
    pub const ALL: [EquivalenceNotion; 4] = [
        EquivalenceNotion::Token,
        EquivalenceNotion::Structural,
        EquivalenceNotion::Result,
        EquivalenceNotion::AccessArea,
    ];

    /// The distance measure's name (Table I column 1).
    pub fn measure_name(self) -> &'static str {
        match self {
            EquivalenceNotion::Token => "Token-Based Query-String Distance",
            EquivalenceNotion::Structural => "Query-Structure Distance",
            EquivalenceNotion::Result => "Query-Result Distance",
            EquivalenceNotion::AccessArea => "Query-Access-Area Distance",
        }
    }

    /// The notion's name (Table I column 3).
    pub fn name(self) -> &'static str {
        match self {
            EquivalenceNotion::Token => "Token Equivalence",
            EquivalenceNotion::Structural => "Structural Equivalence",
            EquivalenceNotion::Result => "Result Equivalence",
            EquivalenceNotion::AccessArea => "Access-Area Equivalence",
        }
    }

    /// The characteristic function `c` (Table I column 4).
    pub fn characteristic(self) -> &'static str {
        match self {
            EquivalenceNotion::Token => "tokens",
            EquivalenceNotion::Structural => "features",
            EquivalenceNotion::Result => "result tuples",
            EquivalenceNotion::AccessArea => "access_A",
        }
    }

    /// The shared information the measure needs (Table I column 2).
    pub fn shared_information(self) -> SharedInformation {
        match self {
            EquivalenceNotion::Token | EquivalenceNotion::Structural => SharedInformation {
                log: true,
                db_content: false,
                domains: false,
            },
            EquivalenceNotion::Result => SharedInformation {
                log: true,
                db_content: true,
                domains: false,
            },
            EquivalenceNotion::AccessArea => SharedInformation {
                log: true,
                db_content: false,
                domains: true,
            },
        }
    }

    /// Whether `class` *ensures* this notion on a name slot
    /// (relation/attribute names).
    ///
    /// Names participate in every characteristic (tokens, features, routed
    /// tables, attribute axes), always through *equality*, so the class
    /// must be deterministic. Constants are the interesting slot — see
    /// [`EquivalenceNotion::const_ensures`].
    pub fn name_slot_ensures(self, class: EncryptionClass) -> bool {
        class.preserves_equality()
    }

    /// Whether `class` ensures this notion for constants used as `usage`.
    pub fn const_ensures(self, usage: ConstUsage, class: EncryptionClass) -> bool {
        match self {
            // Constants are ordinary tokens: equality must be preserved.
            EquivalenceNotion::Token => class.preserves_equality(),
            // features(Q) drops constants entirely: any class works.
            EquivalenceNotion::Structural => true,
            // The provider must execute the predicate on ciphertexts.
            EquivalenceNotion::Result => match usage {
                ConstUsage::Equality => class.preserves_equality(),
                ConstUsage::Range => class.preserves_order(),
                ConstUsage::AggregateOnly => class.supports_aggregation(),
            },
            // Access areas need the *geometry* of the predicate: equality
            // and ranges must land on one order-preserved axis; attributes
            // never touched by predicates contribute nothing.
            EquivalenceNotion::AccessArea => match usage {
                ConstUsage::Equality => class.preserves_equality(),
                ConstUsage::Range => class.preserves_order(),
                ConstUsage::AggregateOnly => true, // the §IV-C observation
            },
        }
    }
}

impl fmt::Display for EquivalenceNotion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for SharedInformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mark = |b: bool| if b { "yes" } else { "no" };
        write!(
            f,
            "log={} db-content={} domains={}",
            mark(self.log),
            mark(self.db_content),
            mark(self.domains)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use EncryptionClass::*;
    use EquivalenceNotion::*;

    #[test]
    fn shared_information_matches_table_1() {
        assert_eq!(
            Token.shared_information(),
            SharedInformation {
                log: true,
                db_content: false,
                domains: false
            }
        );
        assert_eq!(
            Result.shared_information(),
            SharedInformation {
                log: true,
                db_content: true,
                domains: false
            }
        );
        assert_eq!(
            AccessArea.shared_information(),
            SharedInformation {
                log: true,
                db_content: false,
                domains: true
            }
        );
    }

    #[test]
    fn name_slots_require_determinism() {
        for notion in EquivalenceNotion::ALL {
            assert!(
                !notion.name_slot_ensures(Prob),
                "{notion}: PROB cannot name-slot"
            );
            assert!(!notion.name_slot_ensures(Hom));
            assert!(notion.name_slot_ensures(Det));
            assert!(
                notion.name_slot_ensures(Ope),
                "subclasses of DET also ensure"
            );
        }
    }

    #[test]
    fn structural_constants_accept_prob() {
        assert!(Structural.const_ensures(ConstUsage::Equality, Prob));
        assert!(Structural.const_ensures(ConstUsage::Range, Prob));
    }

    #[test]
    fn token_constants_need_determinism() {
        assert!(!Token.const_ensures(ConstUsage::Equality, Prob));
        assert!(Token.const_ensures(ConstUsage::Equality, Det));
    }

    #[test]
    fn result_constants_per_usage() {
        assert!(Result.const_ensures(ConstUsage::Equality, Det));
        assert!(!Result.const_ensures(ConstUsage::Equality, Prob));
        assert!(Result.const_ensures(ConstUsage::Range, Ope));
        assert!(!Result.const_ensures(ConstUsage::Range, Det));
        assert!(Result.const_ensures(ConstUsage::AggregateOnly, Hom));
        assert!(!Result.const_ensures(ConstUsage::AggregateOnly, Prob));
    }

    #[test]
    fn access_area_aggregate_only_accepts_prob() {
        // The §IV-C security win over CryptDB-as-is.
        assert!(AccessArea.const_ensures(ConstUsage::AggregateOnly, Prob));
        assert!(AccessArea.const_ensures(ConstUsage::Range, Ope));
        assert!(!AccessArea.const_ensures(ConstUsage::Range, Det));
    }
}
