//! Fig. 1 — the property-preserving encryption taxonomy — as data.

use dpe_crypto::EncryptionClass;

/// The taxonomy of Fig. 1: security rows (top = most secure) and subclass
/// edges.
#[derive(Debug, Clone, Copy, Default)]
pub struct Taxonomy;

impl Taxonomy {
    /// The security rows, most secure first — exactly the figure's layout.
    pub fn rows(&self) -> Vec<Vec<EncryptionClass>> {
        use EncryptionClass::*;
        vec![vec![Prob], vec![Hom, Det], vec![Ope, Join], vec![JoinOpe]]
    }

    /// The `→: subclass` edges of the figure, as (subclass, superclass).
    pub fn subclass_edges(&self) -> Vec<(EncryptionClass, EncryptionClass)> {
        let mut edges = Vec::new();
        for class in EncryptionClass::ALL {
            for &parent in class.parents() {
                edges.push((class, parent));
            }
        }
        edges
    }

    /// ASCII rendering of the figure (for the F1 experiment output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("  security\n");
        for (level, row) in self.rows().iter().enumerate() {
            let names: Vec<&str> = row.iter().map(|c| c.name()).collect();
            out.push_str(&format!(
                "    {}   {}\n",
                ["high", "    ", "    ", "low "][level],
                names.join("   ")
            ));
        }
        out.push_str("  edges (subclass → superclass): ");
        let edges: Vec<String> = self
            .subclass_edges()
            .iter()
            .map(|(a, b)| format!("{a} → {b}"))
            .collect();
        out.push_str(&edges.join(", "));
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use EncryptionClass::*;

    #[test]
    fn rows_cover_all_classes_once() {
        let rows = Taxonomy.rows();
        let flat: Vec<EncryptionClass> = rows.iter().flatten().copied().collect();
        assert_eq!(flat.len(), EncryptionClass::ALL.len());
        for class in EncryptionClass::ALL {
            assert_eq!(flat.iter().filter(|&&c| c == class).count(), 1);
        }
    }

    #[test]
    fn rows_agree_with_security_levels() {
        for (i, row) in Taxonomy.rows().iter().enumerate() {
            let expected_level = 3 - i as u8;
            for class in row {
                assert_eq!(class.security_level(), expected_level, "{class}");
            }
        }
    }

    #[test]
    fn edges_match_the_figure() {
        let edges = Taxonomy.subclass_edges();
        assert!(edges.contains(&(Hom, Prob)));
        assert!(edges.contains(&(Ope, Det)));
        assert!(edges.contains(&(Join, Det)));
        assert!(edges.contains(&(JoinOpe, Ope)));
        assert!(edges.contains(&(JoinOpe, Join)));
        assert_eq!(edges.len(), 5);
    }

    #[test]
    fn render_mentions_every_class() {
        let text = Taxonomy.render();
        for class in EncryptionClass::ALL {
            assert!(text.contains(class.name()), "missing {class}");
        }
    }
}
