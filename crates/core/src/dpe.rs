//! Definitions 1 and 2, executable.
//!
//! **Definition 1 (DPE).** `Enc` is d-distance-preserving iff
//! `∀x, y: d(Enc(x), Enc(y)) = d(x, y)`. Over a finite log the quantifier is
//! checkable exhaustively; [`verify_dpe`] does exactly that and reports the
//! worst deviation (which must be 0.0 — all our distances are exact
//! rationals evaluated identically on both sides).
//!
//! **Definition 2 (c-equivalence).** `Enc` ensures c-equivalence iff
//! `∀x: Enc(c(x)) = c(Enc(x))`. The per-notion commuting squares live in
//! [`crate::verify`]; this module provides the generic shape.

use dpe_distance::QueryDistance;
use dpe_sql::Query;

use crate::error::CoreError;

/// Outcome of an exhaustive Definition-1 check over a log.
#[derive(Debug, Clone, PartialEq)]
pub struct DpeReport {
    /// Number of unordered pairs checked (`n·(n−1)/2`).
    pub pairs_checked: usize,
    /// Largest `|d(Enc x, Enc y) − d(x, y)|` observed.
    pub max_abs_diff: f64,
    /// Number of pairs with any deviation at all.
    pub violating_pairs: usize,
    /// `true` iff every pair matched exactly.
    pub preserved: bool,
}

impl DpeReport {
    /// Renders a one-line verdict for the experiment harnesses.
    pub fn verdict(&self) -> String {
        if self.preserved {
            format!("PRESERVED ({} pairs, max |Δ| = 0)", self.pairs_checked)
        } else {
            format!(
                "VIOLATED ({} of {} pairs, max |Δ| = {:.6})",
                self.violating_pairs, self.pairs_checked, self.max_abs_diff
            )
        }
    }
}

/// Exhaustively checks Definition 1 for a log and its encryption.
///
/// `d_plain` measures plaintext queries, `d_enc` the encrypted ones — they
/// are distinct instances because two measures carry state (the database
/// for result distance, the domain catalog for access-area distance) whose
/// encrypted counterpart differs.
pub fn verify_dpe<DP, DE>(
    plain: &[Query],
    encrypted: &[Query],
    d_plain: &DP,
    d_enc: &DE,
) -> Result<DpeReport, CoreError>
where
    DP: QueryDistance,
    DE: QueryDistance,
{
    assert_eq!(
        plain.len(),
        encrypted.len(),
        "encrypted log must align 1:1 with the plaintext log"
    );
    let n = plain.len();
    let mut pairs_checked = 0;
    let mut violating_pairs = 0;
    let mut max_abs_diff: f64 = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            let dp = d_plain.distance(&plain[i], &plain[j])?;
            let de = d_enc.distance(&encrypted[i], &encrypted[j])?;
            let diff = (dp - de).abs();
            pairs_checked += 1;
            if diff != 0.0 {
                violating_pairs += 1;
                max_abs_diff = max_abs_diff.max(diff);
            }
        }
    }
    Ok(DpeReport {
        pairs_checked,
        max_abs_diff,
        violating_pairs,
        preserved: violating_pairs == 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_distance::TokenDistance;
    use dpe_sql::parse_query;

    fn log(sqls: &[&str]) -> Vec<Query> {
        sqls.iter().map(|s| parse_query(s).unwrap()).collect()
    }

    #[test]
    fn identity_encryption_trivially_preserves() {
        let l = log(&[
            "SELECT ra FROM t WHERE dec > 5",
            "SELECT dec FROM t",
            "SELECT ra FROM u WHERE ra = 1",
        ]);
        let report = verify_dpe(&l, &l, &TokenDistance, &TokenDistance).unwrap();
        assert!(report.preserved);
        assert_eq!(report.pairs_checked, 3);
        assert_eq!(report.max_abs_diff, 0.0);
        assert!(report.verdict().starts_with("PRESERVED"));
    }

    #[test]
    fn broken_encryption_detected() {
        // "Encryption" that collapses all queries to one destroys distances.
        let plain = log(&[
            "SELECT ra FROM t WHERE dec > 5",
            "SELECT dec FROM t",
            "SELECT ra FROM u",
        ]);
        let broken = log(&["SELECT x FROM y", "SELECT x FROM y", "SELECT x FROM y"]);
        let report = verify_dpe(&plain, &broken, &TokenDistance, &TokenDistance).unwrap();
        assert!(!report.preserved);
        assert!(report.violating_pairs > 0);
        assert!(report.max_abs_diff > 0.0);
        assert!(report.verdict().starts_with("VIOLATED"));
    }

    #[test]
    #[should_panic(expected = "align 1:1")]
    fn misaligned_logs_panic() {
        let l = log(&["SELECT ra FROM t"]);
        let _ = verify_dpe(&l, &[], &TokenDistance, &TokenDistance);
    }
}
