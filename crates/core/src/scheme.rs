//! Concrete DPE schemes for the four measures — Step 3 of KIT-DPE.
//!
//! Each scheme instantiates the high-level tuple
//! `(EncRel, EncAttr, {EncA.Const})` (paper §IV-A2, Example 4) with the
//! classes the Definition-6 engine selects, and exposes item-wise query
//! encryption via [`QueryEncryptor`].
//!
//! ## A reproduction finding: token equivalence needs *one* constant key
//!
//! The high-level scheme allows a distinct `EncA.Const` per attribute. For
//! token equivalence this is **too much freedom**: `tokens(Q)` is a set of
//! bare spellings, so the literal `5` occurring under attribute `a` in one
//! query and under `b` in another is *one* plaintext token, but
//! per-attribute keys would encrypt it to *two* ciphertext tokens,
//! changing the Jaccard denominator. [`TokenDpe`] therefore keys constants
//! with a single log-wide DET key; the negative control in
//! `tests/` demonstrates that per-attribute keys break Definition 1.
//! (Structure/result/access-area distances are per-attribute by
//! construction, so their schemes do use per-attribute keys.)

use crate::error::CoreError;
use dpe_cryptdb::column::CryptDbConfig;
use dpe_cryptdb::encoding::ident_hex;
use dpe_cryptdb::CryptDbProxy;
use dpe_crypto::kdf::SlotLabel;
use dpe_crypto::scheme::SymmetricScheme;
use dpe_crypto::{Ciphertext, DetScheme, MasterKey, ProbScheme};
use dpe_distance::{AttributeDomain, DomainCatalog};
use dpe_minidb::{Database, TableSchema};
use dpe_ope::{OpeDomain, OpeScheme};
use dpe_sql::analysis::{rewrite_query, IdentifierTransform};
use dpe_sql::{analysis, AggArg, AggFunc, ColumnRef, Literal, Query, SelectItem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};

/// Item-wise query encryption (the `Enc` of Definition 1).
pub trait QueryEncryptor {
    /// Encrypts one query.
    fn encrypt_query(&mut self, q: &Query) -> Result<Query, CoreError>;

    /// Encrypts a whole log, preserving order (index `i` of the output is
    /// `Enc` of index `i` of the input).
    fn encrypt_log(&mut self, log: &[Query]) -> Result<Vec<Query>, CoreError> {
        log.iter().map(|q| self.encrypt_query(q)).collect()
    }
}

/// Encrypts a byte string deterministically and renders it as an
/// identifier.
fn det_ident(scheme: &DetScheme, name: &str) -> String {
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);
    ident_hex(&scheme.encrypt(name.as_bytes(), &mut rng))
}

/// Canonical byte encoding of a literal for DET/PROB constant encryption.
fn literal_bytes(lit: &Literal) -> Vec<u8> {
    match lit {
        Literal::Int(v) => {
            let mut out = vec![b'i'];
            out.extend_from_slice(&v.to_be_bytes());
            out
        }
        Literal::Str(s) => {
            let mut out = vec![b's'];
            out.extend_from_slice(s.as_bytes());
            out
        }
        Literal::Null => vec![b'n'],
    }
}

// ---------------------------------------------------------------------------
// Token distance: (DET, DET, DET) with a single constant key.
// ---------------------------------------------------------------------------

/// DPE scheme for token-based query-string distance (Table I row 1).
pub struct TokenDpe {
    rel: DetScheme,
    attr: DetScheme,
    constant: DetScheme,
}

impl TokenDpe {
    /// Derives the scheme from a master key.
    pub fn new(master: &MasterKey) -> Self {
        TokenDpe {
            rel: DetScheme::new(&SlotLabel::Relation.derive(master)),
            attr: DetScheme::new(&SlotLabel::Attribute.derive(master)),
            constant: DetScheme::new(&SlotLabel::Constant("*log-wide*").derive(master)),
        }
    }

    /// The encrypted spelling of one plaintext token, by kind — used by the
    /// c-equivalence commuting-square check to compute `Enc(tokens(Q))`.
    pub fn encrypt_relation_token(&self, name: &str) -> String {
        det_ident(&self.rel, name)
    }

    /// See [`TokenDpe::encrypt_relation_token`].
    pub fn encrypt_attribute_token(&self, name: &str) -> String {
        det_ident(&self.attr, name)
    }

    /// See [`TokenDpe::encrypt_relation_token`].
    pub fn encrypt_constant_token(&self, lit: &Literal) -> Literal {
        match lit {
            Literal::Null => Literal::Null,
            other => {
                let mut rng = rand::rngs::mock::StepRng::new(0, 1);
                let ct = self.constant.encrypt(&literal_bytes(other), &mut rng);
                Literal::Str(ident_hex(&ct))
            }
        }
    }
}

impl IdentifierTransform for &TokenDpe {
    fn relation(&mut self, name: &str) -> String {
        det_ident(&self.rel, name)
    }
    fn attribute(&mut self, name: &str) -> String {
        det_ident(&self.attr, name)
    }
    fn constant(&mut self, _col: &ColumnRef, value: &Literal) -> Literal {
        self.encrypt_constant_token(value)
    }
}

impl QueryEncryptor for TokenDpe {
    fn encrypt_query(&mut self, q: &Query) -> Result<Query, CoreError> {
        let mut transform: &TokenDpe = self;
        Ok(rewrite_query(q, &mut transform))
    }
}

/// Negative control for the experiments: a token scheme with per-attribute
/// constant keys, which the paper's high-level scheme permits but which
/// does **not** ensure token equivalence (see the module docs).
pub struct PerAttributeTokenDpe {
    rel: DetScheme,
    attr: DetScheme,
    master: MasterKey,
}

impl PerAttributeTokenDpe {
    /// Derives the (deliberately broken) scheme.
    pub fn new(master: &MasterKey) -> Self {
        PerAttributeTokenDpe {
            rel: DetScheme::new(&SlotLabel::Relation.derive(master)),
            attr: DetScheme::new(&SlotLabel::Attribute.derive(master)),
            master: master.clone(),
        }
    }
}

impl IdentifierTransform for &PerAttributeTokenDpe {
    fn relation(&mut self, name: &str) -> String {
        det_ident(&self.rel, name)
    }
    fn attribute(&mut self, name: &str) -> String {
        det_ident(&self.attr, name)
    }
    fn constant(&mut self, col: &ColumnRef, value: &Literal) -> Literal {
        if matches!(value, Literal::Null) {
            return Literal::Null;
        }
        let scheme = DetScheme::new(&SlotLabel::Constant(&col.column).derive(&self.master));
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        Literal::Str(ident_hex(&scheme.encrypt(&literal_bytes(value), &mut rng)))
    }
}

impl QueryEncryptor for PerAttributeTokenDpe {
    fn encrypt_query(&mut self, q: &Query) -> Result<Query, CoreError> {
        let mut transform: &PerAttributeTokenDpe = self;
        Ok(rewrite_query(q, &mut transform))
    }
}

// ---------------------------------------------------------------------------
// Structure distance: (DET, DET, PROB).
// ---------------------------------------------------------------------------

/// DPE scheme for query-structure distance (Table I row 2): constants get
/// the *probabilistic* class — the highest security row of Fig. 1 — because
/// `features(Q)` never looks at them.
pub struct StructuralDpe {
    rel: DetScheme,
    attr: DetScheme,
    prob: ProbScheme,
    rng: StdRng,
}

impl StructuralDpe {
    /// Derives the scheme from a master key; `seed` feeds the PROB
    /// randomness.
    pub fn new(master: &MasterKey, seed: u64) -> Self {
        StructuralDpe {
            rel: DetScheme::new(&SlotLabel::Relation.derive(master)),
            attr: DetScheme::new(&SlotLabel::Attribute.derive(master)),
            prob: ProbScheme::new(&SlotLabel::Constant("*prob*").derive(master)),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Encrypted spelling of a relation token (for commuting-square checks).
    pub fn encrypt_relation_token(&self, name: &str) -> String {
        det_ident(&self.rel, name)
    }

    /// Encrypted spelling of an attribute token.
    pub fn encrypt_attribute_token(&self, name: &str) -> String {
        det_ident(&self.attr, name)
    }
}

impl QueryEncryptor for StructuralDpe {
    fn encrypt_query(&mut self, q: &Query) -> Result<Query, CoreError> {
        struct T<'a>(&'a mut StructuralDpe);
        impl IdentifierTransform for T<'_> {
            fn relation(&mut self, name: &str) -> String {
                det_ident(&self.0.rel, name)
            }
            fn attribute(&mut self, name: &str) -> String {
                det_ident(&self.0.attr, name)
            }
            fn constant(&mut self, _col: &ColumnRef, value: &Literal) -> Literal {
                if matches!(value, Literal::Null) {
                    return Literal::Null;
                }
                // Fresh randomness per occurrence: equal constants map to
                // different ciphertexts (the PROB property).
                let ct = self.0.prob.encrypt(&literal_bytes(value), &mut self.0.rng);
                Literal::Str(ident_hex(&ct))
            }
        }
        Ok(rewrite_query(q, &mut T(self)))
    }
}

// ---------------------------------------------------------------------------
// Result distance: via CryptDB.
// ---------------------------------------------------------------------------

/// DPE scheme for query-result distance (Table I row 3): the full CryptDB
/// stack. Shared information is the encrypted log **and** the encrypted
/// database; the provider computes result tuples by executing rewritten
/// queries and measures Jaccard over the (deterministic) encrypted tuples.
pub struct ResultDpe {
    proxy: CryptDbProxy,
}

impl ResultDpe {
    /// Encrypts `plain_db` and prepares the proxy.
    pub fn new(
        plain_db: &Database,
        table_schemas: &[TableSchema],
        domains: &DomainCatalog,
        config: &CryptDbConfig,
        master: &MasterKey,
    ) -> Result<Self, CoreError> {
        Ok(ResultDpe {
            proxy: CryptDbProxy::new(plain_db, table_schemas, domains, config, master)?,
        })
    }

    /// Pre-adjusts every column the log touches so the provider sees
    /// deterministic tuples (Definition 4 needs `Enc(result_tuples(Q))` to
    /// be well-defined).
    pub fn prepare_for_log(&mut self, log: &[Query]) -> Result<(), CoreError> {
        self.proxy.adjust_for_log(log)?;
        Ok(())
    }

    /// The encrypted database (what the provider executes against).
    pub fn encrypted_database(&self) -> &Database {
        self.proxy.encrypted_database()
    }

    /// Access to the underlying proxy (examples use the end-to-end path).
    pub fn proxy_mut(&mut self) -> &mut CryptDbProxy {
        &mut self.proxy
    }
}

impl QueryEncryptor for ResultDpe {
    fn encrypt_query(&mut self, q: &Query) -> Result<Query, CoreError> {
        let (enc_query, _result) = self.proxy.execute_encrypted(q)?;
        Ok(enc_query)
    }
}

// ---------------------------------------------------------------------------
// Access-area distance: via CryptDB, except HOM.
// ---------------------------------------------------------------------------

/// DPE scheme for query-access-area distance (Table I row 4).
///
/// * relation/attribute names: DET;
/// * constants of ordered (integer-domain) attributes: **OPE** — equality
///   *and* range predicates must land on one order-preserved axis for the
///   interval geometry (equal / overlap / disjoint) to survive;
/// * constants of categorical attributes: DET;
/// * attributes used **only** inside `SUM`/`AVG` across the whole log:
///   **PROB** — the paper's §IV-C observation, yielding strictly higher
///   security than CryptDB-as-is (which would keep HOM/OPE onions).
pub struct AccessAreaDpe {
    rel: DetScheme,
    attr: DetScheme,
    master: MasterKey,
    domains: DomainCatalog,
    aggregate_only: BTreeSet<String>,
    prob: ProbScheme,
    rng: StdRng,
    ope_cache: BTreeMap<String, (OpeScheme, i64)>,
}

impl AccessAreaDpe {
    /// Builds the scheme. `log` determines which attributes are
    /// aggregate-only (their constants — should any appear later — fall
    /// back to PROB, and their encrypted domain is a canonical
    /// placeholder).
    pub fn new(master: &MasterKey, domains: &DomainCatalog, log: &[Query], seed: u64) -> Self {
        AccessAreaDpe {
            rel: DetScheme::new(&SlotLabel::Relation.derive(master)),
            attr: DetScheme::new(&SlotLabel::Attribute.derive(master)),
            master: master.clone(),
            domains: domains.clone(),
            aggregate_only: aggregate_only_attributes(log),
            prob: ProbScheme::new(&SlotLabel::Constant("*aa-prob*").derive(master)),
            rng: StdRng::seed_from_u64(seed),
            ope_cache: BTreeMap::new(),
        }
    }

    /// The attributes classified as aggregate-only for this log.
    pub fn aggregate_only(&self) -> &BTreeSet<String> {
        &self.aggregate_only
    }

    fn ope_for(&mut self, attribute: &str) -> Result<&(OpeScheme, i64), CoreError> {
        if !self.ope_cache.contains_key(attribute) {
            let Some(AttributeDomain::Int { lo, hi }) = self.domains.get(attribute) else {
                return Err(CoreError::MissingDomain(attribute.to_string()));
            };
            let (lo, hi) = (*lo, *hi);
            let key = SlotLabel::OnionLayer(attribute, "const", "ope").derive(&self.master);
            let scheme = OpeScheme::new(&key, OpeDomain::new(0, (hi - lo) as u64));
            self.ope_cache.insert(attribute.to_string(), (scheme, lo));
        }
        Ok(&self.ope_cache[attribute])
    }

    fn det_const_for(&self, attribute: &str) -> DetScheme {
        DetScheme::new(&SlotLabel::Constant(attribute).derive(&self.master))
    }

    fn encrypt_int_constant(&mut self, attribute: &str, v: i64) -> Result<i64, CoreError> {
        let (scheme, bias) = self.ope_for(attribute)?;
        let biased = v
            .checked_sub(*bias)
            .filter(|b| *b >= 0)
            .ok_or(CoreError::OpeFailure {
                attribute: attribute.to_string(),
                value: v,
            })?;
        let ct = scheme
            .encrypt(biased as u64)
            .map_err(|_| CoreError::OpeFailure {
                attribute: attribute.to_string(),
                value: v,
            })?;
        i64::try_from(ct).map_err(|_| CoreError::OpeFailure {
            attribute: attribute.to_string(),
            value: v,
        })
    }

    /// The encrypted domain catalog the provider uses to compute access
    /// areas over encrypted queries (the *Domains* shared information,
    /// encrypted consistently with the constants).
    pub fn encrypted_domains(&mut self) -> Result<DomainCatalog, CoreError> {
        let mut out = DomainCatalog::new();
        let entries: Vec<(String, AttributeDomain)> = self
            .domains
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for (attr, domain) in entries {
            let enc_attr = det_ident(&self.attr, &attr);
            let enc_domain = if self.aggregate_only.contains(&attr) {
                // No predicate ever touches these: any canonical placeholder
                // axis works (areas are only ever full or empty).
                AttributeDomain::Int { lo: 0, hi: 1 }
            } else {
                match domain {
                    AttributeDomain::Int { lo, hi } => AttributeDomain::Int {
                        lo: self.encrypt_int_constant(&attr, lo)?,
                        hi: self.encrypt_int_constant(&attr, hi)?,
                    },
                    AttributeDomain::Categorical(cats) => {
                        let det = self.det_const_for(&attr);
                        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
                        AttributeDomain::Categorical(
                            cats.iter()
                                .map(|c| {
                                    ident_hex(&det.encrypt(
                                        &literal_bytes(&Literal::Str(c.clone())),
                                        &mut rng,
                                    ))
                                })
                                .collect(),
                        )
                    }
                }
            };
            out.insert(enc_attr, enc_domain);
        }
        Ok(out)
    }

    /// Encrypted spelling of an attribute (commuting-square checks).
    pub fn encrypt_attribute_token(&self, name: &str) -> String {
        det_ident(&self.attr, name)
    }
}

impl QueryEncryptor for AccessAreaDpe {
    fn encrypt_query(&mut self, q: &Query) -> Result<Query, CoreError> {
        struct T<'a> {
            scheme: &'a mut AccessAreaDpe,
            error: Option<CoreError>,
        }
        impl IdentifierTransform for T<'_> {
            fn relation(&mut self, name: &str) -> String {
                det_ident(&self.scheme.rel, name)
            }
            fn attribute(&mut self, name: &str) -> String {
                det_ident(&self.scheme.attr, name)
            }
            fn constant(&mut self, col: &ColumnRef, value: &Literal) -> Literal {
                if self.error.is_some() {
                    return value.clone();
                }
                let attribute = col.column.as_str();
                if self.scheme.aggregate_only.contains(attribute) {
                    // PROB: fresh randomness per occurrence.
                    let ct = self
                        .scheme
                        .prob
                        .encrypt(&literal_bytes(value), &mut self.scheme.rng);
                    return Literal::Str(ident_hex(&ct));
                }
                match (self.scheme.domains.get(attribute).cloned(), value) {
                    (_, Literal::Null) => Literal::Null,
                    (Some(AttributeDomain::Int { .. }), Literal::Int(v)) => {
                        match self.scheme.encrypt_int_constant(attribute, *v) {
                            Ok(ct) => Literal::Int(ct),
                            Err(e) => {
                                self.error = Some(e);
                                value.clone()
                            }
                        }
                    }
                    (Some(AttributeDomain::Categorical(_)), Literal::Str(s)) => {
                        let det = self.scheme.det_const_for(attribute);
                        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
                        Literal::Str(ident_hex(
                            &det.encrypt(&literal_bytes(&Literal::Str(s.clone())), &mut rng),
                        ))
                    }
                    (Some(_), other) => {
                        self.error = Some(CoreError::TypeMismatch {
                            attribute: attribute.to_string(),
                            detail: format!("constant {other} conflicts with domain kind"),
                        });
                        value.clone()
                    }
                    (None, _) => {
                        self.error = Some(CoreError::MissingDomain(attribute.to_string()));
                        value.clone()
                    }
                }
            }
        }
        let mut transform = T {
            scheme: self,
            error: None,
        };
        let enc = rewrite_query(q, &mut transform);
        match transform.error {
            Some(e) => Err(e),
            None => Ok(enc),
        }
    }
}

/// Attributes that appear **only** as `SUM`/`AVG` arguments across the
/// whole log — the candidates for PROB in the access-area scheme (§IV-C).
pub fn aggregate_only_attributes(log: &[Query]) -> BTreeSet<String> {
    let mut in_aggregate = BTreeSet::new();
    let mut elsewhere = BTreeSet::new();
    for q in log {
        for item in &q.select {
            match item {
                SelectItem::Aggregate {
                    func: AggFunc::Sum | AggFunc::Avg,
                    arg: AggArg::Column(c),
                } => {
                    in_aggregate.insert(c.column.clone());
                }
                SelectItem::Aggregate {
                    arg: AggArg::Column(c),
                    ..
                } => {
                    elsewhere.insert(c.column.clone());
                }
                SelectItem::Column(c) => {
                    elsewhere.insert(c.column.clone());
                }
                _ => {}
            }
        }
        // Everything referenced outside the SELECT list counts as
        // "elsewhere": predicates, grouping, ordering, joins.
        if let Some(e) = &q.where_clause {
            collect_expr_attrs(e, &mut elsewhere);
        }
        for j in &q.joins {
            elsewhere.insert(j.left.column.clone());
            elsewhere.insert(j.right.column.clone());
        }
        for c in &q.group_by {
            elsewhere.insert(c.column.clone());
        }
        for o in &q.order_by {
            elsewhere.insert(o.col.column.clone());
        }
    }
    in_aggregate.difference(&elsewhere).cloned().collect()
}

fn collect_expr_attrs(e: &dpe_sql::Expr, out: &mut BTreeSet<String>) {
    use dpe_sql::Expr;
    match e {
        Expr::Comparison { col, .. }
        | Expr::Between { col, .. }
        | Expr::InList { col, .. }
        | Expr::IsNull { col, .. } => {
            out.insert(col.column.clone());
        }
        Expr::ColumnEq { left, right } => {
            out.insert(left.column.clone());
            out.insert(right.column.clone());
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            collect_expr_attrs(a, out);
            collect_expr_attrs(b, out);
        }
        Expr::Not(inner) => collect_expr_attrs(inner, out),
    }
}

/// Convenience: the set of attribute spellings of a log (used by the
/// harnesses for reporting).
pub fn log_attributes(log: &[Query]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for q in log {
        out.extend(analysis::attributes(q));
    }
    out
}

/// Dummy ciphertext accessor used by documentation examples.
pub fn _ciphertext_len(ct: &Ciphertext) -> usize {
    ct.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_sql::parse_query;
    use dpe_workload::sky_domains;

    fn master() -> MasterKey {
        MasterKey::from_bytes([17; 32])
    }

    fn q(sql: &str) -> Query {
        parse_query(sql).unwrap()
    }

    #[test]
    fn token_scheme_matches_example_4_shape() {
        // Enc(SELECT A1 FROM R WHERE A2 > 5): names and constant replaced,
        // structure intact.
        let mut scheme = TokenDpe::new(&master());
        let enc = scheme
            .encrypt_query(&q("SELECT a1 FROM r WHERE a2 > 5"))
            .unwrap();
        assert_eq!(enc.select.len(), 1);
        let text = enc.to_string();
        assert!(text.starts_with("SELECT x"));
        assert!(text.contains("FROM x"));
        assert!(text.contains("> 'x"));
        assert!(!text.contains("a1") && !text.contains(" r ") && !text.contains(" 5"));
    }

    #[test]
    fn token_scheme_is_deterministic_per_kind() {
        let mut scheme = TokenDpe::new(&master());
        let e1 = scheme
            .encrypt_query(&q("SELECT ra FROM photoobj WHERE ra > 5"))
            .unwrap();
        let e2 = scheme
            .encrypt_query(&q("SELECT ra FROM photoobj WHERE ra > 5"))
            .unwrap();
        assert_eq!(e1, e2);
    }

    #[test]
    fn token_scheme_shares_one_constant_key_across_attributes() {
        let mut scheme = TokenDpe::new(&master());
        let enc = scheme
            .encrypt_query(&q("SELECT ra FROM t WHERE ra = 5 OR dec = 5"))
            .unwrap();
        let consts = analysis::constants(&enc);
        assert_eq!(consts.len(), 2);
        assert_eq!(consts[0].1, consts[1].1, "same literal, same ciphertext");
    }

    #[test]
    fn per_attribute_variant_splits_constants() {
        let mut scheme = PerAttributeTokenDpe::new(&master());
        let enc = scheme
            .encrypt_query(&q("SELECT ra FROM t WHERE ra = 5 OR dec = 5"))
            .unwrap();
        let consts = analysis::constants(&enc);
        assert_ne!(
            consts[0].1, consts[1].1,
            "per-attribute keys split the token"
        );
    }

    #[test]
    fn structural_scheme_randomizes_constants_keeps_names() {
        let mut scheme = StructuralDpe::new(&master(), 9);
        let e1 = scheme
            .encrypt_query(&q("SELECT ra FROM t WHERE dec > 5"))
            .unwrap();
        let e2 = scheme
            .encrypt_query(&q("SELECT ra FROM t WHERE dec > 5"))
            .unwrap();
        // Names deterministic:
        assert_eq!(e1.from, e2.from);
        assert_eq!(e1.select, e2.select);
        // Constants randomized:
        assert_ne!(analysis::constants(&e1)[0].1, analysis::constants(&e2)[0].1);
    }

    #[test]
    fn access_area_scheme_uses_ope_for_ordered_attrs() {
        let mut scheme = AccessAreaDpe::new(&master(), &sky_domains(), &[], 3);
        let enc = scheme
            .encrypt_query(&q("SELECT ra FROM photoobj WHERE ra BETWEEN 1000 AND 2000"))
            .unwrap();
        let consts = analysis::constants(&enc);
        let (Literal::Int(lo), Literal::Int(hi)) = (&consts[0].1, &consts[1].1) else {
            panic!("expected OPE integers")
        };
        assert!(lo < hi, "order preserved");
        assert!(*lo > 2000, "ciphertexts nowhere near plaintexts");
    }

    #[test]
    fn access_area_scheme_det_for_categories() {
        let mut scheme = AccessAreaDpe::new(&master(), &sky_domains(), &[], 3);
        let e1 = scheme
            .encrypt_query(&q("SELECT objid FROM photoobj WHERE class = 'STAR'"))
            .unwrap();
        let e2 = scheme
            .encrypt_query(&q("SELECT objid FROM photoobj WHERE class = 'STAR'"))
            .unwrap();
        assert_eq!(e1, e2);
    }

    #[test]
    fn aggregate_only_detection() {
        let log = vec![
            q("SELECT AVG(z), SUM(z) FROM specobj"),
            q("SELECT objid FROM photoobj WHERE ra > 5"),
            q("SELECT SUM(rmag) FROM photoobj WHERE rmag < 2000"), // rmag also in WHERE
        ];
        let agg_only = aggregate_only_attributes(&log);
        assert!(agg_only.contains("z"));
        assert!(!agg_only.contains("rmag"), "rmag appears in a predicate");
        assert!(!agg_only.contains("ra"));
    }

    #[test]
    fn encrypted_domains_align_with_constants() {
        let mut scheme = AccessAreaDpe::new(&master(), &sky_domains(), &[], 3);
        let enc_domains = scheme.encrypted_domains().unwrap();
        // The encrypted domain of ra must bracket every encrypted constant.
        let enc_attr = scheme.encrypt_attribute_token("ra");
        let Some(AttributeDomain::Int { lo, hi }) = enc_domains.get(&enc_attr) else {
            panic!("ra must stay an ordered domain")
        };
        let ct = scheme.encrypt_int_constant("ra", 180_000).unwrap();
        assert!(*lo < ct && ct < *hi);
    }

    #[test]
    fn out_of_domain_constant_errors() {
        let mut scheme = AccessAreaDpe::new(&master(), &sky_domains(), &[], 3);
        let err = scheme
            .encrypt_query(&q("SELECT ra FROM photoobj WHERE ra > 999999999"))
            .unwrap_err();
        assert!(matches!(err, CoreError::OpeFailure { .. }));
    }

    #[test]
    fn unknown_attribute_errors() {
        let mut scheme = AccessAreaDpe::new(&master(), &sky_domains(), &[], 3);
        let err = scheme
            .encrypt_query(&q("SELECT mystery FROM photoobj WHERE mystery > 1"))
            .unwrap_err();
        assert!(matches!(err, CoreError::MissingDomain(_)));
    }
}
