//! The KIT-DPE procedure (paper §III-B): four steps, orchestrated.
//!
//! 1. **Security model** — threat model (passive attacks instantiated for
//!    query logs \[9\]) + the high-level scheme `(EncRel, EncAttr,
//!    {EncA.Const})`.
//! 2. **Equivalence notion** — per distance measure (§IV-B).
//! 3. **Ensuring the notion** — appropriate PPE classes (Definition 6) and
//!    a concrete scheme instance.
//! 4. **Security assessment** — by reduction: only classes with known
//!    security are used, so the assessment reads the class levels off
//!    Fig. 1.

use crate::notions::EquivalenceNotion;
use crate::selection::{derive_row, TableRow};
use std::fmt;

/// Step 1: the security model of the SQL case study.
#[derive(Debug, Clone)]
pub struct SecurityModel {
    /// Attacks shielded against (passive only, instantiated for logs).
    pub threat_model: Vec<&'static str>,
    /// The high-level encryption scheme description.
    pub high_level_scheme: &'static str,
}

impl SecurityModel {
    /// The model of §IV-A.
    pub fn sql_log_default() -> Self {
        SecurityModel {
            threat_model: vec![
                "query-only attack (ciphertext-only instantiated for logs)",
                "known-query attack (known-plaintext instantiated for logs)",
                "chosen-query attack (chosen-plaintext instantiated for logs)",
            ],
            high_level_scheme: "(EncRel, EncAttr, {EncA.Const : Attribute A}) — encrypt relation \
                                names, attribute names and constants; keywords, operators and \
                                query structure stay in the clear (Example 4)",
        }
    }
}

/// Step 4: per-slot security levels of one scheme, read off Fig. 1.
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityAssessment {
    /// Security level of `EncRel` (0..=3, higher is better).
    pub rel_level: u8,
    /// Security level of `EncAttr`.
    pub attr_level: u8,
    /// Effective (weakest) security level of the constants slot.
    pub const_level: u8,
}

/// The result of running KIT-DPE for one distance measure.
#[derive(Debug, Clone)]
pub struct KitDpeOutcome {
    /// Step 1.
    pub security_model: SecurityModel,
    /// Step 2: the chosen notion.
    pub notion: EquivalenceNotion,
    /// Step 3: the appropriate classes (one Table I row).
    pub row: TableRow,
    /// Step 4.
    pub assessment: SecurityAssessment,
}

/// Runs the (class-level) KIT-DPE procedure for one measure. The concrete
/// scheme instances of Step 3 are in [`crate::scheme`]; this function
/// produces the engineering artifact (the Table I row + assessment).
pub fn run_kit_dpe(notion: EquivalenceNotion) -> KitDpeOutcome {
    let security_model = SecurityModel::sql_log_default();
    let row = derive_row(notion);
    let assessment = SecurityAssessment {
        rel_level: row.enc_rel.security_level(),
        attr_level: row.enc_attr.security_level(),
        const_level: row.enc_const.weakest_level(),
    };
    KitDpeOutcome {
        security_model,
        notion,
        row,
        assessment,
    }
}

impl fmt::Display for KitDpeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "KIT-DPE for {}", self.notion.measure_name())?;
        writeln!(
            f,
            "  step 1  threat model: {}",
            self.security_model.threat_model.join("; ")
        )?;
        writeln!(
            f,
            "          scheme: {}",
            self.security_model.high_level_scheme
        )?;
        writeln!(
            f,
            "  step 2  notion: {} (c = {})",
            self.notion.name(),
            self.notion.characteristic()
        )?;
        writeln!(
            f,
            "  step 3  EncRel = {}, EncAttr = {}, EncA.Const = {}",
            self.row.enc_rel,
            self.row.enc_attr,
            crate::table1::render_const_choice(&self.row.enc_const)
        )?;
        writeln!(
            f,
            "  step 4  security levels (0-3): rel {}, attr {}, const {}",
            self.assessment.rel_level, self.assessment.attr_level, self.assessment.const_level
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use EquivalenceNotion::*;

    #[test]
    fn assessment_levels_reflect_fig_1() {
        assert_eq!(run_kit_dpe(Token).assessment.const_level, 2); // DET
        assert_eq!(run_kit_dpe(Structural).assessment.const_level, 3); // PROB
        assert_eq!(run_kit_dpe(Result).assessment.const_level, 1); // OPE weakest
        assert_eq!(run_kit_dpe(AccessArea).assessment.const_level, 1); // OPE weakest
    }

    #[test]
    fn name_slots_level_2_everywhere() {
        for notion in EquivalenceNotion::ALL {
            let outcome = run_kit_dpe(notion);
            assert_eq!(outcome.assessment.rel_level, 2);
            assert_eq!(outcome.assessment.attr_level, 2);
        }
    }

    #[test]
    fn display_names_all_steps() {
        let text = run_kit_dpe(Token).to_string();
        for step in ["step 1", "step 2", "step 3", "step 4"] {
            assert!(text.contains(step), "missing {step}:\n{text}");
        }
        assert!(text.contains("query-only attack"));
    }

    #[test]
    fn threat_model_is_passive_only() {
        let model = SecurityModel::sql_log_default();
        assert_eq!(model.threat_model.len(), 3);
        assert!(model.threat_model.iter().all(|t| t.contains("attack")));
    }
}
