//! Definition 6: *appropriate* encryption-class selection.
//!
//! > For a given equivalence notion and encryption algorithm in
//! > `(EncAttr, EncRel, {EncA.Const})`, an encryption class is appropriate
//! > … if (1) it ensures the equivalence notion and (2) provides the
//! > highest possible security.
//!
//! The engine walks the taxonomy top-down (most secure row first) and picks
//! the first class whose capabilities ensure the notion — recomputing the
//! paper's Table I instead of hardcoding it. (`table1.rs` then asserts the
//! recomputation matches the published table.)

use crate::notions::{ConstUsage, EquivalenceNotion};
use crate::taxonomy::Taxonomy;
use dpe_crypto::EncryptionClass;
use std::fmt;

/// The chosen class for the constant slot: either one class for all
/// constants, or per-usage classes (the "via CryptDB" rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstChoice {
    /// One class covers every constant.
    Uniform(EncryptionClass),
    /// Usage-dependent classes (equality / range / aggregate-only).
    PerUsage {
        /// Constants in equality predicates.
        equality: EncryptionClass,
        /// Constants in range predicates.
        range: EncryptionClass,
        /// Constants of attributes only used in arithmetic aggregates.
        aggregate_only: EncryptionClass,
    },
}

impl ConstChoice {
    /// The lowest security level among the involved classes — the slot's
    /// effective security.
    pub fn weakest_level(&self) -> u8 {
        match self {
            ConstChoice::Uniform(c) => c.security_level(),
            ConstChoice::PerUsage {
                equality,
                range,
                aggregate_only,
            } => equality
                .security_level()
                .min(range.security_level())
                .min(aggregate_only.security_level()),
        }
    }
}

impl fmt::Display for ConstChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstChoice::Uniform(c) => write!(f, "{c}"),
            ConstChoice::PerUsage {
                equality,
                range,
                aggregate_only,
            } => {
                write!(f, "eq:{equality} range:{range} agg-only:{aggregate_only}")
            }
        }
    }
}

/// The appropriate class for one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotChoice {
    /// A name slot (relation/attribute).
    Name(EncryptionClass),
    /// The constant slot.
    Constant(ConstChoice),
}

/// One derived row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// The notion (carries measure name, characteristic, shared info).
    pub notion: EquivalenceNotion,
    /// Appropriate class for `EncRel`.
    pub enc_rel: EncryptionClass,
    /// Appropriate class for `EncAttr`.
    pub enc_attr: EncryptionClass,
    /// Appropriate choice for `{EncA.Const}`.
    pub enc_const: ConstChoice,
}

/// Definition 6 for a name slot: the most secure class that ensures the
/// notion. Classes in the same row are tried in the figure's left-to-right
/// order; for name slots only one per row ever qualifies.
pub fn appropriate_name_class(notion: EquivalenceNotion) -> EncryptionClass {
    for row in Taxonomy.rows() {
        for class in row {
            if notion.name_slot_ensures(class) {
                return class;
            }
        }
    }
    unreachable!("JOIN-OPE (bottom) preserves equality, so a class always exists")
}

/// Definition 6 for the constant slot of one usage.
pub fn appropriate_const_class(notion: EquivalenceNotion, usage: ConstUsage) -> EncryptionClass {
    for row in Taxonomy.rows() {
        for class in row {
            if notion.const_ensures(usage, class) {
                return class;
            }
        }
    }
    unreachable!("every usage is satisfiable by some class in the taxonomy")
}

/// Derives the full constant-slot choice for a notion: uniform when all
/// three usages agree, per-usage otherwise.
pub fn appropriate_const_choice(notion: EquivalenceNotion) -> ConstChoice {
    let equality = appropriate_const_class(notion, ConstUsage::Equality);
    let range = appropriate_const_class(notion, ConstUsage::Range);
    let aggregate_only = appropriate_const_class(notion, ConstUsage::AggregateOnly);
    if equality == range && range == aggregate_only {
        ConstChoice::Uniform(equality)
    } else {
        ConstChoice::PerUsage {
            equality,
            range,
            aggregate_only,
        }
    }
}

/// Derives one Table I row.
pub fn derive_row(notion: EquivalenceNotion) -> TableRow {
    TableRow {
        notion,
        enc_rel: appropriate_name_class(notion),
        enc_attr: appropriate_name_class(notion),
        enc_const: appropriate_const_choice(notion),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use EncryptionClass::*;
    use EquivalenceNotion::*;

    #[test]
    fn name_slots_always_det() {
        // Every row of Table I has DET for EncRel and EncAttr.
        for notion in EquivalenceNotion::ALL {
            assert_eq!(appropriate_name_class(notion), Det, "{notion}");
        }
    }

    #[test]
    fn token_row_matches_paper() {
        let row = derive_row(Token);
        assert_eq!(row.enc_const, ConstChoice::Uniform(Det));
    }

    #[test]
    fn structural_row_gets_prob_constants() {
        // The highest-security class for an unconstrained slot is PROB —
        // the security argument of Table I row 2.
        let row = derive_row(Structural);
        assert_eq!(row.enc_const, ConstChoice::Uniform(Prob));
    }

    #[test]
    fn result_row_is_cryptdb_composite() {
        let row = derive_row(Result);
        assert_eq!(
            row.enc_const,
            ConstChoice::PerUsage {
                equality: Det,
                range: Ope,
                aggregate_only: Hom
            }
        );
    }

    #[test]
    fn access_area_row_is_cryptdb_without_hom() {
        // "via CryptDB, except HOM": aggregate-only constants stay PROB.
        let row = derive_row(AccessArea);
        assert_eq!(
            row.enc_const,
            ConstChoice::PerUsage {
                equality: Det,
                range: Ope,
                aggregate_only: Prob
            }
        );
    }

    #[test]
    fn access_area_strictly_more_secure_than_result_row() {
        // The paper's §IV-C claim, in class-lattice terms: the weakest
        // constant class of the access-area row is at least as secure, and
        // the aggregate-only slot strictly more secure.
        let result = derive_row(Result).enc_const;
        let access = derive_row(AccessArea).enc_const;
        let (
            ConstChoice::PerUsage {
                aggregate_only: r_agg,
                ..
            },
            ConstChoice::PerUsage {
                aggregate_only: a_agg,
                ..
            },
        ) = (&result, &access)
        else {
            panic!("both rows are composite")
        };
        assert!(a_agg.security_level() > r_agg.security_level());
    }

    #[test]
    fn selection_always_prefers_higher_rows() {
        // Structural constants: PROB (level 3) must beat DET (level 2) even
        // though both ensure the notion.
        use crate::notions::ConstUsage::*;
        assert_eq!(appropriate_const_class(Structural, Equality), Prob);
        assert_eq!(appropriate_const_class(Token, Equality), Det);
        assert_eq!(appropriate_const_class(Result, Range), Ope);
    }
}
