//! The empirical verification harness: c-equivalence commuting squares
//! (Definition 2) and mining-result invariance — plus re-exported
//! Definition-1 checking from [`crate::dpe`].

use crate::error::CoreError;
use crate::scheme::{QueryEncryptor, StructuralDpe, TokenDpe};
use dpe_distance::DistanceMatrix;
use dpe_mining::{
    adjusted_rand_index, complete_link, db_outliers, dbscan, kmedoids, rand_index, DbscanConfig,
    DbscanLabel, OutlierConfig,
};
use dpe_sql::features::Feature;
use dpe_sql::{analysis, feature_set, token_set, ColumnRef, Literal, Query};
use std::collections::BTreeSet;

/// Checks `Enc(tokens(Q)) == tokens(Enc(Q))` for one query (token
/// equivalence, Definition 2 with `c = tokens`).
///
/// `Enc` on the token set applies the scheme's per-kind token encryption:
/// relation names via `EncRel`, attributes via `EncAttr`, constants via the
/// shared constant key; keywords and operators map to themselves.
pub fn token_commuting_square(scheme: &mut TokenDpe, q: &Query) -> Result<bool, CoreError> {
    // Left path: c then Enc — map each plaintext token by kind.
    let rels = analysis::relations(q);
    let attrs = analysis::attributes(q);
    let consts: BTreeSet<String> = analysis::constants(q)
        .into_iter()
        .map(|(_, lit)| lit.to_string())
        .collect();
    let enc_of_token = |tok: &str| -> String {
        if rels.contains(tok) {
            scheme.encrypt_relation_token(tok)
        } else if attrs.contains(tok) {
            scheme.encrypt_attribute_token(tok)
        } else if consts.contains(tok) {
            let lit = if let Some(stripped) = tok.strip_prefix('\'') {
                Literal::Str(stripped.trim_end_matches('\'').replace("''", "'"))
            } else if tok == "NULL" {
                Literal::Null
            } else {
                Literal::Int(tok.parse().expect("numeric token"))
            };
            scheme.encrypt_constant_token(&lit).to_string()
        } else {
            tok.to_string() // keywords, operators, punctuation
        }
    };
    let enc_of_c: BTreeSet<String> = token_set(q).iter().map(|t| enc_of_token(t)).collect();

    // Right path: Enc then c.
    let c_of_enc = token_set(&scheme.encrypt_query(q)?);

    Ok(enc_of_c == c_of_enc)
}

/// Checks `Enc(features(Q)) == features(Enc(Q))` (structural equivalence).
pub fn structural_commuting_square(
    scheme: &mut StructuralDpe,
    q: &Query,
) -> Result<bool, CoreError> {
    let enc_col = |c: &ColumnRef| ColumnRef {
        table: c.table.as_deref().map(|t| scheme.encrypt_relation_token(t)),
        column: scheme.encrypt_attribute_token(&c.column),
    };
    let enc_feature = |f: &Feature| -> Feature {
        match f {
            Feature::Select(c) => Feature::Select(enc_col(c)),
            Feature::SelectAgg(func, col) => Feature::SelectAgg(*func, col.as_ref().map(enc_col)),
            Feature::From(t) => Feature::From(scheme.encrypt_relation_token(t)),
            Feature::Where(c, op) => Feature::Where(enc_col(c), op.clone()),
            Feature::Join(a, b) => {
                let (ea, eb) = (enc_col(a), enc_col(b));
                if ea <= eb {
                    Feature::Join(ea, eb)
                } else {
                    Feature::Join(eb, ea)
                }
            }
            Feature::GroupBy(c) => Feature::GroupBy(enc_col(c)),
            Feature::OrderBy(c) => Feature::OrderBy(enc_col(c)),
        }
    };
    let enc_of_c: BTreeSet<Feature> = feature_set(q).iter().map(enc_feature).collect();
    let c_of_enc = feature_set(&scheme.encrypt_query(q)?);
    Ok(enc_of_c == c_of_enc)
}

/// Agreement scores between the mining outputs on two distance matrices
/// (plaintext vs encrypted). All four algorithms of the paper's motivation
/// are exercised.
#[derive(Debug, Clone, PartialEq)]
pub struct MiningAgreement {
    /// ARI between k-medoids clusterings.
    pub kmedoids_ari: f64,
    /// Rand index between k-medoids clusterings.
    pub kmedoids_rand: f64,
    /// ARI between DBSCAN clusterings (noise treated as its own label).
    pub dbscan_ari: f64,
    /// ARI between complete-link cuts.
    pub hierarchical_ari: f64,
    /// `true` iff the DB(p, D)-outlier sets are identical.
    pub outliers_identical: bool,
    /// `true` iff every score signals identical results.
    pub all_identical: bool,
}

/// Runs k-medoids, DBSCAN, complete-link and outlier detection on both
/// matrices and scores the agreement. Under a correct DPE scheme every
/// score is exactly 1.0 / `true` because the matrices are bit-identical.
pub fn mining_agreement(
    plain: &DistanceMatrix,
    encrypted: &DistanceMatrix,
    k: usize,
    dbscan_cfg: DbscanConfig,
    outlier_cfg: OutlierConfig,
) -> MiningAgreement {
    let km_p = kmedoids(plain, k).assignment;
    let km_e = kmedoids(encrypted, k).assignment;

    let db_label = |l: DbscanLabel| match l {
        DbscanLabel::Cluster(c) => c,
        DbscanLabel::Noise => usize::MAX - 1,
    };
    let db_p: Vec<usize> = dbscan(plain, dbscan_cfg)
        .into_iter()
        .map(db_label)
        .collect();
    let db_e: Vec<usize> = dbscan(encrypted, dbscan_cfg)
        .into_iter()
        .map(db_label)
        .collect();
    // Renumber the sentinel labels densely for the contingency table.
    let dense = |v: &[usize]| -> Vec<usize> {
        let mut map = std::collections::BTreeMap::new();
        v.iter()
            .map(|&x| {
                let next = map.len();
                *map.entry(x).or_insert(next)
            })
            .collect()
    };
    let (db_p, db_e) = (dense(&db_p), dense(&db_e));

    let hi_p = complete_link(plain).cut(k.min(plain.len().max(1)));
    let hi_e = complete_link(encrypted).cut(k.min(encrypted.len().max(1)));

    let out_p = db_outliers(plain, outlier_cfg);
    let out_e = db_outliers(encrypted, outlier_cfg);

    let kmedoids_ari = adjusted_rand_index(&km_p, &km_e);
    let kmedoids_rand = rand_index(&km_p, &km_e);
    let dbscan_ari = adjusted_rand_index(&db_p, &db_e);
    let hierarchical_ari = adjusted_rand_index(&hi_p, &hi_e);
    let outliers_identical = out_p == out_e;

    MiningAgreement {
        kmedoids_ari,
        kmedoids_rand,
        dbscan_ari,
        hierarchical_ari,
        outliers_identical,
        all_identical: kmedoids_ari == 1.0
            && kmedoids_rand == 1.0
            && dbscan_ari == 1.0
            && hierarchical_ari == 1.0
            && outliers_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_crypto::MasterKey;
    use dpe_sql::parse_query;

    fn master() -> MasterKey {
        MasterKey::from_bytes([23; 32])
    }

    #[test]
    fn token_square_commutes_on_paper_example() {
        let mut scheme = TokenDpe::new(&master());
        let q = parse_query("SELECT a1 FROM r WHERE a2 > 5").unwrap();
        assert!(token_commuting_square(&mut scheme, &q).unwrap());
    }

    #[test]
    fn token_square_commutes_on_complex_queries() {
        let mut scheme = TokenDpe::new(&master());
        for sql in [
            "SELECT DISTINCT ra, dec FROM photoobj WHERE ra BETWEEN 1 AND 5 AND class IN ('STAR', 'QSO')",
            "SELECT COUNT(*) FROM specobj GROUP BY specclass ORDER BY specclass DESC",
            "SELECT p.objid FROM photoobj JOIN specobj ON photoobj.objid = specobj.bestobjid WHERE z > 100",
        ] {
            let q = parse_query(sql).unwrap();
            assert!(token_commuting_square(&mut scheme, &q).unwrap(), "{sql}");
        }
    }

    #[test]
    fn structural_square_commutes() {
        let mut scheme = StructuralDpe::new(&master(), 4);
        for sql in [
            "SELECT a1 FROM r WHERE a2 > 5",
            "SELECT SUM(z) FROM specobj WHERE z > 10",
            "SELECT class, COUNT(*) FROM photoobj GROUP BY class ORDER BY class",
            "SELECT x FROM t WHERE t.a = u.b",
        ] {
            let q = parse_query(sql).unwrap();
            assert!(
                structural_commuting_square(&mut scheme, &q).unwrap(),
                "{sql}"
            );
        }
    }

    #[test]
    fn identical_matrices_agree_perfectly() {
        let m = DistanceMatrix::from_fn(12, |i, j| ((i * 3 + j) % 7) as f64 / 7.0 + 0.01);
        let agreement = mining_agreement(
            &m,
            &m.clone(),
            3,
            DbscanConfig {
                eps: 0.4,
                min_pts: 3,
            },
            OutlierConfig { p: 0.7, d: 0.6 },
        );
        assert!(agreement.all_identical, "{agreement:?}");
    }

    #[test]
    fn perturbed_matrix_detected() {
        let m = DistanceMatrix::from_fn(12, |i, j| ((i + j) % 5) as f64 / 5.0 + 0.05);
        // Swap near and far: a gross perturbation.
        let bad = DistanceMatrix::from_fn(12, |i, j| 1.0 - ((i + j) % 5) as f64 / 5.0);
        let agreement = mining_agreement(
            &m,
            &bad,
            3,
            DbscanConfig {
                eps: 0.3,
                min_pts: 3,
            },
            OutlierConfig { p: 0.7, d: 0.6 },
        );
        assert!(!agreement.all_identical);
    }
}
