//! SQL lexing/parsing error type.

use std::fmt;

/// An error with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Byte offset into the source text.
    pub offset: usize,
    /// Phase that failed.
    pub phase: Phase,
    /// Human-readable description.
    pub message: String,
}

/// Which phase produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
}

impl SqlError {
    /// Lexer error at `offset`.
    pub fn lex(offset: usize, message: impl Into<String>) -> Self {
        SqlError {
            offset,
            phase: Phase::Lex,
            message: message.into(),
        }
    }

    /// Parser error at `offset`.
    pub fn parse(offset: usize, message: impl Into<String>) -> Self {
        SqlError {
            offset,
            phase: Phase::Parse,
            message: message.into(),
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
        };
        write!(f, "{phase} error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SqlError {}
