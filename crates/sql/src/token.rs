//! The SQL lexer.

use crate::error::SqlError;
use std::fmt;

/// Lexical token kinds.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Token {
    /// A keyword (stored uppercase).
    Keyword(String),
    /// An identifier (table/column name, stored lowercase — the dialect is
    /// case-insensitive for identifiers).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A single-quoted string literal (unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(i) => write!(f, "{i}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
        }
    }
}

/// The dialect's reserved words.
pub const KEYWORDS: &[&str] = &[
    "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "OR", "NOT", "BETWEEN", "IN", "IS", "NULL",
    "GROUP", "BY", "ORDER", "ASC", "DESC", "LIMIT", "JOIN", "INNER", "ON", "COUNT", "SUM", "AVG",
    "MIN", "MAX", "AS",
];

/// A token plus its byte offset in the source (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// Tokenizes `sql`. Identifiers are lowercased, keywords uppercased.
pub fn lex(sql: &str) -> Result<Vec<Spanned>, SqlError> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            ',' => {
                tokens.push(Spanned {
                    token: Token::Comma,
                    offset: i,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Spanned {
                    token: Token::Dot,
                    offset: i,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Spanned {
                    token: Token::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    offset: i,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Spanned {
                    token: Token::Star,
                    offset: i,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Spanned {
                    token: Token::Eq,
                    offset: i,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Ne,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(SqlError::lex(i, "expected '=' after '!'"));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Spanned {
                        token: Token::Le,
                        offset: i,
                    });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Spanned {
                        token: Token::Ne,
                        offset: i,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(Spanned {
                        token: Token::Lt,
                        offset: i,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Ge,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Gt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut value = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(SqlError::lex(start, "unterminated string literal")),
                        Some(&b'\'') => {
                            // '' is an escaped quote inside the literal.
                            if bytes.get(i + 1) == Some(&b'\'') {
                                value.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            value.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Spanned {
                    token: Token::Str(value),
                    offset: start,
                });
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                    if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
                        return Err(SqlError::lex(start, "expected digits after '-'"));
                    }
                }
                while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                    i += 1;
                }
                if bytes.get(i) == Some(&b'.') && matches!(bytes.get(i + 1), Some(b'0'..=b'9')) {
                    return Err(SqlError::lex(
                        start,
                        "floating-point literals are not supported; use fixed-point integers",
                    ));
                }
                let text = &sql[start..i];
                let value: i64 = text
                    .parse()
                    .map_err(|_| SqlError::lex(start, "integer literal out of i64 range"))?;
                tokens.push(Spanned {
                    token: Token::Int(value),
                    offset: start,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while matches!(
                    bytes.get(i),
                    Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
                ) {
                    i += 1;
                }
                let word = &sql[start..i];
                let upper = word.to_ascii_uppercase();
                let token = if KEYWORDS.contains(&upper.as_str()) {
                    Token::Keyword(upper)
                } else {
                    Token::Ident(word.to_ascii_lowercase())
                };
                tokens.push(Spanned {
                    token,
                    offset: start,
                });
            }
            other => return Err(SqlError::lex(i, format!("unexpected character {other:?}"))),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<Token> {
        lex(sql).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_simple_query() {
        let toks = kinds("SELECT ra FROM photoobj WHERE dec > 5");
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Ident("ra".into()),
                Token::Keyword("FROM".into()),
                Token::Ident("photoobj".into()),
                Token::Keyword("WHERE".into()),
                Token::Ident("dec".into()),
                Token::Gt,
                Token::Int(5),
            ]
        );
    }

    #[test]
    fn case_insensitive_keywords_and_idents() {
        assert_eq!(
            kinds("select RA from PhotoObj"),
            kinds("SELECT ra FROM photoobj")
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= != <> < <= > >="),
            vec![
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(kinds("'abc'"), vec![Token::Str("abc".into())]);
        assert_eq!(kinds("'o''brien'"), vec![Token::Str("o'brien".into())]);
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn negative_numbers() {
        assert_eq!(kinds("-42"), vec![Token::Int(-42)]);
        assert!(lex("- 42").is_err());
    }

    #[test]
    fn floats_rejected_with_guidance() {
        let err = lex("SELECT ra FROM t WHERE ra > 1.5").unwrap_err();
        assert!(err.to_string().contains("fixed-point"));
    }

    #[test]
    fn offsets_point_at_tokens() {
        let spanned = lex("SELECT ra").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[1].offset, 7);
    }

    #[test]
    fn unexpected_character() {
        assert!(lex("SELECT #").is_err());
    }
}
