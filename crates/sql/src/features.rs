//! `features(Q)` — the characteristic function of **structural equivalence**
//! (Table I row 2), after SnipSuggest \[15\].
//!
//! A feature is a tuple describing one structural element of the query:
//! which columns are projected, which tables are scanned, which columns are
//! restricted *and with which operator* — but **not** the constant values.
//! Example 5 of the paper: for `SELECT A1 FROM R WHERE A2 > 5`,
//! `features(Q) = {(SELECT, A1), (FROM, R), (WHERE, A2 >)}`.
//!
//! Because constants never appear in features, the constants slot can use a
//! PROB scheme while still preserving query-structure distance — the
//! security win the paper's Table I records for this measure.

use crate::ast::*;
use std::collections::BTreeSet;
use std::fmt;

/// One structural feature of a query.
// The clippy.toml ban on `PartialOrd::partial_cmp` targets NaN-prone
// float sorts; this derive expands to field-wise partial_cmp over
// non-float fields, which cannot hit the NaN pitfall.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Feature {
    /// `(SELECT, col)`
    Select(ColumnRef),
    /// `(SELECT, FUNC(col))` — aggregate projection.
    SelectAgg(AggFunc, Option<ColumnRef>),
    /// `(FROM, table)`
    From(String),
    /// `(WHERE, col op)` — operator spelling without the constant.
    Where(ColumnRef, String),
    /// `(JOIN, a = b)` — canonicalized so operand order does not matter.
    Join(ColumnRef, ColumnRef),
    /// `(GROUP BY, col)`
    GroupBy(ColumnRef),
    /// `(ORDER BY, col)` — direction ignored, as in SnipSuggest.
    OrderBy(ColumnRef),
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Feature::Select(c) => write!(f, "(SELECT, {c})"),
            Feature::SelectAgg(func, Some(c)) => write!(f, "(SELECT, {func}({c}))"),
            Feature::SelectAgg(func, None) => write!(f, "(SELECT, {func}(*))"),
            Feature::From(t) => write!(f, "(FROM, {t})"),
            Feature::Where(c, op) => write!(f, "(WHERE, {c} {op})"),
            Feature::Join(a, b) => write!(f, "(JOIN, {a} = {b})"),
            Feature::GroupBy(c) => write!(f, "(GROUP BY, {c})"),
            Feature::OrderBy(c) => write!(f, "(ORDER BY, {c})"),
        }
    }
}

/// The feature set of a query.
pub type FeatureSet = BTreeSet<Feature>;

/// Computes `features(Q)`.
pub fn feature_set(query: &Query) -> FeatureSet {
    let mut features = BTreeSet::new();

    for item in &query.select {
        match item {
            SelectItem::Wildcard => {
                // `*` has no attribute to record; the FROM feature carries
                // the structural information.
            }
            SelectItem::Column(c) => {
                features.insert(Feature::Select(c.clone()));
            }
            SelectItem::Aggregate { func, arg } => {
                let col = match arg {
                    AggArg::Star => None,
                    AggArg::Column(c) => Some(c.clone()),
                };
                features.insert(Feature::SelectAgg(*func, col));
            }
        }
    }

    features.insert(Feature::From(query.from.name.clone()));
    for join in &query.joins {
        features.insert(Feature::From(join.table.name.clone()));
        features.insert(join_feature(&join.left, &join.right));
    }

    if let Some(expr) = &query.where_clause {
        collect_expr_features(expr, &mut features);
    }

    for c in &query.group_by {
        features.insert(Feature::GroupBy(c.clone()));
    }
    for o in &query.order_by {
        features.insert(Feature::OrderBy(o.col.clone()));
    }

    features
}

/// Canonicalizes join operand order so `a = b` and `b = a` coincide.
fn join_feature(a: &ColumnRef, b: &ColumnRef) -> Feature {
    if a <= b {
        Feature::Join(a.clone(), b.clone())
    } else {
        Feature::Join(b.clone(), a.clone())
    }
}

fn collect_expr_features(expr: &Expr, out: &mut FeatureSet) {
    match expr {
        Expr::Comparison { col, op, .. } => {
            out.insert(Feature::Where(col.clone(), op.symbol().to_string()));
        }
        Expr::ColumnEq { left, right } => {
            out.insert(join_feature(left, right));
        }
        Expr::Between { col, .. } => {
            out.insert(Feature::Where(col.clone(), "BETWEEN".to_string()));
        }
        Expr::InList { col, .. } => {
            out.insert(Feature::Where(col.clone(), "IN".to_string()));
        }
        Expr::IsNull { col, negated } => {
            let op = if *negated { "IS NOT NULL" } else { "IS NULL" };
            out.insert(Feature::Where(col.clone(), op.to_string()));
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            collect_expr_features(a, out);
            collect_expr_features(b, out);
        }
        Expr::Not(inner) => collect_expr_features(inner, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn features(sql: &str) -> FeatureSet {
        feature_set(&parse_query(sql).unwrap())
    }

    #[test]
    fn example_5_from_the_paper() {
        // features(SELECT A1 FROM R WHERE A2 > 5)
        //   = {(SELECT, A1), (FROM, R), (WHERE, A2 >)}
        let f = features("SELECT a1 FROM r WHERE a2 > 5");
        assert_eq!(f.len(), 3);
        assert!(f.contains(&Feature::Select(ColumnRef::bare("a1"))));
        assert!(f.contains(&Feature::From("r".into())));
        assert!(f.contains(&Feature::Where(ColumnRef::bare("a2"), ">".into())));
    }

    #[test]
    fn constants_do_not_appear() {
        // The whole point of structural equivalence: changing constants
        // leaves the feature set untouched.
        assert_eq!(
            features("SELECT ra FROM t WHERE dec > 5"),
            features("SELECT ra FROM t WHERE dec > 99999")
        );
        assert_eq!(
            features("SELECT ra FROM t WHERE class IN ('STAR')"),
            features("SELECT ra FROM t WHERE class IN ('QSO', 'GALAXY')")
        );
    }

    #[test]
    fn operator_is_part_of_the_feature() {
        assert_ne!(
            features("SELECT ra FROM t WHERE dec > 5"),
            features("SELECT ra FROM t WHERE dec < 5")
        );
    }

    #[test]
    fn joins_are_order_insensitive() {
        let a = features("SELECT ra FROM t WHERE t.x = u.y");
        let b = features("SELECT ra FROM t WHERE u.y = t.x");
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_join_contributes_from_and_join_features() {
        let f =
            features("SELECT ra FROM photoobj JOIN specobj ON photoobj.objid = specobj.bestobjid");
        assert!(f.contains(&Feature::From("photoobj".into())));
        assert!(f.contains(&Feature::From("specobj".into())));
        assert!(f.iter().any(|feat| matches!(feat, Feature::Join(_, _))));
    }

    #[test]
    fn aggregates_group_order() {
        let f = features("SELECT COUNT(*), SUM(z) FROM specobj GROUP BY class ORDER BY class DESC");
        assert!(f.contains(&Feature::SelectAgg(AggFunc::Count, None)));
        assert!(f.contains(&Feature::SelectAgg(
            AggFunc::Sum,
            Some(ColumnRef::bare("z"))
        )));
        assert!(f.contains(&Feature::GroupBy(ColumnRef::bare("class"))));
        assert!(f.contains(&Feature::OrderBy(ColumnRef::bare("class"))));
    }

    #[test]
    fn between_and_null_ops() {
        let f = features("SELECT ra FROM t WHERE ra BETWEEN 1 AND 2 AND z IS NULL");
        assert!(f.contains(&Feature::Where(ColumnRef::bare("ra"), "BETWEEN".into())));
        assert!(f.contains(&Feature::Where(ColumnRef::bare("z"), "IS NULL".into())));
    }

    #[test]
    fn display_matches_paper_notation() {
        let f = Feature::Where(ColumnRef::bare("a2"), ">".into());
        assert_eq!(f.to_string(), "(WHERE, a2 >)");
    }
}
