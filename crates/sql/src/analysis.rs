//! Query analysis visitors and the identifier-rewriting hook used to build
//! `Enc(Q)`.
//!
//! The high-level encryption scheme of the paper (Section IV-A2) encrypts
//! *only* relation names, attribute names and constants — keywords,
//! operators and structure stay in the clear (Example 4). [`rewrite_query`]
//! walks the AST once and lets an [`IdentifierTransform`] replace exactly
//! those three kinds of elements, which is how every DPE scheme in this
//! workspace produces encrypted queries.

use crate::ast::*;
use std::collections::BTreeSet;

/// Callbacks replacing the three encryptable element kinds.
///
/// `constant` receives the column the constant belongs to (as written in the
/// query), because the paper keys constant encryption *per attribute*
/// (`EncA.Const`).
pub trait IdentifierTransform {
    /// Replaces a relation (table) name.
    fn relation(&mut self, name: &str) -> String;
    /// Replaces an attribute (column) name. `table` is the qualifier as
    /// written, already transformed.
    fn attribute(&mut self, name: &str) -> String;
    /// Replaces a constant belonging to `col` (pre-transform spelling).
    fn constant(&mut self, col: &ColumnRef, value: &Literal) -> Literal;
}

/// Applies `t` to every relation name, attribute name and constant of `q`,
/// returning the rewritten query. Structure, keywords and operators are
/// untouched.
pub fn rewrite_query<T: IdentifierTransform>(q: &Query, t: &mut T) -> Query {
    let rewrite_col = |t: &mut T, c: &ColumnRef| ColumnRef {
        table: c.table.as_deref().map(|tab| t.relation(tab)),
        column: t.attribute(&c.column),
    };

    let select = q
        .select
        .iter()
        .map(|item| match item {
            SelectItem::Wildcard => SelectItem::Wildcard,
            SelectItem::Column(c) => SelectItem::Column(rewrite_col(t, c)),
            SelectItem::Aggregate { func, arg } => SelectItem::Aggregate {
                func: *func,
                arg: match arg {
                    AggArg::Star => AggArg::Star,
                    AggArg::Column(c) => AggArg::Column(rewrite_col(t, c)),
                },
            },
        })
        .collect();

    let from = TableRef::new(t.relation(&q.from.name));
    let joins = q
        .joins
        .iter()
        .map(|j| Join {
            table: TableRef::new(t.relation(&j.table.name)),
            left: rewrite_col(t, &j.left),
            right: rewrite_col(t, &j.right),
        })
        .collect();

    let where_clause = q.where_clause.as_ref().map(|e| rewrite_expr(e, t));

    let group_by = q.group_by.iter().map(|c| rewrite_col(t, c)).collect();
    let order_by = q
        .order_by
        .iter()
        .map(|o| OrderItem {
            col: rewrite_col(t, &o.col),
            desc: o.desc,
        })
        .collect();

    Query {
        distinct: q.distinct,
        select,
        from,
        joins,
        where_clause,
        group_by,
        order_by,
        limit: q.limit,
    }
}

fn rewrite_expr<T: IdentifierTransform>(e: &Expr, t: &mut T) -> Expr {
    let rewrite_col = |t: &mut T, c: &ColumnRef| ColumnRef {
        table: c.table.as_deref().map(|tab| t.relation(tab)),
        column: t.attribute(&c.column),
    };
    match e {
        Expr::Comparison { col, op, value } => Expr::Comparison {
            col: rewrite_col(t, col),
            op: *op,
            value: t.constant(col, value),
        },
        Expr::ColumnEq { left, right } => Expr::ColumnEq {
            left: rewrite_col(t, left),
            right: rewrite_col(t, right),
        },
        Expr::Between { col, low, high } => Expr::Between {
            col: rewrite_col(t, col),
            low: t.constant(col, low),
            high: t.constant(col, high),
        },
        Expr::InList { col, list } => Expr::InList {
            col: rewrite_col(t, col),
            list: list.iter().map(|v| t.constant(col, v)).collect(),
        },
        Expr::IsNull { col, negated } => Expr::IsNull {
            col: rewrite_col(t, col),
            negated: *negated,
        },
        Expr::And(a, b) => Expr::And(Box::new(rewrite_expr(a, t)), Box::new(rewrite_expr(b, t))),
        Expr::Or(a, b) => Expr::Or(Box::new(rewrite_expr(a, t)), Box::new(rewrite_expr(b, t))),
        Expr::Not(inner) => Expr::Not(Box::new(rewrite_expr(inner, t))),
    }
}

/// Flattens a conjunction tree into its leaf predicates, in syntax order.
/// Returns `None` when the expression is not a pure conjunction — an `OR`
/// or `NOT` anywhere above the leaves — so callers that can only push
/// conjuncts down (e.g. a range-predicate lowering) know to bail instead
/// of mis-lowering.
pub fn conjuncts(e: &Expr) -> Option<Vec<&Expr>> {
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) -> bool {
        match e {
            Expr::And(a, b) => walk(a, out) && walk(b, out),
            Expr::Or(..) | Expr::Not(..) => false,
            leaf => {
                out.push(leaf);
                true
            }
        }
    }
    let mut out = Vec::new();
    walk(e, &mut out).then_some(out)
}

/// All relation names mentioned by the query (FROM + JOIN + qualifiers).
pub fn relations(q: &Query) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    out.insert(q.from.name.clone());
    for j in &q.joins {
        out.insert(j.table.name.clone());
    }
    let mut add_col = |c: &ColumnRef| {
        if let Some(t) = &c.table {
            out.insert(t.clone());
        }
    };
    visit_columns(q, &mut add_col);
    out
}

/// All attribute names mentioned by the query, as written (unqualified
/// spellings collapse).
pub fn attributes(q: &Query) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    visit_columns(q, &mut |c: &ColumnRef| {
        out.insert(c.column.clone());
    });
    out
}

/// Every `(column, constant)` pair in the WHERE clause, in syntax order.
pub fn constants(q: &Query) -> Vec<(ColumnRef, Literal)> {
    let mut out = Vec::new();
    if let Some(e) = &q.where_clause {
        collect_constants(e, &mut out);
    }
    out
}

fn collect_constants(e: &Expr, out: &mut Vec<(ColumnRef, Literal)>) {
    match e {
        Expr::Comparison { col, value, .. } => out.push((col.clone(), value.clone())),
        Expr::Between { col, low, high } => {
            out.push((col.clone(), low.clone()));
            out.push((col.clone(), high.clone()));
        }
        Expr::InList { col, list } => {
            out.extend(list.iter().map(|v| (col.clone(), v.clone())));
        }
        Expr::ColumnEq { .. } | Expr::IsNull { .. } => {}
        Expr::And(a, b) | Expr::Or(a, b) => {
            collect_constants(a, out);
            collect_constants(b, out);
        }
        Expr::Not(inner) => collect_constants(inner, out),
    }
}

/// Calls `f` on every column reference in the query.
pub fn visit_columns(q: &Query, f: &mut impl FnMut(&ColumnRef)) {
    for item in &q.select {
        match item {
            SelectItem::Column(c) => f(c),
            SelectItem::Aggregate {
                arg: AggArg::Column(c),
                ..
            } => f(c),
            _ => {}
        }
    }
    for j in &q.joins {
        f(&j.left);
        f(&j.right);
    }
    if let Some(e) = &q.where_clause {
        visit_expr_columns(e, f);
    }
    for c in &q.group_by {
        f(c);
    }
    for o in &q.order_by {
        f(&o.col);
    }
}

fn visit_expr_columns(e: &Expr, f: &mut impl FnMut(&ColumnRef)) {
    match e {
        Expr::Comparison { col, .. }
        | Expr::Between { col, .. }
        | Expr::InList { col, .. }
        | Expr::IsNull { col, .. } => f(col),
        Expr::ColumnEq { left, right } => {
            f(left);
            f(right);
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            visit_expr_columns(a, f);
            visit_expr_columns(b, f);
        }
        Expr::Not(inner) => visit_expr_columns(inner, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    /// Toy transform: prefixes every element kind distinctly.
    struct Tagger;
    impl IdentifierTransform for Tagger {
        fn relation(&mut self, name: &str) -> String {
            format!("r_{name}")
        }
        fn attribute(&mut self, name: &str) -> String {
            format!("a_{name}")
        }
        fn constant(&mut self, _col: &ColumnRef, value: &Literal) -> Literal {
            match value {
                Literal::Int(v) => Literal::Int(v + 1000),
                Literal::Str(s) => Literal::Str(format!("c_{s}")),
                Literal::Null => Literal::Null,
            }
        }
    }

    #[test]
    fn rewrite_matches_example_4() {
        // Enc(SELECT A1 FROM R WHERE A2 > 5) =
        //   SELECT EncAttr(A1) FROM EncRel(R) WHERE EncAttr(A2) > EncA2.Const(5)
        let q = parse_query("SELECT a1 FROM r WHERE a2 > 5").unwrap();
        let enc = rewrite_query(&q, &mut Tagger);
        assert_eq!(enc.to_string(), "SELECT a_a1 FROM r_r WHERE a_a2 > 1005");
    }

    #[test]
    fn rewrite_covers_all_clauses() {
        let q = parse_query(
            "SELECT DISTINCT x, SUM(y) FROM t JOIN u ON t.id = u.id \
             WHERE a BETWEEN 1 AND 2 AND b IN (3, 4) AND c IS NULL \
             GROUP BY x ORDER BY x DESC LIMIT 7",
        )
        .unwrap();
        let enc = rewrite_query(&q, &mut Tagger);
        let text = enc.to_string();
        assert_eq!(
            text,
            "SELECT DISTINCT a_x, SUM(a_y) FROM r_t JOIN r_u ON r_t.a_id = r_u.a_id \
             WHERE a_a BETWEEN 1001 AND 1002 AND a_b IN (1003, 1004) AND a_c IS NULL \
             GROUP BY a_x ORDER BY a_x DESC LIMIT 7"
        );
    }

    #[test]
    fn structure_is_invariant_under_rewrite() {
        let q = parse_query("SELECT ra FROM t WHERE a = 1 OR NOT (b < 2)").unwrap();
        let enc = rewrite_query(&q, &mut Tagger);
        // Same shape: OR root with NOT on the right.
        assert!(
            matches!(enc.where_clause, Some(Expr::Or(_, ref r)) if matches!(**r, Expr::Not(_)))
        );
        assert_eq!(enc.limit, q.limit);
        assert_eq!(enc.distinct, q.distinct);
    }

    #[test]
    fn relations_includes_qualifiers() {
        let q = parse_query("SELECT ra FROM t WHERE t.a = u.b").unwrap();
        let rels = relations(&q);
        assert!(rels.contains("t") && rels.contains("u"));
    }

    #[test]
    fn attributes_and_constants() {
        let q = parse_query("SELECT ra FROM t WHERE dec > 5 AND class IN ('STAR', 'QSO')").unwrap();
        let attrs = attributes(&q);
        assert!(attrs.contains("ra") && attrs.contains("dec") && attrs.contains("class"));
        let consts = constants(&q);
        assert_eq!(consts.len(), 3);
        assert_eq!(consts[0], (ColumnRef::bare("dec"), Literal::Int(5)));
    }

    #[test]
    fn conjuncts_flattens_and_chains() {
        let q = parse_query("SELECT ra FROM t WHERE a = 1 AND b <= 2 AND c > 3").unwrap();
        let cs = conjuncts(q.where_clause.as_ref().unwrap()).unwrap();
        assert_eq!(cs.len(), 3);
        assert!(cs.iter().all(|e| matches!(e, Expr::Comparison { .. })));
    }

    #[test]
    fn conjuncts_rejects_disjunction_and_negation() {
        for sql in [
            "SELECT ra FROM t WHERE a = 1 OR b = 2",
            "SELECT ra FROM t WHERE a = 1 AND NOT b = 2",
        ] {
            let q = parse_query(sql).unwrap();
            assert!(
                conjuncts(q.where_clause.as_ref().unwrap()).is_none(),
                "{sql}"
            );
        }
    }

    #[test]
    fn constants_keyed_by_column() {
        // BETWEEN contributes two constants on the same column.
        let q = parse_query("SELECT ra FROM t WHERE ra BETWEEN 10 AND 20").unwrap();
        let consts = constants(&q);
        assert_eq!(consts.len(), 2);
        assert!(consts.iter().all(|(c, _)| c.column == "ra"));
    }
}
