//! # dpe-sql — the SQL substrate
//!
//! Everything the four query-distance measures need from SQL:
//!
//! * [`token`] — a lexer for the SELECT dialect the paper's case study uses
//!   (SkyServer-style analytic queries);
//! * [`ast`] — the query AST (`SELECT … FROM … [JOIN … ON …] WHERE … GROUP
//!   BY … ORDER BY … LIMIT …`);
//! * [`parser`] — a recursive-descent parser with precise error positions;
//! * [`display`] — a canonical pretty-printer (`parse ∘ print = id`);
//! * [`tokens`] — `tokens(Q)`: the token *set* of a query, the characteristic
//!   preserved by **token equivalence** (Table I row 1);
//! * [`features`] — `features(Q)`: SnipSuggest-style structural features, the
//!   characteristic preserved by **structural equivalence** (Table I row 2);
//! * [`analysis`] — visitors for relations/attributes/constants and the
//!   identifier-rewriting hook the encryption layer uses to build `Enc(Q)`.
//!
//! Numeric literals are 64-bit integers: the synthetic SkyServer workload
//! scales real-valued attributes (e.g. right ascension) to fixed-point, which
//! keeps every distance computation exact — a prerequisite for checking the
//! DPE property `d(Enc(x), Enc(y)) = d(x, y)` with `==` instead of an ε.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod ast;
pub mod display;
pub mod error;
pub mod features;
pub mod parser;
pub mod token;
pub mod tokens;

pub use ast::{
    AggArg, AggFunc, ColumnRef, CompareOp, Expr, Join, Literal, OrderItem, Query, SelectItem,
    TableRef,
};
pub use error::SqlError;
pub use features::{feature_set, Feature};
pub use parser::parse_query;
pub use tokens::token_set;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A tiny generator of random-but-valid queries over a fixed schema.
    fn arb_query() -> impl Strategy<Value = String> {
        let col = prop::sample::select(vec!["ra", "dec", "objid", "z", "class"]);
        let table = prop::sample::select(vec!["photoobj", "specobj", "neighbors"]);
        let op = prop::sample::select(vec!["=", "<", ">", "<=", ">=", "!="]);
        (
            prop::collection::vec(col.clone(), 1..4),
            table,
            prop::collection::vec((col, op, any::<i64>()), 0..3),
            any::<bool>(),
            prop::option::of(0u64..1000),
        )
            .prop_map(|(cols, table, preds, distinct, limit)| {
                let mut sql = String::from("SELECT ");
                if distinct {
                    sql.push_str("DISTINCT ");
                }
                sql.push_str(&cols.join(", "));
                sql.push_str(&format!(" FROM {table}"));
                if !preds.is_empty() {
                    let conds: Vec<String> = preds
                        .iter()
                        .map(|(c, o, v)| format!("{c} {o} {v}"))
                        .collect();
                    sql.push_str(&format!(" WHERE {}", conds.join(" AND ")));
                }
                if let Some(l) = limit {
                    sql.push_str(&format!(" LIMIT {l}"));
                }
                sql
            })
    }

    proptest! {
        #[test]
        fn parse_print_parse_fixpoint(sql in arb_query()) {
            let q1 = parse_query(&sql).expect("generated SQL must parse");
            let printed = q1.to_string();
            let q2 = parse_query(&printed).expect("printed SQL must re-parse");
            prop_assert_eq!(&q1, &q2, "printed: {}", printed);
        }

        #[test]
        fn token_set_is_print_invariant(sql in arb_query()) {
            // Canonical printing must not change the token set — otherwise
            // token distance would depend on formatting.
            let q = parse_query(&sql).unwrap();
            let reparsed = parse_query(&q.to_string()).unwrap();
            prop_assert_eq!(token_set(&q), token_set(&reparsed));
        }

        #[test]
        fn feature_set_is_print_invariant(sql in arb_query()) {
            let q = parse_query(&sql).unwrap();
            let reparsed = parse_query(&q.to_string()).unwrap();
            prop_assert_eq!(feature_set(&q), feature_set(&reparsed));
        }
    }
}
