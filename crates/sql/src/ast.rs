//! The query AST.
//!
//! The dialect covers what SQL query-log mining actually sees in the paper's
//! case study: single-block `SELECT` queries with projections, aggregates,
//! inner joins, conjunctive/disjunctive predicates over columns and
//! constants, grouping, ordering and limits. No subqueries or DDL — query
//! logs of analytic front-ends (SkyServer) are overwhelmingly of this shape.

use std::fmt;

/// A literal constant appearing in a query.
// The clippy.toml ban on `PartialOrd::partial_cmp` targets NaN-prone
// float sorts; this derive expands to field-wise partial_cmp over
// non-float fields, which cannot hit the NaN pitfall.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Literal {
    /// 64-bit integer (real-valued domains are fixed-point scaled).
    Int(i64),
    /// String constant (single-quoted in SQL text).
    Str(String),
    /// The SQL NULL literal.
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

/// A possibly table-qualified column reference, e.g. `photoobj.ra` or `ra`.
// The clippy.toml ban on `PartialOrd::partial_cmp` targets NaN-prone
// float sorts; this derive expands to field-wise partial_cmp over
// non-float fields, which cannot hit the NaN pitfall.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Qualifying table name, when written.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified column.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// Table-qualified column.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A table in the FROM clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableRef {
    /// Table name.
    pub name: String,
}

impl TableRef {
    /// Creates a table reference.
    pub fn new(name: impl Into<String>) -> Self {
        TableRef { name: name.into() }
    }
}

/// An explicit `JOIN … ON a = b`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Join {
    /// Joined table.
    pub table: TableRef,
    /// Left side of the equi-join condition.
    pub left: ColumnRef,
    /// Right side of the equi-join condition.
    pub right: ColumnRef,
}

/// Comparison operators usable between a column and a constant.
// The clippy.toml ban on `PartialOrd::partial_cmp` targets NaN-prone
// float sorts; this derive expands to field-wise partial_cmp over
// non-float fields, which cannot hit the NaN pitfall.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// The canonical SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A boolean predicate expression (WHERE clause).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// `col op literal`
    Comparison {
        /// Column operand.
        col: ColumnRef,
        /// Operator.
        op: CompareOp,
        /// Constant operand.
        value: Literal,
    },
    /// `col1 = col2` (join predicate written in WHERE form).
    ColumnEq {
        /// Left column.
        left: ColumnRef,
        /// Right column.
        right: ColumnRef,
    },
    /// `col BETWEEN low AND high`
    Between {
        /// Column operand.
        col: ColumnRef,
        /// Lower bound (inclusive).
        low: Literal,
        /// Upper bound (inclusive).
        high: Literal,
    },
    /// `col IN (v1, v2, …)`
    InList {
        /// Column operand.
        col: ColumnRef,
        /// Candidate constants.
        list: Vec<Literal>,
    },
    /// `col IS [NOT] NULL`
    IsNull {
        /// Column operand.
        col: ColumnRef,
        /// `true` for `IS NOT NULL`.
        negated: bool,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for `col op value`.
    pub fn cmp(col: ColumnRef, op: CompareOp, value: Literal) -> Self {
        Expr::Comparison { col, op, value }
    }

    /// Conjunction helper.
    pub fn and(self, rhs: Expr) -> Self {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction helper.
    pub fn or(self, rhs: Expr) -> Self {
        Expr::Or(Box::new(self), Box::new(rhs))
    }
}

/// Aggregate functions.
// The clippy.toml ban on `PartialOrd::partial_cmp` targets NaN-prone
// float sorts; this derive expands to field-wise partial_cmp over
// non-float fields, which cannot hit the NaN pitfall.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl AggFunc {
    /// Canonical SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// `true` for the *arithmetic* aggregates (SUM/AVG) that need the HOM
    /// class under CryptDB — the distinction §IV-C of the paper exploits.
    pub fn is_arithmetic(self) -> bool {
        matches!(self, AggFunc::Sum | AggFunc::Avg)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Argument of an aggregate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggArg {
    /// `COUNT(*)`
    Star,
    /// `FUNC(col)`
    Column(ColumnRef),
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A plain column.
    Column(ColumnRef),
    /// An aggregate call.
    Aggregate {
        /// Function.
        func: AggFunc,
        /// Argument.
        arg: AggArg,
    },
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OrderItem {
    /// Ordering column.
    pub col: ColumnRef,
    /// `true` for descending.
    pub desc: bool,
}

/// A single-block SELECT query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    /// `true` for `SELECT DISTINCT`.
    pub distinct: bool,
    /// SELECT list (never empty).
    pub select: Vec<SelectItem>,
    /// First FROM table.
    pub from: TableRef,
    /// Explicit inner joins, in join order.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

impl Query {
    /// Minimal `SELECT <items> FROM <table>` query; extend via the public
    /// fields.
    pub fn new(select: Vec<SelectItem>, from: TableRef) -> Self {
        Query {
            distinct: false,
            select,
            from,
            joins: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_display_escapes_quotes() {
        assert_eq!(Literal::Str("o'brien".into()).to_string(), "'o''brien'");
        assert_eq!(Literal::Int(-5).to_string(), "-5");
        assert_eq!(Literal::Null.to_string(), "NULL");
    }

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::bare("ra").to_string(), "ra");
        assert_eq!(
            ColumnRef::qualified("photoobj", "ra").to_string(),
            "photoobj.ra"
        );
    }

    #[test]
    fn arithmetic_aggregates() {
        assert!(AggFunc::Sum.is_arithmetic());
        assert!(AggFunc::Avg.is_arithmetic());
        assert!(!AggFunc::Count.is_arithmetic());
        assert!(!AggFunc::Min.is_arithmetic());
        assert!(!AggFunc::Max.is_arithmetic());
    }

    #[test]
    fn expr_builders() {
        let e = Expr::cmp(ColumnRef::bare("ra"), CompareOp::Gt, Literal::Int(5)).and(Expr::cmp(
            ColumnRef::bare("dec"),
            CompareOp::Lt,
            Literal::Int(10),
        ));
        assert!(matches!(e, Expr::And(_, _)));
    }
}
