//! `tokens(Q)` — the characteristic function of **token equivalence**
//! (Table I row 1).
//!
//! "For token-based query-string distance, one interprets an SQL query as a
//! set of tokens" (Definition 3). We lex the canonical rendering of the
//! query and collect the token spellings into a set. Keywords and operators
//! participate (they are part of the query string); identifiers and
//! constants are the parts encryption later replaces 1:1, which is exactly
//! why a DET scheme preserves the Jaccard distance over these sets.

use crate::ast::Query;
use crate::token::{lex, Token};
use std::collections::BTreeSet;

/// A single element of `tokens(Q)`.
///
/// Tokens carry only their spelling (no position, no kind) because the
/// token-based measure treats the query as a bag-collapsed-to-set of
/// spellings. `BTreeSet` gives deterministic iteration for the harnesses.
pub type TokenSet = BTreeSet<String>;

/// Computes `tokens(Q)` from the canonical rendering of `query`.
pub fn token_set(query: &Query) -> TokenSet {
    token_set_of_text(&query.to_string()).expect("canonical rendering always lexes")
}

/// Computes the token set of raw SQL text (used to tokenize *encrypted*
/// queries, whose identifiers are hex strings).
pub fn token_set_of_text(sql: &str) -> Result<TokenSet, crate::error::SqlError> {
    let spanned = lex(sql)?;
    Ok(spanned
        .into_iter()
        .map(|s| match s.token {
            // Normalize the two spellings of ≠ the lexer folds anyway.
            Token::Ne => "!=".to_string(),
            other => other.to_string(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn tokens(sql: &str) -> TokenSet {
        token_set(&parse_query(sql).unwrap())
    }

    #[test]
    fn simple_query_tokens() {
        let t = tokens("SELECT ra FROM photoobj WHERE dec > 5");
        for expected in ["SELECT", "ra", "FROM", "photoobj", "WHERE", "dec", ">", "5"] {
            assert!(t.contains(expected), "missing {expected}: {t:?}");
        }
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn set_semantics_collapse_duplicates() {
        // Repeating a conjunct changes the token *bag* but not the *set*.
        let t1 = tokens("SELECT ra FROM t WHERE ra = 5 AND ra = 5");
        let t2 = tokens("SELECT ra FROM t WHERE ra = 5 AND ra = 5 AND ra = 5");
        assert_eq!(t1, t2);
    }

    #[test]
    fn formatting_does_not_matter() {
        assert_eq!(
            tokens("select   ra from t where dec>5"),
            tokens("SELECT ra FROM t WHERE dec > 5")
        );
    }

    #[test]
    fn constants_are_tokens() {
        let t = tokens("SELECT ra FROM t WHERE class = 'STAR' AND z = 17");
        assert!(t.contains("'STAR'"));
        assert!(t.contains("17"));
    }

    #[test]
    fn token_set_of_encrypted_looking_text() {
        // Hex identifiers (what DET produces) must lex fine.
        let t = token_set_of_text("SELECT deadbeef FROM cafebabe WHERE a1b2 > 42").unwrap();
        assert!(t.contains("deadbeef"));
        assert!(t.contains("cafebabe"));
    }

    #[test]
    fn disjoint_queries_share_only_keywords() {
        let a = tokens("SELECT ra FROM photoobj");
        let b = tokens("SELECT z FROM specobj");
        let inter: Vec<_> = a.intersection(&b).cloned().collect();
        assert_eq!(inter, vec!["FROM".to_string(), "SELECT".to_string()]);
    }
}
