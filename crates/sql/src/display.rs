//! Canonical SQL rendering of the AST.
//!
//! The printer emits exactly the dialect the parser accepts, with uppercase
//! keywords, lowercase identifiers, one space between tokens and minimal
//! parentheses (re-inserted only where precedence demands). The round-trip
//! property `parse(print(q)) == q` is enforced by tests in `lib.rs`.

use crate::ast::*;
use std::fmt;

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::Aggregate { func, arg } => match arg {
                AggArg::Star => write!(f, "{func}(*)"),
                AggArg::Column(c) => write!(f, "{func}({c})"),
            },
        }
    }
}

impl Expr {
    /// Precedence for printing: OR(1) < AND(2) < NOT(3) < atoms(4).
    fn precedence(&self) -> u8 {
        match self {
            Expr::Or(_, _) => 1,
            Expr::And(_, _) => 2,
            Expr::Not(_) => 3,
            _ => 4,
        }
    }

    fn fmt_with_parens(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        let prec = self.precedence();
        if prec < parent_prec {
            write!(f, "(")?;
        }
        match self {
            Expr::Comparison { col, op, value } => write!(f, "{col} {op} {value}")?,
            Expr::ColumnEq { left, right } => write!(f, "{left} = {right}")?,
            Expr::Between { col, low, high } => write!(f, "{col} BETWEEN {low} AND {high}")?,
            Expr::InList { col, list } => {
                write!(f, "{col} IN (")?;
                for (i, lit) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{lit}")?;
                }
                write!(f, ")")?;
            }
            Expr::IsNull { col, negated } => {
                if *negated {
                    write!(f, "{col} IS NOT NULL")?;
                } else {
                    write!(f, "{col} IS NULL")?;
                }
            }
            Expr::And(a, b) => {
                a.fmt_with_parens(f, 2)?;
                write!(f, " AND ")?;
                b.fmt_with_parens(f, 2)?;
            }
            Expr::Or(a, b) => {
                a.fmt_with_parens(f, 1)?;
                write!(f, " OR ")?;
                b.fmt_with_parens(f, 1)?;
            }
            Expr::Not(inner) => {
                write!(f, "NOT ")?;
                inner.fmt_with_parens(f, 4)?;
            }
        }
        if prec < parent_prec {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with_parens(f, 0)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM {}", self.from.name)?;
        for join in &self.joins {
            write!(
                f,
                " JOIN {} ON {} = {}",
                join.table.name, join.left, join.right
            )?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, c) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.col)?;
                if o.desc {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_query;

    #[track_caller]
    fn roundtrip(sql: &str) {
        let q = parse_query(sql).unwrap();
        let printed = q.to_string();
        let q2 = parse_query(&printed).unwrap();
        assert_eq!(q, q2, "printed form: {printed}");
    }

    #[test]
    fn canonical_form_examples() {
        let q = parse_query("select RA from PhotoObj where DEC > 5 limit 3").unwrap();
        assert_eq!(
            q.to_string(),
            "SELECT ra FROM photoobj WHERE dec > 5 LIMIT 3"
        );
    }

    #[test]
    fn example_4_from_the_paper() {
        // "SELECT A1 FROM R WHERE A2 > 5" — the paper's running example.
        let q = parse_query("SELECT a1 FROM r WHERE a2 > 5").unwrap();
        assert_eq!(q.to_string(), "SELECT a1 FROM r WHERE a2 > 5");
    }

    #[test]
    fn roundtrips() {
        for sql in [
            "SELECT * FROM t",
            "SELECT DISTINCT ra, dec FROM photoobj WHERE ra > 1 AND dec < 2 OR z = 3",
            "SELECT COUNT(*) FROM specobj GROUP BY class ORDER BY class DESC LIMIT 5",
            "SELECT ra FROM t WHERE NOT (a = 1 OR b = 2)",
            "SELECT ra FROM t WHERE a BETWEEN 1 AND 2 AND b IN (1, 2, 3)",
            "SELECT p.ra FROM photoobj JOIN specobj ON photoobj.objid = specobj.bestobjid",
            "SELECT ra FROM t WHERE name = 'o''brien'",
            "SELECT ra FROM t WHERE (a = 1 OR b = 2) AND c = 3",
            "SELECT SUM(z), AVG(ra) FROM specobj WHERE z IS NOT NULL",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn minimal_parentheses() {
        let q = parse_query("SELECT ra FROM t WHERE a = 1 AND (b = 2 OR c = 3)").unwrap();
        assert_eq!(
            q.to_string(),
            "SELECT ra FROM t WHERE a = 1 AND (b = 2 OR c = 3)"
        );
        let q = parse_query("SELECT ra FROM t WHERE (a = 1 AND b = 2) OR c = 3").unwrap();
        // AND binds tighter, so no parens needed in canonical form.
        assert_eq!(
            q.to_string(),
            "SELECT ra FROM t WHERE a = 1 AND b = 2 OR c = 3"
        );
    }
}
