//! Recursive-descent parser for the SELECT dialect.

use crate::ast::*;
use crate::error::SqlError;
use crate::token::{lex, Spanned, Token};

/// Parses one SELECT query. Trailing tokens are an error.
pub fn parse_query(sql: &str) -> Result<Query, SqlError> {
    let tokens = lex(sql)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        len: sql.len(),
    };
    let query = parser.query()?;
    if let Some(extra) = parser.peek() {
        return Err(SqlError::parse(
            extra.offset,
            format!("unexpected trailing token {}", extra.token),
        ));
    }
    Ok(query)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn offset(&self) -> usize {
        self.peek().map_or(self.len, |s| s.offset)
    }

    fn advance(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Spanned { token: Token::Keyword(k), .. }) if k == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(SqlError::parse(self.offset(), format!("expected {kw}")))
        }
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek().map(|s| &s.token) == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: Token) -> Result<(), SqlError> {
        if self.eat(&token) {
            Ok(())
        } else {
            Err(SqlError::parse(self.offset(), format!("expected {token}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, SqlError> {
        let offset = self.offset();
        match self.advance() {
            Some(Spanned {
                token: Token::Ident(name),
                ..
            }) => Ok(name),
            other => Err(SqlError::parse(
                offset,
                format!(
                    "expected {what}, found {}",
                    other.map_or("end of input".to_string(), |s| s.token.to_string())
                ),
            )),
        }
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let select = self.select_list()?;
        self.expect_keyword("FROM")?;
        let from = TableRef::new(self.ident("table name")?);

        let mut joins = Vec::new();
        loop {
            let inner = self.eat_keyword("INNER");
            if self.eat_keyword("JOIN") {
                let table = TableRef::new(self.ident("joined table name")?);
                self.expect_keyword("ON")?;
                let left = self.column_ref()?;
                self.expect(Token::Eq)?;
                let right = self.column_ref()?;
                joins.push(Join { table, left, right });
            } else if inner {
                return Err(SqlError::parse(self.offset(), "expected JOIN after INNER"));
            } else {
                break;
            }
        }

        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.column_ref()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.column_ref()?);
            }
        }

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let col = self.column_ref()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderItem { col, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword("LIMIT") {
            let offset = self.offset();
            match self.advance() {
                Some(Spanned {
                    token: Token::Int(v),
                    ..
                }) if v >= 0 => Some(v as u64),
                _ => return Err(SqlError::parse(offset, "expected non-negative LIMIT count")),
            }
        } else {
            None
        };

        Ok(Query {
            distinct,
            select,
            from,
            joins,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        let mut items = vec![self.select_item()?];
        while self.eat(&Token::Comma) {
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate functions arrive as keywords from the lexer.
        let func = match self.peek().map(|s| &s.token) {
            Some(Token::Keyword(k)) => match k.as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "AVG" => Some(AggFunc::Avg),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                _ => None,
            },
            _ => None,
        };
        if let Some(func) = func {
            self.pos += 1;
            self.expect(Token::LParen)?;
            let arg = if self.eat(&Token::Star) {
                AggArg::Star
            } else {
                AggArg::Column(self.column_ref()?)
            };
            self.expect(Token::RParen)?;
            return Ok(SelectItem::Aggregate { func, arg });
        }
        Ok(SelectItem::Column(self.column_ref()?))
    }

    fn column_ref(&mut self) -> Result<ColumnRef, SqlError> {
        let first = self.ident("column name")?;
        if self.eat(&Token::Dot) {
            let column = self.ident("column name after '.'")?;
            Ok(ColumnRef {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
            })
        }
    }

    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_keyword("NOT") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        if self.eat(&Token::LParen) {
            let inner = self.expr()?;
            self.expect(Token::RParen)?;
            return Ok(inner);
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr, SqlError> {
        let col = self.column_ref()?;
        let offset = self.offset();

        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull { col, negated });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.literal()?;
            self.expect_keyword("AND")?;
            let high = self.literal()?;
            return Ok(Expr::Between { col, low, high });
        }
        let negated_in = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect(Token::LParen)?;
            let mut list = vec![self.literal()?];
            while self.eat(&Token::Comma) {
                list.push(self.literal()?);
            }
            self.expect(Token::RParen)?;
            let in_expr = Expr::InList { col, list };
            return Ok(if negated_in {
                Expr::Not(Box::new(in_expr))
            } else {
                in_expr
            });
        }
        if negated_in {
            return Err(SqlError::parse(offset, "expected IN after NOT"));
        }

        let op = match self.advance().map(|s| s.token) {
            Some(Token::Eq) => CompareOp::Eq,
            Some(Token::Ne) => CompareOp::Ne,
            Some(Token::Lt) => CompareOp::Lt,
            Some(Token::Le) => CompareOp::Le,
            Some(Token::Gt) => CompareOp::Gt,
            Some(Token::Ge) => CompareOp::Ge,
            other => {
                return Err(SqlError::parse(
                    offset,
                    format!(
                        "expected comparison operator, found {}",
                        other.map_or("end of input".to_string(), |t| t.to_string())
                    ),
                ))
            }
        };

        // `col = col2` is a join predicate; any operator followed by a
        // literal is an ordinary comparison.
        if op == CompareOp::Eq {
            if let Some(Spanned {
                token: Token::Ident(_),
                ..
            }) = self.peek()
            {
                let right = self.column_ref()?;
                return Ok(Expr::ColumnEq { left: col, right });
            }
        }
        let value = self.literal()?;
        Ok(Expr::Comparison { col, op, value })
    }

    fn literal(&mut self) -> Result<Literal, SqlError> {
        let offset = self.offset();
        match self.advance().map(|s| s.token) {
            Some(Token::Int(v)) => Ok(Literal::Int(v)),
            Some(Token::Str(s)) => Ok(Literal::Str(s)),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Literal::Null),
            other => Err(SqlError::parse(
                offset,
                format!(
                    "expected literal, found {}",
                    other.map_or("end of input".to_string(), |t| t.to_string())
                ),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(sql: &str) -> Query {
        parse_query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"))
    }

    #[test]
    fn minimal_query() {
        let q = parse("SELECT * FROM photoobj");
        assert_eq!(q.select, vec![SelectItem::Wildcard]);
        assert_eq!(q.from.name, "photoobj");
        assert!(q.where_clause.is_none());
    }

    #[test]
    fn projection_and_predicates() {
        let q = parse("SELECT ra, dec FROM photoobj WHERE ra > 100 AND dec <= -5");
        assert_eq!(q.select.len(), 2);
        let Some(Expr::And(l, r)) = q.where_clause else {
            panic!()
        };
        assert_eq!(
            *l,
            Expr::cmp(ColumnRef::bare("ra"), CompareOp::Gt, Literal::Int(100))
        );
        assert_eq!(
            *r,
            Expr::cmp(ColumnRef::bare("dec"), CompareOp::Le, Literal::Int(-5))
        );
    }

    #[test]
    fn or_binds_weaker_than_and() {
        let q = parse("SELECT ra FROM t WHERE a = 1 OR b = 2 AND c = 3");
        let Some(Expr::Or(_, rhs)) = q.where_clause else {
            panic!("OR must be the root")
        };
        assert!(matches!(*rhs, Expr::And(_, _)));
    }

    #[test]
    fn parentheses_override_precedence() {
        let q = parse("SELECT ra FROM t WHERE (a = 1 OR b = 2) AND c = 3");
        let Some(Expr::And(lhs, _)) = q.where_clause else {
            panic!("AND must be the root")
        };
        assert!(matches!(*lhs, Expr::Or(_, _)));
    }

    #[test]
    fn between_in_isnull() {
        let q = parse("SELECT ra FROM t WHERE ra BETWEEN 1 AND 5 AND class IN ('STAR','GALAXY') AND z IS NOT NULL");
        let mut found = (false, false, false);
        fn walk(e: &Expr, found: &mut (bool, bool, bool)) {
            match e {
                Expr::Between { .. } => found.0 = true,
                Expr::InList { list, .. } => {
                    assert_eq!(list.len(), 2);
                    found.1 = true;
                }
                Expr::IsNull { negated: true, .. } => found.2 = true,
                Expr::And(a, b) | Expr::Or(a, b) => {
                    walk(a, found);
                    walk(b, found);
                }
                Expr::Not(a) => walk(a, found),
                _ => {}
            }
        }
        walk(q.where_clause.as_ref().unwrap(), &mut found);
        assert_eq!(found, (true, true, true));
    }

    #[test]
    fn explicit_join() {
        let q = parse(
            "SELECT p.ra FROM photoobj JOIN specobj ON photoobj.objid = specobj.bestobjid WHERE p.ra > 0",
        );
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].table.name, "specobj");
        assert_eq!(q.joins[0].left, ColumnRef::qualified("photoobj", "objid"));
    }

    #[test]
    fn implicit_join_predicate() {
        let q = parse("SELECT ra FROM t WHERE t.a = u.b");
        assert!(matches!(q.where_clause, Some(Expr::ColumnEq { .. })));
    }

    #[test]
    fn aggregates() {
        let q = parse("SELECT COUNT(*), SUM(z), AVG(ra) FROM specobj GROUP BY class");
        assert_eq!(q.select.len(), 3);
        assert!(matches!(
            q.select[0],
            SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: AggArg::Star
            }
        ));
        assert_eq!(q.group_by, vec![ColumnRef::bare("class")]);
    }

    #[test]
    fn order_and_limit() {
        let q = parse("SELECT ra FROM t ORDER BY ra DESC, dec LIMIT 10");
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn distinct_flag() {
        assert!(parse("SELECT DISTINCT ra FROM t").distinct);
        assert!(!parse("SELECT ra FROM t").distinct);
    }

    #[test]
    fn not_in() {
        let q = parse("SELECT ra FROM t WHERE class NOT IN ('QSO')");
        assert!(
            matches!(q.where_clause, Some(Expr::Not(inner)) if matches!(*inner, Expr::InList { .. }))
        );
    }

    #[test]
    fn error_positions_and_messages() {
        let err = parse_query("SELECT FROM t").unwrap_err();
        assert!(err.to_string().contains("column name"), "{err}");
        let err = parse_query("SELECT a FROM t WHERE").unwrap_err();
        assert!(err.to_string().contains("column name"), "{err}");
        let err = parse_query("SELECT a FROM t LIMIT -1").unwrap_err();
        assert!(err.to_string().contains("LIMIT"), "{err}");
        let err = parse_query("SELECT a FROM t extra").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn null_literal_in_comparison() {
        let q = parse("SELECT a FROM t WHERE a = NULL");
        assert!(matches!(
            q.where_clause,
            Some(Expr::Comparison {
                value: Literal::Null,
                ..
            })
        ));
    }
}
