//! P1c — ablation: stateless range-bisection OPE vs mutable OPE (mOPE).
//!
//! The two instances of the OPE class trade leakage against cost shape:
//! the stateless scheme pays O(log |domain|) PRF calls *per encryption*
//! and keeps no state; mOPE pays a cheap tree insert per new value but
//! carries state and occasionally rebalances (mutations). This bench
//! quantifies both sides of the trade; the leakage side is measured by the
//! gap-correlation experiment in the `fig1` binary.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dpe_crypto::SymmetricKey;
use dpe_ope::{MopeState, OpeDomain, OpeScheme};

fn lcg_values(n: usize) -> Vec<u64> {
    let mut x = 0x2545f4914f6cdd1du64;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 16
        })
        .collect()
}

fn bench_mope_vs_ope(c: &mut Criterion) {
    let key = SymmetricKey::from_bytes([77; 32]);
    let values = lcg_values(1_000);

    let mut group = c.benchmark_group("ope_instance_encode_1000");
    group.bench_function("stateless_bisection", |b| {
        let scheme = OpeScheme::new(&key, OpeDomain::full());
        b.iter(|| {
            let mut acc = 0u128;
            for &v in &values {
                acc ^= scheme.encrypt(v).unwrap();
            }
            acc
        });
    });
    group.bench_function("mope_random_order", |b| {
        b.iter_batched(
            MopeState::new,
            |mut m| {
                let mut acc = 0u128;
                for &v in &values {
                    acc ^= m.encode(v).unwrap();
                }
                acc
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("mope_sorted_order_worst_case", |b| {
        let mut sorted = values.clone();
        sorted.sort_unstable();
        b.iter_batched(
            MopeState::new,
            |mut m| {
                let mut acc = 0u128;
                for &v in &sorted {
                    acc ^= m.encode(v).unwrap();
                }
                acc
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();

    // Re-encoding an already-known value: mOPE is a pure map lookup,
    // the stateless scheme re-walks the tree.
    let mut group = c.benchmark_group("ope_instance_reencode");
    let scheme = OpeScheme::new(&key, OpeDomain::full());
    group.bench_function("stateless_bisection", |b| {
        b.iter(|| scheme.encrypt(values[0]).unwrap());
    });
    let mut warm = MopeState::new();
    for &v in &values {
        warm.encode(v).unwrap();
    }
    group.bench_function("mope_warm_lookup", |b| {
        b.iter(|| warm.encode(values[0]).unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mope_vs_ope
}
criterion_main!(benches);
