//! P1b — OPE encryption cost vs domain size. The range-bisection walk is
//! O(log |domain|) PRF calls, so time should grow linearly in domain bits;
//! this ablation documents the design choice of DESIGN.md §3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpe_crypto::SymmetricKey;
use dpe_ope::{OpeDomain, OpeScheme};

fn bench_ope_scaling(c: &mut Criterion) {
    let key = SymmetricKey::from_bytes([9; 32]);
    let mut group = c.benchmark_group("ope_domain_scaling");
    for bits in [16u32, 24, 32, 48, 63] {
        let domain = OpeDomain::new(0, (1u64 << bits) - 1);
        let scheme = OpeScheme::new(&key, domain);
        let mut v = 1u64;
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| {
                v = (v.wrapping_mul(6364136223846793005).wrapping_add(1)) & ((1 << bits) - 1);
                scheme.encrypt(v).unwrap()
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ope_roundtrip");
    let scheme = OpeScheme::new(&key, OpeDomain::new(0, (1 << 32) - 1));
    let ct = scheme.encrypt(123_456_789).unwrap();
    group.bench_function("decrypt_u32_domain", |b| {
        b.iter(|| scheme.decrypt(ct).unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ope_scaling
}
criterion_main!(benches);
