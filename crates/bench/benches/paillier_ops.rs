//! P1c — Paillier (HOM onion) operation costs over the from-scratch bignum:
//! keygen, encryption, homomorphic addition, scalar multiplication,
//! decryption.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dpe_paillier::{KeyPair, TEST_PRIME_BITS};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_paillier(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let keypair = KeyPair::generate(TEST_PRIME_BITS, &mut rng);
    let ct_a = keypair.public().encrypt_u64(41, &mut rng);
    let ct_b = keypair.public().encrypt_u64(1, &mut rng);

    let mut group = c.benchmark_group("paillier");
    group.sample_size(10);

    group.bench_function("keygen_128bit_primes", |b| {
        b.iter_batched(
            || rng.clone(),
            |mut r| KeyPair::generate(TEST_PRIME_BITS, &mut r),
            BatchSize::PerIteration,
        );
    });

    group.bench_function("encrypt_u64", |b| {
        b.iter_batched(
            || rng.clone(),
            |mut r| keypair.public().encrypt_u64(123_456_789, &mut r),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("homomorphic_add", |b| {
        b.iter(|| keypair.public().add(&ct_a, &ct_b));
    });

    group.bench_function("scalar_mul", |b| {
        b.iter(|| keypair.public().mul_scalar(&ct_a, 1000));
    });

    group.bench_function("decrypt", |b| {
        b.iter(|| keypair.private().decrypt_u64(&ct_a).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_paillier);
criterion_main!(benches);
