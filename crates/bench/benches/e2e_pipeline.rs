//! P1e — end-to-end pipeline costs: encrypting whole logs under each DPE
//! scheme, encrypting a database under CryptDB onions, and executing an
//! encrypted query through the proxy.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dpe_bench::{
    experiment_cryptdb_config, experiment_database, experiment_domains, experiment_log,
    experiment_master,
};
use dpe_core::scheme::{AccessAreaDpe, QueryEncryptor, StructuralDpe, TokenDpe};
use dpe_cryptdb::CryptDbProxy;
use dpe_sql::parse_query;
use dpe_workload::sky_catalog;

fn bench_pipeline(c: &mut Criterion) {
    let log = experiment_log(30, 0xE2E);
    let master = experiment_master();

    let mut group = c.benchmark_group("encrypt_log_30q");
    group.sample_size(10);
    group.bench_function("token_scheme", |b| {
        b.iter_batched(
            || TokenDpe::new(&master),
            |mut s| s.encrypt_log(&log).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("structural_scheme", |b| {
        b.iter_batched(
            || StructuralDpe::new(&master, 1),
            |mut s| s.encrypt_log(&log).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("access_area_scheme", |b| {
        b.iter_batched(
            || AccessAreaDpe::new(&master, &experiment_domains(), &log, 1),
            |mut s| s.encrypt_log(&log).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.finish();

    let plain_db = experiment_database(50, 0xE2E);
    let mut group = c.benchmark_group("cryptdb");
    group.sample_size(10);
    group.bench_function("encrypt_database_50rows", |b| {
        b.iter(|| {
            CryptDbProxy::new(
                &plain_db,
                &sky_catalog(),
                &experiment_domains(),
                &experiment_cryptdb_config(),
                &master,
            )
            .unwrap()
        });
    });

    let mut proxy = CryptDbProxy::new(
        &plain_db,
        &sky_catalog(),
        &experiment_domains(),
        &experiment_cryptdb_config(),
        &master,
    )
    .unwrap();
    let q = parse_query(
        "SELECT objid FROM photoobj WHERE ra BETWEEN 50000 AND 250000 AND class = 'STAR'",
    )
    .unwrap();
    proxy.execute(&q).unwrap(); // warm adjustment
    group.bench_function("execute_encrypted_query", |b| {
        b.iter(|| proxy.execute(&q).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
