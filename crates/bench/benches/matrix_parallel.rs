//! P1d — ablation: sequential vs range-parallel distance-matrix
//! computation (the O(n²) heart of the outsourced-mining pipeline). The
//! parallel path writes contiguous row ranges of the packed triangle in
//! place; `matrix_packed` covers the incremental and result-measure sides.
//!
//! Results are bit-identical by construction (asserted in the setup); the
//! bench records what the parallel path buys at realistic log sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpe_distance::{DistanceMatrix, StructureDistance, TokenDistance};
use dpe_workload::{LogConfig, LogGenerator};

fn bench_matrix_parallel(c: &mut Criterion) {
    let log = LogGenerator::generate(&LogConfig {
        queries: 80,
        seed: 0xBEEF,
        ..Default::default()
    });

    // Sanity: identical output on both paths.
    let seq = DistanceMatrix::compute(&log, &TokenDistance).unwrap();
    let par = DistanceMatrix::compute_parallel(&log, &TokenDistance, 4).unwrap();
    assert!(seq.identical(&par), "parallel path must be bit-identical");

    let mut group = c.benchmark_group("token_matrix_n80");
    group.bench_function("sequential", |b| {
        b.iter(|| DistanceMatrix::compute(&log, &TokenDistance).unwrap());
    });
    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| DistanceMatrix::compute_parallel(&log, &TokenDistance, t).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("structure_matrix_n80");
    group.bench_function("sequential", |b| {
        b.iter(|| DistanceMatrix::compute(&log, &StructureDistance).unwrap());
    });
    group.bench_with_input(BenchmarkId::new("parallel", 4usize), &4usize, |b, &t| {
        b.iter(|| DistanceMatrix::compute_parallel(&log, &StructureDistance, t).unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_matrix_parallel
}
criterion_main!(benches);
