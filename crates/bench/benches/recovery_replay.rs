//! PR 10 — the cost of coming back from the dead.
//!
//! Three recovery trajectories, each vs dataset size:
//!
//! * `wal_replay` — recover a server whose entire history lives in the
//!   write-ahead log (no snapshot was ever taken): every ingest record is
//!   decoded, checksum-verified, and re-applied through the normal ingest
//!   path (distances recomputed — that is what makes recovery
//!   bit-identical). This is the worst case the epoch cursor allows.
//! * `snapshot` — recover after a checkpoint: the packed matrix is loaded
//!   straight from the epoch-consistent snapshot and the (empty) WAL tail
//!   contributes nothing. The gap to `wal_replay` is the argument for
//!   checkpointing at all.
//! * `first_query` — `wal_replay` plus one kNN answer: time-to-first-query,
//!   the number an operator restarting a crashed tenant actually waits on.
//!
//! Correctness is pinned before anything is timed: both recovery paths
//! must reach the same epoch and serve a kNN response bit-identical to an
//! uncrashed oracle that ingested the same history.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpe_distance::TokenDistance;
use dpe_server::{Request, Server};
use dpe_sql::Query;
use dpe_workload::{LogConfig, LogGenerator};
use std::path::PathBuf;

/// Ingest chunk size: each chunk is one WAL record / one epoch bump, so an
/// `n`-query history is `n / CHUNK` records of replay work.
const CHUNK: usize = 32;

fn history(n: usize) -> Vec<Query> {
    LogGenerator::generate(&LogConfig {
        queries: n,
        seed: 0x4EC0,
        ..Default::default()
    })
}

fn fresh_dir(tag: &str, n: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dpe-recovery-replay-{tag}-{n}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds a durable single-shard server at `dir`, feeds it `log` in
/// [`CHUNK`]-sized WAL records, optionally checkpoints, and drops it —
/// leaving on-disk state for the timed recoveries to chew on.
fn lay_down_state(dir: &PathBuf, log: &[Query], checkpoint: bool) {
    let server = Server::builder(TokenDistance).durability(dir).build();
    for chunk in log.chunks(CHUNK) {
        server.ingest(0, chunk).unwrap();
    }
    if checkpoint {
        server.checkpoint().unwrap();
    }
}

fn recover(dir: &PathBuf) -> Server<TokenDistance> {
    Server::builder(TokenDistance)
        .durability(dir)
        .recover()
        .unwrap()
}

fn bench_recovery_replay(c: &mut Criterion) {
    let probe = Request::Knn {
        shard: 0,
        item: 1,
        k: 5,
    };

    let mut group = c.benchmark_group("recovery_replay");
    for &n in &[64usize, 256, 1024] {
        let log = history(n);
        let wal_dir = fresh_dir("wal", n);
        let snap_dir = fresh_dir("snap", n);
        lay_down_state(&wal_dir, &log, false);
        lay_down_state(&snap_dir, &log, true);

        // Pin before timing: both recovery paths reach the epoch frontier
        // and answer the probe bit-identically to an uncrashed oracle.
        let oracle = Server::builder(TokenDistance).build();
        oracle.ingest(0, &log).unwrap();
        let want = oracle.serve_one_uncached(&probe).unwrap();
        let epochs = log.chunks(CHUNK).count() as u64;
        for dir in [&wal_dir, &snap_dir] {
            let recovered = recover(dir);
            assert_eq!(recovered.shard_epoch(0).unwrap(), epochs, "n={n}");
            assert_eq!(recovered.shard_len(0).unwrap(), n, "n={n}");
            let got = recovered.serve_one_uncached(&probe).unwrap();
            assert!(got.bits_eq(&want), "n={n}: recovered kNN diverged");
        }

        group.bench_with_input(BenchmarkId::new("wal_replay", n), &n, |b, _| {
            b.iter(|| recover(&wal_dir));
        });
        group.bench_with_input(BenchmarkId::new("snapshot", n), &n, |b, _| {
            b.iter(|| recover(&snap_dir));
        });
        group.bench_with_input(BenchmarkId::new("first_query", n), &n, |b, _| {
            b.iter(|| recover(&wal_dir).serve_one_uncached(&probe).unwrap());
        });

        let _ = std::fs::remove_dir_all(&wal_dir);
        let _ = std::fs::remove_dir_all(&snap_dir);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_recovery_replay
}
criterion_main!(benches);
