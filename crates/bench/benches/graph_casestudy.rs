//! P1e — cost profile of the graph case study: graph encryption and the
//! three graph distance measures, plain vs encrypted inputs.
//!
//! Under DPE the provider computes distances on encrypted graphs whose
//! labels are longer (hex pseudonyms), so the set operations pay for label
//! length; this bench records that overhead — the "price of encryption" in
//! compute rather than in mining quality (which is zero by Definition 1).

use criterion::{criterion_group, criterion_main, Criterion};
use dpe_crypto::MasterKey;
use dpe_graphdpe::{
    DegreeSequenceDistance, DetGraphEncryptor, EdgeJaccard, Graph, GraphDistance, GraphWorkload,
    VertexJaccard,
};

fn corpus() -> Vec<Graph> {
    GraphWorkload::new(99).community_corpus(4, 10, 10)
}

fn bench_graph_casestudy(c: &mut Criterion) {
    let plain = corpus();
    let enc = DetGraphEncryptor::new(&MasterKey::from_bytes([21; 32]));
    let encrypted: Vec<Graph> = plain.iter().map(|g| enc.encrypt_graph(g)).collect();

    let mut group = c.benchmark_group("graph_encrypt");
    group.bench_function("det_relabel_corpus40", |b| {
        b.iter(|| {
            plain
                .iter()
                .map(|g| enc.encrypt_graph(g))
                .map(|g| g.edge_count())
                .sum::<usize>()
        });
    });
    group.finish();

    let mut group = c.benchmark_group("graph_distance_all_pairs_n40");
    for (name, side) in [("plain", &plain), ("encrypted", &encrypted)] {
        group.bench_with_input(format!("edge_jaccard_{name}"), side, |b, gs| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..gs.len() {
                    for j in i + 1..gs.len() {
                        acc += EdgeJaccard.distance(&gs[i], &gs[j]);
                    }
                }
                acc
            });
        });
        group.bench_with_input(format!("vertex_jaccard_{name}"), side, |b, gs| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..gs.len() {
                    for j in i + 1..gs.len() {
                        acc += VertexJaccard.distance(&gs[i], &gs[j]);
                    }
                }
                acc
            });
        });
        group.bench_with_input(format!("degree_sequence_{name}"), side, |b, gs| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..gs.len() {
                    for j in i + 1..gs.len() {
                        acc += DegreeSequenceDistance.distance(&gs[i], &gs[j]);
                    }
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_graph_casestudy
}
criterion_main!(benches);
