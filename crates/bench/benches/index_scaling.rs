//! PR 9 — the metric-index escape from the O(n²) matrix wall.
//!
//! The claim, measured: a [`VpTree`] built over an **on-demand**
//! [`DistanceSource`] (no `n(n−1)/2` matrix is ever materialized) answers
//! kNN in sub-linear time per query, so the build-plus-query trajectory
//! stays sub-quadratic through n = 10⁵ — a store size where the packed
//! matrix alone would need ~5 · 10⁹ cells. A linear `scan_knn` baseline
//! over the same source is timed beside it; the gap is the triangle
//! inequality doing its work.
//!
//! Correctness is asserted before anything is timed: at every n the tree's
//! answers equal the linear scan's (same NaN-last, index-tie-break order).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpe_distance::{DistanceError, DistanceSource, VpTree};

/// Synthetic 2-D Euclidean points evaluated on demand — a stand-in for a
/// query log too large to materialize a packed matrix over. Deterministic
/// splitmix64 coordinates, mildly clustered so pruning has structure to
/// exploit (uniform points in 2-D already prune well; clusters are the
/// realistic shape of a tenant's query log).
struct PointSource {
    pts: Vec<(f64, f64)>,
}

impl PointSource {
    fn new(n: usize, seed: u64) -> PointSource {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let pts = (0..n)
            .map(|_| {
                let cluster = (next() % 16) as f64;
                let unit = |v: u64| (v >> 11) as f64 / (1u64 << 53) as f64;
                let cx = (cluster % 4.0) * 8.0;
                let cy = (cluster / 4.0).floor() * 8.0;
                (cx + unit(next()), cy + unit(next()))
            })
            .collect();
        PointSource { pts }
    }
}

impl DistanceSource for PointSource {
    fn len(&self) -> usize {
        self.pts.len()
    }

    fn distance(&self, i: usize, j: usize) -> Result<f64, DistanceError> {
        let (xi, yi) = self.pts[i];
        let (xj, yj) = self.pts[j];
        Ok(((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt())
    }
}

/// The matrix paths' kNN semantics (NaN last, ties by index) as a linear
/// scan over the source — the O(n)-per-query baseline the tree must beat.
fn scan_knn(source: &PointSource, item: usize, k: usize) -> Vec<usize> {
    let mut others: Vec<usize> = (0..source.len()).filter(|&j| j != item).collect();
    let cmp = |&a: &usize, &b: &usize| {
        let (da, db) = (
            source.distance(item, a).unwrap(),
            source.distance(item, b).unwrap(),
        );
        da.is_nan()
            .cmp(&db.is_nan())
            .then_with(|| da.total_cmp(&db))
            .then(a.cmp(&b))
    };
    if k < others.len() && k > 0 {
        others.select_nth_unstable_by(k - 1, cmp);
        others.truncate(k);
    }
    others.sort_by(cmp);
    others
}

fn bench_index_scaling(c: &mut Criterion) {
    const K: usize = 10;

    let mut group = c.benchmark_group("index_scaling");
    for &n in &[1_000usize, 10_000, 100_000] {
        let source = PointSource::new(n, 0x1D0 + n as u64);
        let tree = VpTree::build(&source).unwrap();

        // Pin before timing: tree answers ≡ scan answers, and the pruning
        // counters account for every item exactly once.
        let mut pruned_total = 0u64;
        for item in [0usize, n / 3, n - 1] {
            let (got, counters) = tree.knn(&source, item, K).unwrap();
            assert_eq!(got, scan_knn(&source, item, K), "n={n} anchor {item}");
            assert_eq!(counters.computed + counters.pruned, n as u64);
            pruned_total += counters.pruned;
        }
        assert!(
            pruned_total > 0,
            "n={n}: the tree never pruned — queries are effectively linear"
        );

        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| VpTree::build(&source).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("vp_knn", n), &n, |b, _| {
            let mut anchor = 0usize;
            b.iter(|| {
                anchor = (anchor + 7919) % n;
                tree.knn(&source, anchor, K).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("scan_knn", n), &n, |b, _| {
            let mut anchor = 0usize;
            b.iter(|| {
                anchor = (anchor + 7919) % n;
                scan_knn(&source, anchor, K)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_index_scaling
}
criterion_main!(benches);
