//! P1f — mining-algorithm costs on a query-log-sized distance matrix.
//! Demonstrates the outsourcing economics: the provider pays these costs on
//! ciphertext distance matrices, identically to plaintext ones.

use criterion::{criterion_group, criterion_main, Criterion};
use dpe_distance::DistanceMatrix;
use dpe_mining::{complete_link, db_outliers, dbscan, kmedoids, DbscanConfig, OutlierConfig};

fn matrix(n: usize) -> DistanceMatrix {
    DistanceMatrix::from_fn(n, |i, j| {
        let x = ((i * 31 + j * 17) % 97) as f64 / 97.0;
        0.05 + 0.9 * x
    })
}

fn bench_mining(c: &mut Criterion) {
    let m = matrix(60);
    let mut group = c.benchmark_group("mining_60x60");
    group.sample_size(20);

    group.bench_function("kmedoids_k4", |b| {
        b.iter(|| kmedoids(&m, 4));
    });
    group.bench_function("dbscan", |b| {
        b.iter(|| {
            dbscan(
                &m,
                DbscanConfig {
                    eps: 0.45,
                    min_pts: 3,
                },
            )
        });
    });
    group.bench_function("complete_link", |b| {
        b.iter(|| complete_link(&m));
    });
    group.bench_function("db_outliers", |b| {
        b.iter(|| db_outliers(&m, OutlierConfig { p: 0.7, d: 0.6 }));
    });
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
