//! P3 — batched serving vs per-query dispatch on the sharded engine.
//!
//! The acceptance workload: **4 shards, 8 clients**, shard/item/request
//! choices Zipf-skewed (s = 1.0) like a real multi-tenant query mix. Three
//! serving disciplines over the identical request stream:
//!
//! * `per_query_sequential` — the no-engine baseline: one lock acquisition
//!   per request, no coalescing, no cache.
//! * `serve_batch_cold` — the batch path with the response cache cleared
//!   every iteration: measures coalescing + work stealing alone.
//! * `serve_batch_warm` — the steady state: Zipf repetition makes most
//!   requests cache hits, so repeated encrypted queries never recompute.
//! * `submit_drain_8clients` — the full concurrent surface: 8 real client
//!   threads submitting, then one 4-worker drain.
//!
//! Correctness is asserted before timing: the batched responses must be
//! bit-identical to sequential dispatch.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dpe_distance::TokenDistance;
use dpe_server::{Request, Server};
use dpe_workload::{LogConfig, LogGenerator, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARDS: usize = 4;
const CLIENTS: usize = 8;
const PER_CLIENT: usize = 40;
const PER_SHARD: usize = 96;

fn build_server() -> Server<TokenDistance> {
    let server = Server::new(TokenDistance, SHARDS, 512);
    for shard in 0..SHARDS {
        let log = LogGenerator::generate(&LogConfig {
            queries: PER_SHARD,
            seed: 0x5E21 + shard as u64,
            ..Default::default()
        });
        server.ingest(shard, &log).unwrap();
    }
    server
}

/// One client's Zipf-skewed request stream: hot shards, hot items, and a
/// kind mix dominated by kNN — the shape that makes caching matter.
fn client_stream(client: usize) -> Vec<Request> {
    let shard_zipf = Zipf::new(SHARDS, 1.0);
    let item_zipf = Zipf::new(PER_SHARD, 1.0);
    let kind_zipf = Zipf::new(4, 1.0);
    let k_zipf = Zipf::new(8, 1.0);
    let mut rng = StdRng::seed_from_u64(0xC11E07 + client as u64);
    (0..PER_CLIENT)
        .map(|_| {
            let shard = shard_zipf.sample(&mut rng);
            let item = item_zipf.sample(&mut rng);
            match kind_zipf.sample(&mut rng) {
                0 => Request::Knn {
                    shard,
                    item,
                    k: 1 + k_zipf.sample(&mut rng),
                },
                1 => Request::Range {
                    shard,
                    item,
                    radius: 0.1 + 0.1 * (k_zipf.sample(&mut rng) as f64),
                },
                2 => Request::Lof {
                    shard,
                    min_pts: 3 + k_zipf.sample(&mut rng),
                },
                _ => Request::Outliers {
                    shard,
                    p: 0.7,
                    d: 0.4 + 0.05 * (k_zipf.sample(&mut rng) as f64),
                },
            }
        })
        .collect()
}

fn bench_server_throughput(c: &mut Criterion) {
    let server = build_server();
    let requests: Vec<Request> = (0..CLIENTS).flat_map(client_stream).collect();
    let total = requests.len() as u64;

    // Correctness gate: batched must be bit-identical to per-query
    // sequential dispatch before any timing is believed.
    let sequential: Vec<_> = requests
        .iter()
        .map(|r| server.serve_one_uncached(r).unwrap())
        .collect();
    for threads in [1, 4] {
        let batched = server.serve_batch(&requests, threads);
        for ((a, b), req) in batched.iter().zip(&sequential).zip(&requests) {
            assert!(
                a.as_ref().unwrap().bits_eq(b),
                "batched({threads}) diverged on {req:?}"
            );
        }
    }

    let mut group = c.benchmark_group("server_4shard_8client");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));

    group.bench_function("per_query_sequential", |b| {
        b.iter(|| {
            requests
                .iter()
                .map(|r| server.serve_one_uncached(r).unwrap())
                .collect::<Vec<_>>()
        });
    });

    group.bench_function("serve_batch_cold", |b| {
        b.iter_batched(
            || server.clear_cache(),
            |()| server.serve_batch(&requests, 4),
            BatchSize::PerIteration,
        );
    });

    // Prime once so every measured pass runs against a warm cache.
    server.clear_cache();
    let _ = server.serve_batch(&requests, 4);
    group.bench_function("serve_batch_warm", |b| {
        b.iter(|| server.serve_batch(&requests, 4));
    });

    group.bench_function("submit_drain_8clients", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for client in 0..CLIENTS {
                    let server = &server;
                    let stream = client_stream(client);
                    scope.spawn(move || {
                        for req in stream {
                            server.submit(req).unwrap();
                        }
                    });
                }
            });
            server.drain(4)
        });
    });
    group.finish();

    let cache = server.cache_stats();
    let sched = server.scheduler_stats();
    println!(
        "cache: {} hits / {} misses ({:.0}% hit rate), {} evictions",
        cache.hits,
        cache.misses,
        100.0 * cache.hit_rate(),
        cache.evictions
    );
    println!(
        "scheduler: {} served in {} batches ({:.1} requests/lock), {} steals",
        sched.served,
        sched.batches,
        sched.served as f64 / sched.batches.max(1) as f64,
        sched.steals
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_server_throughput
}
criterion_main!(benches);
