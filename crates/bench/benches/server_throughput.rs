//! P3 — batched serving vs per-query dispatch on the sharded engine.
//!
//! The acceptance workload: **4 shards, 8 clients**, shard/item/request
//! choices Zipf-skewed (s = 1.0) like a real multi-tenant query mix. Three
//! serving disciplines over the identical request stream:
//!
//! * `per_query_sequential` — the no-engine baseline: one lock acquisition
//!   per request, no coalescing, no cache.
//! * `serve_batch_cold` — the batch path with the response cache cleared
//!   every iteration: measures coalescing + work stealing alone.
//! * `serve_batch_warm` — the steady state: Zipf repetition makes most
//!   requests cache hits, so repeated encrypted queries never recompute.
//! * `submit_drain_8clients` — the full concurrent surface: 8 real client
//!   threads submitting, then one 4-worker drain.
//!
//! Correctness is asserted before timing: the batched responses must be
//! bit-identical to sequential dispatch.
//!
//! P4 — the clustering serving surface (`server_clustering_4shard`): the
//! same engine answering whole-shard DBSCAN / k-medoids / hierarchical /
//! frequent-itemset requests. The headline is plan amortization: one
//! dendrogram build per (shard, epoch, linkage) serving every `cut(k)` —
//! `serve_batch_warm_plans` (response cache cleared, plans kept) vs
//! `serve_batch_cold` (both cleared) isolates it, and `cut_sweep_warm_plan`
//! pins the zero-extra-builds claim with the plan counters.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dpe_distance::TokenDistance;
use dpe_mining::Linkage;
use dpe_server::{ClusterRule, PlanOp, Projection, Request, Response, Server};
use dpe_workload::{LogConfig, LogGenerator, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARDS: usize = 4;
const CLIENTS: usize = 8;
const PER_CLIENT: usize = 40;
const PER_SHARD: usize = 96;

fn build_server() -> Server<TokenDistance> {
    let server = Server::builder(TokenDistance)
        .shards(SHARDS)
        .cache_capacity(512)
        .build();
    for shard in 0..SHARDS {
        let log = LogGenerator::generate(&LogConfig {
            queries: PER_SHARD,
            seed: 0x5E21 + shard as u64,
            ..Default::default()
        });
        server.ingest(shard, &log).unwrap();
    }
    server
}

/// One client's Zipf-skewed request stream: hot shards, hot items, and a
/// kind mix dominated by kNN — the shape that makes caching matter.
fn client_stream(client: usize) -> Vec<Request> {
    let shard_zipf = Zipf::new(SHARDS, 1.0);
    let item_zipf = Zipf::new(PER_SHARD, 1.0);
    let kind_zipf = Zipf::new(4, 1.0);
    let k_zipf = Zipf::new(8, 1.0);
    let mut rng = StdRng::seed_from_u64(0xC11E07 + client as u64);
    (0..PER_CLIENT)
        .map(|_| {
            let shard = shard_zipf.sample(&mut rng);
            let item = item_zipf.sample(&mut rng);
            match kind_zipf.sample(&mut rng) {
                0 => Request::Knn {
                    shard,
                    item,
                    k: 1 + k_zipf.sample(&mut rng),
                },
                1 => Request::Range {
                    shard,
                    item,
                    radius: 0.1 + 0.1 * (k_zipf.sample(&mut rng) as f64),
                },
                2 => Request::Lof {
                    shard,
                    min_pts: 3 + k_zipf.sample(&mut rng),
                },
                _ => Request::Outliers {
                    shard,
                    p: 0.7,
                    d: 0.4 + 0.05 * (k_zipf.sample(&mut rng) as f64),
                },
            }
        })
        .collect()
}

fn bench_server_throughput(c: &mut Criterion) {
    let server = build_server();
    let requests: Vec<Request> = (0..CLIENTS).flat_map(client_stream).collect();
    let total = requests.len() as u64;

    // Correctness gate: batched must be bit-identical to per-query
    // sequential dispatch before any timing is believed.
    let sequential: Vec<_> = requests
        .iter()
        .map(|r| server.serve_one_uncached(r).unwrap())
        .collect();
    for threads in [1, 4] {
        let batched = server.serve_batch(&requests, threads);
        for ((a, b), req) in batched.iter().zip(&sequential).zip(&requests) {
            assert!(
                a.as_ref().unwrap().bits_eq(b),
                "batched({threads}) diverged on {req:?}"
            );
        }
    }

    let mut group = c.benchmark_group("server_4shard_8client");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));

    group.bench_function("per_query_sequential", |b| {
        b.iter(|| {
            requests
                .iter()
                .map(|r| server.serve_one_uncached(r).unwrap())
                .collect::<Vec<_>>()
        });
    });

    group.bench_function("serve_batch_cold", |b| {
        b.iter_batched(
            || server.clear_cache(),
            |()| server.serve_batch(&requests, 4),
            BatchSize::PerIteration,
        );
    });

    // Prime once so every measured pass runs against a warm cache.
    server.clear_cache();
    let _ = server.serve_batch(&requests, 4);
    group.bench_function("serve_batch_warm", |b| {
        b.iter(|| server.serve_batch(&requests, 4));
    });

    group.bench_function("submit_drain_8clients", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for client in 0..CLIENTS {
                    let server = &server;
                    let stream = client_stream(client);
                    scope.spawn(move || {
                        for req in stream {
                            server.submit(req).unwrap();
                        }
                    });
                }
            });
            server.drain(4)
        });
    });
    group.finish();

    let cache = server.stats().cache;
    let sched = server.stats().scheduler;
    println!(
        "cache: {} hits / {} misses ({:.0}% hit rate), {} evictions",
        cache.hits,
        cache.misses,
        100.0 * cache.hit_rate(),
        cache.evictions
    );
    println!(
        "scheduler: {} served in {} batches ({:.1} requests/lock), {} steals",
        sched.served,
        sched.batches,
        sched.served as f64 / sched.batches.max(1) as f64,
        sched.steals
    );
}

/// One client's Zipf-skewed clustering stream: hierarchical cut sweeps
/// dominate (two of four kind slots), so plan reuse is the load-bearing
/// optimization — exactly the shape a dashboard recomputing cluster views
/// at many granularities produces.
fn clustering_stream(client: usize) -> Vec<Request> {
    const LINKAGES: [Linkage; 3] = [Linkage::Complete, Linkage::Single, Linkage::Average];
    let shard_zipf = Zipf::new(SHARDS, 1.0);
    let linkage_zipf = Zipf::new(3, 1.0);
    let k_zipf = Zipf::new(16, 1.0);
    let kind_zipf = Zipf::new(4, 1.0);
    let mut rng = StdRng::seed_from_u64(0xC105 + client as u64);
    (0..PER_CLIENT / 2)
        .map(|_| {
            let shard = shard_zipf.sample(&mut rng);
            match kind_zipf.sample(&mut rng) {
                0 | 1 => Request::Hierarchical {
                    shard,
                    linkage: LINKAGES[linkage_zipf.sample(&mut rng)],
                    k: 1 + k_zipf.sample(&mut rng),
                },
                2 => Request::Dbscan {
                    shard,
                    eps: 0.2 + 0.05 * (k_zipf.sample(&mut rng) % 4) as f64,
                    min_pts: 3,
                },
                _ => Request::KMedoids {
                    shard,
                    k: 2 + k_zipf.sample(&mut rng) % 6,
                },
            }
        })
        .collect()
}

fn bench_clustering_plans(c: &mut Criterion) {
    let server = build_server();
    let requests: Vec<Request> = (0..CLIENTS).flat_map(clustering_stream).collect();
    let total = requests.len() as u64;

    // Correctness gate: the plan-cached batch path must stay bit-identical
    // to per-query dispatch (which rebuilds every dendrogram from scratch).
    let sequential: Vec<_> = requests
        .iter()
        .map(|r| server.serve_one_uncached(r).unwrap())
        .collect();
    let batched = server.serve_batch(&requests, 4);
    for ((a, b), req) in batched.iter().zip(&sequential).zip(&requests) {
        assert!(
            a.as_ref().unwrap().bits_eq(b),
            "plan-cached batch diverged on {req:?}"
        );
    }

    let mut group = c.benchmark_group("server_clustering_4shard");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));

    group.bench_function("per_query_sequential", |b| {
        b.iter(|| {
            requests
                .iter()
                .map(|r| server.serve_one_uncached(r).unwrap())
                .collect::<Vec<_>>()
        });
    });

    group.bench_function("serve_batch_cold", |b| {
        b.iter_batched(
            || {
                server.clear_cache();
                server.clear_plans();
            },
            |()| server.serve_batch(&requests, 4),
            BatchSize::PerIteration,
        );
    });

    // Plans warm, responses cold: every request recomputes its answer, but
    // hierarchical cuts read the cached dendrograms — the plan layer's
    // isolated win over `serve_batch_cold`.
    group.bench_function("serve_batch_warm_plans", |b| {
        b.iter_batched(
            || server.clear_cache(),
            |()| server.serve_batch(&requests, 4),
            BatchSize::PerIteration,
        );
    });

    server.clear_cache();
    let _ = server.serve_batch(&requests, 4);
    group.bench_function("serve_batch_warm", |b| {
        b.iter(|| server.serve_batch(&requests, 4));
    });

    // The amortization claim in its purest form: a k-sweep over one warm
    // plan. The response cache is cleared per iteration so every cut is
    // recomputed — from the same dendrogram.
    let sweep: Vec<Request> = (1..=32)
        .map(|k| Request::Hierarchical {
            shard: 0,
            linkage: Linkage::Complete,
            k,
        })
        .collect();
    server.serve_batch(&sweep, 1); // warm the plan
    let builds_before_sweep = server.stats().plans.builds;
    group.bench_function("cut_sweep_warm_plan", |b| {
        b.iter_batched(
            || server.clear_cache(),
            |()| server.serve_batch(&sweep, 1),
            BatchSize::PerIteration,
        );
    });
    group.finish();

    let plans = server.stats().plans;
    assert_eq!(
        plans.builds, builds_before_sweep,
        "a warm plan must serve every cut(k) with zero additional builds"
    );
    println!(
        "plans: {} builds amortized over {} hits ({} invalidations, {} live)",
        plans.builds, plans.hits, plans.invalidations, plans.live
    );
}

/// One client's Zipf-skewed compound specs: a range filter around a hot
/// item, then hierarchical cluster labels projected onto the selection —
/// the PR 8 workload (`compound_pipeline_4shard`).
fn compound_specs(client: usize) -> Vec<(usize, usize, f64, Linkage, usize)> {
    const LINKAGES: [Linkage; 2] = [Linkage::Complete, Linkage::Average];
    let shard_zipf = Zipf::new(SHARDS, 1.0);
    let item_zipf = Zipf::new(PER_SHARD, 1.0);
    let k_zipf = Zipf::new(8, 1.0);
    let mut rng = StdRng::seed_from_u64(0xC0908 + client as u64);
    (0..PER_CLIENT / 2)
        .map(|_| {
            let shard = shard_zipf.sample(&mut rng);
            let item = item_zipf.sample(&mut rng);
            let radius = 0.3 + 0.1 * (k_zipf.sample(&mut rng) % 5) as f64;
            let linkage = LINKAGES[k_zipf.sample(&mut rng) % 2];
            let k = 2 + k_zipf.sample(&mut rng);
            (shard, item, radius, linkage, k)
        })
        .collect()
}

/// P8 — the compound-query pipeline (`compound_pipeline_4shard`): one
/// filter → cluster-label pipeline answered in a single drain, vs the only
/// option clients had before `Request::Pipeline` — two round trips (range,
/// then whole-shard labels) composed client-side. Three disciplines over
/// the identical spec stream, response cache cleared per iteration so the
/// executor (not memoization) is what's measured:
///
/// * `multi_round_trip` — per spec, two sequential single-request calls
///   through the full engine path, then client-side projection.
/// * `two_phase_batched` — the best a client could do without compounds:
///   one batched range phase, one batched label phase, then projection.
/// * `compound_one_drain` — the pipeline: every spec is a single
///   `FilterRange → ClusterLabels → Project` request, one 4-worker batch.
///
/// Bit-identity of the compound path to the client-side composition is
/// asserted before any timing is believed.
fn bench_compound_pipeline(c: &mut Criterion) {
    let server = build_server();
    let specs: Vec<_> = (0..CLIENTS).flat_map(compound_specs).collect();
    let total = specs.len() as u64;

    let compounds: Vec<Request> = specs
        .iter()
        .map(|&(shard, item, radius, linkage, k)| Request::Pipeline {
            shard,
            ops: vec![
                PlanOp::FilterRange { item, radius },
                PlanOp::ClusterLabels(ClusterRule::Hierarchical { linkage, k }),
                PlanOp::Project(Projection::Labels),
            ],
        })
        .collect();
    let ranges: Vec<Request> = specs
        .iter()
        .map(|&(shard, item, radius, ..)| Request::Range {
            shard,
            item,
            radius,
        })
        .collect();
    let cuts: Vec<Request> = specs
        .iter()
        .map(|&(shard, _, _, linkage, k)| Request::Hierarchical { shard, linkage, k })
        .collect();

    let project = |sel: &Response, full: &Response| -> Vec<i64> {
        let (Response::Indices(sel), Response::Labels(full)) = (sel, full) else {
            panic!("range must answer indices, labels must answer labels");
        };
        sel.iter().map(|&j| full[j]).collect()
    };
    let compose_round_trips = |threads: usize| -> Vec<Vec<i64>> {
        let sels = server.serve_batch(&ranges, threads);
        let fulls = server.serve_batch(&cuts, threads);
        sels.iter()
            .zip(&fulls)
            .map(|(s, f)| project(s.as_ref().unwrap(), f.as_ref().unwrap()))
            .collect()
    };

    // Correctness gate: the one-drain compound answers must be
    // bit-identical to the two-round-trip client composition.
    let compound_answers = server.serve_batch(&compounds, 4);
    let composed = compose_round_trips(4);
    for ((a, want), req) in compound_answers.iter().zip(&composed).zip(&compounds) {
        let Response::Labels(got) = a.as_ref().unwrap() else {
            panic!("compound must answer labels");
        };
        assert_eq!(got, want, "compound diverged from composition on {req:?}");
    }

    let mut group = c.benchmark_group("compound_pipeline_4shard");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));

    group.bench_function("multi_round_trip", |b| {
        b.iter_batched(
            || server.clear_cache(),
            |()| {
                ranges
                    .iter()
                    .zip(&cuts)
                    .map(|(r, h)| {
                        let sel = server.serve_batch(std::slice::from_ref(r), 1);
                        let full = server.serve_batch(std::slice::from_ref(h), 1);
                        project(sel[0].as_ref().unwrap(), full[0].as_ref().unwrap())
                    })
                    .collect::<Vec<_>>()
            },
            BatchSize::PerIteration,
        );
    });

    group.bench_function("two_phase_batched", |b| {
        b.iter_batched(
            || server.clear_cache(),
            |()| compose_round_trips(4),
            BatchSize::PerIteration,
        );
    });

    group.bench_function("compound_one_drain", |b| {
        b.iter_batched(
            || server.clear_cache(),
            |()| server.serve_batch(&compounds, 4),
            BatchSize::PerIteration,
        );
    });
    group.finish();

    let stats = server.stats();
    println!(
        "executor: {} queries, {} rows scanned, {} plan builds / {} plan hits",
        stats.queries, stats.exec.rows_scanned, stats.exec.plan_builds, stats.exec.plan_hits
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_server_throughput, bench_clustering_plans, bench_compound_pipeline
}
criterion_main!(benches);
