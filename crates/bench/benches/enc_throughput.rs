//! P1a — encryption throughput of every PPE class on query-log-sized
//! payloads, plus the PR 5 ingest hot path: the batched Paillier engine
//! (`paillier_batch`, per-64-value medians so the single-call baseline is
//! directly comparable) and the owner→server streaming upload
//! (`server_ingest_pipeline`). PR 6 adds the decrypt paths
//! (`paillier_decrypt`: CRT vs λ) and the raw bignum exponentiation layer
//! (`bignum_modpow`: Montgomery vs schoolbook, Straus multi-exp). No
//! paper-side numbers exist (the paper reports none); the measured values
//! go into EXPERIMENTS.md and the committed `BENCH_PR6.json` trajectory
//! the `bench-gate` CI lane guards.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dpe_bench::experiment_log;
use dpe_bignum::{multi_modpow, BigUint};
use dpe_core::scheme::{QueryEncryptor, TokenDpe};
use dpe_crypto::kdf::SlotLabel;
use dpe_crypto::scheme::SymmetricScheme;
use dpe_crypto::{DetScheme, JoinGroup, MasterKey, ProbScheme};
use dpe_distance::TokenDistance;
use dpe_ope::{OpeDomain, OpeScheme};
use dpe_paillier::{BatchEncryptor, KeyPair, TEST_PRIME_BITS};
use dpe_server::Server;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PAYLOAD: &[u8] = b"SELECT objid FROM photoobj WHERE ra BETWEEN 100 AND 200";

/// Values per iteration in the `paillier_batch` group: every bench there
/// encrypts this many values, so medians compare directly.
const BATCH: usize = 64;

/// Queries streamed per `server_ingest_pipeline` iteration.
const INGEST_LOG: usize = 96;

/// Chunk size of the pipelined upload.
const INGEST_CHUNK: usize = 12;

fn bench_classes(c: &mut Criterion) {
    let master = MasterKey::from_bytes([1; 32]);
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("enc_throughput");
    group.throughput(Throughput::Bytes(PAYLOAD.len() as u64));

    let prob = ProbScheme::new(&SlotLabel::Constant("bench").derive(&master));
    group.bench_function("PROB_aes_ctr", |b| {
        b.iter(|| prob.encrypt(PAYLOAD, &mut rng));
    });

    let det = DetScheme::new(&SlotLabel::Constant("bench").derive(&master));
    group.bench_function("DET_siv", |b| {
        b.iter(|| det.encrypt(PAYLOAD, &mut rng));
    });

    let join = JoinGroup::new(&master, "bench");
    group.bench_function("JOIN_shared_det", |b| {
        b.iter(|| join.scheme().encrypt(PAYLOAD, &mut rng));
    });
    group.finish();

    let mut group = c.benchmark_group("enc_values");
    let ope = OpeScheme::new(
        &SlotLabel::Constant("bench-ope").derive(&master),
        OpeDomain::new(0, 1 << 32),
    );
    let mut v = 0u64;
    group.bench_function("OPE_u64", |b| {
        b.iter(|| {
            v = (v + 7919) & 0xFFFF_FFFF;
            ope.encrypt(v).unwrap()
        });
    });

    let keypair = KeyPair::generate(TEST_PRIME_BITS, &mut rng);
    group.bench_function("HOM_paillier_encrypt_u64", |b| {
        b.iter_batched(
            || rng.clone(),
            |mut r| keypair.public().encrypt_u64(123_456, &mut r),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// The batched Paillier engine against the one-at-a-time baseline. Every
/// bench encrypts [`BATCH`] values per iteration, so the JSON medians are
/// directly comparable — the trajectory's ≥4× claim is
/// `single_call_x64 / fixed_base_cold_x64`.
fn bench_paillier_batch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let keypair = KeyPair::generate(TEST_PRIME_BITS, &mut rng);
    let public = keypair.public();
    let values: Vec<BigUint> = (0..BATCH as u64)
        .map(|i| BigUint::from(i * 7919 + 1))
        .collect();

    let mut group = c.benchmark_group("paillier_batch");
    group.throughput(Throughput::Elements(BATCH as u64));

    // Baseline: the pre-PR 5 ingest loop — one full r^n per value.
    group.bench_function("single_call_x64", |b| {
        b.iter_batched(
            || rng.clone(),
            |mut r| {
                values
                    .iter()
                    .map(|m| public.encrypt(m, &mut r).unwrap())
                    .collect::<Vec<_>>()
            },
            BatchSize::SmallInput,
        );
    });

    // Hot path: factors precomputed off the hot path (pool refilled in the
    // untimed setup); an encryption is one modular multiplication.
    let pooled = BatchEncryptor::new(public);
    group.bench_function("pooled_hot_x64", |b| {
        b.iter_batched(
            || {
                let mut r = rng.clone();
                let missing = BATCH.saturating_sub(pooled.pool().len());
                pooled.pool().refill(missing, &mut r);
                r
            },
            |mut r| pooled.encrypt_batch(&values, &mut r).unwrap(),
            BatchSize::SmallInput,
        );
    });

    // Cold single-thread engine, fixed-base mode: the full per-value cost
    // (table walk + multiply) with nothing precomputed per batch — the
    // honest ≥4× single-thread speedup.
    let fixed = BatchEncryptor::fixed_base(public, &mut rng);
    group.bench_function("fixed_base_cold_x64", |b| {
        b.iter_batched(
            || rng.clone(),
            |mut r| fixed.encrypt_batch(&values, &mut r).unwrap(),
            BatchSize::SmallInput,
        );
    });

    // Exact mode dealt across workers: bit-identical output to
    // single_call_x64, wall clock divided across 4 threads.
    let exact = BatchEncryptor::new(public);
    group.bench_function("exact_parallel4_x64", |b| {
        b.iter_batched(
            || rng.clone(),
            |mut r| exact.encrypt_batch_parallel(&values, 4, &mut r).unwrap(),
            BatchSize::SmallInput,
        );
    });

    // Both optimizations together: fixed-base sampling on 4 workers.
    let fixed_par = BatchEncryptor::fixed_base(public, &mut rng);
    group.bench_function("fixed_base_parallel4_x64", |b| {
        b.iter_batched(
            || rng.clone(),
            |mut r| {
                fixed_par
                    .encrypt_batch_parallel(&values, 4, &mut r)
                    .unwrap()
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// PR 6: the decryption paths. Both benches decrypt the same [`BATCH`]
/// ciphertexts per iteration, so the JSON medians are directly
/// comparable — the trajectory's ≥2× claim is
/// `decrypt_lambda_x64 / decrypt_crt_x64`. The λ-path is kept callable
/// (`PrivateKey::decrypt_lambda`) precisely to stay measurable as the
/// baseline the CRT path is pinned bit-identical against.
fn bench_paillier_decrypt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xDEC);
    let keypair = KeyPair::generate(TEST_PRIME_BITS, &mut rng);
    let cts: Vec<_> = (0..BATCH as u64)
        .map(|i| keypair.public().encrypt_u64(i * 7919 + 1, &mut rng))
        .collect();

    let mut group = c.benchmark_group("paillier_decrypt");
    group.throughput(Throughput::Elements(BATCH as u64));

    // Baseline: textbook m = L(c^λ mod n²)·μ mod n — one full-width
    // exponentiation per ciphertext.
    group.bench_function("decrypt_lambda_x64", |b| {
        b.iter(|| {
            cts.iter()
                .map(|ct| keypair.private().decrypt_lambda(ct).unwrap())
                .collect::<Vec<_>>()
        });
    });

    // Fast path: CRT — two half-width exponentiations mod p²/q² plus
    // Garner recombination, what `PrivateKey::decrypt` now runs.
    group.bench_function("decrypt_crt_x64", |b| {
        b.iter(|| {
            cts.iter()
                .map(|ct| keypair.private().decrypt(ct).unwrap())
                .collect::<Vec<_>>()
        });
    });
    group.finish();
}

/// PR 6: the raw bignum exponentiation layer, at Paillier-ciphertext
/// operand sizes (512-bit modulus = `n²` of a TEST_PRIME_BITS key).
fn bench_modpow(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x909);
    let keypair = KeyPair::generate(TEST_PRIME_BITS, &mut rng);
    let m = keypair.public().n_squared().clone(); // 512-bit, odd
    let base = keypair.public().n() - &BigUint::one();
    let exp = keypair.public().n().clone(); // the r^n exponent shape

    let mut group = c.benchmark_group("bignum_modpow");

    // The dispatching entry point: odd modulus + 256-bit exponent takes
    // the Montgomery path (context built per call, as a cold caller pays).
    group.bench_function("mont_modpow_512", |b| {
        b.iter(|| base.modpow(&exp, &m));
    });

    // The schoolbook ladder the dispatch replaced — one Knuth division
    // per multiplication.
    group.bench_function("schoolbook_modpow_512", |b| {
        b.iter(|| base.modpow_naive(&exp, &m));
    });

    // Straus multi-exponentiation: four bases on one shared squaring
    // chain versus four independent chains.
    let pairs: Vec<(BigUint, BigUint)> = (1u64..=4)
        .map(|i| (&base - &BigUint::from(i * 1000), &exp - &BigUint::from(i)))
        .collect();
    group.bench_function("multi_modpow_x4", |b| {
        b.iter(|| multi_modpow(&pairs, &m));
    });
    group.bench_function("separate_modpow_x4", |b| {
        b.iter(|| {
            pairs.iter().fold(BigUint::one(), |acc, (bs, e)| {
                acc.modmul(&bs.modpow(e, &m), &m)
            })
        });
    });
    group.finish();
}

/// The owner→server upload: encrypt a query log and extend a shard's
/// packed matrix, one-shot versus the pipelined chunked stream
/// (`Server::ingest_stream`, producer-side encryption overlapping
/// server-side distance computation).
fn bench_server_ingest_pipeline(c: &mut Criterion) {
    let log = experiment_log(INGEST_LOG, 0x1256);
    let master = MasterKey::from_bytes([0x42; 32]);

    let mut group = c.benchmark_group("server_ingest_pipeline");
    group.throughput(Throughput::Elements(INGEST_LOG as u64));

    // Baseline: encrypt the whole log, then hand it to the server in one
    // ingest — encryption and matrix extension strictly serialized.
    group.bench_function("encrypt_then_ingest", |b| {
        b.iter_batched(
            || {
                (
                    TokenDpe::new(&master),
                    Server::builder(TokenDistance)
                        .shards(1)
                        .cache_capacity(0)
                        .build(),
                )
            },
            |(mut scheme, server)| {
                let encrypted = scheme.encrypt_log(&log).unwrap();
                server.ingest(0, &encrypted).unwrap();
                server.shard_len(0).unwrap()
            },
            BatchSize::SmallInput,
        );
    });

    // Pipelined: the owner encrypts chunk k+1 on the stream's producer
    // thread while the server extends the matrix with chunk k.
    group.bench_function("pipelined_chunks12", |b| {
        b.iter_batched(
            || {
                (
                    TokenDpe::new(&master),
                    Server::builder(TokenDistance)
                        .shards(1)
                        .cache_capacity(0)
                        .build(),
                )
            },
            |(mut scheme, server)| {
                let chunks = log
                    .chunks(INGEST_CHUNK)
                    .map(move |chunk| scheme.encrypt_log(chunk).unwrap());
                server.ingest_stream(0, chunks).unwrap()
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_classes, bench_paillier_batch, bench_paillier_decrypt, bench_modpow, bench_server_ingest_pipeline
}
criterion_main!(benches);
