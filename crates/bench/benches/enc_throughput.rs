//! P1a — encryption throughput of every PPE class on query-log-sized
//! payloads. No paper-side numbers exist (the paper reports none); the
//! measured values go into EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dpe_crypto::kdf::SlotLabel;
use dpe_crypto::scheme::SymmetricScheme;
use dpe_crypto::{DetScheme, JoinGroup, MasterKey, ProbScheme};
use dpe_ope::{OpeDomain, OpeScheme};
use dpe_paillier::{KeyPair, TEST_PRIME_BITS};
use rand::rngs::StdRng;
use rand::SeedableRng;

const PAYLOAD: &[u8] = b"SELECT objid FROM photoobj WHERE ra BETWEEN 100 AND 200";

fn bench_classes(c: &mut Criterion) {
    let master = MasterKey::from_bytes([1; 32]);
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("enc_throughput");
    group.throughput(Throughput::Bytes(PAYLOAD.len() as u64));

    let prob = ProbScheme::new(&SlotLabel::Constant("bench").derive(&master));
    group.bench_function("PROB_aes_ctr", |b| {
        b.iter(|| prob.encrypt(PAYLOAD, &mut rng));
    });

    let det = DetScheme::new(&SlotLabel::Constant("bench").derive(&master));
    group.bench_function("DET_siv", |b| {
        b.iter(|| det.encrypt(PAYLOAD, &mut rng));
    });

    let join = JoinGroup::new(&master, "bench");
    group.bench_function("JOIN_shared_det", |b| {
        b.iter(|| join.scheme().encrypt(PAYLOAD, &mut rng));
    });
    group.finish();

    let mut group = c.benchmark_group("enc_values");
    let ope = OpeScheme::new(
        &SlotLabel::Constant("bench-ope").derive(&master),
        OpeDomain::new(0, 1 << 32),
    );
    let mut v = 0u64;
    group.bench_function("OPE_u64", |b| {
        b.iter(|| {
            v = (v + 7919) & 0xFFFF_FFFF;
            ope.encrypt(v).unwrap()
        });
    });

    let keypair = KeyPair::generate(TEST_PRIME_BITS, &mut rng);
    group.bench_function("HOM_paillier_encrypt_u64", |b| {
        b.iter_batched(
            || rng.clone(),
            |mut r| keypair.public().encrypt_u64(123_456, &mut r),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_classes
}
criterion_main!(benches);
