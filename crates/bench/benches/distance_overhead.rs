//! P1d — distance computation: plaintext vs encrypted logs.
//!
//! The DPE promise is that the *provider* computes distances on
//! ciphertexts; this bench quantifies the overhead (encrypted identifiers
//! are longer hex strings, access areas use OPE-sized coordinates — the
//! algorithms are identical).

use criterion::{criterion_group, criterion_main, Criterion};
use dpe_bench::{experiment_domains, experiment_log, log_only_fixtures};
use dpe_distance::{AccessAreaDistance, DistanceMatrix, StructureDistance, TokenDistance};

fn bench_distances(c: &mut Criterion) {
    let log = experiment_log(30, 0xD1);
    let fixtures = log_only_fixtures(&log).expect("fixtures");
    let mut access = fixtures.access_area.0;
    let enc_domains = access.encrypted_domains().expect("encrypted domains");

    let mut group = c.benchmark_group("distance_matrix_30q");
    group.sample_size(20);

    group.bench_function("token_plain", |b| {
        b.iter(|| DistanceMatrix::compute(&log, &TokenDistance).unwrap());
    });
    group.bench_function("token_encrypted", |b| {
        b.iter(|| DistanceMatrix::compute(&fixtures.token.1, &TokenDistance).unwrap());
    });

    group.bench_function("structure_plain", |b| {
        b.iter(|| DistanceMatrix::compute(&log, &StructureDistance).unwrap());
    });
    group.bench_function("structure_encrypted", |b| {
        b.iter(|| DistanceMatrix::compute(&fixtures.structural.1, &StructureDistance).unwrap());
    });

    let d_plain = AccessAreaDistance::new(experiment_domains());
    let d_enc = AccessAreaDistance::new(enc_domains);
    group.bench_function("access_area_plain", |b| {
        b.iter(|| DistanceMatrix::compute(&log, &d_plain).unwrap());
    });
    group.bench_function("access_area_encrypted", |b| {
        b.iter(|| DistanceMatrix::compute(&fixtures.access_area.1, &d_enc).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
