//! P2 — the packed incremental DistanceMatrix engine.
//!
//! Three claims, measured:
//!
//! 1. **Memory**: packed upper-triangle storage holds `n(n−1)/2` cells
//!    instead of `n²` — reported below, asserted exactly.
//! 2. **Incremental wall-clock**: appending a batch of m queries via
//!    `extend` computes only the `m·n + m(m−1)/2` new pairs, vs the full
//!    `(n+m)(n+m−1)/2` of a recompute.
//! 3. **Parallel result distance**: the engine-backed measure — locked to
//!    the sequential path before `QueryDistanceFactory` — now scales over
//!    workers, each with its own connection.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dpe_bench::{experiment_database, result_safe_log};
use dpe_distance::{DistanceMatrix, ResultDistance, ResultDistanceFactory, TokenDistance};
use dpe_workload::{LogConfig, LogGenerator};

fn bench_matrix_packed(c: &mut Criterion) {
    const N: usize = 96;
    const M: usize = 8;
    let log = LogGenerator::generate(&LogConfig {
        queries: N + M,
        seed: 0xFACE,
        ..Default::default()
    });
    let (base_log, batch) = log.split_at(N);

    // Memory claim: the packed buffer is exactly the strict upper triangle.
    let full = DistanceMatrix::compute(&log, &TokenDistance).unwrap();
    assert_eq!(full.packed_len(), (N + M) * (N + M - 1) / 2);
    println!(
        "packed storage: {} cells for n = {} (full square would be {}, {:.1}% saved)",
        full.packed_len(),
        N + M,
        (N + M) * (N + M),
        100.0 * (1.0 - full.packed_len() as f64 / ((N + M) * (N + M)) as f64)
    );

    // Incremental claim: extend must agree bit-for-bit with the recompute.
    let base = DistanceMatrix::compute(base_log, &TokenDistance).unwrap();
    let mut extended = base.clone();
    extended.extend(base_log, batch, &TokenDistance).unwrap();
    assert!(
        full.identical(&extended),
        "extend must be bit-identical to recompute"
    );

    let mut group = c.benchmark_group("token_matrix_append8_n96");
    group.bench_function("full_recompute", |b| {
        b.iter(|| DistanceMatrix::compute(&log, &TokenDistance).unwrap());
    });
    group.bench_function("extend", |b| {
        b.iter_batched(
            || base.clone(),
            |mut m| {
                m.extend(base_log, batch, &TokenDistance).unwrap();
                m
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();

    // Parallel result distance: per-worker engine connections.
    let db = experiment_database(60, 0x33);
    let rlog = result_safe_log(48, 0x34);
    let seq = DistanceMatrix::compute(&rlog, &ResultDistance::new(&db)).unwrap();
    let par = DistanceMatrix::compute_parallel(&rlog, &ResultDistanceFactory::new(&db), 4).unwrap();
    assert!(
        seq.identical(&par),
        "parallel result path must be bit-identical"
    );

    let mut group = c.benchmark_group("result_matrix_n48");
    group.bench_function("sequential", |b| {
        b.iter(|| DistanceMatrix::compute(&rlog, &ResultDistance::new(&db)).unwrap());
    });
    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| {
                DistanceMatrix::compute_parallel(&rlog, &ResultDistanceFactory::new(&db), t)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matrix_packed
}
criterion_main!(benches);
