//! The `dpe-bench/v1` perf-trajectory format, shared by the `bench_json`
//! consolidator and the `bench_gate` regression gate.
//!
//! Two on-disk shapes carry the same records:
//!
//! * **JSONL sweeps** — what a `DPE_BENCH_JSON=<file> cargo bench` run
//!   appends: one `{"bench":…,"lo_ns":…,"median_ns":…,"hi_ns":…}` object
//!   per line, repeated runs appending duplicates (last one wins).
//! * **Trajectory files** — the committed `BENCH_PR*.json` artifacts: a
//!   single object with a `schema` tag ([`SCHEMA`]), an entry count, and
//!   the name-sorted `results` array.
//!
//! Parsing is by key, not position, so hand-edited fixtures stay valid;
//! unknown `schema` values are an explicit error rather than a guess at
//! forward compatibility.

use std::collections::BTreeMap;

/// The trajectory schema version this crate reads and writes.
pub const SCHEMA: &str = "dpe-bench/v1";

/// One benchmark's measurement: lo/median/hi nanoseconds per operation
/// over the shim's samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchRecord {
    /// Fastest sample.
    pub lo_ns: f64,
    /// Median sample — the value the regression gate compares.
    pub median_ns: f64,
    /// Slowest sample.
    pub hi_ns: f64,
}

/// Extracts the string value of `"key"` from `line`, honouring backslash
/// escapes and optional whitespace after the colon. Shared with the
/// `leakage` module, whose `dpe-leakage/v1` files use the same JSON
/// subset.
pub(crate) fn string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut end = None;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' => escaped = true,
            '"' => {
                end = Some(i);
                break;
            }
            _ => {}
        }
    }
    let raw = &rest[..end?];
    // Unescape the two sequences the shim produces.
    Some(raw.replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// Extracts the float value of `"key"` from `line` (whitespace after the
/// colon allowed). Shared with the `leakage` module.
pub(crate) fn f64_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses one record-bearing line (a JSONL sweep line or one trajectory
/// `results` entry — the field set is identical).
pub fn parse_record_line(line: &str) -> Option<(String, BenchRecord)> {
    Some((
        string_field(line, "bench")?,
        BenchRecord {
            lo_ns: f64_field(line, "lo_ns")?,
            median_ns: f64_field(line, "median_ns")?,
            hi_ns: f64_field(line, "hi_ns")?,
        },
    ))
}

/// Parses a whole JSONL sweep; later records for the same bench override
/// earlier ones. Returns `Err` with the offending line on malformed input.
pub fn consolidate(input: &str) -> Result<BTreeMap<String, BenchRecord>, String> {
    let mut out = BTreeMap::new();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (bench, record) =
            parse_record_line(line).ok_or_else(|| format!("malformed bench record: {line}"))?;
        out.insert(bench, record);
    }
    Ok(out)
}

/// The `schema` tag of a trajectory file, if one is present.
pub fn schema_of(content: &str) -> Option<String> {
    string_field(content, "schema")
}

/// Parses a consolidated trajectory file, insisting on the [`SCHEMA`]
/// version tag.
pub fn parse_trajectory(content: &str) -> Result<BTreeMap<String, BenchRecord>, String> {
    match schema_of(content) {
        Some(ref s) if s == SCHEMA => {}
        Some(s) => {
            return Err(format!(
                "unknown trajectory schema {s:?} (expected {SCHEMA:?})"
            ))
        }
        None => return Err(format!("no \"schema\" field found (expected {SCHEMA:?})")),
    }
    let mut out = BTreeMap::new();
    for line in content.lines() {
        let line = line.trim();
        if !line.starts_with("{\"bench\"") && !line.starts_with("{ \"bench\"") {
            continue;
        }
        let (bench, record) =
            parse_record_line(line).ok_or_else(|| format!("malformed result entry: {line}"))?;
        out.insert(bench, record);
    }
    if out.is_empty() {
        return Err("trajectory holds no results".into());
    }
    Ok(out)
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c < ' ' => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders records as a `dpe-bench/v1` trajectory file (name-sorted, one
/// result per line — the committed `BENCH_PR*.json` shape).
pub fn render(results: &BTreeMap<String, BenchRecord>) -> String {
    let mut out = format!("{{\n  \"schema\": \"{SCHEMA}\",\n");
    out.push_str(&format!("  \"entries\": {},\n", results.len()));
    out.push_str("  \"results\": [\n");
    let body: Vec<String> = results
        .iter()
        .map(|(bench, r)| {
            format!(
                "    {{\"bench\": \"{}\", \"lo_ns\": {:.1}, \"median_ns\": {:.1}, \"hi_ns\": {:.1}}}",
                escape(bench),
                r.lo_ns,
                r.median_ns,
                r.hi_ns
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(median: f64) -> BenchRecord {
        BenchRecord {
            lo_ns: median - 1.0,
            median_ns: median,
            hi_ns: median + 1.0,
        }
    }

    #[test]
    fn jsonl_and_trajectory_spellings_both_parse() {
        let jsonl = "{\"bench\":\"g/x\",\"lo_ns\":1.0,\"median_ns\":2.0,\"hi_ns\":3.0}";
        let pretty = "{\"bench\": \"g/x\", \"lo_ns\": 1.0, \"median_ns\": 2.0, \"hi_ns\": 3.0}";
        let (a, ra) = parse_record_line(jsonl).unwrap();
        let (b, rb) = parse_record_line(pretty).unwrap();
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        assert_eq!(ra.median_ns, 2.0);
    }

    #[test]
    fn render_parse_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("a/first".to_string(), record(10.0));
        m.insert("b/sec\"ond".to_string(), record(20.0));
        let rendered = render(&m);
        assert_eq!(schema_of(&rendered).as_deref(), Some(SCHEMA));
        let parsed = parse_trajectory(&rendered).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let v2 = render(&BTreeMap::from([("a/x".to_string(), record(1.0))]))
            .replace(SCHEMA, "dpe-bench/v2");
        let err = parse_trajectory(&v2).unwrap_err();
        assert!(err.contains("unknown trajectory schema"), "{err}");
        let none = "{\"results\": []}";
        assert!(parse_trajectory(none)
            .unwrap_err()
            .contains("no \"schema\""));
    }

    #[test]
    fn consolidate_last_record_wins() {
        let input = "{\"bench\":\"a/x\",\"lo_ns\":1.0,\"median_ns\":2.0,\"hi_ns\":3.0}\n\
                     {\"bench\":\"a/x\",\"lo_ns\":7.0,\"median_ns\":8.0,\"hi_ns\":9.0}\n";
        let out = consolidate(input).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out["a/x"].median_ns, 8.0);
    }

    #[test]
    fn committed_trajectory_files_parse() {
        // The real BENCH_PR3/PR4 artifacts at the repo root must stay
        // readable by the gate.
        for name in ["BENCH_PR3.json", "BENCH_PR4.json"] {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../").to_string() + name;
            let content = std::fs::read_to_string(&path).unwrap_or_default();
            if content.is_empty() {
                continue; // tolerate running from an unexpected layout
            }
            let parsed = parse_trajectory(&content).unwrap();
            assert!(!parsed.is_empty(), "{name}");
        }
    }
}
