//! The `dpe-leakage/v1` leakage-trajectory format and the measurement
//! sweep behind the `leakage_gate` CI lane.
//!
//! The gate answers one question every PR: *did the ciphertext-observable
//! advantage of any passive attack go up?* A throughput win that comes
//! from weakening an onion level (say, serving from DET where RND
//! sufficed) shows up here as a ratcheted advantage and fails CI, the
//! leakage-side mirror of the `bench_gate` perf lane.
//!
//! [`measure`] replays a Zipf-skewed workload through a real
//! [`dpe_server::Server`] SQL front door (DET-rewritten identifiers —
//! exactly what a curious provider observes while serving), then runs the
//! `dpe-attacks` suite against the constants and tokens of that workload
//! at each relevant scheme/onion surface:
//!
//! | attack | surface | expectation |
//! |---|---|---|
//! | `freq/*` | RND, DET, JOIN constant columns | DET/JOIN leak rank order; RND flat |
//! | `known-query/*` | RND, DET token streams | DET dictionaries propagate; RND never match |
//! | `linkage/*` | JOIN group vs per-slot DET | JOIN links columns; distinct DET slots don't |
//!
//! Every number is a deterministic recovery rate in `[0, 1]` (fixed seeds,
//! integer counts), so the committed baseline compares exactly and the
//! tolerance only has to absorb intentional workload changes, not run
//! noise.

use crate::experiment_master;
use crate::trajectory::{f64_field, string_field};
use dpe_attacks::{frequency_attack, join_linkage, known_query_attack};
use dpe_cryptdb::IdentRewriter;
use dpe_crypto::kdf::SlotLabel;
use dpe_crypto::scheme::SymmetricScheme;
use dpe_crypto::{DetScheme, JoinGroup, ProbScheme};
use dpe_distance::TokenDistance;
use dpe_server::{dist_literal, Server, SqlTable};
use dpe_workload::{LogConfig, LogGenerator, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// The leakage schema version this module reads and writes.
pub const SCHEMA: &str = "dpe-leakage/v1";

/// Workload shape: enough mass for stable frequency ranks, small enough
/// that the lane costs seconds.
const WORKLOAD: usize = 600;
const DISTINCT: usize = 24;
const KNOWN_QUERIES: usize = 12;
const STORE: usize = 16;

/// One gated attack comparison.
#[derive(Debug, PartialEq)]
pub struct LeakageComparison {
    /// Attack/surface name, e.g. `freq/eq-det`.
    pub attack: String,
    /// Committed baseline advantage.
    pub baseline: f64,
    /// Freshly measured advantage.
    pub fresh: f64,
    /// `true` when fresh exceeds baseline by more than the tolerance.
    pub regressed: bool,
}

/// The Zipf-skewed constants of the served workload: the value stream a
/// provider observes in `WHERE anchor = <v>` position.
fn zipf_constants(rng: &mut StdRng) -> Vec<i64> {
    let zipf = Zipf::new(DISTINCT, 1.1);
    (0..WORKLOAD)
        .map(|_| 40_000 + zipf.sample(rng) as i64 * 17)
        .collect()
}

/// Serves the workload through the encrypted SQL front door and returns
/// the SQL texts the provider saw. The serving itself is the point: the
/// attacked surfaces below are observations of *this* traffic, not a
/// synthetic column.
fn serve_workload(constants: &[i64]) -> Vec<String> {
    let master = experiment_master();
    let rewriter = IdentRewriter::new(&master);
    let binding = SqlTable {
        table: rewriter.table_ident("pairs"),
        shard: 0,
        item_col: rewriter.column_ident("item"),
        anchor_col: rewriter.column_ident("anchor"),
        dist_col: rewriter.column_ident("dist"),
    };
    let server = Server::builder(TokenDistance).cache_capacity(64).build();
    server
        .ingest(
            0,
            &LogGenerator::generate(&LogConfig {
                queries: STORE,
                seed: 0x1EAC,
                ..Default::default()
            }),
        )
        .expect("workload store ingest");
    server
        .register_sql_table(binding.clone())
        .expect("pairs binding");
    let (tb, it, an, di) = (
        &binding.table,
        &binding.item_col,
        &binding.anchor_col,
        &binding.dist_col,
    );
    let radius = dist_literal(0.8);
    constants
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let anchor = (*v as usize) % STORE;
            let sql = format!(
                "SELECT {it} FROM {tb} WHERE {an} = {anchor} AND {di} <= {radius} \
                 ORDER BY {di} LIMIT {}",
                2 + i % 5
            );
            server.sql(&sql).expect("served workload query");
            sql
        })
        .collect()
}

/// Measures every gated attack advantage. Deterministic: fixed master
/// key, fixed seeds, integer recovery counts.
pub fn measure() -> BTreeMap<String, f64> {
    let master = experiment_master();
    let mut rng = StdRng::seed_from_u64(0x1EAA);

    let constants = zipf_constants(&mut rng);
    let served_sql = serve_workload(&constants);

    // The attacker's auxiliary knowledge: the public value distribution.
    let truth: Vec<String> = constants.iter().map(|v| v.to_string()).collect();
    let mut aux: BTreeMap<String, usize> = BTreeMap::new();
    for t in &truth {
        *aux.entry(t.clone()).or_default() += 1;
    }
    let aux: Vec<(String, usize)> = aux.into_iter().collect();

    let mut out = BTreeMap::new();

    // ---- frequency analysis per onion level ----
    let prob = ProbScheme::new(&SlotLabel::Constant("leak-rnd").derive(&master));
    let rnd_col: Vec<String> = constants
        .iter()
        .map(|v| prob.encrypt(&v.to_be_bytes(), &mut rng).to_hex())
        .collect();
    out.insert(
        "freq/eq-rnd".into(),
        frequency_attack(&rnd_col, &truth, &aux).success_rate(),
    );

    let det = DetScheme::new(&SlotLabel::Constant("leak-det").derive(&master));
    let det_col: Vec<String> = constants
        .iter()
        .map(|v| det.encrypt(&v.to_be_bytes(), &mut rng).to_hex())
        .collect();
    out.insert(
        "freq/eq-det".into(),
        frequency_attack(&det_col, &truth, &aux).success_rate(),
    );

    let group = JoinGroup::new(&master, "leak-join");
    let join_a: Vec<String> = constants
        .iter()
        .map(|v| group.scheme().encrypt(&v.to_be_bytes(), &mut rng).to_hex())
        .collect();
    out.insert(
        "freq/join".into(),
        frequency_attack(&join_a, &truth, &aux).success_rate(),
    );

    // ---- known-query attack on the served SQL token streams ----
    let tokens: Vec<Vec<String>> = served_sql
        .iter()
        .map(|sql| sql.split_whitespace().map(str::to_string).collect())
        .collect();
    let det_tok = DetScheme::new(&SlotLabel::Constant("leak-det-tok").derive(&master));
    let enc_det: Vec<Vec<String>> = tokens
        .iter()
        .map(|q| {
            q.iter()
                .map(|t| det_tok.encrypt(t.as_bytes(), &mut rng).to_hex())
                .collect()
        })
        .collect();
    out.insert(
        "known-query/eq-det".into(),
        known_query_attack(
            &tokens[..KNOWN_QUERIES]
                .iter()
                .cloned()
                .zip(enc_det[..KNOWN_QUERIES].iter().cloned())
                .collect::<Vec<_>>(),
            &enc_det[KNOWN_QUERIES..],
            &tokens[KNOWN_QUERIES..],
        )
        .success_rate(),
    );
    let enc_rnd: Vec<Vec<String>> = tokens
        .iter()
        .map(|q| {
            q.iter()
                .map(|t| prob.encrypt(t.as_bytes(), &mut rng).to_hex())
                .collect()
        })
        .collect();
    out.insert(
        "known-query/eq-rnd".into(),
        known_query_attack(
            &tokens[..KNOWN_QUERIES]
                .iter()
                .cloned()
                .zip(enc_rnd[..KNOWN_QUERIES].iter().cloned())
                .collect::<Vec<_>>(),
            &enc_rnd[KNOWN_QUERIES..],
            &tokens[KNOWN_QUERIES..],
        )
        .success_rate(),
    );

    // ---- cross-column linkage ----
    let half: Vec<i64> = constants.iter().take(WORKLOAD / 2).copied().collect();
    let join_b: Vec<String> = half
        .iter()
        .map(|v| group.scheme().encrypt(&v.to_be_bytes(), &mut rng).to_hex())
        .collect();
    out.insert(
        "linkage/join".into(),
        join_linkage(&join_a, &join_b, &constants, &half).success_rate(),
    );
    // Negative control: two DET columns under *different* slots share no
    // ciphertexts — per-slot keying is what keeps DET out of JOIN's row.
    let det_b = DetScheme::new(&SlotLabel::Constant("leak-det-b").derive(&master));
    let det_col_b: Vec<String> = half
        .iter()
        .map(|v| det_b.encrypt(&v.to_be_bytes(), &mut rng).to_hex())
        .collect();
    out.insert(
        "linkage/eq-det-slots".into(),
        join_linkage(&det_col, &det_col_b, &constants, &half).success_rate(),
    );

    out
}

/// The `schema` tag of a leakage file, if present.
pub fn schema_of(content: &str) -> Option<String> {
    string_field(content, "schema")
}

/// Renders advantages as a committed `dpe-leakage/v1` file (name-sorted,
/// one attack per line).
pub fn render(attacks: &BTreeMap<String, f64>) -> String {
    let mut out = format!("{{\n  \"schema\": \"{SCHEMA}\",\n");
    out.push_str(&format!("  \"entries\": {},\n", attacks.len()));
    out.push_str("  \"attacks\": [\n");
    let body: Vec<String> = attacks
        .iter()
        .map(|(name, adv)| format!("    {{\"attack\": \"{name}\", \"advantage\": {adv:.6}}}"))
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Parses a `dpe-leakage/v1` file, insisting on the schema tag.
pub fn parse(content: &str) -> Result<BTreeMap<String, f64>, String> {
    match schema_of(content) {
        Some(ref s) if s == SCHEMA => {}
        Some(s) => {
            return Err(format!(
                "unknown leakage schema {s:?} (expected {SCHEMA:?})"
            ))
        }
        None => return Err(format!("no \"schema\" field found (expected {SCHEMA:?})")),
    }
    let mut out = BTreeMap::new();
    for line in content.lines() {
        let line = line.trim();
        if !line.starts_with("{\"attack\"") && !line.starts_with("{ \"attack\"") {
            continue;
        }
        let name = string_field(line, "attack")
            .ok_or_else(|| format!("malformed attack entry: {line}"))?;
        let adv = f64_field(line, "advantage")
            .ok_or_else(|| format!("malformed attack entry: {line}"))?;
        if !(0.0..=1.0).contains(&adv) {
            return Err(format!("advantage out of [0,1] for {name}: {adv}"));
        }
        out.insert(name, adv);
    }
    if out.is_empty() {
        return Err("leakage file holds no attacks".into());
    }
    Ok(out)
}

/// Compares fresh advantages against the baseline for every shared attack
/// name. The ratchet is one-directional: an advantage may *fall* freely
/// (that's a security improvement — commit the new baseline), but rising
/// past `tolerance` regresses.
pub fn compare(
    fresh: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
    tolerance: f64,
) -> Vec<LeakageComparison> {
    fresh
        .iter()
        .filter_map(|(attack, &f)| {
            let &b = baseline.get(attack)?;
            Some(LeakageComparison {
                attack: attack.clone(),
                baseline: b,
                fresh: f,
                regressed: f > b + tolerance,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_advantages_match_the_taxonomy() {
        let m = measure();
        // DET leaks rank order to frequency analysis; RND stays near the
        // random-guess floor.
        assert!(m["freq/eq-det"] > 0.3, "{m:?}");
        assert!(m["freq/eq-rnd"] < 0.15, "{m:?}");
        assert!(m["freq/join"] > 0.3, "{m:?}");
        // Known-query dictionaries propagate under DET, never under RND.
        assert!(m["known-query/eq-det"] > 0.5, "{m:?}");
        assert_eq!(m["known-query/eq-rnd"], 0.0, "{m:?}");
        // JOIN links columns; distinct DET slots must not.
        assert!(m["linkage/join"] > 0.5, "{m:?}");
        assert_eq!(m["linkage/eq-det-slots"], 0.0, "{m:?}");
    }

    #[test]
    fn measurement_is_deterministic() {
        assert_eq!(measure(), measure());
    }

    #[test]
    fn render_parse_round_trip() {
        let m = measure();
        let parsed = parse(&render(&m)).unwrap();
        assert_eq!(parsed.len(), m.len());
        for (k, v) in &m {
            assert!((parsed[k] - v).abs() < 1e-6, "{k}");
        }
    }

    #[test]
    fn unknown_schema_and_bad_ranges_are_rejected() {
        let m = BTreeMap::from([("freq/x".to_string(), 0.5)]);
        let v9 = render(&m).replace(SCHEMA, "dpe-leakage/v9");
        assert!(parse(&v9).unwrap_err().contains("unknown"));
        let oob = render(&m).replace("0.500000", "1.500000");
        assert!(parse(&oob).unwrap_err().contains("out of [0,1]"));
    }

    #[test]
    fn ratchet_is_one_directional() {
        let base = BTreeMap::from([
            ("freq/a".to_string(), 0.40),
            ("freq/b".to_string(), 0.40),
            ("freq/c".to_string(), 0.40),
        ]);
        let fresh = BTreeMap::from([
            ("freq/a".to_string(), 0.405),  // within tolerance
            ("freq/b".to_string(), 0.60),   // ratcheted up — regression
            ("freq/c".to_string(), 0.10),   // improvement — fine
            ("freq/new".to_string(), 0.99), // no baseline — not gated
        ]);
        let cmp = compare(&fresh, &base, 0.01);
        let verdicts: Vec<(&str, bool)> = cmp
            .iter()
            .map(|c| (c.attack.as_str(), c.regressed))
            .collect();
        assert_eq!(
            verdicts,
            vec![("freq/a", false), ("freq/b", true), ("freq/c", false)]
        );
    }
}
