//! **Experiment M1 — "the mining results … are the same" (§I, §III-A).**
//!
//! For each of the four measures: compute the pairwise distance matrix of a
//! log and of its encryption, then run all four distance-based mining
//! algorithms of the paper's motivation (k-medoids \[5\], DBSCAN \[4\],
//! complete-link \[3\], Knorr–Ng outliers \[6\]) on both matrices and score
//! agreement. Under DPE every agreement score must be exactly 1.0 and the
//! matrices bit-identical.
//!
//! Run: `cargo run --release -p dpe-bench --bin mining_equivalence`

use dpe_bench::*;
use dpe_core::verify::mining_agreement;
use dpe_distance::{
    AccessAreaDistance, DistanceMatrix, QueryDistanceFactory, ResultDistanceFactory,
    StructureDistance, TokenDistance,
};
use dpe_mining::{DbscanConfig, OutlierConfig};
use dpe_sql::Query;

const K: usize = 4;
const DBSCAN: DbscanConfig = DbscanConfig {
    eps: 0.45,
    min_pts: 3,
};
const OUTLIERS: OutlierConfig = OutlierConfig { p: 0.7, d: 0.6 };
const THREADS: usize = 4;

fn check(
    name: &str,
    plain_log: &[Query],
    enc_log: &[Query],
    d_plain: &impl QueryDistanceFactory,
    d_enc: &impl QueryDistanceFactory,
) -> bool {
    // The matrices are computed on the parallel path (all four measures —
    // the result measure gets one engine connection per worker via its
    // factory) and cross-checked bit-for-bit against the sequential path.
    let m_plain =
        DistanceMatrix::compute_parallel(plain_log, d_plain, THREADS).expect("plain matrix");
    let m_enc =
        DistanceMatrix::compute_parallel(enc_log, d_enc, THREADS).expect("encrypted matrix");
    let m_seq = DistanceMatrix::compute(plain_log, &d_plain.connect()).expect("sequential");
    assert!(
        m_plain.identical(&m_seq),
        "{name}: parallel path diverged from sequential"
    );
    let identical = m_plain.identical(&m_enc);
    let agreement = mining_agreement(&m_plain, &m_enc, K, DBSCAN, OUTLIERS);
    println!(
        "  {name:<12} matrices bit-identical: {identical:<5}  k-medoids ARI {:.3}  DBSCAN ARI {:.3}  complete-link ARI {:.3}  outliers identical: {}",
        agreement.kmedoids_ari,
        agreement.dbscan_ari,
        agreement.hierarchical_ari,
        agreement.outliers_identical,
    );
    identical && agreement.all_identical
}

fn main() {
    println!("=== M1: mining-result equivalence under DPE ===\n");
    println!(
        "  parameters: n=80 queries, k-medoids k={K}, DBSCAN eps={} minPts={}, outliers p={} D={}\n",
        DBSCAN.eps, DBSCAN.min_pts, OUTLIERS.p, OUTLIERS.d
    );

    let log = experiment_log(80, 0x31);
    let fixtures = log_only_fixtures(&log).expect("schemes build");
    let mut ok = true;

    ok &= check(
        "token",
        &log,
        &fixtures.token.1,
        &TokenDistance,
        &TokenDistance,
    );
    ok &= check(
        "structure",
        &log,
        &fixtures.structural.1,
        &StructureDistance,
        &StructureDistance,
    );

    let mut access = fixtures.access_area.0;
    let d_enc = AccessAreaDistance::new(access.encrypted_domains().expect("encrypted domains"));
    ok &= check(
        "access-area",
        &log,
        &fixtures.access_area.1,
        &AccessAreaDistance::new(experiment_domains()),
        &d_enc,
    );

    let db = experiment_database(60, 0x32);
    let rlog = result_safe_log(80, 0x31);
    let (dpe, enc_rlog) = result_fixture(&db, &rlog).expect("result scheme");
    ok &= check(
        "result",
        &rlog,
        &enc_rlog,
        &ResultDistanceFactory::new(&db),
        &ResultDistanceFactory::new(dpe.encrypted_database()),
    );

    if ok {
        println!(
            "\nM1 complete: every algorithm returns identical results on plaintext and ciphertext."
        );
    } else {
        println!("\nM1 FAILED: some mining outcome diverged.");
        std::process::exit(1);
    }
}
