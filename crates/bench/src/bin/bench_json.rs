//! Consolidates the criterion shim's JSONL bench records into one
//! machine-readable trajectory file (`BENCH_*.json` at the repo root).
//!
//! Usage: `bench_json <input.jsonl> <output.json>`
//!
//! The input is whatever a `DPE_BENCH_JSON=<input.jsonl> cargo bench …`
//! sweep appended: one record per benchmark, repeated runs appending
//! duplicates (the **last** record per bench name wins — it is the most
//! recent measurement). Output schema `dpe-bench/v1`:
//!
//! ```json
//! {
//!   "schema": "dpe-bench/v1",
//!   "entries": 3,
//!   "results": [
//!     {"bench": "<group>/<id>", "lo_ns": 1.0, "median_ns": 2.0, "hi_ns": 3.0}
//!   ]
//! }
//! ```
//!
//! `results` is sorted by bench name; all times are nanoseconds per
//! operation as measured by the shim (lo/median/hi over its samples). The
//! bin exits non-zero on empty or malformed input so CI fails loudly
//! instead of uploading a hollow artifact.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed record.
#[derive(Debug, Clone, PartialEq)]
struct Record {
    lo_ns: f64,
    median_ns: f64,
    hi_ns: f64,
}

/// Extracts the string value of `"bench"` and the three float fields from
/// one shim-emitted line. The shim writes a fixed field order, but this
/// parses by key so hand-edited fixtures stay valid.
fn parse_line(line: &str) -> Option<(String, Record)> {
    let bench = {
        let start = line.find("\"bench\":\"")? + "\"bench\":\"".len();
        // Scan for the closing quote, honouring backslash escapes.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in line[start..].char_indices() {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => {
                    end = Some(start + i);
                    break;
                }
                _ => {}
            }
        }
        let raw = &line[start..end?];
        // Unescape the two sequences the shim produces.
        raw.replace("\\\"", "\"").replace("\\\\", "\\")
    };
    let field = |key: &str| -> Option<f64> {
        let pat = format!("\"{key}\":");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let end = rest
            .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    };
    Some((
        bench,
        Record {
            lo_ns: field("lo_ns")?,
            median_ns: field("median_ns")?,
            hi_ns: field("hi_ns")?,
        },
    ))
}

/// Parses a whole JSONL dump; later records for the same bench override
/// earlier ones. Returns `Err` with the offending line on malformed input.
fn consolidate(input: &str) -> Result<BTreeMap<String, Record>, String> {
    let mut out = BTreeMap::new();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (bench, record) =
            parse_line(line).ok_or_else(|| format!("malformed bench record: {line}"))?;
        out.insert(bench, record);
    }
    Ok(out)
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c < ' ' => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn render(results: &BTreeMap<String, Record>) -> String {
    let mut out = String::from("{\n  \"schema\": \"dpe-bench/v1\",\n");
    out.push_str(&format!("  \"entries\": {},\n", results.len()));
    out.push_str("  \"results\": [\n");
    let body: Vec<String> = results
        .iter()
        .map(|(bench, r)| {
            format!(
                "    {{\"bench\": \"{}\", \"lo_ns\": {:.1}, \"median_ns\": {:.1}, \"hi_ns\": {:.1}}}",
                escape(bench),
                r.lo_ns,
                r.median_ns,
                r.hi_ns
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (input_path, output_path) = match &args[..] {
        [_, i, o] => (i, o),
        _ => {
            eprintln!("usage: bench_json <input.jsonl> <output.json>");
            return ExitCode::FAILURE;
        }
    };
    let input = match std::fs::read_to_string(input_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_json: cannot read {input_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let results = match consolidate(&input) {
        Ok(r) if r.is_empty() => {
            eprintln!("bench_json: {input_path} holds no bench records — did the sweep run?");
            return ExitCode::FAILURE;
        }
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_json: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(output_path, render(&results)) {
        eprintln!("bench_json: cannot write {output_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "bench_json: {} benchmarks consolidated into {output_path}",
        results.len()
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shim_emitted_lines() {
        let (bench, r) =
            parse_line("{\"bench\":\"mining_60x60/dbscan\",\"lo_ns\":101.5,\"median_ns\":110.0,\"hi_ns\":120.9}")
                .unwrap();
        assert_eq!(bench, "mining_60x60/dbscan");
        assert_eq!(r.median_ns, 110.0);
        assert_eq!(r.lo_ns, 101.5);
        assert_eq!(r.hi_ns, 120.9);
    }

    #[test]
    fn last_record_per_bench_wins() {
        let input = "\
{\"bench\":\"a/x\",\"lo_ns\":1.0,\"median_ns\":2.0,\"hi_ns\":3.0}\n\
{\"bench\":\"b/y\",\"lo_ns\":4.0,\"median_ns\":5.0,\"hi_ns\":6.0}\n\
\n\
{\"bench\":\"a/x\",\"lo_ns\":7.0,\"median_ns\":8.0,\"hi_ns\":9.0}\n";
        let results = consolidate(input).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results["a/x"].median_ns, 8.0);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(consolidate("{\"bench\":\"a/x\"}").is_err());
        assert!(consolidate("not json at all").is_err());
        assert!(consolidate("").unwrap().is_empty());
    }

    #[test]
    fn escaped_names_round_trip() {
        let line = "{\"bench\":\"odd\\\"name\\\\x\",\"lo_ns\":1.0,\"median_ns\":2.0,\"hi_ns\":3.0}";
        let (bench, _) = parse_line(line).unwrap();
        assert_eq!(bench, "odd\"name\\x");
        let mut m = BTreeMap::new();
        m.insert(
            bench,
            Record {
                lo_ns: 1.0,
                median_ns: 2.0,
                hi_ns: 3.0,
            },
        );
        let rendered = render(&m);
        assert!(rendered.contains("odd\\\"name\\\\x"), "{rendered}");
    }

    #[test]
    fn rendered_output_is_sorted_and_well_formed() {
        let mut m = BTreeMap::new();
        for (name, med) in [("b/second", 20.0), ("a/first", 10.0)] {
            m.insert(
                name.to_string(),
                Record {
                    lo_ns: med - 1.0,
                    median_ns: med,
                    hi_ns: med + 1.0,
                },
            );
        }
        let out = render(&m);
        assert!(out.starts_with("{\n  \"schema\": \"dpe-bench/v1\""));
        assert!(out.contains("\"entries\": 2"));
        let a = out.find("a/first").unwrap();
        let b = out.find("b/second").unwrap();
        assert!(a < b, "results must be sorted by bench name");
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        assert_eq!(out.matches('[').count(), out.matches(']').count());
    }
}
