//! Consolidates the criterion shim's JSONL bench records into one
//! machine-readable trajectory file (`BENCH_*.json` at the repo root).
//!
//! Usage: `bench_json <input.jsonl> <output.json> [--force]`
//!
//! The input is whatever a `DPE_BENCH_JSON=<input.jsonl> cargo bench …`
//! sweep appended: one record per benchmark, repeated runs appending
//! duplicates (the **last** record per bench name wins — it is the most
//! recent measurement). The output schema (`dpe-bench/v1`) and both
//! parsers live in [`dpe_bench::trajectory`].
//!
//! Trajectory files are committed perf history, so the bin refuses to
//! overwrite an existing output unless `--force` is passed — and even
//! then refuses when the existing file carries an unknown (or missing)
//! schema tag, since that means it is not the trajectory file it is about
//! to replace. It also exits non-zero on empty or malformed input so CI
//! fails loudly instead of uploading a hollow artifact.

use dpe_bench::trajectory::{consolidate, render, schema_of, SCHEMA};
use std::process::ExitCode;

/// Why the output path must not be written.
fn clobber_error(output_path: &str, force: bool) -> Option<String> {
    let existing = match std::fs::read_to_string(output_path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => return Some(format!("cannot inspect existing {output_path}: {e}")),
    };
    if !force {
        return Some(format!(
            "{output_path} already exists — pass --force to overwrite the committed trajectory"
        ));
    }
    match schema_of(&existing) {
        Some(ref s) if s == SCHEMA => None,
        Some(s) => Some(format!(
            "{output_path} has unknown schema {s:?} (expected {SCHEMA:?}); refusing to overwrite"
        )),
        None => Some(format!(
            "{output_path} is not a {SCHEMA} trajectory (no schema tag); refusing to overwrite"
        )),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (input_path, output_path, force) = match &args[..] {
        [_, i, o] => (i, o, false),
        [_, i, o, flag] if flag == "--force" => (i, o, true),
        _ => {
            eprintln!("usage: bench_json <input.jsonl> <output.json> [--force]");
            return ExitCode::FAILURE;
        }
    };
    let input = match std::fs::read_to_string(input_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_json: cannot read {input_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let results = match consolidate(&input) {
        Ok(r) if r.is_empty() => {
            eprintln!("bench_json: {input_path} holds no bench records — did the sweep run?");
            return ExitCode::FAILURE;
        }
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_json: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(reason) = clobber_error(output_path, force) {
        eprintln!("bench_json: {reason}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(output_path, render(&results)) {
        eprintln!("bench_json: cannot write {output_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "bench_json: {} benchmarks consolidated into {output_path}",
        results.len()
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_file(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dpe-bench-json-{}-{name}", std::process::id()))
    }

    #[test]
    fn missing_output_is_writable() {
        let path = temp_file("missing.json");
        let _ = std::fs::remove_file(&path);
        assert_eq!(clobber_error(path.to_str().unwrap(), false), None);
    }

    #[test]
    fn existing_output_needs_force() {
        let path = temp_file("existing.json");
        let rendered = render(
            &consolidate("{\"bench\":\"a/x\",\"lo_ns\":1.0,\"median_ns\":2.0,\"hi_ns\":3.0}")
                .unwrap(),
        );
        std::fs::write(&path, rendered).unwrap();
        let p = path.to_str().unwrap();
        let err = clobber_error(p, false).unwrap();
        assert!(err.contains("--force"), "{err}");
        assert_eq!(clobber_error(p, true), None, "valid schema + force is ok");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_schema_refused_even_with_force() {
        let path = temp_file("v9.json");
        std::fs::write(&path, "{\"schema\": \"dpe-bench/v9\", \"results\": []}").unwrap();
        let err = clobber_error(path.to_str().unwrap(), true).unwrap();
        assert!(err.contains("unknown schema"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn schemaless_file_refused_even_with_force() {
        let path = temp_file("notes.json");
        std::fs::write(&path, "these are my lunch notes").unwrap();
        let err = clobber_error(path.to_str().unwrap(), true).unwrap();
        assert!(err.contains("no schema tag"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shared_parser_still_consolidates() {
        // The behavior the PR 3/4 artifacts rely on, now via the shared
        // trajectory module: last record per bench wins, sorted render.
        let input = "\
{\"bench\":\"b/y\",\"lo_ns\":4.0,\"median_ns\":5.0,\"hi_ns\":6.0}\n\
{\"bench\":\"a/x\",\"lo_ns\":1.0,\"median_ns\":2.0,\"hi_ns\":3.0}\n\
{\"bench\":\"a/x\",\"lo_ns\":7.0,\"median_ns\":8.0,\"hi_ns\":9.0}\n";
        let results = consolidate(input).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results["a/x"].median_ns, 8.0);
        let out = render(&results);
        assert!(out.starts_with("{\n  \"schema\": \"dpe-bench/v1\""));
        assert!(out.find("a/x").unwrap() < out.find("b/y").unwrap());
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(consolidate("{\"bench\":\"a/x\"}").is_err());
        assert!(consolidate("not json at all").is_err());
        assert!(consolidate("").unwrap().is_empty());
    }
}
