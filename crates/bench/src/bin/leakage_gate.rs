//! The leakage-regression gate: fails CI when any passive attack's
//! advantage over the served workload *rises* past the committed
//! baseline — the security-side mirror of `bench_gate`.
//!
//! Usage:
//!
//! * `leakage_gate measure <out.json>` — run the attack sweep of
//!   [`dpe_bench::leakage::measure`] and write a `dpe-leakage/v1` file
//!   (how `LEAKAGE_PR*.json` baselines are produced).
//! * `leakage_gate <fresh.json> <baseline.json> [--tolerance <abs>]` —
//!   compare a fresh sweep against the committed baseline. Exit 1 when
//!   any shared attack's advantage exceeds baseline + tolerance
//!   (default 0.01). Advantages may *fall* freely — that's a security
//!   improvement; commit the lower baseline to ratchet it in.
//!
//! The measurement is deterministic (fixed seeds, integer recovery
//! counts), so the tolerance absorbs intentional workload reshapes, not
//! run-to-run noise. New attacks gate nothing until their baseline is
//! committed; retired ones are reported but harmless.

use dpe_bench::leakage::{self, LeakageComparison};
use std::process::ExitCode;

/// Default allowed absolute advantage growth.
const DEFAULT_TOLERANCE: f64 = 0.01;

fn measure_to(path: &str) -> Result<(), String> {
    let attacks = leakage::measure();
    let rendered = leakage::render(&attacks);
    std::fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "leakage_gate: measured {} attack surfaces -> {path}",
        attacks.len()
    );
    for (name, adv) in &attacks {
        println!("  {name:<24} advantage {:.4}", adv);
    }
    Ok(())
}

fn run_compare(args: &[String]) -> Result<Vec<LeakageComparison>, String> {
    let (fresh_path, baseline_path, tolerance) = match args {
        [f, b] => (f, b, DEFAULT_TOLERANCE),
        [f, b, flag, t] if flag == "--tolerance" => (
            f,
            b,
            t.parse::<f64>()
                .map_err(|_| format!("--tolerance expects a number, got {t:?}"))?,
        ),
        _ => {
            return Err("usage: leakage_gate measure <out.json> | \
                 leakage_gate <fresh.json> <baseline.json> [--tolerance <abs>]"
                .into())
        }
    };
    if !tolerance.is_finite() || tolerance < 0.0 {
        return Err(format!(
            "--tolerance must be a non-negative number, got {tolerance}"
        ));
    }
    let fresh_content = std::fs::read_to_string(fresh_path)
        .map_err(|e| format!("cannot read fresh results {fresh_path}: {e}"))?;
    let baseline_content = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let fresh = leakage::parse(&fresh_content).map_err(|e| format!("{fresh_path}: {e}"))?;
    let baseline =
        leakage::parse(&baseline_content).map_err(|e| format!("{baseline_path}: {e}"))?;

    let compared = leakage::compare(&fresh, &baseline, tolerance);
    println!(
        "leakage_gate: {} fresh / {} baseline attacks, {} compared (tolerance +{tolerance})",
        fresh.len(),
        baseline.len(),
        compared.len()
    );
    for c in &compared {
        println!(
            "  {} {:<24} {:.4} -> {:.4}  ({:+.4})",
            if c.regressed {
                "RATCHETED"
            } else {
                "ok       "
            },
            c.attack,
            c.baseline,
            c.fresh,
            c.fresh - c.baseline
        );
    }
    for name in fresh.keys().filter(|n| !baseline.contains_key(*n)) {
        println!("  new       {name} (no baseline yet — not gated)");
    }
    for name in baseline.keys().filter(|n| !fresh.contains_key(*n)) {
        println!("  retired   {name} (in baseline, not in fresh sweep)");
    }
    Ok(compared)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let [cmd, out] = args.as_slice() {
        if cmd == "measure" {
            return match measure_to(out) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("leakage_gate: {e}");
                    ExitCode::FAILURE
                }
            };
        }
    }
    match run_compare(&args) {
        Ok(compared) => {
            let ratcheted = compared.iter().filter(|c| c.regressed).count();
            if ratcheted > 0 {
                eprintln!("leakage_gate: {ratcheted} attack advantage(s) ratcheted up — failing");
                ExitCode::FAILURE
            } else {
                println!("leakage_gate: no attack advantage ratcheted up");
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("leakage_gate: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// The acceptance pin: an injected regression (one advantage bumped
    /// past tolerance in the fresh file) must fail the gate end-to-end.
    #[test]
    fn injected_regression_fails_the_gate() {
        let dir = std::env::temp_dir();
        let base_path = dir.join(format!("dpe-leak-base-{}.json", std::process::id()));
        let fresh_path = dir.join(format!("dpe-leak-fresh-{}.json", std::process::id()));
        let base = BTreeMap::from([
            ("freq/eq-det".to_string(), 0.42),
            ("linkage/join".to_string(), 0.90),
        ]);
        let mut fresh = base.clone();
        std::fs::write(&base_path, leakage::render(&base)).unwrap();
        std::fs::write(&fresh_path, leakage::render(&fresh)).unwrap();
        let args = vec![
            fresh_path.to_str().unwrap().to_string(),
            base_path.to_str().unwrap().to_string(),
        ];
        let clean = run_compare(&args).unwrap();
        assert!(clean.iter().all(|c| !c.regressed), "identical files pass");

        // Inject: frequency advantage creeps from 0.42 to 0.55.
        fresh.insert("freq/eq-det".to_string(), 0.55);
        std::fs::write(&fresh_path, leakage::render(&fresh)).unwrap();
        let injected = run_compare(&args).unwrap();
        assert!(
            injected
                .iter()
                .any(|c| c.attack == "freq/eq-det" && c.regressed),
            "{injected:?}"
        );
        // Falling advantage never trips the ratchet.
        fresh.insert("freq/eq-det".to_string(), 0.05);
        std::fs::write(&fresh_path, leakage::render(&fresh)).unwrap();
        assert!(run_compare(&args).unwrap().iter().all(|c| !c.regressed));
        std::fs::remove_file(&base_path).unwrap();
        std::fs::remove_file(&fresh_path).unwrap();
    }

    #[test]
    fn tolerance_must_be_sane() {
        assert!(
            run_compare(&["a".into(), "b".into(), "--tolerance".into(), "-1".into()])
                .unwrap_err()
                .contains("non-negative")
        );
        assert!(run_compare(&["one".into()]).unwrap_err().contains("usage"));
    }
}
