//! **Experiment O1 — residual leakage inside the OPE class: stateless
//! range-bisection OPE vs mutable OPE (mOPE).**
//!
//! Fig. 1 places both instances in the same class (they deterministically
//! reveal order and equality), but their *residual* leakage differs: a
//! stateless OPE necessarily embeds plaintext gaps into ciphertext gaps,
//! while mOPE's encodings depend only on ranks. Two attacks measure the
//! difference on a clustered (skewed) column:
//!
//! * gap correlation — Pearson r between adjacent plaintext and ciphertext
//!   gaps of the sorted column;
//! * window estimation — ciphertext-only linear interpolation, counted
//!   recovered within ±10% of the domain.
//!
//! Run: `cargo run --release -p dpe-bench --bin ope_leakage`

use dpe_attacks::{gap_correlation, sorting_attack, window_estimation_attack};
use dpe_crypto::SymmetricKey;
use dpe_ope::{MopeState, OpeDomain, OpeScheme};

/// Three tight clusters separated by huge gaps — the shape on which gap
/// leakage is most visible (e.g. object ids allocated in epochs).
fn clustered_column() -> Vec<u64> {
    let mut v = Vec::new();
    for i in 0..60u64 {
        v.push(10_000 + i * 3);
    }
    for i in 0..60u64 {
        v.push(2_000_000_000 + i * 5);
    }
    for i in 0..60u64 {
        v.push(4_200_000_000 + i * 2);
    }
    v
}

fn main() {
    let domain_hi = u32::MAX as u64 * 2;
    let values = clustered_column();
    println!(
        "=== O1: OPE-instance leakage on a clustered column (n = {}) ===\n",
        values.len()
    );

    // Stateless range-bisection OPE.
    let ope = OpeScheme::new(
        &SymmetricKey::from_bytes([0xA5; 32]),
        OpeDomain::new(0, domain_hi),
    );
    let ope_pairs: Vec<(u64, u128)> = values
        .iter()
        .map(|&v| (v, ope.encrypt(v).unwrap()))
        .collect();
    let ope_cts: Vec<u128> = ope_pairs.iter().map(|&(_, c)| c).collect();

    // Mutable OPE, scrambled insertion order (as a stream of queries would).
    let mut mope = MopeState::new();
    let mut order = values.clone();
    let n = order.len();
    for i in 0..n {
        order.swap(i, (i * 13 + 5) % n);
    }
    for &v in &order {
        mope.encode(v).unwrap();
    }
    let mope_pairs: Vec<(u64, u128)> = values
        .iter()
        .map(|&v| (v, mope.lookup(v).unwrap()))
        .collect();
    let mope_cts: Vec<u128> = mope_pairs.iter().map(|&(_, c)| c).collect();

    let r_ope = gap_correlation(&ope_pairs);
    let r_mope = gap_correlation(&mope_pairs);
    println!("  gap correlation (plaintext gaps vs ciphertext gaps, sorted):");
    println!("    stateless OPE : r = {r_ope:+.3}");
    println!("    mOPE          : r = {r_mope:+.3}");
    assert!(r_ope > 0.8, "stateless OPE should leak gaps strongly");
    assert!(r_mope.abs() < 0.4, "mOPE must not leak gaps");

    let tol = 0.10;
    let w_ope = window_estimation_attack(
        &ope_cts,
        &values,
        0,
        domain_hi,
        OpeDomain::new(0, domain_hi).range_size(),
        tol,
    );
    let w_mope = window_estimation_attack(&mope_cts, &values, 0, domain_hi, 1u128 << 64, tol);
    println!(
        "\n  window estimation (ciphertext-only, ±{:.0}% of domain):",
        tol * 100.0
    );
    println!("    stateless OPE : {w_ope}");
    println!("    mOPE          : {w_mope}");
    assert!(w_ope.success_rate() > w_mope.success_rate());

    // Both instances still fall to the rank attack with known multiset —
    // they are in the same Fig. 1 row; mOPE only removes the *extra*
    // geometric leakage.
    let truth: Vec<i64> = values.iter().map(|&v| v as i64).collect();
    let s_ope = sorting_attack(&ope_cts, &truth, &truth);
    let s_mope = sorting_attack(&mope_cts, &truth, &truth);
    println!("\n  sorting attack with exact multiset knowledge (class-level leak):");
    println!("    stateless OPE : {s_ope}");
    println!("    mOPE          : {s_mope}");
    assert_eq!(s_ope.success_rate(), 1.0);
    assert_eq!(s_mope.success_rate(), 1.0);

    println!(
        "\n  mOPE state: {} values, {} rebalances, {} total re-encodings",
        mope.len(),
        mope.rebalance_count(),
        mope.mutation_count()
    );
    println!("\nO1 PASSED: same class, strictly less residual leakage for mOPE.");
}
