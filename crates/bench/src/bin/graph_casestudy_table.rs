//! **Experiment G1 — the graph case study table (KIT-DPE on a second
//! data type).**
//!
//! The graph analogue of T1: derive the measure → notion → class table by
//! running KIT-DPE Steps 2–3 for labelled graphs, verify Definition 1
//! exhaustively for the appropriate scheme of every row, run the negative
//! controls, and validate the headline (identical mining results) with
//! three clustering algorithms.
//!
//! Run: `cargo run --release -p dpe-bench --bin graph_casestudy_table`

use dpe_crypto::{EncryptionClass, MasterKey};
use dpe_distance::DistanceMatrix;
use dpe_graphdpe::{
    derive_table, verify_graph_dpe, DegreeSequenceDistance, DetGraphEncryptor, EdgeJaccard, Graph,
    GraphDistance, GraphNotion, GraphWorkload, ProbGraphEncryptor, VertexJaccard,
};
use dpe_mining::{adjusted_rand_index, agglomerative, dbscan, kmedoids, DbscanConfig, Linkage};

fn main() {
    println!("=== G1: graph case-study table — derived by Definition 6 ===\n");
    println!(
        "  {:<18} {:<28} {:<18} EncVertex",
        "measure", "equivalence notion", "characteristic c"
    );
    for row in derive_table() {
        println!(
            "  {:<18} {:<28} {:<18} {}",
            row.measure,
            row.notion.name(),
            row.notion.characteristic(),
            row.enc_vertex
        );
    }
    // The expected assignments, mirroring the paper's analysis transplanted
    // to graphs: set measures need DET, the label-free measure gets PROB.
    assert_eq!(
        GraphNotion::VertexSet.appropriate_class(),
        EncryptionClass::Det
    );
    assert_eq!(
        GraphNotion::EdgeSet.appropriate_class(),
        EncryptionClass::Det
    );
    assert_eq!(
        GraphNotion::DegreeSequence.appropriate_class(),
        EncryptionClass::Prob
    );
    println!("\n  derived classes match the capability analysis ✓");

    let mut wl = GraphWorkload::new(0x61);
    let batches = wl.community_batches(4, 8, 8);
    let plain: Vec<Graph> = batches.iter().flatten().cloned().collect();
    let truth = GraphWorkload::community_truth(4, 8);
    let n_pairs = plain.len() * (plain.len() - 1) / 2;

    println!(
        "\n=== G1: Definition 1, exhaustive over {} graphs ({n_pairs} pairs) ===\n",
        plain.len()
    );
    let det = DetGraphEncryptor::new(&MasterKey::from_bytes([0x47; 32]));
    let det_enc: Vec<Graph> = plain.iter().map(|g| det.encrypt_graph(g)).collect();
    for report in [
        verify_graph_dpe(&VertexJaccard, &plain, &det_enc),
        verify_graph_dpe(&EdgeJaccard, &plain, &det_enc),
        verify_graph_dpe(&DegreeSequenceDistance, &plain, &det_enc),
    ] {
        println!("  DET  : {report}");
        assert!(report.preserved);
    }

    let mut prob = ProbGraphEncryptor::from_seed(0x62);
    let prob_enc: Vec<Graph> = plain.iter().map(|g| prob.encrypt_graph(g)).collect();
    println!();
    let deg = verify_graph_dpe(&DegreeSequenceDistance, &plain, &prob_enc);
    println!("  PROB : {deg}");
    assert!(deg.preserved);
    for report in [
        verify_graph_dpe(&VertexJaccard, &plain, &prob_enc),
        verify_graph_dpe(&EdgeJaccard, &plain, &prob_enc),
    ] {
        println!("  PROB : {report}   (negative control — must be VIOLATED)");
        assert!(!report.preserved);
    }

    println!("\n=== G1: mining-result identity on the encrypted corpus ===\n");
    // Stream the plaintext corpus community by community, growing the
    // packed matrix with only the new pairs per batch — the incremental
    // path a provider would run as graphs keep arriving.
    let mut m_plain = DistanceMatrix::new();
    for batch in &batches {
        let already = m_plain.len();
        m_plain.extend_with(batch.len(), |i, t| {
            EdgeJaccard.distance(&plain[i], &plain[t])
        });
        println!(
            "  streamed batch of {} graphs: matrix now {}×{} ({} packed cells)",
            batch.len(),
            m_plain.len(),
            m_plain.len(),
            m_plain.packed_len()
        );
        assert_eq!(m_plain.len(), already + batch.len());
    }
    let m_enc = DistanceMatrix::from_fn(det_enc.len(), |i, j| {
        EdgeJaccard.distance(&det_enc[i], &det_enc[j])
    });
    assert!(m_plain.identical(&m_enc));
    println!("  incrementally-grown plaintext matrix bit-identical to the encrypted one ✓");

    let (kp, ke) = (kmedoids(&m_plain, 4), kmedoids(&m_enc, 4));
    assert_eq!(kp.assignment, ke.assignment);
    println!(
        "  k-medoids    : identical assignments; ARI vs communities = {:.2}",
        adjusted_rand_index(&ke.assignment, &truth)
    );

    let cfg = DbscanConfig {
        eps: 0.35,
        min_pts: 3,
    };
    assert_eq!(dbscan(&m_plain, cfg), dbscan(&m_enc, cfg));
    println!("  DBSCAN       : identical labels");

    for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
        let (dp, de) = (
            agglomerative(&m_plain, linkage),
            agglomerative(&m_enc, linkage),
        );
        assert_eq!(dp, de);
        println!(
            "  {:<8} link: identical dendrogram; ARI at k=4 cut = {:.2}",
            linkage.name(),
            adjusted_rand_index(&de.cut(4), &truth)
        );
    }

    println!("\nG1 PASSED: the KIT-DPE procedure generalizes beyond SQL logs.");
}
