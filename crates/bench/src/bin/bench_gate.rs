//! The perf-regression gate: fails CI when a fresh bench sweep regresses
//! against the committed trajectory baseline.
//!
//! Usage: `bench_gate <fresh> <baseline.json> [--threshold <pct>]`
//!
//! `<fresh>` is either the raw JSONL a `DPE_BENCH_JSON=<file> cargo bench`
//! sweep appended or an already-consolidated `dpe-bench/v1` trajectory
//! file; `<baseline.json>` is the committed previous `BENCH_PR*.json`.
//! Only bench names present in **both** files are compared (new workloads
//! gate nothing yet; retired ones are reported but harmless), and a bench
//! fails the gate when its fresh median exceeds the baseline median by
//! more than the threshold (default 25%). Exit status: 0 when every
//! matched bench is within threshold, 1 otherwise — so the CI lane goes
//! red on the regression itself, not on a downstream artifact diff.
//!
//! Medians on shared CI runners are noisy; the 25% default is deliberately
//! wide, and a bench is only flagged when its **fastest** fresh sample is
//! also beyond threshold. A real algorithmic regression (a dropped cache,
//! an accidental O(n²)) slows every sample down; a scheduler spike
//! inflates the median of a microsecond-scale bench without touching its
//! minimum — so requiring both keeps the gate sensitive to the former and
//! quiet on the latter.

use dpe_bench::trajectory::{consolidate, parse_trajectory, schema_of, BenchRecord};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Default allowed median growth, percent.
const DEFAULT_THRESHOLD_PCT: f64 = 25.0;

/// One compared benchmark.
#[derive(Debug, PartialEq)]
struct Comparison {
    bench: String,
    baseline_ns: f64,
    fresh_ns: f64,
    /// Median growth in percent (negative = faster).
    delta_pct: f64,
    regressed: bool,
}

/// Compares fresh medians against baseline medians for every shared bench
/// name. Benches whose baseline median is zero are skipped (nothing
/// meaningful to divide by). A bench regresses only when its median *and*
/// its fastest sample both exceed the threshold — the noise guard the
/// module docs explain.
fn compare(
    fresh: &BTreeMap<String, BenchRecord>,
    baseline: &BTreeMap<String, BenchRecord>,
    threshold_pct: f64,
) -> Vec<Comparison> {
    fresh
        .iter()
        .filter_map(|(bench, f)| {
            let b = baseline.get(bench)?;
            if b.median_ns <= 0.0 {
                return None;
            }
            let delta_pct = (f.median_ns / b.median_ns - 1.0) * 100.0;
            let lo_delta_pct = (f.lo_ns / b.median_ns - 1.0) * 100.0;
            Some(Comparison {
                bench: bench.clone(),
                baseline_ns: b.median_ns,
                fresh_ns: f.median_ns,
                delta_pct,
                regressed: delta_pct > threshold_pct && lo_delta_pct > threshold_pct,
            })
        })
        .collect()
}

/// Parses `<fresh>` in either shape: a consolidated trajectory (has a
/// schema tag — which must then be valid) or a raw JSONL sweep.
fn parse_fresh(content: &str) -> Result<BTreeMap<String, BenchRecord>, String> {
    if schema_of(content).is_some() {
        parse_trajectory(content)
    } else {
        let records = consolidate(content)?;
        if records.is_empty() {
            return Err("fresh sweep holds no bench records — did the benches run?".into());
        }
        Ok(records)
    }
}

fn run(args: &[String]) -> Result<Vec<Comparison>, String> {
    let (fresh_path, baseline_path, threshold) = match args {
        [f, b] => (f, b, DEFAULT_THRESHOLD_PCT),
        [f, b, flag, pct] if flag == "--threshold" => (
            f,
            b,
            pct.parse::<f64>()
                .map_err(|_| format!("--threshold expects a number, got {pct:?}"))?,
        ),
        _ => {
            return Err("usage: bench_gate <fresh> <baseline.json> [--threshold <pct>]".into());
        }
    };
    if !threshold.is_finite() || threshold < 0.0 {
        return Err(format!(
            "--threshold must be a non-negative number, got {threshold}"
        ));
    }
    let fresh_content = std::fs::read_to_string(fresh_path)
        .map_err(|e| format!("cannot read fresh results {fresh_path}: {e}"))?;
    let baseline_content = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let fresh = parse_fresh(&fresh_content).map_err(|e| format!("{fresh_path}: {e}"))?;
    let baseline =
        parse_trajectory(&baseline_content).map_err(|e| format!("{baseline_path}: {e}"))?;

    let compared = compare(&fresh, &baseline, threshold);
    println!(
        "bench_gate: {} fresh / {} baseline benches, {} compared (threshold +{threshold}%)",
        fresh.len(),
        baseline.len(),
        compared.len()
    );
    for c in &compared {
        println!(
            "  {} {:<52} {:>14.1} ns -> {:>14.1} ns  ({:+.1}%)",
            if c.regressed {
                "REGRESSED"
            } else {
                "ok       "
            },
            c.bench,
            c.baseline_ns,
            c.fresh_ns,
            c.delta_pct
        );
    }
    for name in fresh.keys().filter(|n| !baseline.contains_key(*n)) {
        println!("  new       {name} (no baseline yet — not gated)");
    }
    for name in baseline.keys().filter(|n| !fresh.contains_key(*n)) {
        println!("  retired   {name} (in baseline, not in fresh sweep)");
    }
    Ok(compared)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(compared) => {
            let regressed = compared.iter().filter(|c| c.regressed).count();
            if regressed > 0 {
                eprintln!(
                    "bench_gate: {regressed} benchmark(s) regressed beyond threshold — failing"
                );
                ExitCode::FAILURE
            } else {
                println!("bench_gate: no regressions beyond threshold");
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(pairs: &[(&str, f64)]) -> BTreeMap<String, BenchRecord> {
        pairs
            .iter()
            .map(|&(name, median)| {
                (
                    name.to_string(),
                    BenchRecord {
                        lo_ns: median * 0.9,
                        median_ns: median,
                        hi_ns: median * 1.1,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn within_threshold_passes_and_beyond_fails() {
        let baseline = records(&[("g/a", 100.0), ("g/b", 100.0), ("g/c", 100.0)]);
        let fresh = records(&[("g/a", 124.0), ("g/b", 160.0), ("g/c", 60.0)]);
        let compared = compare(&fresh, &baseline, 25.0);
        let verdicts: Vec<(&str, bool)> = compared
            .iter()
            .map(|c| (c.bench.as_str(), c.regressed))
            .collect();
        assert_eq!(
            verdicts,
            vec![("g/a", false), ("g/b", true), ("g/c", false)]
        );
    }

    #[test]
    fn median_spike_with_fast_lo_is_noise_not_regression() {
        // Median far beyond threshold but the fastest sample near the
        // baseline: a scheduler spike, not an algorithmic regression.
        let baseline = records(&[("g/warm", 100.0)]);
        let fresh = BTreeMap::from([(
            "g/warm".to_string(),
            BenchRecord {
                lo_ns: 105.0,
                median_ns: 160.0,
                hi_ns: 400.0,
            },
        )]);
        assert!(!compare(&fresh, &baseline, 25.0)[0].regressed);
    }

    #[test]
    fn unmatched_names_are_not_gated() {
        let baseline = records(&[("old/bench", 10.0)]);
        let fresh = records(&[("new/bench", 99999.0)]);
        assert!(compare(&fresh, &baseline, 25.0).is_empty());
    }

    #[test]
    fn zero_baseline_is_skipped() {
        let baseline = records(&[("g/zero", 0.0)]);
        let fresh = records(&[("g/zero", 50.0)]);
        assert!(compare(&fresh, &baseline, 25.0).is_empty());
    }

    #[test]
    fn threshold_is_configurable() {
        // records() builds lo = 0.9·median, so +50% median is +35% lo:
        // beyond both bars at 25%, within both at 60%.
        let baseline = records(&[("g/a", 100.0)]);
        let fresh = records(&[("g/a", 150.0)]);
        assert!(compare(&fresh, &baseline, 25.0)[0].regressed);
        assert!(!compare(&fresh, &baseline, 60.0)[0].regressed);
    }

    #[test]
    fn fresh_accepts_both_jsonl_and_trajectory() {
        let jsonl = "{\"bench\":\"g/a\",\"lo_ns\":1.0,\"median_ns\":2.0,\"hi_ns\":3.0}";
        let from_jsonl = parse_fresh(jsonl).unwrap();
        let trajectory = dpe_bench::trajectory::render(&from_jsonl);
        let from_trajectory = parse_fresh(&trajectory).unwrap();
        assert_eq!(from_jsonl, from_trajectory);
        // A wrong schema tag must not silently fall back to JSONL parsing.
        let v9 = trajectory.replace("dpe-bench/v1", "dpe-bench/v9");
        assert!(parse_fresh(&v9).unwrap_err().contains("unknown"));
    }

    #[test]
    fn run_reads_files_end_to_end() {
        let dir = std::env::temp_dir();
        let fresh_path = dir.join(format!("dpe-gate-fresh-{}.jsonl", std::process::id()));
        let base_path = dir.join(format!("dpe-gate-base-{}.json", std::process::id()));
        std::fs::write(
            &fresh_path,
            "{\"bench\":\"g/a\",\"lo_ns\":190.0,\"median_ns\":200.0,\"hi_ns\":210.0}",
        )
        .unwrap();
        std::fs::write(
            &base_path,
            dpe_bench::trajectory::render(&records(&[("g/a", 170.0)])),
        )
        .unwrap();
        let args = vec![
            fresh_path.to_str().unwrap().to_string(),
            base_path.to_str().unwrap().to_string(),
        ];
        let compared = run(&args).unwrap();
        assert_eq!(compared.len(), 1);
        assert!(!compared[0].regressed, "17.6% growth is under 25%");
        let strict = run(&[
            args[0].clone(),
            args[1].clone(),
            "--threshold".into(),
            "2".into(),
        ])
        .unwrap();
        assert!(strict[0].regressed);
        std::fs::remove_file(&fresh_path).unwrap();
        std::fs::remove_file(&base_path).unwrap();
    }
}
