//! **Experiment F1 — reproduce Fig. 1.**
//!
//! Measures, per PPE class, the three ciphertext-observable leakages the
//! taxonomy's rows encode — equality, order, cross-column linkage — by
//! running the concrete attacks of the threat model against the concrete
//! schemes, then derives `empirical level = 3 − leak count` and compares
//! with the figure. HOM's subclass placement under PROB is demonstrated
//! via its defining extra capability (homomorphic addition), which is a
//! structural property rather than a ciphertext-only leak.
//!
//! Run: `cargo run --release -p dpe-bench --bin fig1`

use dpe_attacks::{
    equality_advantage, frequency_attack, join_linkage, order_advantage, sorting_attack,
};
use dpe_core::{EncryptionClass, Taxonomy};
use dpe_crypto::kdf::SlotLabel;
use dpe_crypto::scheme::SymmetricScheme;
use dpe_crypto::{DetScheme, JoinGroup, MasterKey, ProbScheme};
use dpe_ope::{JoinOpeGroup, OpeDomain, OpeScheme};
use dpe_paillier::{KeyPair, TEST_PRIME_BITS};
use dpe_workload::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRIALS: usize = 300;
const COLUMN_LEN: usize = 2_000;
const DISTINCT: usize = 20;

struct Profile {
    class: EncryptionClass,
    eq_leak: bool,
    order_leak: bool,
    link_leak: bool,
    freq_recovery: f64,
    sort_recovery: f64,
    extra: &'static str,
}

impl Profile {
    fn empirical_level(&self) -> u8 {
        3 - (self.eq_leak as u8 + self.order_leak as u8 + self.link_leak as u8)
    }
}

fn main() {
    println!("=== F1: Fig. 1 taxonomy, as published ===\n");
    println!("{}", Taxonomy.render());

    let master = MasterKey::from_bytes([0x5A; 32]);
    let mut rng = StdRng::seed_from_u64(0xF16);

    // A Zipf-skewed plaintext column over 20 distinct values — the shape
    // query-log constants have, and what frequency analysis needs.
    let zipf = Zipf::new(DISTINCT, 1.07);
    let plain_values: Vec<i64> = (0..COLUMN_LEN)
        .map(|_| 1_000 + zipf.sample(&mut rng) as i64 * 37)
        .collect();
    let truth_strings: Vec<String> = plain_values.iter().map(|v| v.to_string()).collect();
    let mut aux: std::collections::BTreeMap<String, usize> = Default::default();
    for t in &truth_strings {
        *aux.entry(t.clone()).or_default() += 1;
    }
    let aux: Vec<(String, usize)> = aux.into_iter().collect();

    // Second column sharing half its values (for linkage).
    let column_b_plain: Vec<i64> = plain_values.iter().take(COLUMN_LEN / 2).copied().collect();

    let mut profiles = Vec::new();

    // ---- PROB ----
    let prob = ProbScheme::new(&SlotLabel::Constant("f1-prob").derive(&master));
    let eq_adv = equality_advantage(&prob, TRIALS, &mut rng);
    let cts: Vec<String> = plain_values
        .iter()
        .map(|v| prob.encrypt(&v.to_be_bytes(), &mut rng).to_hex())
        .collect();
    let freq = frequency_attack(&cts, &truth_strings, &aux).success_rate();
    profiles.push(Profile {
        class: EncryptionClass::Prob,
        eq_leak: eq_adv > 0.5,
        order_leak: false,
        link_leak: false,
        freq_recovery: freq,
        sort_recovery: 0.0,
        extra: "",
    });

    // ---- HOM (Paillier) ----
    let keypair = KeyPair::generate(TEST_PRIME_BITS, &mut rng);
    let c1 = keypair.public().encrypt_u64(777, &mut rng);
    let c2 = keypair.public().encrypt_u64(777, &mut rng);
    let hom_eq_leak = c1 == c2;
    // The defining capability: Enc(a)·Enc(b) decrypts to a+b.
    let sum = keypair.public().add(
        &keypair.public().encrypt_u64(30, &mut rng),
        &keypair.public().encrypt_u64(12, &mut rng),
    );
    let hom_works = keypair.private().decrypt_u64(&sum).unwrap() == 42;
    profiles.push(Profile {
        class: EncryptionClass::Hom,
        eq_leak: hom_eq_leak,
        order_leak: false,
        link_leak: false,
        freq_recovery: 0.0,
        sort_recovery: 0.0,
        extra: if hom_works {
            "capability: ciphertext addition (⊂ PROB)"
        } else {
            "BROKEN"
        },
    });

    // ---- DET ----
    let det = DetScheme::new(&SlotLabel::Constant("f1-det").derive(&master));
    let eq_adv = equality_advantage(&det, TRIALS, &mut rng);
    let cts: Vec<String> = plain_values
        .iter()
        .map(|v| det.encrypt(&v.to_be_bytes(), &mut rng).to_hex())
        .collect();
    let freq = frequency_attack(&cts, &truth_strings, &aux).success_rate();
    profiles.push(Profile {
        class: EncryptionClass::Det,
        eq_leak: eq_adv > 0.5,
        order_leak: false,
        link_leak: false,
        freq_recovery: freq,
        sort_recovery: 0.0,
        extra: "",
    });

    // ---- OPE ----
    let ope = OpeScheme::new(
        &SlotLabel::Constant("f1-ope").derive(&master),
        OpeDomain::new(0, 1 << 24),
    );
    let order_adv = order_advantage(|v| ope.encrypt(v).unwrap(), TRIALS, &mut rng);
    let ope_cts: Vec<u128> = plain_values
        .iter()
        .map(|&v| ope.encrypt(v as u64).unwrap())
        .collect();
    let sort = sorting_attack(&ope_cts, &plain_values, &plain_values).success_rate();
    profiles.push(Profile {
        class: EncryptionClass::Ope,
        eq_leak: true, // OPE ⊂ DET: determinism is inherited
        order_leak: order_adv > 0.5,
        link_leak: false,
        freq_recovery: 0.0,
        sort_recovery: sort,
        extra: "",
    });

    // ---- JOIN ----
    let group = JoinGroup::new(&master, "f1-join");
    let col_a: Vec<String> = plain_values
        .iter()
        .map(|v| group.scheme().encrypt(&v.to_be_bytes(), &mut rng).to_hex())
        .collect();
    let col_b: Vec<String> = column_b_plain
        .iter()
        .map(|v| group.scheme().encrypt(&v.to_be_bytes(), &mut rng).to_hex())
        .collect();
    let link = join_linkage(&col_a, &col_b, &plain_values, &column_b_plain).success_rate();
    profiles.push(Profile {
        class: EncryptionClass::Join,
        eq_leak: true,
        order_leak: false,
        link_leak: link > 0.5,
        freq_recovery: frequency_attack(&col_a, &truth_strings, &aux).success_rate(),
        sort_recovery: 0.0,
        extra: "",
    });

    // ---- JOIN-OPE ----
    let jope = JoinOpeGroup::new(&master, "f1-jope", OpeDomain::new(0, 1 << 24));
    let ja: Vec<u128> = plain_values
        .iter()
        .map(|&v| jope.scheme().encrypt(v as u64).unwrap())
        .collect();
    let jb: Vec<u128> = column_b_plain
        .iter()
        .map(|&v| jope.scheme().encrypt(v as u64).unwrap())
        .collect();
    let ja_str: Vec<String> = ja.iter().map(|c| c.to_string()).collect();
    let jb_str: Vec<String> = jb.iter().map(|c| c.to_string()).collect();
    let link = join_linkage(&ja_str, &jb_str, &plain_values, &column_b_plain).success_rate();
    let order_adv = order_advantage(|v| jope.scheme().encrypt(v).unwrap(), TRIALS, &mut rng);
    profiles.push(Profile {
        class: EncryptionClass::JoinOpe,
        eq_leak: true,
        order_leak: order_adv > 0.5,
        link_leak: link > 0.5,
        freq_recovery: 0.0,
        sort_recovery: sorting_attack(&ja, &plain_values, &plain_values).success_rate(),
        extra: "",
    });

    println!("=== F1: measured leakage profile per class ===\n");
    println!(
        "{:<9} {:>8} {:>8} {:>8} {:>10} {:>10}   {:>9} {:>9}   notes",
        "class", "eq-leak", "ord-leak", "link", "freq-atk", "sort-atk", "level", "Fig.1"
    );
    let mut all_match = true;
    for p in &profiles {
        let expected = p.class.security_level();
        let empirical = p.empirical_level();
        // HOM shares PROB's ciphertext-only profile; its Fig. 1 row is one
        // lower because of the extra algebraic capability (see notes).
        let matches = empirical == expected
            || (p.class == EncryptionClass::Hom && empirical == 3 && expected == 2);
        all_match &= matches;
        println!(
            "{:<9} {:>8} {:>8} {:>8} {:>9.1}% {:>9.1}%   {:>9} {:>9}   {}",
            p.class.name(),
            p.eq_leak,
            p.order_leak,
            p.link_leak,
            p.freq_recovery * 100.0,
            p.sort_recovery * 100.0,
            empirical,
            expected,
            p.extra,
        );
    }

    println!("\n=== F1: derived ordering vs the figure ===\n");
    // The partial order of the figure: walking any subclass edge never
    // increases the empirical level.
    for (sub, sup) in Taxonomy.subclass_edges() {
        let level = |class| {
            profiles
                .iter()
                .find(|p| p.class == class)
                .map(Profile::empirical_level)
                .unwrap()
        };
        let ok = level(sub) <= level(sup);
        println!(
            "  {sub} ≤ {sup} (empirical {} ≤ {}): {}",
            level(sub),
            level(sup),
            if ok { "holds" } else { "VIOLATED" }
        );
        all_match &= ok;
    }

    if all_match {
        println!("\nF1 complete: measured leakage reproduces the Fig. 1 ordering.");
    } else {
        println!("\nF1 FAILED: leakage profile contradicts Fig. 1.");
        std::process::exit(1);
    }
}
