//! **Experiment S1 — the §IV-C claim: "a higher security level than one …
//! that uses CryptDB as it is".**
//!
//! For attributes that occur *only* inside arithmetic aggregates, the
//! access-area scheme keeps them at PROB, while CryptDB-as-is stores
//! ORD (OPE) and — after equality workloads — DET onions. This experiment
//! builds both configurations over the same database, hands the stored
//! onion columns to the passive attacker of the threat model, and measures
//! recovery:
//!
//! * CryptDB-as-is: sorting attack on the ORD onion, frequency attack on
//!   the DET-adjusted EQ onion;
//! * PROB-only (the paper's scheme): the same attacks against the RND
//!   cells.
//!
//! Run: `cargo run --release -p dpe-bench --bin security_vs_cryptdb`

use dpe_attacks::{frequency_attack, sorting_attack};
use dpe_bench::*;
use dpe_core::scheme::aggregate_only_attributes;
use dpe_cryptdb::column::{ColumnPolicy, CryptDbConfig};
use dpe_cryptdb::onion::Onion;
use dpe_cryptdb::CryptDbProxy;
use dpe_minidb::Value;
use dpe_sql::parse_query;
use dpe_workload::sky_catalog;

/// The aggregate-only workload: `z` appears exclusively inside SUM/AVG.
fn aggregate_only_log() -> Vec<dpe_sql::Query> {
    [
        "SELECT AVG(z) FROM specobj WHERE specclass = 'QSO'",
        "SELECT SUM(z) FROM specobj WHERE bestobjid < 500000",
        "SELECT AVG(z), SUM(z) FROM specobj",
    ]
    .iter()
    .map(|s| parse_query(s).unwrap())
    .collect()
}

fn column_values(proxy: &CryptDbProxy, table: &str, column: &str) -> Vec<Value> {
    let enc_table = proxy.schema().enc_table_name(table).unwrap();
    let t = proxy.encrypted_database().table(enc_table).unwrap();
    let idx = t.schema().column_index(column).unwrap();
    t.rows().iter().map(|r| r[idx].clone()).collect()
}

/// Rebuilds the database with a Zipf-skewed `specobj.z` column. Frequency
/// analysis is only meaningful against skewed value distributions (real
/// redshift surveys cluster around popular shells); the generator's
/// near-unique draws would make *every* configuration trivially "secure"
/// against it and the comparison vacuous.
fn skew_z_column(db: &dpe_minidb::Database) -> dpe_minidb::Database {
    // Zipf-ish support: value i covers proportionally 1/(i+1) of the rows.
    const SHELLS: [i64; 8] = [1480, 1520, 1555, 1600, 1640, 1700, 1750, 1810];
    let cumulative: Vec<f64> = {
        let weights: Vec<f64> = (0..SHELLS.len()).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let total: f64 = weights.iter().sum();
        weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w / total;
                Some(*acc)
            })
            .collect()
    };
    let mut out = dpe_minidb::Database::new();
    let mut names: Vec<&String> = db.tables().map(|(n, _)| n).collect();
    names.sort();
    let mut x = 0x9e3779b97f4a7c15u64;
    for name in names {
        let t = db.table(name).unwrap();
        out.create_table(t.schema().clone()).expect("fresh db");
        let z_idx = if name == "specobj" {
            t.schema().column_index("z")
        } else {
            None
        };
        for row in t.rows() {
            let mut row = row.clone();
            if let Some(zi) = z_idx {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (x >> 11) as f64 / (1u64 << 53) as f64;
                let shell = cumulative
                    .iter()
                    .position(|&c| u <= c)
                    .unwrap_or(SHELLS.len() - 1);
                row[zi] = Value::Int(SHELLS[shell]);
            }
            out.insert(name, row).expect("copy row");
        }
    }
    out
}

fn main() {
    println!("=== S1: access-area scheme vs CryptDB-as-is on aggregate-only attributes ===\n");

    let log = aggregate_only_log();
    let agg_only = aggregate_only_attributes(&log);
    println!(
        "  workload: {} queries; aggregate-only attributes: {:?}\n",
        log.len(),
        agg_only
    );
    assert!(
        agg_only.contains("z"),
        "z must be aggregate-only in this workload"
    );

    let plain_db = skew_z_column(&experiment_database(300, 0x51));
    // Ground truth for the attacker's evaluation oracle.
    let z_truth: Vec<i64> = plain_db
        .table("specobj")
        .unwrap()
        .rows()
        .iter()
        .map(|r| match r[2] {
            Value::Int(v) => v,
            _ => unreachable!("z is non-null in the workload"),
        })
        .collect();
    let z_truth_strings: Vec<String> = z_truth.iter().map(|v| v.to_string()).collect();
    let mut aux: std::collections::BTreeMap<String, usize> = Default::default();
    for t in &z_truth_strings {
        *aux.entry(t.clone()).or_default() += 1;
    }
    let aux: Vec<(String, usize)> = aux.into_iter().collect();

    // --- Configuration A: CryptDB as it is (full onions on z). ---
    let full_cfg = experiment_cryptdb_config();
    let mut full = CryptDbProxy::new(
        &plain_db,
        &sky_catalog(),
        &experiment_domains(),
        &full_cfg,
        &experiment_master(),
    )
    .expect("full proxy");
    // An equality workload elsewhere forces DET exposure of z — simulate
    // the worst case by adjusting (CryptDB would after `WHERE z = …`).
    let eq_query = parse_query("SELECT specid FROM specobj WHERE z = 1").unwrap();
    full.execute(&eq_query).expect("adjusting execution");

    let z_col = full.schema().column("z").unwrap();
    let ord_cells = column_values(&full, "specobj", &z_col.onion_column(Onion::Ord));
    let ord_cts: Vec<u128> = ord_cells
        .iter()
        .map(|v| match v {
            Value::Int(ct) => *ct as u128,
            _ => unreachable!(),
        })
        .collect();
    let sort_full = sorting_attack(&ord_cts, &z_truth, &z_truth).success_rate();

    let eq_cells = column_values(&full, "specobj", &z_col.onion_column(Onion::Eq));
    let eq_cts: Vec<String> = eq_cells
        .iter()
        .map(|v| match v {
            Value::Str(s) => s.clone(),
            _ => unreachable!(),
        })
        .collect();
    let freq_full = frequency_attack(&eq_cts, &z_truth_strings, &aux).success_rate();

    // --- Configuration B: the paper's scheme (z frozen at PROB). ---
    let prob_cfg = CryptDbConfig::default()
        .with_join_group("obj", &["objid", "bestobjid"])
        .with_policy("z", ColumnPolicy::ProbOnly);
    let prob = CryptDbProxy::new(
        &plain_db,
        &sky_catalog(),
        &experiment_domains(),
        &prob_cfg,
        &experiment_master(),
    )
    .expect("prob proxy");

    let z_col_b = prob.schema().column("z").unwrap();
    assert!(!z_col_b.onions.ord && !z_col_b.onions.hom && !z_col_b.onions.eq_adjustable);
    let rnd_cells = column_values(&prob, "specobj", &z_col_b.onion_column(Onion::Eq));
    let rnd_cts: Vec<String> = rnd_cells
        .iter()
        .map(|v| match v {
            Value::Str(s) => s.clone(),
            _ => unreachable!(),
        })
        .collect();
    let freq_prob = frequency_attack(&rnd_cts, &z_truth_strings, &aux).success_rate();
    // No ORD onion exists: the sorting attack has no ciphertexts to sort.
    let sort_prob = 0.0;

    println!(
        "  attack success on attribute z ({} values):\n",
        z_truth.len()
    );
    println!(
        "  {:<34} {:>16} {:>16}",
        "configuration", "sorting attack", "frequency attack"
    );
    println!(
        "  {:<34} {:>15.1}% {:>15.1}%",
        "CryptDB as-is (ORD + DET exposed)",
        sort_full * 100.0,
        freq_full * 100.0
    );
    println!(
        "  {:<34} {:>15.1}% {:>15.1}%",
        "paper's scheme (PROB only)",
        sort_prob * 100.0,
        freq_prob * 100.0
    );

    // The claim, quantified: the paper's configuration must reduce both
    // attack surfaces to (near-)nothing while CryptDB-as-is bleeds.
    assert!(
        sort_full > 0.9,
        "sorting attack should succeed against exposed OPE"
    );
    assert!(freq_prob < 0.05, "RND cells must defeat frequency analysis");
    assert!(sort_prob == 0.0, "no ORD onion → no sorting attack surface");
    assert!(
        freq_full > freq_prob,
        "DET exposure must leak more than RND ({freq_full} vs {freq_prob})"
    );

    println!("\nS1 complete: the access-area scheme strictly reduces the attack surface");
    println!("on aggregate-only attributes versus CryptDB-as-is (§IV-C claim confirmed).");
}
