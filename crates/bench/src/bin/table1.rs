//! **Experiment T1 — reproduce Table I.**
//!
//! 1. Derive every cell of Table I from the Definition-6 selection engine
//!    and diff against the published table.
//! 2. For each of the four measures, instantiate the derived scheme,
//!    encrypt a synthetic SkyServer-like log, and exhaustively verify
//!    Definition 1 (`d(Enc x, Enc y) = d(x, y)` for all pairs).
//! 3. Negative controls: deliberately wrong class choices must be caught
//!    by the verifier — proving the harness can fail.
//!
//! Run: `cargo run --release -p dpe-bench --bin table1`

use dpe_bench::*;
use dpe_core::dpe::verify_dpe;
use dpe_core::scheme::{PerAttributeTokenDpe, QueryEncryptor, StructuralDpe};
use dpe_core::table1;
use dpe_distance::{AccessAreaDistance, ResultDistance, StructureDistance, TokenDistance};
use dpe_sql::parse_query;

fn main() {
    println!("=== T1: Table I — derived by the Definition-6 engine ===\n");
    println!("{}", table1::render_table());

    let mismatches = table1::check_against_paper();
    if mismatches.is_empty() {
        println!("cross-check vs published Table I: EXACT MATCH (all 4 rows, all 7 columns)\n");
    } else {
        println!("cross-check vs published Table I: MISMATCHES {mismatches:#?}\n");
        std::process::exit(1);
    }

    println!("=== T1: empirical DPE verification per row (Definition 1) ===\n");
    let log = experiment_log(60, 0xBEEF);
    let fixtures = log_only_fixtures(&log).expect("schemes build");

    // Row 1: token distance under (DET, DET, DET).
    let report = verify_dpe(&log, &fixtures.token.1, &TokenDistance, &TokenDistance)
        .expect("token verification");
    println!(
        "  token     (DET/DET/DET)              : {}",
        report.verdict()
    );
    assert!(report.preserved);

    // Row 2: structure distance under (DET, DET, PROB).
    let report = verify_dpe(
        &log,
        &fixtures.structural.1,
        &StructureDistance,
        &StructureDistance,
    )
    .expect("structural verification");
    println!(
        "  structure (DET/DET/PROB)             : {}",
        report.verdict()
    );
    assert!(report.preserved);

    // Row 3: result distance via CryptDB (log + DB content shared).
    let db = experiment_database(60, 0xDB);
    let rlog = result_safe_log(60, 0xBEEF);
    let (dpe, enc_rlog) = result_fixture(&db, &rlog).expect("result scheme");
    let d_plain = ResultDistance::new(&db);
    let d_enc = ResultDistance::new(dpe.encrypted_database());
    let report = verify_dpe(&rlog, &enc_rlog, &d_plain, &d_enc).expect("result verification");
    println!(
        "  result    (via CryptDB)              : {}",
        report.verdict()
    );
    assert!(report.preserved);

    // Row 4: access-area distance via CryptDB classes, except HOM.
    let mut access = fixtures.access_area.0;
    let enc_alog = fixtures.access_area.1;
    let d_plain = AccessAreaDistance::new(experiment_domains());
    let d_enc = AccessAreaDistance::new(access.encrypted_domains().expect("encrypted domains"));
    let report = verify_dpe(&log, &enc_alog, &d_plain, &d_enc).expect("access verification");
    println!(
        "  access    (via CryptDB, except HOM)  : {}",
        report.verdict()
    );
    assert!(report.preserved);

    println!("\n=== T1: negative controls (wrong classes must fail) ===\n");

    // Control 1: PROB constants under *token* distance — structure row's
    // scheme applied to the wrong measure. PROB randomizes equal constants,
    // so token sets drift.
    let mut wrong = StructuralDpe::new(&experiment_master(), 99);
    let wrong_log = wrong
        .encrypt_log(&log)
        .expect("encrypts fine, preserves nothing");
    let report = verify_dpe(&log, &wrong_log, &TokenDistance, &TokenDistance).unwrap();
    println!(
        "  PROB constants for token distance    : {}",
        report.verdict()
    );
    assert!(
        !report.preserved,
        "PROB constants must break token distance"
    );

    // Control 2: per-attribute constant keys under token distance — the
    // reproduction finding from dpe-core: the same literal under two
    // attributes splits into two ciphertext tokens.
    let cross_log: Vec<_> = [
        "SELECT ra FROM photoobj WHERE ra = 5",
        "SELECT dec FROM photoobj WHERE dec = 5",
        "SELECT ra FROM photoobj WHERE ra = 5 AND dec = 5",
    ]
    .iter()
    .map(|s| parse_query(s).unwrap())
    .collect();
    let mut per_attr = PerAttributeTokenDpe::new(&experiment_master());
    let per_attr_log = per_attr.encrypt_log(&cross_log).unwrap();
    let report = verify_dpe(&cross_log, &per_attr_log, &TokenDistance, &TokenDistance).unwrap();
    println!(
        "  per-attribute DET keys, token dist.  : {}",
        report.verdict()
    );
    assert!(
        !report.preserved,
        "per-attribute constant keys must break token distance on cross-attribute literals"
    );

    // Control 3: identity "encryption" trivially preserves (sanity floor).
    let report = verify_dpe(&log, &log, &TokenDistance, &TokenDistance).unwrap();
    assert!(report.preserved);
    println!(
        "  identity function (sanity)           : {}",
        report.verdict()
    );

    println!("\nT1 complete: Table I reproduced and empirically verified.");
}
