//! # dpe-bench — experiment harnesses and benchmarks
//!
//! The paper is a 4-page short paper whose "evaluation" consists of
//! **Table I** and **Fig. 1** plus three analytic claims; every binary here
//! regenerates one of them (see DESIGN.md §4 for the experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table I: derived classes + exhaustive DPE verification per measure, with negative controls |
//! | `fig1` | Fig. 1: empirical leakage profile per PPE class and the derived security ordering |
//! | `mining_equivalence` | §III claim: mining results identical on plaintext and ciphertext |
//! | `security_vs_cryptdb` | §IV-C claim: the access-area scheme beats CryptDB-as-is on aggregate-only attributes |
//!
//! The Criterion benches (`cargo bench -p dpe-bench`) measure the
//! performance of every layer (encryption classes, OPE scaling, Paillier,
//! distances plaintext-vs-encrypted, end-to-end log encryption, mining).
//!
//! This library module holds the fixtures shared by binaries and benches so
//! each experiment is a short, readable program, plus the [`trajectory`]
//! module implementing the `dpe-bench/v1` perf-trajectory format that the
//! `bench_json` consolidator and `bench_gate` regression gate share.

#![forbid(unsafe_code)]

pub mod leakage;
pub mod trajectory;

use dpe_core::scheme::{AccessAreaDpe, QueryEncryptor, ResultDpe, StructuralDpe, TokenDpe};
use dpe_core::CoreError;
use dpe_cryptdb::column::CryptDbConfig;
use dpe_crypto::MasterKey;
use dpe_distance::DomainCatalog;
use dpe_minidb::Database;
use dpe_sql::Query;
use dpe_workload::{generate_database, sky_catalog, sky_domains, LogConfig, LogGenerator};

/// The master key every experiment derives its schemes from (fixed so runs
/// are reproducible; rotating it changes ciphertexts but no verdicts).
pub fn experiment_master() -> MasterKey {
    MasterKey::from_bytes([0xA5; 32])
}

/// The default experiment log (all templates).
pub fn experiment_log(queries: usize, seed: u64) -> Vec<Query> {
    LogGenerator::generate(&LogConfig {
        queries,
        seed,
        ..Default::default()
    })
}

/// A result-safe experiment log (no arithmetic aggregates — see
/// `LogConfig::result_safe`).
pub fn result_safe_log(queries: usize, seed: u64) -> Vec<Query> {
    LogGenerator::generate(&LogConfig::result_safe(queries, seed))
}

/// The experiment database.
pub fn experiment_database(rows: usize, seed: u64) -> Database {
    generate_database(rows, seed)
}

/// The domain catalog shared by all experiments.
pub fn experiment_domains() -> DomainCatalog {
    sky_domains()
}

/// The CryptDB configuration used by the result-distance experiments.
pub fn experiment_cryptdb_config() -> CryptDbConfig {
    CryptDbConfig::default().with_join_group("obj", &["objid", "bestobjid"])
}

/// Builds the four schemes and encrypts `log` with each, returning
/// `(token, structural, access_area, result)` encrypted logs plus the live
/// schemes for further use.
pub struct SchemeFixtures {
    /// Token scheme + its encryption of the log.
    pub token: (TokenDpe, Vec<Query>),
    /// Structural scheme + encrypted log.
    pub structural: (StructuralDpe, Vec<Query>),
    /// Access-area scheme + encrypted log.
    pub access_area: (AccessAreaDpe, Vec<Query>),
}

/// Encrypts `log` under the three log-only schemes (token / structural /
/// access-area). The result scheme needs a database; build it separately
/// with [`result_fixture`].
pub fn log_only_fixtures(log: &[Query]) -> Result<SchemeFixtures, CoreError> {
    let master = experiment_master();
    let mut token = TokenDpe::new(&master);
    let token_log = token.encrypt_log(log)?;
    let mut structural = StructuralDpe::new(&master, 7);
    let structural_log = structural.encrypt_log(log)?;
    let mut access = AccessAreaDpe::new(&master, &experiment_domains(), log, 7);
    let access_log = access.encrypt_log(log)?;
    Ok(SchemeFixtures {
        token: (token, token_log),
        structural: (structural, structural_log),
        access_area: (access, access_log),
    })
}

/// Builds the result-distance scheme over a fresh database and encrypts the
/// (result-safe) log.
pub fn result_fixture(
    plain_db: &Database,
    log: &[Query],
) -> Result<(ResultDpe, Vec<Query>), CoreError> {
    let mut dpe = ResultDpe::new(
        plain_db,
        &sky_catalog(),
        &experiment_domains(),
        &experiment_cryptdb_config(),
        &experiment_master(),
    )?;
    dpe.prepare_for_log(log)?;
    let enc_log = dpe.encrypt_log(log)?;
    Ok((dpe, enc_log))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let log = experiment_log(12, 1);
        let fixtures = log_only_fixtures(&log).unwrap();
        assert_eq!(fixtures.token.1.len(), 12);
        assert_eq!(fixtures.structural.1.len(), 12);
        assert_eq!(fixtures.access_area.1.len(), 12);
    }

    #[test]
    fn result_fixture_builds() {
        let db = experiment_database(20, 2);
        let log = result_safe_log(10, 3);
        let (dpe, enc) = result_fixture(&db, &log).unwrap();
        assert_eq!(enc.len(), 10);
        assert!(dpe.encrypted_database().table_count() > 0);
    }
}
