//! Plaintext domain description for the OPE scheme.

use std::fmt;

/// An inclusive `u64` plaintext interval `[lo, hi]`.
///
/// The ciphertext range is the domain size expanded by
/// [`OpeDomain::EXPANSION_BITS`] bits, giving every plaintext a ~4-billion
/// slot window to hide in while keeping ciphertexts inside `u128`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpeDomain {
    lo: u64,
    hi: u64,
}

impl OpeDomain {
    /// Ciphertext range = domain size × 2^EXPANSION_BITS.
    pub const EXPANSION_BITS: u32 = 32;

    /// Creates the domain `[lo, hi]`. Panics when `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "empty OPE domain [{lo}, {hi}]");
        OpeDomain { lo, hi }
    }

    /// The full 64-bit domain.
    pub fn full() -> Self {
        OpeDomain {
            lo: 0,
            hi: u64::MAX,
        }
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Upper bound (inclusive).
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// Number of plaintexts in the domain.
    pub fn size(&self) -> u128 {
        self.hi as u128 - self.lo as u128 + 1
    }

    /// Number of ciphertexts in the range.
    pub fn range_size(&self) -> u128 {
        self.size() << Self::EXPANSION_BITS
    }

    /// `true` iff `v` lies in the domain.
    pub fn contains(&self, v: u64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

impl fmt::Display for OpeDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let d = OpeDomain::new(10, 19);
        assert_eq!(d.size(), 10);
        assert_eq!(d.range_size(), 10u128 << 32);
        assert!(d.contains(10) && d.contains(19));
        assert!(!d.contains(9) && !d.contains(20));
    }

    #[test]
    fn full_domain_size_is_2_pow_64() {
        assert_eq!(OpeDomain::full().size(), 1u128 << 64);
        assert_eq!(OpeDomain::full().range_size(), 1u128 << 96);
    }

    #[test]
    fn singleton_domain() {
        let d = OpeDomain::new(5, 5);
        assert_eq!(d.size(), 1);
        assert!(d.contains(5));
    }

    #[test]
    #[should_panic(expected = "empty OPE domain")]
    fn inverted_bounds_panic() {
        OpeDomain::new(2, 1);
    }
}
