//! The keyed recursive range-bisection OPE scheme.

use crate::domain::OpeDomain;
use dpe_crypto::prf::prf_u128;
use dpe_crypto::scheme::EncryptionClass;
use dpe_crypto::SymmetricKey;
use std::fmt;

/// Errors from OPE encryption/decryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpeError {
    /// Plaintext lies outside the configured domain.
    OutOfDomain {
        /// Offending plaintext.
        value: u64,
        /// The configured domain.
        domain: OpeDomain,
    },
    /// Ciphertext is not in the image of the scheme (wrong key, wrong
    /// domain, or never produced by `encrypt`).
    InvalidCiphertext(u128),
}

impl fmt::Display for OpeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpeError::OutOfDomain { value, domain } => {
                write!(f, "plaintext {value} outside OPE domain {domain}")
            }
            OpeError::InvalidCiphertext(c) => write!(f, "ciphertext {c} not in scheme image"),
        }
    }
}

impl std::error::Error for OpeError {}

/// Deterministic order-preserving encryption `u64 → u128`.
///
/// See the crate docs for the construction. The scheme is `Clone` and cheap
/// to copy (a key and a domain); all state is recomputed per call from the
/// PRF, which keeps the scheme stateless like Boldyreva's.
#[derive(Clone)]
pub struct OpeScheme {
    key: SymmetricKey,
    domain: OpeDomain,
    class: EncryptionClass,
}

impl OpeScheme {
    /// Builds the scheme for `domain` under `key`.
    pub fn new(key: &SymmetricKey, domain: OpeDomain) -> Self {
        OpeScheme {
            key: key.clone(),
            domain,
            class: EncryptionClass::Ope,
        }
    }

    /// Internal: relabel as JOIN-OPE for shared-key groups.
    pub(crate) fn with_class(
        key: &SymmetricKey,
        domain: OpeDomain,
        class: EncryptionClass,
    ) -> Self {
        OpeScheme {
            key: key.clone(),
            domain,
            class,
        }
    }

    /// The configured plaintext domain.
    pub fn domain(&self) -> OpeDomain {
        self.domain
    }

    /// The class of this scheme ([`EncryptionClass::Ope`] or
    /// [`EncryptionClass::JoinOpe`]).
    pub fn class(&self) -> EncryptionClass {
        self.class
    }

    /// Encrypts `value`, preserving order: `a < b ⇒ Enc(a) < Enc(b)`.
    pub fn encrypt(&self, value: u64) -> Result<u128, OpeError> {
        if !self.domain.contains(value) {
            return Err(OpeError::OutOfDomain {
                value,
                domain: self.domain,
            });
        }
        let mut walk = Walk::new(self);
        loop {
            match walk.step_by_plaintext(value) {
                StepOutcome::Leaf(ct) => return Ok(ct),
                StepOutcome::Descended => {}
            }
        }
    }

    /// Decrypts `ciphertext` by retracing the range walk.
    pub fn decrypt(&self, ciphertext: u128) -> Result<u64, OpeError> {
        let mut walk = Walk::new(self);
        if ciphertext >= self.domain.range_size() {
            return Err(OpeError::InvalidCiphertext(ciphertext));
        }
        loop {
            match walk.step_by_ciphertext(ciphertext) {
                StepOutcome::Leaf(ct) if ct == ciphertext => return Ok(walk.d_lo),
                StepOutcome::Leaf(_) => return Err(OpeError::InvalidCiphertext(ciphertext)),
                StepOutcome::Descended => {}
            }
        }
    }
}

enum StepOutcome {
    /// Reached a singleton domain; payload is its assigned ciphertext.
    Leaf(u128),
    Descended,
}

/// One root-to-leaf descent through the virtual (domain, range) tree.
///
/// Invariant maintained at every node: `range size ≥ domain size`, so every
/// plaintext can still be assigned a distinct ciphertext below.
struct Walk<'a> {
    scheme: &'a OpeScheme,
    d_lo: u64,
    d_hi: u64,
    r_lo: u128,
    r_hi: u128,
}

impl<'a> Walk<'a> {
    fn new(scheme: &'a OpeScheme) -> Self {
        Walk {
            scheme,
            d_lo: scheme.domain.lo(),
            d_hi: scheme.domain.hi(),
            r_lo: 0,
            r_hi: scheme.domain.range_size() - 1,
        }
    }

    /// PRF draw in `[0, bound)`, deterministic in the node coordinates.
    /// The modulo bias is ≤ bound/2^128 — irrelevant for correctness, which
    /// only needs determinism and range membership.
    ///
    /// OPE's "modular core" is this one reduction. Power-of-two bounds —
    /// every leaf draw on a power-of-two range block, and the root of
    /// [`OpeDomain::full`] whose range size is `2^96` — take a mask
    /// instead of the u128 division. `x mod 2^k = x & (2^k − 1)` exactly,
    /// so the fast path is bit-identical to the `%` it replaces and every
    /// published ciphertext stays stable.
    fn draw(&self, label: u8, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let mut input = [0u8; 1 + 8 + 8 + 16 + 16];
        input[0] = label;
        input[1..9].copy_from_slice(&self.d_lo.to_be_bytes());
        input[9..17].copy_from_slice(&self.d_hi.to_be_bytes());
        input[17..33].copy_from_slice(&self.r_lo.to_be_bytes());
        input[33..49].copy_from_slice(&self.r_hi.to_be_bytes());
        let raw = prf_u128(&self.scheme.key, &input);
        if bound.is_power_of_two() {
            raw & (bound - 1)
        } else {
            raw % bound
        }
    }

    /// Splits the node: returns the size of the left range block. The left
    /// domain half has `nl` elements, the right `nr`; feasibility requires
    /// the left block size `L ∈ [nl, N − nr]`.
    fn split(&self) -> (u64, u128) {
        let d_mid = self.d_lo + (self.d_hi - self.d_lo) / 2;
        let nl = d_mid as u128 - self.d_lo as u128 + 1;
        let nr = self.d_hi as u128 - d_mid as u128;
        let n = self.r_hi - self.r_lo + 1;
        let slack = n - nl - nr; // ≥ 0 by the node invariant
        let left_size = nl + self.draw(b'N', slack + 1);
        (d_mid, left_size)
    }

    fn leaf_ciphertext(&self) -> u128 {
        let n = self.r_hi - self.r_lo + 1;
        self.r_lo + self.draw(b'L', n)
    }

    fn step_by_plaintext(&mut self, value: u64) -> StepOutcome {
        if self.d_lo == self.d_hi {
            return StepOutcome::Leaf(self.leaf_ciphertext());
        }
        let (d_mid, left_size) = self.split();
        if value <= d_mid {
            self.d_hi = d_mid;
            self.r_hi = self.r_lo + left_size - 1;
        } else {
            self.d_lo = d_mid + 1;
            self.r_lo += left_size;
        }
        StepOutcome::Descended
    }

    fn step_by_ciphertext(&mut self, ciphertext: u128) -> StepOutcome {
        if self.d_lo == self.d_hi {
            return StepOutcome::Leaf(self.leaf_ciphertext());
        }
        let (d_mid, left_size) = self.split();
        if ciphertext < self.r_lo + left_size {
            self.d_hi = d_mid;
            self.r_hi = self.r_lo + left_size - 1;
        } else {
            self.d_lo = d_mid + 1;
            self.r_lo += left_size;
        }
        StepOutcome::Descended
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u8) -> SymmetricKey {
        SymmetricKey::from_bytes([b; 32])
    }

    #[test]
    fn order_preserved_exhaustively_on_small_domain() {
        let s = OpeScheme::new(&key(1), OpeDomain::new(0, 300));
        let cts: Vec<u128> = (0..=300).map(|v| s.encrypt(v).unwrap()).collect();
        for w in cts.windows(2) {
            assert!(
                w[0] < w[1],
                "strict monotonicity violated: {} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn roundtrip_exhaustive_small_domain() {
        let s = OpeScheme::new(&key(2), OpeDomain::new(100, 400));
        for v in 100..=400 {
            assert_eq!(s.decrypt(s.encrypt(v).unwrap()).unwrap(), v);
        }
    }

    #[test]
    fn full_domain_extremes() {
        let s = OpeScheme::new(&key(3), OpeDomain::full());
        let lo = s.encrypt(0).unwrap();
        let mid = s.encrypt(u64::MAX / 2).unwrap();
        let hi = s.encrypt(u64::MAX).unwrap();
        assert!(lo < mid && mid < hi);
        assert_eq!(s.decrypt(lo).unwrap(), 0);
        assert_eq!(s.decrypt(hi).unwrap(), u64::MAX);
    }

    #[test]
    fn out_of_domain_rejected() {
        let s = OpeScheme::new(&key(4), OpeDomain::new(10, 20));
        assert!(matches!(
            s.encrypt(9),
            Err(OpeError::OutOfDomain { value: 9, .. })
        ));
        assert!(matches!(s.encrypt(21), Err(OpeError::OutOfDomain { .. })));
    }

    #[test]
    fn invalid_ciphertext_rejected() {
        let s = OpeScheme::new(&key(5), OpeDomain::new(0, 1000));
        let valid = s.encrypt(500).unwrap();
        // Neighbouring range points are almost surely not in the image.
        let invalid = if valid.is_multiple_of(2) {
            valid + 1
        } else {
            valid - 1
        };
        assert!(matches!(
            s.decrypt(invalid),
            Err(OpeError::InvalidCiphertext(_))
        ));
        // Beyond the range entirely:
        assert!(matches!(
            s.decrypt(s.domain().range_size()),
            Err(OpeError::InvalidCiphertext(_))
        ));
    }

    #[test]
    fn singleton_domain_works() {
        let s = OpeScheme::new(&key(6), OpeDomain::new(7, 7));
        let ct = s.encrypt(7).unwrap();
        assert_eq!(s.decrypt(ct).unwrap(), 7);
    }

    #[test]
    fn ciphertexts_spread_over_range() {
        // The gap structure should not be degenerate: consecutive plaintexts
        // should usually have non-consecutive ciphertexts.
        let s = OpeScheme::new(&key(7), OpeDomain::new(0, 1000));
        let mut adjacent = 0;
        for v in 0..1000u64 {
            if s.encrypt(v + 1).unwrap() - s.encrypt(v).unwrap() == 1 {
                adjacent += 1;
            }
        }
        assert!(
            adjacent < 10,
            "{adjacent} adjacent ciphertext pairs — range not spreading"
        );
    }

    #[test]
    fn equality_is_preserved_and_nothing_leaks_about_gaps() {
        let s = OpeScheme::new(&key(8), OpeDomain::new(0, 1 << 32));
        assert_eq!(s.encrypt(12345).unwrap(), s.encrypt(12345).unwrap());
    }

    #[test]
    fn draw_mask_fast_path_is_bit_identical() {
        // The power-of-two mask in `draw` must replay the exact `%`
        // reduction. Exercise both branches at every bound shape by
        // checking the raw PRF output against the draw.
        let s = OpeScheme::new(&key(9), OpeDomain::full());
        let walk = Walk::new(&s);
        let mut input = [0u8; 1 + 8 + 8 + 16 + 16];
        input[0] = b'L';
        input[1..9].copy_from_slice(&walk.d_lo.to_be_bytes());
        input[9..17].copy_from_slice(&walk.d_hi.to_be_bytes());
        input[17..33].copy_from_slice(&walk.r_lo.to_be_bytes());
        input[33..49].copy_from_slice(&walk.r_hi.to_be_bytes());
        let raw = prf_u128(&s.key, &input);
        for bound in [1u128, 2, 3, 7, 8, 1 << 96, (1 << 96) - 1, u128::MAX] {
            assert_eq!(walk.draw(b'L', bound), raw % bound, "bound {bound}");
        }
    }

    #[test]
    fn full_domain_root_draws_stay_stable() {
        // The full domain's root range size is 2^96 (the mask branch);
        // pin a few ciphertexts so any reduction change — fast path or
        // not — shows up as a broken roundtrip, not silent re-keying.
        let s = OpeScheme::new(&key(3), OpeDomain::full());
        for v in [0u64, 1, u64::MAX / 2, u64::MAX] {
            let ct = s.encrypt(v).unwrap();
            assert_eq!(s.decrypt(ct).unwrap(), v);
        }
        // Determinism across scheme clones.
        let s2 = OpeScheme::new(&key(3), OpeDomain::full());
        assert_eq!(s.encrypt(424_242).unwrap(), s2.encrypt(424_242).unwrap());
    }
}
