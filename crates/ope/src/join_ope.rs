//! **JOIN-OPE** — the usage mode of OPE sharing one key across columns, so
//! range predicates can span columns (CryptDB's OPE-JOIN). The bottom class
//! of Fig. 1: it leaks order *and* cross-column equality.

use crate::domain::OpeDomain;
use crate::ope::OpeScheme;
use dpe_crypto::kdf::SlotLabel;
use dpe_crypto::scheme::EncryptionClass;
use dpe_crypto::MasterKey;

/// A named group of columns sharing one OPE key and domain.
#[derive(Clone)]
pub struct JoinOpeGroup {
    name: String,
    scheme: OpeScheme,
}

impl JoinOpeGroup {
    /// Creates (or re-derives) the group `name` for `domain` under `master`.
    pub fn new(master: &MasterKey, name: &str, domain: OpeDomain) -> Self {
        let key = SlotLabel::JoinGroup(name).derive(master);
        JoinOpeGroup {
            name: name.to_string(),
            scheme: OpeScheme::with_class(&key, domain, EncryptionClass::JoinOpe),
        }
    }

    /// The group name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared OPE scheme (class reports [`EncryptionClass::JoinOpe`]).
    pub fn scheme(&self) -> &OpeScheme {
        &self.scheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn master() -> MasterKey {
        MasterKey::from_bytes([33; 32])
    }

    #[test]
    fn shared_key_shared_ciphertexts() {
        let d = OpeDomain::new(0, 1 << 20);
        let a = JoinOpeGroup::new(&master(), "mag", d);
        let b = JoinOpeGroup::new(&master(), "mag", d);
        assert_eq!(
            a.scheme().encrypt(777).unwrap(),
            b.scheme().encrypt(777).unwrap()
        );
    }

    #[test]
    fn distinct_groups_distinct_mappings() {
        let d = OpeDomain::new(0, 1 << 20);
        let a = JoinOpeGroup::new(&master(), "mag", d);
        let b = JoinOpeGroup::new(&master(), "flux", d);
        assert_ne!(
            a.scheme().encrypt(777).unwrap(),
            b.scheme().encrypt(777).unwrap()
        );
    }

    #[test]
    fn class_and_level() {
        let g = JoinOpeGroup::new(&master(), "mag", OpeDomain::new(0, 100));
        assert_eq!(g.scheme().class(), EncryptionClass::JoinOpe);
        assert_eq!(g.scheme().class().security_level(), 0);
        assert_eq!(g.name(), "mag");
    }

    #[test]
    fn still_order_preserving() {
        let g = JoinOpeGroup::new(&master(), "mag", OpeDomain::new(0, 10_000));
        let cts: Vec<u128> = (0..100)
            .map(|v| g.scheme().encrypt(v * 100).unwrap())
            .collect();
        assert!(cts.windows(2).all(|w| w[0] < w[1]));
    }
}
