//! # dpe-ope — order-preserving encryption (the OPE / JOIN-OPE classes)
//!
//! A deterministic, stateless order-preserving encryption scheme in the
//! spirit of Boldyreva et al. (CRYPTO'11 interface): a strictly monotone,
//! key-dependent injection from a `u64` plaintext domain into a `u128`
//! ciphertext range.
//!
//! ## Construction
//!
//! Encryption walks a virtual balanced binary search tree over the plaintext
//! domain. Each node owns a `(domain, range)` interval pair; a PRF keyed on
//! the secret and the interval picks the range pivot for the domain midpoint,
//! constrained so both halves keep `|range| ≥ |domain|` (feasibility), and
//! recursion descends into the half containing the plaintext. At a singleton
//! domain, the PRF picks the final ciphertext inside the remaining range.
//! `O(log |domain|)` PRF calls per encryption; decryption follows the same
//! deterministic walk, so no state or lookup table is needed.
//!
//! This replaces Boldyreva's hypergeometric sampler with a PRF-pivot rule —
//! a **documented substitution** (DESIGN.md §5): what Table I and the
//! access-area equivalence notion require of the OPE class is exactly
//! determinism + strict order preservation, which this construction provides
//! by induction on the recursion. Leakage is the same *kind* (order and
//! equality), which is what the Fig. 1 attack experiments measure.

#![forbid(unsafe_code)]

pub mod domain;
pub mod join_ope;
pub mod mope;
mod ope;

pub use domain::OpeDomain;
pub use join_ope::JoinOpeGroup;
pub use mope::MopeState;
pub use ope::{OpeError, OpeScheme};

/// Common interface over order-preserving instances — the stateless
/// [`OpeScheme`] and the stateful ideal-security [`MopeState`].
///
/// Both are members of the paper's OPE class (deterministic within one
/// state, strictly order-preserving), so either instantiates the OPE slots
/// of Table I. The trait lets the ablation benchmark and the access-area
/// machinery swap instances without caring which leakage profile backs
/// them. `encode` takes `&mut self` because mOPE may mutate its state; the
/// stateless scheme simply ignores the mutability.
pub trait OrderCodec {
    /// Maps `value` to its order-preserving code.
    fn encode(&mut self, value: u64) -> Result<u128, OpeError>;

    /// The Fig. 1 class of this instance (OPE or JOIN-OPE).
    fn codec_class(&self) -> dpe_crypto::scheme::EncryptionClass;
}

impl OrderCodec for OpeScheme {
    fn encode(&mut self, value: u64) -> Result<u128, OpeError> {
        self.encrypt(value)
    }

    fn codec_class(&self) -> dpe_crypto::scheme::EncryptionClass {
        self.class()
    }
}

impl OrderCodec for MopeState {
    fn encode(&mut self, value: u64) -> Result<u128, OpeError> {
        MopeState::encode(self, value)
    }

    fn codec_class(&self) -> dpe_crypto::scheme::EncryptionClass {
        self.class()
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dpe_crypto::SymmetricKey;
    use proptest::prelude::*;

    fn scheme() -> OpeScheme {
        OpeScheme::new(
            &SymmetricKey::from_bytes([21; 32]),
            OpeDomain::new(0, u32::MAX as u64),
        )
    }

    proptest! {
        #[test]
        fn strictly_monotone(a in 0u64..=u32::MAX as u64, b in 0u64..=u32::MAX as u64) {
            let s = scheme();
            let (ca, cb) = (s.encrypt(a).unwrap(), s.encrypt(b).unwrap());
            match a.cmp(&b) {
                std::cmp::Ordering::Less => prop_assert!(ca < cb),
                std::cmp::Ordering::Equal => prop_assert_eq!(ca, cb),
                std::cmp::Ordering::Greater => prop_assert!(ca > cb),
            }
        }

        #[test]
        fn decrypt_inverts(v in 0u64..=u32::MAX as u64) {
            let s = scheme();
            prop_assert_eq!(s.decrypt(s.encrypt(v).unwrap()).unwrap(), v);
        }

        #[test]
        fn deterministic(v in 0u64..=u32::MAX as u64) {
            prop_assert_eq!(scheme().encrypt(v).unwrap(), scheme().encrypt(v).unwrap());
        }

        #[test]
        fn key_separation(v in 0u64..=u32::MAX as u64) {
            let s1 = scheme();
            let s2 = OpeScheme::new(
                &SymmetricKey::from_bytes([22; 32]),
                OpeDomain::new(0, u32::MAX as u64),
            );
            // Different keys virtually never agree on the ciphertext of v.
            // (Not a hard guarantee; with a 2^96-element range collisions are
            // vanishingly unlikely, and a systematic failure means key reuse.)
            prop_assert_ne!(s1.encrypt(v).unwrap(), s2.encrypt(v).unwrap());
        }

        #[test]
        fn mope_preserves_order_of_arbitrary_insertions(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut m = MopeState::new();
            for &v in &values {
                m.encode(v).unwrap();
            }
            let encs: Vec<(u64, u128)> = m.encodings().collect();
            for w in encs.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
                prop_assert!(w[0].1 < w[1].1);
            }
            // And every value decodes back through the current table.
            for &v in &values {
                let e = m.lookup(v).unwrap();
                prop_assert_eq!(m.decode(e), Some(v));
            }
        }

        #[test]
        fn mope_rank_only_dependence(raw in proptest::collection::vec(0u64..u32::MAX as u64, 2..100)) {
            // Deduplicate while keeping first-occurrence order, then build a
            // magnitude-distorted twin with identical ranks: the encoding
            // streams must coincide (ideal security: order is all you learn).
            let mut seen = std::collections::BTreeSet::new();
            let firsts: Vec<u64> = raw.iter().copied().filter(|v| seen.insert(*v)).collect();
            let mut sorted: Vec<u64> = firsts.clone();
            sorted.sort_unstable();
            let rank_of = |v: u64| sorted.binary_search(&v).unwrap() as u64;
            let distorted: Vec<u64> = firsts.iter().map(|&v| rank_of(v) * rank_of(v) + 7).collect();

            let mut m1 = MopeState::new();
            let mut m2 = MopeState::new();
            let e1: Vec<u128> = firsts.iter().map(|&v| m1.encode(v).unwrap()).collect();
            let e2: Vec<u128> = distorted.iter().map(|&v| m2.encode(v).unwrap()).collect();
            prop_assert_eq!(e1, e2);
        }

        #[test]
        fn mope_survives_tiny_ranges(values in proptest::collection::vec(0u64..500, 1..120)) {
            // 10-bit range forces rebalances; order must still hold.
            let mut m = MopeState::with_range_bits(10);
            for &v in &values {
                m.encode(v).unwrap();
            }
            let encs: Vec<(u64, u128)> = m.encodings().collect();
            for w in encs.windows(2) {
                prop_assert!(w[0].1 < w[1].1);
            }
        }

        #[test]
        fn both_instances_agree_on_every_rank(values in proptest::collection::vec(0u64..u32::MAX as u64, 2..60)) {
            // Class-level equivalence: sorting by stateless-OPE ciphertext
            // and by current mOPE encoding must induce the same permutation
            // as sorting by plaintext — the property Table I relies on,
            // whichever instance fills the OPE slot.
            let stateless = scheme();
            let mut mope = MopeState::new();
            for &v in &values {
                mope.encode(v).unwrap();
            }
            let mut by_plain: Vec<u64> = values.clone();
            by_plain.sort_unstable();
            by_plain.dedup();

            let mut by_ope: Vec<u64> = by_plain.clone();
            by_ope.sort_by_key(|&v| stateless.encrypt(v).unwrap());
            prop_assert_eq!(&by_ope, &by_plain);

            let mut by_mope: Vec<u64> = by_plain.clone();
            by_mope.sort_by_key(|&v| mope.lookup(v).unwrap());
            prop_assert_eq!(&by_mope, &by_plain);
        }

        #[test]
        fn order_codec_trait_is_uniform(v in 0u64..=u32::MAX as u64) {
            // The trait objects route to the same primitives.
            let mut s: Box<dyn OrderCodec> = Box::new(scheme());
            let direct = scheme().encrypt(v).unwrap();
            prop_assert_eq!(s.encode(v).unwrap(), direct);
            prop_assert_eq!(s.codec_class(), dpe_crypto::scheme::EncryptionClass::Ope);

            let mut m: Box<dyn OrderCodec> = Box::new(MopeState::new());
            let e = m.encode(v).unwrap();
            prop_assert_eq!(m.encode(v).unwrap(), e);
        }
    }
}
