//! Mutable order-preserving encoding (mOPE) — the ideal-security point in
//! the OPE design space.
//!
//! Popa, Li & Zeldovich ("An Ideal-Security Protocol for Order-Preserving
//! Encodings", IEEE S&P 2013) observe that any *stateless* OPE must leak
//! more than order: the numeric gaps between ciphertexts are correlated
//! with the gaps between plaintexts. Their fix is to make the encoding
//! *stateful and mutable*: ciphertexts are positions in a search tree over
//! the values seen so far, and may be re-assigned ("mutated") when the tree
//! runs out of space. The encoding of a value then depends only on its
//! *rank* among the inserted values and on the insertion order — never on
//! its magnitude — so an adversary observing the encodings learns order and
//! equality and provably nothing else.
//!
//! This module implements the classic interval-halving construction with
//! amortized global rebalancing:
//!
//! * the encoding range is `(0, 2^range_bits)`;
//! * a new value strictly between neighbours with encodings `p < s` gets
//!   `p + (s − p)/2`;
//! * when a gap is exhausted (`s − p < 2`), **all** encodings are
//!   re-assigned equidistantly by rank (a *mutation event*), and the
//!   insertion is retried.
//!
//! With `range_bits = 64` and equidistant rebalancing, a mutation happens at
//! most every ~64 pathological insertions, and practically never for random
//! insertion orders; [`MopeState::mutation_count`] exposes the cost for the
//! ablation benchmark against the stateless [`OpeScheme`](crate::OpeScheme).
//!
//! In the paper's taxonomy (Fig. 1) mOPE still sits in the OPE class — it
//! deterministically preserves order and equality within one state — but its
//! residual leakage is strictly smaller, which the gap-correlation attack in
//! `dpe-attacks` quantifies. It is the natural upgrade path the paper's
//! security assessment (§IV-D) allows: swapping one OPE instance for another
//! never changes Table I, only the attack surface.

use crate::OpeError;
use dpe_crypto::scheme::EncryptionClass;
use std::collections::BTreeMap;

/// Default encoding width: 64 bits of range inside a `u128` carrier.
pub const DEFAULT_RANGE_BITS: u32 = 64;

/// Stateful mutable order-preserving encoding over `u64` plaintexts.
///
/// Unlike [`OpeScheme`](crate::OpeScheme) there is no key: the state *is*
/// the secret, held by the data owner (in mOPE deployments the server only
/// ever sees the encodings). Encoding the same value twice returns the same
/// encoding as long as no mutation event occurred in between; after a
/// mutation, previously issued encodings are superseded by the ones in
/// [`MopeState::encodings`], exactly as in CryptDB's mOPE proxy, which
/// re-writes affected ciphertexts in place.
///
/// # Example
///
/// ```
/// use dpe_ope::MopeState;
///
/// let mut m = MopeState::new();
/// let c10 = m.encode(10).unwrap();
/// let c20 = m.encode(20).unwrap();
/// let c15 = m.encode(15).unwrap();
/// assert!(c10 < c15 && c15 < c20);
/// ```
#[derive(Debug, Clone)]
pub struct MopeState {
    /// plaintext → current encoding.
    forward: BTreeMap<u64, u128>,
    /// current encoding → plaintext (kept in lock-step with `forward`).
    backward: BTreeMap<u128, u64>,
    /// Exclusive upper bound of the encoding range (`2^range_bits`).
    range_end: u128,
    /// Total number of re-assigned encodings across all mutation events.
    mutations: u64,
    /// Number of global rebalance events.
    rebalances: u64,
}

impl Default for MopeState {
    fn default() -> Self {
        Self::new()
    }
}

impl MopeState {
    /// Creates an empty state with the default 64-bit encoding range.
    pub fn new() -> Self {
        Self::with_range_bits(DEFAULT_RANGE_BITS)
    }

    /// Creates an empty state with a `2^range_bits` encoding range.
    ///
    /// # Panics
    ///
    /// Panics if `range_bits` is 0 or exceeds 127 (the encoding must fit a
    /// `u128` with room for the exclusive upper sentinel).
    pub fn with_range_bits(range_bits: u32) -> Self {
        assert!(
            (1..=127).contains(&range_bits),
            "range_bits must be in 1..=127, got {range_bits}"
        );
        MopeState {
            forward: BTreeMap::new(),
            backward: BTreeMap::new(),
            range_end: 1u128 << range_bits,
            mutations: 0,
            rebalances: 0,
        }
    }

    /// Number of distinct plaintexts currently encoded.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// `true` if no value has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Total number of encoding re-assignments performed by mutation events.
    pub fn mutation_count(&self) -> u64 {
        self.mutations
    }

    /// Number of global rebalance events so far.
    pub fn rebalance_count(&self) -> u64 {
        self.rebalances
    }

    /// Encodes `value`, inserting it into the state if new.
    ///
    /// Returns the current encoding. May trigger a mutation event that
    /// re-assigns the encodings of *other* values; callers holding older
    /// encodings must treat [`MopeState::encodings`] as authoritative.
    ///
    /// # Errors
    ///
    /// Returns [`OpeError::OutOfDomain`] when the state already holds as
    /// many distinct values as the encoding range can separate (only
    /// reachable with tiny `range_bits` — the equidistant rebalance needs
    /// `len + 1 < range_end`).
    pub fn encode(&mut self, value: u64) -> Result<u128, OpeError> {
        if let Some(&enc) = self.forward.get(&value) {
            return Ok(enc);
        }
        // The equidistant layout must keep encodings distinct and strictly
        // inside (0, range_end): positions (i+1)·range_end/(n+1) collide or
        // hit the sentinels once n+1 ≥ range_end.
        if self.forward.len() as u128 + 1 >= self.range_end {
            return Err(OpeError::OutOfDomain {
                value,
                domain: crate::OpeDomain::new(0, 0),
            });
        }
        loop {
            let pred = self
                .forward
                .range(..value)
                .next_back()
                .map_or(0u128, |(_, &e)| e);
            let succ = self
                .forward
                .range(value..)
                .next()
                .map_or(self.range_end, |(_, &e)| e);
            debug_assert!(pred < succ, "order invariant broken: {pred} !< {succ}");
            if succ - pred >= 2 {
                let enc = pred + (succ - pred) / 2;
                self.forward.insert(value, enc);
                self.backward.insert(enc, value);
                return Ok(enc);
            }
            self.rebalance();
        }
    }

    /// The current encoding of `value`, if it has been inserted.
    pub fn lookup(&self, value: u64) -> Option<u128> {
        self.forward.get(&value).copied()
    }

    /// Decodes a *current* encoding back to its plaintext.
    ///
    /// Encodings issued before the last mutation event are not recognised —
    /// that staleness is inherent to mOPE and is what deployments handle by
    /// rewriting stored ciphertexts on mutation.
    pub fn decode(&self, encoding: u128) -> Option<u64> {
        self.backward.get(&encoding).copied()
    }

    /// All `(plaintext, encoding)` pairs in plaintext order.
    pub fn encodings(&self) -> impl Iterator<Item = (u64, u128)> + '_ {
        self.forward.iter().map(|(&v, &e)| (v, e))
    }

    /// The class of this scheme in the Fig. 1 taxonomy: it is an OPE
    /// instance (deterministic, order-revealing), whatever its improved
    /// residual leakage.
    pub fn class(&self) -> EncryptionClass {
        EncryptionClass::Ope
    }

    /// Re-assigns every encoding equidistantly by rank. Amortizes the
    /// interval-halving exhaustion; counts every moved value as a mutation.
    fn rebalance(&mut self) {
        let n = self.forward.len() as u128;
        debug_assert!(n + 1 < self.range_end, "checked by encode()");
        let values: Vec<u64> = self.forward.keys().copied().collect();
        self.forward.clear();
        self.backward.clear();
        for (i, v) in values.iter().enumerate() {
            // (i+1) · range_end / (n+1), computed without overflow for
            // range_end ≤ 2^127: i+1 ≤ n+1 < 2^64 in practice, but use
            // the division-first form to stay exact enough and monotone.
            let enc = equidistant_position(i as u128, n, self.range_end);
            self.forward.insert(*v, enc);
            self.backward.insert(enc, *v);
        }
        self.mutations += n as u64;
        self.rebalances += 1;
    }
}

/// Position `i` of `n` values spread equidistantly over `(0, range_end)`:
/// `(i+1) · range_end / (n+1)`, strictly monotone in `i` whenever
/// `n + 1 < range_end`.
fn equidistant_position(i: u128, n: u128, range_end: u128) -> u128 {
    // Split the product to avoid u128 overflow for range_end near 2^127:
    // (i+1) * (range_end / (n+1)) + ((i+1) * (range_end % (n+1))) / (n+1).
    let q = range_end / (n + 1);
    let r = range_end % (n + 1);
    (i + 1) * q + ((i + 1) * r) / (n + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_state() {
        let m = MopeState::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.mutation_count(), 0);
        assert_eq!(m.lookup(5), None);
        assert_eq!(m.decode(5), None);
    }

    #[test]
    fn order_preserved_random_insertion() {
        let mut m = MopeState::new();
        // Insertion order deliberately scrambled.
        for v in [50u64, 10, 90, 30, 70, 20, 80, 40, 60, 0, 100] {
            m.encode(v).unwrap();
        }
        let encs: Vec<(u64, u128)> = m.encodings().collect();
        for w in encs.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1, "encoding order broken at {:?}", w);
        }
    }

    #[test]
    fn idempotent_within_state() {
        let mut m = MopeState::new();
        let a = m.encode(42).unwrap();
        let b = m.encode(42).unwrap();
        assert_eq!(a, b);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn decode_inverts_current_encodings() {
        let mut m = MopeState::new();
        for v in 0..200u64 {
            m.encode(v * 17).unwrap();
        }
        for (v, e) in m.encodings().collect::<Vec<_>>() {
            assert_eq!(m.decode(e), Some(v));
            assert_eq!(m.lookup(v), Some(e));
        }
    }

    #[test]
    fn ideal_security_encoding_depends_only_on_rank_order() {
        // Two plaintext sets with very different magnitudes but identical
        // rank insertion pattern must produce identical encoding sequences.
        let small = [5u64, 1, 9, 3, 7];
        let large = [5_000_000u64, 1_000, 9_999_999_999, 400_000, 800_000_000];
        let mut ms = MopeState::new();
        let mut ml = MopeState::new();
        let es: Vec<u128> = small.iter().map(|&v| ms.encode(v).unwrap()).collect();
        let el: Vec<u128> = large.iter().map(|&v| ml.encode(v).unwrap()).collect();
        assert_eq!(es, el, "encodings leaked plaintext magnitude");
    }

    #[test]
    fn sequential_ascending_insertion_triggers_rebalance_on_tiny_range() {
        // Ascending insertion halves the upper gap every time; a 8-bit range
        // exhausts after ~8 inserts and must rebalance, not fail.
        let mut m = MopeState::with_range_bits(8);
        for v in 0..100u64 {
            m.encode(v).unwrap();
        }
        assert_eq!(m.len(), 100);
        assert!(m.rebalance_count() > 0, "expected at least one rebalance");
        let encs: Vec<(u64, u128)> = m.encodings().collect();
        for w in encs.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn capacity_exhaustion_reported() {
        let mut m = MopeState::with_range_bits(3); // range_end = 8 → ≤ 6 values
        for v in 0..7u64 {
            let r = m.encode(v);
            if v <= 6 && (m.len() as u128) < 7 && r.is_err() {
                break;
            }
        }
        // The 7th distinct value cannot fit: 7+1 ≥ 8.
        assert!(m.encode(100).is_err());
    }

    #[test]
    fn no_rebalance_for_random_order_64bit() {
        // Random-ish insertion into a 64-bit range should essentially never
        // mutate for small n.
        let mut m = MopeState::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..2_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            m.encode(x >> 16).unwrap();
        }
        assert_eq!(
            m.rebalance_count(),
            0,
            "unexpected mutation under random order"
        );
    }

    #[test]
    fn worst_case_ascending_64bit_mutations_are_rare() {
        let mut m = MopeState::new();
        for v in 0..10_000u64 {
            m.encode(v).unwrap();
        }
        // 64-bit range halves ~63 times before first rebalance; after each
        // equidistant rebalance it takes log2(range/n) more inserts.
        assert!(
            m.rebalance_count() <= 200,
            "too many rebalances: {}",
            m.rebalance_count()
        );
    }

    #[test]
    fn equidistant_position_strictly_monotone() {
        let range_end = 1u128 << 127;
        let n = 1_000u128;
        let mut prev = 0u128;
        for i in 0..n {
            let p = equidistant_position(i, n, range_end);
            assert!(p > prev);
            assert!(p < range_end);
            prev = p;
        }
    }

    #[test]
    fn class_is_ope() {
        assert_eq!(MopeState::new().class(), EncryptionClass::Ope);
    }
}
