#[test]
fn det_encrypt_one_label() {
    use dpe_crypto::scheme::SymmetricScheme;
    use dpe_crypto::{DetScheme, MasterKey, SymmetricKey};
    eprintln!("t0");
    let master = MasterKey::from_bytes([3; 32]);
    eprintln!("t1 master");
    let key: SymmetricKey = master.derive("graph-vertex");
    eprintln!("t2 derived");
    let det = DetScheme::new(&key);
    eprintln!("t3 det built");
    struct Zero;
    impl rand::RngCore for Zero {
        fn next_u32(&mut self) -> u32 {
            0
        }
        fn next_u64(&mut self) -> u64 {
            0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            dest.fill(0);
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
            dest.fill(0);
            Ok(())
        }
    }
    let ct = det.encrypt(b"ra", &mut Zero);
    eprintln!("t4 ct len {}", ct.len());
}
