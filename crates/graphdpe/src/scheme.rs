//! The high-level encryption scheme for graphs — KIT-DPE Step 1 — and its
//! two concrete instantiations.
//!
//! The security goal for graph corpora is "hide what the vertices are" (in
//! a co-access graph from a query log, vertex labels are attribute names;
//! in a social graph, user ids). The high-level scheme is therefore the
//! single-slot tuple `(EncVertex)`: encrypt every vertex label item-wise,
//! leave the structure to the label mapping. Edges follow automatically.
//!
//! Two instances cover the two appropriate classes of the case-study table:
//!
//! * [`DetGraphEncryptor`] — one corpus-wide DET key: equal labels encrypt
//!   equal *across graphs*, distinct labels distinct. Ensures vertex- and
//!   edge-set equivalence (and degree-sequence equivalence a fortiori).
//! * [`ProbGraphEncryptor`] — fresh per-graph pseudonyms (`PROB` usage):
//!   cross-graph label identity is destroyed, so only label-free measures
//!   survive. Appropriate — and *maximally secure* — for degree-sequence
//!   distance; the designated negative control for the set measures.

use crate::graph::Graph;
use dpe_crypto::scheme::SymmetricScheme;
use dpe_crypto::{DetScheme, EncryptionClass, MasterKey, SymmetricKey};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::HashMap;

/// Corpus-wide deterministic vertex-label encryption (class DET).
#[derive(Clone)]
pub struct DetGraphEncryptor {
    det: DetScheme,
}

impl DetGraphEncryptor {
    /// Derives the vertex-label key from the owner's master key.
    pub fn new(master: &MasterKey) -> Self {
        DetGraphEncryptor {
            det: DetScheme::new(&master.derive("graph-vertex")),
        }
    }

    /// Builds directly from a symmetric key (tests, key rotation).
    pub fn from_key(key: &SymmetricKey) -> Self {
        DetGraphEncryptor {
            det: DetScheme::new(key),
        }
    }

    /// Encrypts one vertex label to a stable hex pseudonym.
    pub fn encrypt_label(&self, label: &str) -> String {
        // DET ignores the RNG; a fixed dummy keeps the call site clean.
        let mut dummy = NullRng;
        self.det.encrypt(label.as_bytes(), &mut dummy).to_hex()
    }

    /// Encrypts a whole graph by relabelling every vertex.
    pub fn encrypt_graph(&self, g: &Graph) -> Graph {
        g.relabel(|v| self.encrypt_label(v))
    }

    /// The class of the `EncVertex` slot.
    pub fn class(&self) -> EncryptionClass {
        EncryptionClass::Det
    }
}

/// Per-graph probabilistic pseudonymization (class PROB usage).
///
/// Every call to [`ProbGraphEncryptor::encrypt_graph`] draws a fresh random
/// pseudonym table, so the *same* vertex label gets unlinkable names in two
/// different encrypted graphs — the defining behaviour of PROB lifted to
/// the label domain. Within one graph the table is consistent (encryption
/// must be injective per item or the graph would collapse).
pub struct ProbGraphEncryptor {
    rng: StdRng,
}

impl ProbGraphEncryptor {
    /// Seeded constructor — experiments stay reproducible.
    pub fn from_seed(seed: u64) -> Self {
        ProbGraphEncryptor {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Encrypts a graph under fresh pseudonyms.
    pub fn encrypt_graph(&mut self, g: &Graph) -> Graph {
        let mut table: HashMap<String, String> = HashMap::with_capacity(g.vertex_count());
        for v in g.vertices() {
            let mut tag = [0u8; 16];
            self.rng.fill_bytes(&mut tag);
            let hex: String = tag.iter().map(|b| format!("{b:02x}")).collect();
            table.insert(v.clone(), format!("p{hex}"));
        }
        g.relabel(|v| table[v].clone())
    }

    /// The class of the `EncVertex` slot.
    pub fn class(&self) -> EncryptionClass {
        EncryptionClass::Prob
    }
}

/// A no-op RNG for schemes that are deterministic and ignore randomness.
struct NullRng;

impl RngCore for NullRng {
    fn next_u32(&mut self) -> u32 {
        0
    }

    fn next_u64(&mut self) -> u64 {
        0
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        dest.fill(0);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        dest.fill(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn master() -> MasterKey {
        MasterKey::from_bytes([17; 32])
    }

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.add_edge("ra", "dec");
        g.add_edge("dec", "objid");
        g.add_vertex("z");
        g
    }

    #[test]
    fn det_labels_stable_across_graphs() {
        let enc = DetGraphEncryptor::new(&master());
        let g1 = sample();
        let mut g2 = Graph::new();
        g2.add_edge("ra", "z");
        let e1 = enc.encrypt_graph(&g1);
        let e2 = enc.encrypt_graph(&g2);
        let ra = enc.encrypt_label("ra");
        assert!(e1.vertices().contains(&ra));
        assert!(
            e2.vertices().contains(&ra),
            "DET must be stable across graphs"
        );
    }

    #[test]
    fn det_structure_preserved() {
        let enc = DetGraphEncryptor::new(&master());
        let g = sample();
        let e = enc.encrypt_graph(&g);
        assert_eq!(e.vertex_count(), g.vertex_count());
        assert_eq!(e.edge_count(), g.edge_count());
        assert_eq!(e.degree_sequence(), g.degree_sequence());
    }

    #[test]
    fn det_hides_plaintext_labels() {
        let enc = DetGraphEncryptor::new(&master());
        let e = enc.encrypt_graph(&sample());
        for v in ["ra", "dec", "objid", "z"] {
            assert!(!e.vertices().contains(v), "plaintext label {v} leaked");
        }
    }

    #[test]
    fn det_key_separation() {
        let e1 = DetGraphEncryptor::from_key(&SymmetricKey::from_bytes([1; 32]));
        let e2 = DetGraphEncryptor::from_key(&SymmetricKey::from_bytes([2; 32]));
        assert_ne!(e1.encrypt_label("ra"), e2.encrypt_label("ra"));
    }

    #[test]
    fn prob_unlinkable_across_calls() {
        let mut enc = ProbGraphEncryptor::from_seed(7);
        let g = sample();
        let e1 = enc.encrypt_graph(&g);
        let e2 = enc.encrypt_graph(&g);
        // Same plaintext graph, two encryptions: vertex sets disjoint.
        assert!(e1.vertices().is_disjoint(e2.vertices()));
        // Structure still intact in each.
        assert_eq!(e1.degree_sequence(), g.degree_sequence());
        assert_eq!(e2.degree_sequence(), g.degree_sequence());
    }

    #[test]
    fn classes_reported() {
        assert_eq!(
            DetGraphEncryptor::new(&master()).class(),
            EncryptionClass::Det
        );
        assert_eq!(
            ProbGraphEncryptor::from_seed(0).class(),
            EncryptionClass::Prob
        );
    }
}
