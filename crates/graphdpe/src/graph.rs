//! The labelled-graph data type the case study encrypts.
//!
//! Graphs are simple and undirected with string-labelled vertices — the
//! shape of co-access graphs mined from query logs (attributes as vertices,
//! "used by the same query" as edges) and of most graph corpora the
//! distance measures in [`crate::distance`] target. Canonical storage
//! (sorted vertex set, normalized edge pairs) makes structural equality,
//! hashing and the set algebra of the Jaccard measures exact.

use std::collections::BTreeSet;
use std::fmt;

/// An undirected edge, stored with its endpoints in sorted order so that
/// `(a, b)` and `(b, a)` are one edge.
// The clippy.toml ban on `PartialOrd::partial_cmp` targets NaN-prone
// float sorts; this derive expands to field-wise partial_cmp over
// non-float fields, which cannot hit the NaN pitfall.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Lexicographically smaller endpoint.
    pub a: String,
    /// Lexicographically larger endpoint.
    pub b: String,
}

impl Edge {
    /// Builds the canonical edge between two distinct labels.
    ///
    /// # Panics
    ///
    /// Panics on self-loops (`a == b`) — the measures here are defined on
    /// simple graphs.
    pub fn new(x: impl Into<String>, y: impl Into<String>) -> Self {
        let (x, y) = (x.into(), y.into());
        assert_ne!(x, y, "self-loops are not part of the simple-graph model");
        if x <= y {
            Edge { a: x, b: y }
        } else {
            Edge { a: y, b: x }
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}—{}", self.a, self.b)
    }
}

/// A simple undirected graph with string vertex labels.
///
/// Isolated vertices are representable (a vertex may appear without edges),
/// which matters for vertex-set distance: two graphs can share no edge yet
/// overlap heavily in vertices.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Graph {
    vertices: BTreeSet<String>,
    edges: BTreeSet<Edge>,
}

impl Graph {
    /// The empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Builds a graph from vertices and edges; edge endpoints are added as
    /// vertices automatically.
    pub fn from_parts(
        vertices: impl IntoIterator<Item = String>,
        edges: impl IntoIterator<Item = Edge>,
    ) -> Self {
        let mut g = Graph::new();
        for v in vertices {
            g.add_vertex(v);
        }
        for e in edges {
            g.add_edge_canonical(e);
        }
        g
    }

    /// Adds a vertex (no-op if present).
    pub fn add_vertex(&mut self, label: impl Into<String>) {
        self.vertices.insert(label.into());
    }

    /// Adds an undirected edge, inserting endpoints as vertices.
    ///
    /// # Panics
    ///
    /// Panics on self-loops.
    pub fn add_edge(&mut self, x: impl Into<String>, y: impl Into<String>) {
        self.add_edge_canonical(Edge::new(x, y));
    }

    fn add_edge_canonical(&mut self, e: Edge) {
        self.vertices.insert(e.a.clone());
        self.vertices.insert(e.b.clone());
        self.edges.insert(e);
    }

    /// Vertex label set.
    pub fn vertices(&self) -> &BTreeSet<String> {
        &self.vertices
    }

    /// Canonical edge set.
    pub fn edges(&self) -> &BTreeSet<Edge> {
        &self.edges
    }

    /// Number of vertices — Definition 2's example characteristic.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `label` (0 for isolated or absent vertices).
    pub fn degree(&self, label: &str) -> usize {
        self.edges
            .iter()
            .filter(|e| e.a == label || e.b == label)
            .count()
    }

    /// The degree sequence, sorted descending — a label-free structural
    /// characteristic (the `c` of degree-sequence equivalence).
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut seq: Vec<usize> = self.vertices.iter().map(|v| self.degree(v)).collect();
        seq.sort_unstable_by(|a, b| b.cmp(a));
        seq
    }

    /// Applies a vertex-label mapping, producing the relabelled graph.
    ///
    /// This is the graph analogue of the paper's item-wise `Enc`: the
    /// encryption schemes in [`crate::scheme`] are exactly such mappings.
    /// The mapping must be injective on this graph's vertices or edges
    /// would collapse; the debug assertion guards against key misuse.
    pub fn relabel(&self, mut f: impl FnMut(&str) -> String) -> Graph {
        let vertices: BTreeSet<String> = self.vertices.iter().map(|v| f(v)).collect();
        debug_assert_eq!(
            vertices.len(),
            self.vertices.len(),
            "relabelling collided — encryption must be injective"
        );
        let edges: BTreeSet<Edge> = self
            .edges
            .iter()
            .map(|e| Edge::new(f(&e.a), f(&e.b)))
            .collect();
        Graph { vertices, edges }
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph({} vertices, {} edges)",
            self.vertex_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new();
        g.add_edge("a", "b");
        g.add_edge("b", "c");
        g.add_edge("c", "a");
        g
    }

    #[test]
    fn edge_canonical_order() {
        assert_eq!(Edge::new("z", "a"), Edge::new("a", "z"));
        assert_eq!(Edge::new("z", "a").a, "a");
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        Edge::new("a", "a");
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree("a"), 2);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut g = Graph::new();
        g.add_edge("a", "b");
        g.add_edge("b", "a");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn isolated_vertices_survive() {
        let mut g = Graph::new();
        g.add_vertex("lonely");
        g.add_edge("a", "b");
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.degree("lonely"), 0);
        assert_eq!(g.degree_sequence(), vec![1, 1, 0]);
    }

    #[test]
    fn degree_sequence_sorted_descending() {
        // Star on 4 leaves: center degree 4, leaves degree 1.
        let mut g = Graph::new();
        for leaf in ["l1", "l2", "l3", "l4"] {
            g.add_edge("center", leaf);
        }
        assert_eq!(g.degree_sequence(), vec![4, 1, 1, 1, 1]);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = triangle();
        let enc = g.relabel(|v| format!("enc({v})"));
        assert_eq!(enc.vertex_count(), 3);
        assert_eq!(enc.edge_count(), 3);
        assert_eq!(enc.degree_sequence(), g.degree_sequence());
        assert!(enc.vertices().contains("enc(a)"));
    }

    #[test]
    fn from_parts_adds_endpoints() {
        let g = Graph::from_parts(["x".to_string()], [Edge::new("p", "q")]);
        assert_eq!(g.vertex_count(), 3);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(triangle().to_string(), "Graph(3 vertices, 3 edges)");
    }
}
