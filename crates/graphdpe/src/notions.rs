//! Equivalence notions for graph distance measures and the Definition-6
//! class selection — Steps 2 and 3 of KIT-DPE for the graph domain.
//!
//! The characteristic functions `c` (Definition 2):
//!
//! | measure | notion | `c` |
//! |---|---|---|
//! | vertex-jaccard | vertex-set equivalence | `vertices` |
//! | edge-jaccard | edge-set equivalence | `edges` |
//! | degree-sequence | degree-sequence equivalence | `degree_sequence` |
//!
//! The capability analysis mirrors `dpe-core::selection` for SQL: a class
//! *ensures* a notion when its preserved property suffices for the
//! commuting square `Enc(c(x)) = c(Enc(x))` **and** for cross-item set
//! algebra. Vertex- and edge-set equivalence need ciphertext equality to
//! coincide with plaintext equality *across graphs* → deterministic classes
//! only. Degree-sequence equivalence is label-free → every injective
//! per-item encryption works, so PROB (the top of Fig. 1) is appropriate.

use dpe_crypto::EncryptionClass;
use std::fmt;

/// The three equivalence notions of the graph case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphNotion {
    /// `c = vertices`: the vertex-label set must commute with encryption.
    VertexSet,
    /// `c = edges`: the canonical edge set must commute with encryption.
    EdgeSet,
    /// `c = degree_sequence`: only the degree multiset must survive.
    DegreeSequence,
}

impl GraphNotion {
    /// All notions, in case-study table order.
    pub const ALL: [GraphNotion; 3] = [
        GraphNotion::VertexSet,
        GraphNotion::EdgeSet,
        GraphNotion::DegreeSequence,
    ];

    /// Whether an encryption class ensures this notion for the vertex-label
    /// slot (`EncVertex`), per the capability analysis in the module docs.
    pub fn ensured_by(self, class: EncryptionClass) -> bool {
        match self {
            // Cross-graph label identity must survive: equal labels must
            // encrypt equal, distinct labels distinct. Exactly the
            // deterministic classes provide that.
            GraphNotion::VertexSet | GraphNotion::EdgeSet => class.preserves_equality(),
            // Label-free: any injective item-wise encryption preserves the
            // degree multiset, including probabilistic pseudonyms.
            GraphNotion::DegreeSequence => true,
        }
    }

    /// Definition 6 for the graph slot: among the classes that ensure the
    /// notion, pick the one with the highest security level; ties break
    /// toward the *least capable* class (fewer preserved properties = less
    /// leakage surface), which is how the paper reads Fig. 1 rows.
    pub fn appropriate_class(self) -> EncryptionClass {
        EncryptionClass::ALL
            .into_iter()
            .filter(|c| self.ensured_by(*c))
            .max_by_key(|c| {
                // Prefer high security; within a row prefer not-HOM/not-OPE
                // extras (PROB over HOM, DET over OPE/JOIN) — encoded by
                // counting *absent* capabilities.
                let extra_caps = usize::from(c.preserves_order())
                    + usize::from(c.supports_join())
                    + usize::from(c.supports_aggregation());
                (c.security_level(), std::cmp::Reverse(extra_caps))
            })
            .expect("at least one class ensures every notion")
    }

    /// The characteristic function's name (the `c` column of the table).
    pub fn characteristic(self) -> &'static str {
        match self {
            GraphNotion::VertexSet => "vertices",
            GraphNotion::EdgeSet => "edges",
            GraphNotion::DegreeSequence => "degree_sequence",
        }
    }

    /// Human-readable notion name.
    pub fn name(self) -> &'static str {
        match self {
            GraphNotion::VertexSet => "vertex-set equivalence",
            GraphNotion::EdgeSet => "edge-set equivalence",
            GraphNotion::DegreeSequence => "degree-sequence equivalence",
        }
    }
}

impl fmt::Display for GraphNotion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of the graph case-study table (the analogue of Table I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphTableRow {
    /// Measure name.
    pub measure: &'static str,
    /// The equivalence notion KIT-DPE Step 2 assigns.
    pub notion: GraphNotion,
    /// The appropriate class KIT-DPE Step 3 selects for `EncVertex`.
    pub enc_vertex: EncryptionClass,
}

/// Derives the full case-study table by running Steps 2–3 for each measure.
pub fn derive_table() -> Vec<GraphTableRow> {
    [
        ("vertex-jaccard", GraphNotion::VertexSet),
        ("edge-jaccard", GraphNotion::EdgeSet),
        ("degree-sequence", GraphNotion::DegreeSequence),
    ]
    .into_iter()
    .map(|(measure, notion)| GraphTableRow {
        measure,
        notion,
        enc_vertex: notion.appropriate_class(),
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_notions_need_determinism() {
        for notion in [GraphNotion::VertexSet, GraphNotion::EdgeSet] {
            assert!(!notion.ensured_by(EncryptionClass::Prob), "{notion}");
            assert!(!notion.ensured_by(EncryptionClass::Hom), "{notion}");
            assert!(notion.ensured_by(EncryptionClass::Det), "{notion}");
            assert!(notion.ensured_by(EncryptionClass::Ope), "{notion}");
        }
    }

    #[test]
    fn degree_sequence_ensured_by_everything() {
        for class in EncryptionClass::ALL {
            assert!(GraphNotion::DegreeSequence.ensured_by(class), "{class}");
        }
    }

    #[test]
    fn appropriate_classes_match_analysis() {
        assert_eq!(
            GraphNotion::VertexSet.appropriate_class(),
            EncryptionClass::Det
        );
        assert_eq!(
            GraphNotion::EdgeSet.appropriate_class(),
            EncryptionClass::Det
        );
        assert_eq!(
            GraphNotion::DegreeSequence.appropriate_class(),
            EncryptionClass::Prob
        );
    }

    #[test]
    fn derived_table_shape() {
        let table = derive_table();
        assert_eq!(table.len(), 3);
        assert_eq!(table[0].enc_vertex, EncryptionClass::Det);
        assert_eq!(table[1].enc_vertex, EncryptionClass::Det);
        assert_eq!(table[2].enc_vertex, EncryptionClass::Prob);
        // The security gain of the label-free measure is exactly the
        // paper's §IV-C phenomenon transplanted to graphs.
        assert!(table[2].enc_vertex.security_level() > table[0].enc_vertex.security_level());
    }

    #[test]
    fn characteristics_and_names() {
        assert_eq!(GraphNotion::VertexSet.characteristic(), "vertices");
        assert_eq!(GraphNotion::EdgeSet.characteristic(), "edges");
        assert_eq!(
            GraphNotion::DegreeSequence.characteristic(),
            "degree_sequence"
        );
        assert_eq!(GraphNotion::VertexSet.to_string(), "vertex-set equivalence");
    }
}
