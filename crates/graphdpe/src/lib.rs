//! # dpe-graphdpe — KIT-DPE instantiated for labelled graphs
//!
//! The paper's procedure is explicitly generic: "KIT-DPE … establishes how
//! to design a DPE-scheme for **arbitrary data** and distance measures",
//! and Definition 2's running example of a characteristic is a *graph*
//! property ("the number of vertices"). This crate carries out that second
//! instantiation end-to-end, exercising every generic concept of
//! `dpe-core` on a data type with nothing SQL about it — the
//! "applicability of equivalence notions in different contexts" the
//! conclusion names as future work.
//!
//! ## The four steps for graphs
//!
//! 1. **Security model** ([`scheme`]): hide vertex identities (attribute
//!    names, user ids); the high-level scheme is the single-slot tuple
//!    `(EncVertex)` applied item-wise to labels. Threat model: the same
//!    passive attacks as the SQL study.
//! 2. **Equivalence notions** ([`notions`]): vertex-set, edge-set and
//!    degree-sequence equivalence — one per distance measure in
//!    [`distance`] (vertex-Jaccard, edge-Jaccard, degree-sequence L1).
//! 3. **Ensuring the notions** ([`notions::GraphNotion::appropriate_class`]):
//!    the Definition-6 maximum-security search over the Fig. 1 lattice
//!    yields DET for the set measures and **PROB for degree-sequence
//!    distance** — the graph analogue of the paper's §IV-C observation
//!    that label-free parts of a measure admit the top security class.
//! 4. **Security assessment**: by construction the slots reuse
//!    `dpe-crypto` classes whose leakage `dpe-attacks` measures; no new
//!    analysis needed — precisely the property KIT-DPE is designed around.
//!
//! The case-study table (the crate's Table I analogue) is derived by
//! [`notions::derive_table`] and verified pairwise-exhaustively by
//! [`verify::verify_graph_dpe`]; [`workload`] generates community-structured
//! corpora and bridges SQL logs to co-access graphs so the two case studies
//! compose.

#![forbid(unsafe_code)]

pub mod distance;
pub mod graph;
pub mod notions;
pub mod scheme;
pub mod verify;
pub mod workload;

pub use distance::{DegreeSequenceDistance, EdgeJaccard, GraphDistance, VertexJaccard};
pub use graph::{Edge, Graph};
pub use notions::{derive_table, GraphNotion, GraphTableRow};
pub use scheme::{DetGraphEncryptor, ProbGraphEncryptor};
pub use verify::{verify_graph_dpe, GraphDpeReport};
pub use workload::{coaccess_graph, window_coaccess_graph, GraphWorkload};

#[cfg(test)]
mod mining_invariance {
    //! The headline claim, for graphs: distance-based mining on the
    //! encrypted corpus returns *identical* results.

    use super::*;
    use dpe_crypto::MasterKey;
    use dpe_distance::DistanceMatrix;
    use dpe_mining::{adjusted_rand_index, agglomerative, dbscan, kmedoids, DbscanConfig, Linkage};

    fn matrices<M: GraphDistance>(measure: &M) -> (DistanceMatrix, DistanceMatrix, Vec<usize>) {
        let mut wl = GraphWorkload::new(2026);
        let plain = wl.community_corpus(3, 8, 7);
        let truth = GraphWorkload::community_truth(3, 8);
        let enc = DetGraphEncryptor::new(&MasterKey::from_bytes([8; 32]));
        let encrypted: Vec<Graph> = plain.iter().map(|g| enc.encrypt_graph(g)).collect();
        let m_plain =
            DistanceMatrix::from_fn(plain.len(), |i, j| measure.distance(&plain[i], &plain[j]));
        let m_enc = DistanceMatrix::from_fn(encrypted.len(), |i, j| {
            measure.distance(&encrypted[i], &encrypted[j])
        });
        (m_plain, m_enc, truth)
    }

    #[test]
    fn kmedoids_identical_plain_vs_encrypted() {
        // The paper's claim is *identity of results under encryption*, so
        // that is what this test pins down. (Community recovery itself is
        // asserted via the dendrogram cut below — k-medoids' greedy init is
        // known to struggle on this corpus's fully tied inter-community
        // distances, identically on both sides.)
        let (mp, me, _) = matrices(&EdgeJaccard);
        assert!(mp.identical(&me));
        let plain = kmedoids(&mp, 3);
        let enc = kmedoids(&me, 3);
        assert_eq!(plain.assignment, enc.assignment);
        assert_eq!(plain.medoids, enc.medoids);
    }

    #[test]
    fn dbscan_identical() {
        let (mp, me, _) = matrices(&VertexJaccard);
        let cfg = DbscanConfig {
            eps: 0.3,
            min_pts: 3,
        };
        assert_eq!(dbscan(&mp, cfg), dbscan(&me, cfg));
    }

    #[test]
    fn dendrograms_identical_under_all_linkages() {
        let (mp, me, truth) = matrices(&EdgeJaccard);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dp = agglomerative(&mp, linkage);
            let de = agglomerative(&me, linkage);
            assert_eq!(dp, de, "{linkage:?}");
            assert_eq!(adjusted_rand_index(&dp.cut(3), &truth), 1.0, "{linkage:?}");
        }
    }
}
