//! Exhaustive Definition-1 verification for graph corpora — the same
//! "check every pair, demand exact equality" harness `dpe-core::verify`
//! runs for SQL logs.

use crate::distance::GraphDistance;
use crate::graph::Graph;
use std::fmt;

/// Outcome of checking `d(Enc(x), Enc(y)) = d(x, y)` over all pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphDpeReport {
    /// Measure under test.
    pub measure: &'static str,
    /// Number of unordered pairs checked.
    pub pairs: usize,
    /// Largest absolute deviation observed (0.0 when preserved).
    pub max_delta: f64,
    /// Whether every pair matched exactly.
    pub preserved: bool,
}

impl fmt::Display for GraphDpeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} over {} pairs (max Δ = {:.6})",
            self.measure,
            if self.preserved {
                "PRESERVED"
            } else {
                "VIOLATED"
            },
            self.pairs,
            self.max_delta
        )
    }
}

/// Checks Definition 1 for `measure` by comparing all pairwise distances of
/// `plain` against the aligned `encrypted` corpus.
///
/// Exact `f64` equality is required, as in the SQL harness: the Jaccard
/// ratios are computed from equal set cardinalities on both sides, so any
/// deviation at all means the scheme is *not* distance-preserving.
///
/// # Panics
///
/// Panics when the corpora are not aligned index-by-index.
pub fn verify_graph_dpe<M: GraphDistance>(
    measure: &M,
    plain: &[Graph],
    encrypted: &[Graph],
) -> GraphDpeReport {
    assert_eq!(plain.len(), encrypted.len(), "corpora must align item-wise");
    let n = plain.len();
    let mut pairs = 0usize;
    let mut max_delta = 0.0f64;
    let mut preserved = true;
    for i in 0..n {
        for j in i + 1..n {
            let d_plain = measure.distance(&plain[i], &plain[j]);
            let d_enc = measure.distance(&encrypted[i], &encrypted[j]);
            let delta = (d_plain - d_enc).abs();
            if d_plain != d_enc {
                preserved = false;
            }
            max_delta = max_delta.max(delta);
            pairs += 1;
        }
    }
    GraphDpeReport {
        measure: measure.name(),
        pairs,
        max_delta,
        preserved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{DegreeSequenceDistance, EdgeJaccard, VertexJaccard};
    use crate::scheme::{DetGraphEncryptor, ProbGraphEncryptor};
    use crate::workload::GraphWorkload;
    use dpe_crypto::MasterKey;

    fn corpus() -> Vec<Graph> {
        GraphWorkload::new(42).community_corpus(3, 6, 8)
    }

    #[test]
    fn det_preserves_all_three_measures() {
        let plain = corpus();
        let enc = DetGraphEncryptor::new(&MasterKey::from_bytes([3; 32]));
        let encrypted: Vec<Graph> = plain.iter().map(|g| enc.encrypt_graph(g)).collect();

        for report in [
            verify_graph_dpe(&VertexJaccard, &plain, &encrypted),
            verify_graph_dpe(&EdgeJaccard, &plain, &encrypted),
            verify_graph_dpe(&DegreeSequenceDistance, &plain, &encrypted),
        ] {
            assert!(report.preserved, "{report}");
            assert_eq!(report.max_delta, 0.0);
            assert_eq!(report.pairs, plain.len() * (plain.len() - 1) / 2);
        }
    }

    #[test]
    fn prob_preserves_only_degree_sequence() {
        let plain = corpus();
        let mut enc = ProbGraphEncryptor::from_seed(9);
        let encrypted: Vec<Graph> = plain.iter().map(|g| enc.encrypt_graph(g)).collect();

        let deg = verify_graph_dpe(&DegreeSequenceDistance, &plain, &encrypted);
        assert!(deg.preserved, "{deg}");

        // Negative controls: the set measures break under per-graph
        // pseudonyms — cross-graph overlaps vanish.
        let vj = verify_graph_dpe(&VertexJaccard, &plain, &encrypted);
        let ej = verify_graph_dpe(&EdgeJaccard, &plain, &encrypted);
        assert!(
            !vj.preserved,
            "vertex-jaccard should break under PROB: {vj}"
        );
        assert!(!ej.preserved, "edge-jaccard should break under PROB: {ej}");
        assert!(vj.max_delta > 0.0);
    }

    #[test]
    fn identity_is_the_sanity_floor() {
        let plain = corpus();
        let report = verify_graph_dpe(&VertexJaccard, &plain, &plain);
        assert!(report.preserved);
        assert_eq!(report.max_delta, 0.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_corpora_rejected() {
        let plain = corpus();
        verify_graph_dpe(&VertexJaccard, &plain, &plain[1..]);
    }

    #[test]
    fn report_displays_verdict() {
        let plain = corpus();
        let report = verify_graph_dpe(&EdgeJaccard, &plain, &plain);
        let s = report.to_string();
        assert!(s.contains("PRESERVED"), "{s}");
        assert!(s.contains("edge-jaccard"), "{s}");
    }
}
