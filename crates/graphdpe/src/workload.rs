//! Synthetic graph corpora and the query-log → co-access-graph bridge.
//!
//! Two sources of graphs, both seeded and reproducible:
//!
//! * [`GraphWorkload::community_corpus`] — graphs drawn from `k` structural
//!   communities: graphs in one community perturb a shared template, so a
//!   distance-based clustering should recover the communities (and, under
//!   DPE, recover them *identically* on ciphertext).
//! * [`coaccess_graph`] — the case study's tie-back to the paper: an SQL
//!   query's accessed attributes form a clique (they co-occur in one user
//!   interaction). Folding a log window produces the co-access graph that
//!   SkyServer-style interest mining (\[16\]) works on; encrypting the log
//!   with the DET attribute slot and building the graph from ciphertext
//!   commutes with building it from plaintext and encrypting the labels.

use crate::graph::Graph;
use dpe_sql::{analysis, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded generator of synthetic graph corpora.
#[derive(Debug)]
pub struct GraphWorkload {
    rng: StdRng,
}

impl GraphWorkload {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        GraphWorkload {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates `communities × per_community` graphs. Each community owns
    /// a random template over its private label universe of
    /// `vertices_per_graph` vertices; members perturb the template by
    /// toggling a few edges, so intra-community distances are small and
    /// inter-community distances are 1 (disjoint labels).
    pub fn community_corpus(
        &mut self,
        communities: usize,
        per_community: usize,
        vertices_per_graph: usize,
    ) -> Vec<Graph> {
        self.community_batches(communities, per_community, vertices_per_graph)
            .into_iter()
            .flatten()
            .collect()
    }

    /// The streaming form of [`GraphWorkload::community_corpus`]: one batch
    /// per community, in community order, drawn from the same RNG sequence
    /// (so flattening the batches reproduces `community_corpus` exactly).
    /// Lets workloads that receive graphs incrementally grow their distance
    /// matrix with `DistanceMatrix::extend_with` instead of recomputing the
    /// O(n²) matrix per batch.
    pub fn community_batches(
        &mut self,
        communities: usize,
        per_community: usize,
        vertices_per_graph: usize,
    ) -> Vec<Vec<Graph>> {
        assert!(
            vertices_per_graph >= 3,
            "need ≥ 3 vertices for interesting structure"
        );
        let mut batches = Vec::with_capacity(communities);
        for c in 0..communities {
            let mut corpus = Vec::with_capacity(per_community);
            let labels: Vec<String> = (0..vertices_per_graph)
                .map(|i| format!("c{c}_v{i}"))
                .collect();
            // Community template: each vertex pair is an edge with p = 0.4.
            let mut template: Vec<(usize, usize)> = Vec::new();
            for i in 0..vertices_per_graph {
                for j in i + 1..vertices_per_graph {
                    if self.rng.gen_bool(0.4) {
                        template.push((i, j));
                    }
                }
            }
            // Ensure the template has at least one edge.
            if template.is_empty() {
                template.push((0, 1));
            }
            for _ in 0..per_community {
                let mut g = Graph::new();
                for l in &labels {
                    g.add_vertex(l.clone());
                }
                for &(i, j) in &template {
                    // Keep each template edge with p = 0.9.
                    if self.rng.gen_bool(0.9) {
                        g.add_edge(labels[i].clone(), labels[j].clone());
                    }
                }
                // Sprinkle one random extra edge half the time.
                if self.rng.gen_bool(0.5) {
                    let i = self.rng.gen_range(0..vertices_per_graph);
                    let j = self.rng.gen_range(0..vertices_per_graph);
                    if i != j {
                        g.add_edge(labels[i].clone(), labels[j].clone());
                    }
                }
                corpus.push(g);
            }
            batches.push(corpus);
        }
        batches
    }

    /// Ground-truth community labels aligned with
    /// [`GraphWorkload::community_corpus`] output order.
    pub fn community_truth(communities: usize, per_community: usize) -> Vec<usize> {
        (0..communities)
            .flat_map(|c| std::iter::repeat_n(c, per_community))
            .collect()
    }
}

/// Builds the co-access graph of one query: accessed attributes are the
/// vertices and every pair of co-accessed attributes is an edge (a clique —
/// the window-free special case of interest graphs à la \[16\]).
pub fn coaccess_graph(query: &Query) -> Graph {
    let attrs: Vec<String> = analysis::attributes(query).into_iter().collect();
    let mut g = Graph::new();
    for a in &attrs {
        g.add_vertex(a.clone());
    }
    for i in 0..attrs.len() {
        for j in i + 1..attrs.len() {
            g.add_edge(attrs[i].clone(), attrs[j].clone());
        }
    }
    g
}

/// Folds a window of queries into one co-access graph (union of cliques) —
/// the "session graph" used for user-interest mining over log windows.
pub fn window_coaccess_graph(queries: &[Query]) -> Graph {
    let mut g = Graph::new();
    for q in queries {
        let clique = coaccess_graph(q);
        for v in clique.vertices() {
            g.add_vertex(v.clone());
        }
        for e in clique.edges() {
            g.add_edge(e.a.clone(), e.b.clone());
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_sql::parse_query;

    #[test]
    fn corpus_shape_and_determinism() {
        let c1 = GraphWorkload::new(5).community_corpus(3, 4, 6);
        let c2 = GraphWorkload::new(5).community_corpus(3, 4, 6);
        assert_eq!(c1.len(), 12);
        assert_eq!(c1, c2, "same seed must reproduce the corpus");
        let c3 = GraphWorkload::new(6).community_corpus(3, 4, 6);
        assert_ne!(c1, c3, "different seeds should differ");
    }

    #[test]
    fn batches_flatten_to_the_corpus() {
        let batched: Vec<Graph> = GraphWorkload::new(9)
            .community_batches(3, 4, 6)
            .into_iter()
            .flatten()
            .collect();
        let flat = GraphWorkload::new(9).community_corpus(3, 4, 6);
        assert_eq!(batched, flat, "same seed, same RNG sequence, same corpus");
    }

    #[test]
    fn streaming_batches_grow_the_matrix_incrementally() {
        use crate::distance::{EdgeJaccard, GraphDistance};
        use dpe_distance::DistanceMatrix;

        let batches = GraphWorkload::new(2).community_batches(3, 5, 5);
        // Stream: grow the matrix one community batch at a time, computing
        // only the new pairs.
        let mut streamed = DistanceMatrix::new();
        let mut seen: Vec<Graph> = Vec::new();
        for batch in batches {
            seen.extend(batch.clone());
            let m = batch.len();
            streamed.extend_with(m, |i, t| EdgeJaccard.distance(&seen[i], &seen[t]));
        }
        // Batch: one shot over the full corpus.
        let full =
            DistanceMatrix::from_fn(seen.len(), |i, j| EdgeJaccard.distance(&seen[i], &seen[j]));
        assert_eq!(streamed.len(), 15);
        assert!(
            full.identical(&streamed),
            "incremental growth must be bit-identical"
        );
    }

    #[test]
    fn communities_are_label_disjoint() {
        let corpus = GraphWorkload::new(1).community_corpus(2, 3, 5);
        // Graphs 0..3 are community 0; 3..6 community 1.
        assert!(corpus[0].vertices().is_disjoint(corpus[3].vertices()));
        // Within a community the vertex sets coincide.
        assert_eq!(corpus[0].vertices(), corpus[1].vertices());
    }

    #[test]
    fn truth_aligns() {
        let truth = GraphWorkload::community_truth(3, 4);
        assert_eq!(truth.len(), 12);
        assert_eq!(truth[0], 0);
        assert_eq!(truth[4], 1);
        assert_eq!(truth[11], 2);
    }

    #[test]
    fn coaccess_clique_from_query() {
        let q = parse_query("SELECT ra, dec FROM photoobj WHERE objid = 5").unwrap();
        let g = coaccess_graph(&q);
        // Attributes: ra, dec, objid → triangle.
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.vertices().contains("ra"));
        assert!(g.vertices().contains("objid"));
    }

    #[test]
    fn window_unions_cliques() {
        let q1 = parse_query("SELECT ra FROM photoobj WHERE dec > 1").unwrap();
        let q2 = parse_query("SELECT z FROM specobj WHERE dec > 2").unwrap();
        let g = window_coaccess_graph(&[q1, q2]);
        // {ra, dec} ∪ {z, dec} = 3 vertices; edges ra—dec and dec—z.
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree("dec"), 2);
    }

    #[test]
    fn single_attribute_query_yields_isolated_vertex() {
        let q = parse_query("SELECT ra FROM photoobj").unwrap();
        let g = coaccess_graph(&q);
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
